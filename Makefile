PYTHON ?= python
PYTHONPATH := src

# Fixed seed matrix for reproducible CI fuzz rounds.
FUZZ_SEEDS ?= 0 1 2 3 4
FUZZ_BUDGET ?= 200

# The seeded CI fault-injection campaign (see `make fault`).
FAULT_SEED ?= 0
FAULT_CASES ?= 200

.PHONY: test test-quick fuzz replay fault serve-chaos bench bench-full bench-walk bench-corpus bench-planner bench-kernel bench-store bench-serve bench-coldpath bench-check

## Full tier-1 suite (includes the marked oracle fuzz and fault tests).
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## Everything except the fuzz and fault rounds — the quick local loop.
test-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q -m "not oracle and not faults"

## Cross-engine differential fuzzing: the marked pytest rounds plus a
## CLI sweep over the fixed seed matrix.  Fails on any disagreement;
## shrunk reproducers land in tests/corpus/.
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m oracle
	@for seed in $(FUZZ_SEEDS); do \
		echo "== oracle seed $$seed =="; \
		PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.oracle \
			--seed $$seed --budget $(FUZZ_BUDGET) || exit 1; \
	done

## Replay the stored counterexample corpus only.
replay:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.oracle --replay

## Seeded fault-injection campaign: the marked pytest rounds plus the
## 200-case CLI campaign.  Fails unless every injected fault is absorbed
## by fallback with a byte-identical answer.
fault:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m faults
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.resilience \
		--seed $(FAULT_SEED) --cases $(FAULT_CASES)

## The query-service fault battery: disconnects, torn frames, worker
## crashes, deadline expiry and admission bursts, each asserting the
## bystander session still answers correctly.
serve-chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -q -m service

## Quick engine-vs-reference trajectory (seconds; writes BENCH_engine.json).
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --quick

## The committed full-size trajectory (a few minutes).
bench-full:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench

## Walking-engine trajectory: caterpillar + TWA (writes BENCH_walk.json).
bench-walk:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --suite walk

## Corpus batch trajectory: set-at-a-time batches vs the naive per-call
## loop (writes BENCH_corpus.json).
bench-corpus:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --suite corpus

## Adaptive-planner trajectory: engine="auto" vs both manual choices,
## with chosen plans and estimate-vs-actual errors per query (writes
## BENCH_planner.json), then gate it: auto must pick the fastest engine
## on >= 80% of cells and stay within 1.1x of the best manual choice
## (median at the top size).
bench-planner:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --suite planner
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --check BENCH_planner.json

## Stacked-kernel trajectory: the vectorized shard executor vs the
## per-tree fast loop and the planner's auto route (writes
## BENCH_kernel.json), then gate it: the vectorized route must clear
## 2x median warm speedup at the top corpus size.
bench-kernel:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --suite kernel
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --check BENCH_kernel.json

## Disk-store trajectory: streaming ingest (child-process peak RSS),
## cold open and warm fixed-window batches at 1x/10x corpus size, and
## incremental index repair vs full rebuild (writes BENCH_store.json),
## then gate it: warm window latency flat within 1.3x across the 10x
## decade, ingest RSS sublinear, repair >= 5x at n >= 10k nodes.
bench-store:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --suite store
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --check BENCH_store.json

## Query-service trajectory: closed-loop clients at 1/8/32 concurrency
## plus a chaos round of injected faults (writes BENCH_serve.json),
## then gate it: >= 2x aggregate throughput at 8 clients vs 1, chaos
## p99 within 10x of calm, zero wrong answers, zero chaos errors.
bench-serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --suite serve
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --check BENCH_serve.json

## Zero-rebuild cold-path trajectory: a fresh process serves a cold
## 256-tree window from generation-tied index sidecars vs rebuilding
## indexes from unpickled trees, at 10k and 100k trees, plus cached
## window replay through the dispatcher (writes BENCH_coldpath.json),
## then gate it: sidecars >= 3x rebuild at 100k trees, cached replay
## p50 >= 5x a miss, zero oracle disagreements, zero wrong cached
## answers.
bench-coldpath:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --suite coldpath
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --check BENCH_coldpath.json

## Fail if any committed BENCH_*.json (engine, walk, corpus, planner,
## kernel, store, serve, coldpath) reports a median speedup < 1.0,
## swallowed per-case errors, or a trajectory missing its
## pick-rate/overhead/kernel/store/serve/coldpath gates.
bench-check:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.bench --check
