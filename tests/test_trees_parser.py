"""Term-syntax parser and printer tests."""

import pytest

from repro.trees import (
    BOTTOM,
    TermSyntaxError,
    Tree,
    format_term,
    parse_term,
)


def test_plain_tree():
    t = parse_term("a(b, c(d))")
    assert t.size == 4
    assert t.label((1, 0)) == "d"
    assert t.attributes == ()


def test_attributes_types():
    t = parse_term('n[i=42, s="hello world", bare=word, neg=-7]')
    assert t.val("i", ()) == 42
    assert t.val("s", ()) == "hello world"
    assert t.val("bare", ()) == "word"
    assert t.val("neg", ()) == -7


def test_bottom_literal():
    t = parse_term("n[x=⊥]", attributes=["x"])
    assert t.val("x", ()) is BOTTOM


def test_escaped_string():
    t = parse_term(r'n[s="a\"b\\c"]')
    assert t.val("s", ()) == 'a"b\\c'


def test_whitespace_tolerated():
    t = parse_term("  a ( b [ x = 1 ] ,  c )  ")
    assert t.size == 3
    assert t.val("x", (0,)) == 1


def test_explicit_attribute_set():
    t = parse_term("a(b)", attributes=["k"])
    assert t.attributes == ("k",)
    assert t.val("k", ()) is BOTTOM


def test_roundtrip(small_tree):
    assert parse_term(format_term(small_tree)) == small_tree


def test_roundtrip_random():
    from repro.trees import random_tree

    for seed in range(10):
        t = random_tree(9, alphabet=("a", "b"), attributes=("x", "y"),
                        value_pool=(1, "v w", "plain"), seed=seed)
        assert parse_term(format_term(t)) == t


def test_delimiter_labels_parse():
    t = parse_term("▽(▷, a(△), ◁)")
    assert t.label(()) == "▽"
    assert t.label((1, 0)) == "△"


@pytest.mark.parametrize(
    "bad",
    ["", "a(", "a(b,,c)", "a[x=]", "a[x=1", "a)b", "a(b) trailing", "a[=1]"],
)
def test_syntax_errors(bad):
    with pytest.raises(TermSyntaxError):
        parse_term(bad)


def test_error_carries_position():
    try:
        parse_term("a(b,,c)")
    except TermSyntaxError as exc:
        assert exc.pos == 4
    else:  # pragma: no cover
        pytest.fail("expected a syntax error")


def test_iter_term_stream_skips_blanks_and_comments():
    from repro.trees import format_term, iter_term_stream, random_tree

    originals = [random_tree(5, seed=s) for s in range(4)]
    lines = ["# corpus of terms", ""]
    for tree in originals:
        lines += [format_term(tree), ""]
    parsed = list(iter_term_stream("\n".join(lines)))
    assert len(parsed) == len(originals)
    for a, b in zip(parsed, originals):
        assert a._labels == b._labels
        assert a._attrs == b._attrs
