"""Hedge-automaton language equivalence (emptiness-based)."""

import pytest

from repro.mso import (
    exists_label_hedge,
    label_everywhere_hedge,
    leaf_count_mod_hedge,
)

ALPHA = ("σ", "δ")


def test_equivalent_to_itself():
    h = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    assert h.equivalent(h)


def test_double_complement():
    h = exists_label_hedge(ALPHA, "δ")
    assert h.equivalent(h.complement().complement())
    assert not h.equivalent(h.complement())


def test_de_morgan():
    a = exists_label_hedge(ALPHA, "δ")
    b = label_everywhere_hedge(ALPHA, "σ")
    left = a.product(b, "and").complement()
    right = a.complement().product(b.complement(), "or")
    assert left.equivalent(right)


def test_exists_is_not_everywhere_complement_in_general():
    # "exists δ" vs "not everywhere σ": over Σ = {σ, δ} these coincide!
    exists_delta = exists_label_hedge(ALPHA, "δ")
    not_all_sigma = label_everywhere_hedge(ALPHA, "σ").complement()
    assert exists_delta.equivalent(not_all_sigma)


def test_residue_choice_matters():
    even = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    odd = leaf_count_mod_hedge(ALPHA, "δ", 2, [1])
    assert not even.equivalent(odd)
    assert even.equivalent(odd.complement())


def test_mod_refinement():
    # ≡ 0 (mod 4) implies ≡ 0 (mod 2) but not conversely
    mod4 = leaf_count_mod_hedge(ALPHA, "δ", 4, [0])
    mod2 = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    assert mod4.product(mod2.complement(), "and").is_empty()
    assert not mod2.product(mod4.complement(), "and").is_empty()
    # and mod-2 even = (≡0 ∨ ≡2) (mod 4)
    zero_or_two = leaf_count_mod_hedge(ALPHA, "δ", 4, [0, 2])
    assert mod2.equivalent(zero_or_two)
