"""The dispatcher and TCP server on the sunny path: every query kind
answers exactly like the corpus engine, admission prices and settles,
health/stats tell the truth, and a store-backed server opens read-only
without disturbing a writer's lock."""

import threading
import time

import pytest

from repro.corpus import CorpusStore, TreeCorpus, xpath_query
from repro.service import (
    AdmissionController,
    Dispatcher,
    Overloaded,
    QueryServer,
    ServiceClient,
    ServiceError,
)

TERMS = ["σ(δ, σ(δ))", "δ(σ(δ), δ)", "σ(σ, σ(δ, δ))"]


@pytest.fixture()
def corpus():
    with TreeCorpus.from_terms(TERMS) as corpus:
        yield corpus


@pytest.fixture()
def dispatcher(corpus):
    return Dispatcher(corpus)


@pytest.fixture()
def server(dispatcher):
    with QueryServer(dispatcher).start_in_thread() as server:
        yield server


def _expected_rows(corpus, queries):
    import json

    return json.loads(json.dumps(corpus.run(queries).rows))


class TestDispatcher:
    def test_every_query_kind_matches_the_corpus_engine(
        self, corpus, dispatcher
    ):
        from repro.corpus import (
            ask_query,
            caterpillar_query,
            caterpillar_relation_query,
            select_query,
        )

        queries = [
            xpath_query("//δ"),
            ask_query("exists x O_σ(x)"),
            select_query("x << y & O_δ(y)"),
            caterpillar_query("(down)* <δ>"),
            caterpillar_relation_query("down <σ>"),
        ]
        session = dispatcher.open_session()
        response = dispatcher.handle(
            {
                "op": "query",
                "queries": [
                    {"kind": q.kind, "text": q.text} for q in queries
                ],
            },
            session,
        )
        assert response["ok"] is True
        assert response["results"] == _expected_rows(corpus, queries)
        assert response["trees"] == len(TERMS)
        assert response["degraded_chunks"] == 0
        assert all(chunk["steps"] > 0 for chunk in response["chunks"])

    def test_window_bounds_select_a_sub_range(self, corpus, dispatcher):
        session = dispatcher.open_session()
        response = dispatcher.handle(
            {
                "op": "query",
                "queries": [{"kind": "xpath", "text": "//δ"}],
                "options": {"start": 1, "stop": 3},
            },
            session,
        )
        expected = _expected_rows(corpus, [xpath_query("//δ")])
        assert response["results"] == expected[1:3]

    def test_parse_error_is_structured_and_isolated(self, dispatcher):
        session = dispatcher.open_session()
        bad = dispatcher.handle(
            {"op": "query", "queries": [{"kind": "xpath", "text": "//["}]},
            session,
        )
        assert bad["ok"] is False
        assert bad["error"]["code"] == "PARSE_ERROR"
        # The same session keeps answering afterwards.
        good = dispatcher.handle(
            {"op": "query", "queries": [{"kind": "xpath", "text": "//δ"}]},
            session,
        )
        assert good["ok"] is True

    @pytest.mark.parametrize(
        "request_, code",
        [
            ({"op": "nope"}, "BAD_REQUEST"),
            ({"op": "query"}, "BAD_REQUEST"),
            ({"op": "query", "queries": []}, "BAD_REQUEST"),
            ({"op": "query", "queries": ["//δ"]}, "BAD_REQUEST"),
            (
                {"op": "query",
                 "queries": [{"kind": "sql", "text": "select 1"}]},
                "BAD_REQUEST",
            ),
            (
                {"op": "query",
                 "queries": [{"kind": "xpath", "text": "//δ"}],
                 "options": {"start": 99}},
                "BAD_REQUEST",
            ),
            (
                {"op": "query",
                 "queries": [{"kind": "xpath", "text": "//δ"}],
                 "options": {"timeout_ms": "soon"}},
                "BAD_REQUEST",
            ),
        ],
    )
    def test_malformed_requests_are_bad_requests(
        self, dispatcher, request_, code
    ):
        session = dispatcher.open_session()
        response = dispatcher.handle(request_, session)
        assert response["ok"] is False
        assert response["error"]["code"] == code

    def test_fault_injection_is_rejected_unless_enabled(self, dispatcher):
        session = dispatcher.open_session()
        response = dispatcher.handle(
            {
                "op": "query",
                "queries": [{"kind": "xpath", "text": "//δ"}],
                "options": {"faults": {"0": {"at": 1, "kind": "error"}}},
            },
            session,
        )
        assert response["error"]["code"] == "BAD_REQUEST"
        assert "disabled" in response["error"]["message"]

    def test_crash_faults_need_worker_pools(self, corpus):
        dispatcher = Dispatcher(corpus, allow_faults=True, workers=0)
        session = dispatcher.open_session()
        response = dispatcher.handle(
            {
                "op": "query",
                "queries": [{"kind": "xpath", "text": "//δ"}],
                "options": {"faults": {"0": {"at": 1, "kind": "crash"}}},
            },
            session,
        )
        assert response["error"]["code"] == "BAD_REQUEST"

    def test_handle_never_raises_even_on_internal_bugs(self, dispatcher):
        session = dispatcher.open_session()
        dispatcher.corpus = None  # simulate a corrupted server state
        response = dispatcher.handle(
            {"op": "query", "queries": [{"kind": "xpath", "text": "//δ"}]},
            session,
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "INTERNAL"

    def test_health_and_stats_reflect_traffic(self, dispatcher):
        session = dispatcher.open_session()
        dispatcher.handle(
            {"op": "query", "queries": [{"kind": "xpath", "text": "//δ"}]},
            session,
        )
        dispatcher.handle(
            {"op": "query", "queries": [{"kind": "xpath", "text": "//["}]},
            session,
        )
        health = dispatcher.handle({"op": "health"}, session)
        assert health["status"] == "ok"
        assert health["trees"] == len(TERMS)
        stats = dispatcher.handle({"op": "stats"}, session)
        assert stats["service"]["queries_ok"] == 1
        assert stats["service"]["errors"] == {"PARSE_ERROR": 1}
        assert stats["admission"]["admitted"] == 1
        assert stats["sessions"][session.session_id]["queries"] == 1
        assert stats["sessions"][session.session_id]["errors"] == 1


class TestAdmission:
    def test_inflight_bucket_rejects_with_retry_after(self):
        control = AdmissionController(max_inflight=2, quota_steps=None)
        tickets = [control.admit("a", 10), control.admit("b", 10)]
        with pytest.raises(Overloaded) as err:
            control.admit("c", 10)
        assert err.value.code == "OVERLOADED"
        assert err.value.retry_after_ms >= 1
        tickets[0].settle(5)
        control.admit("c", 10).settle(5)  # slot freed, admissible again
        assert control.counters()["rejected_inflight"] == 1

    def test_session_quota_rejects_and_refills(self):
        control = AdmissionController(
            max_inflight=8, quota_steps=1000, window_seconds=0.2
        )
        control.admit("s", 900).settle(900)
        with pytest.raises(Overloaded) as err:
            control.admit("s", 900)
        assert err.value.retry_after_ms >= 1
        time.sleep(0.25)  # a full window refills the bucket
        control.admit("s", 900).settle(900)
        assert control.counters()["rejected_quota"] == 1

    def test_quotas_are_per_session(self):
        control = AdmissionController(
            max_inflight=8, quota_steps=1000, window_seconds=60.0
        )
        control.admit("greedy", 1000).settle(1000)
        with pytest.raises(Overloaded):
            control.admit("greedy", 1000)
        control.admit("bystander", 1000).settle(1000)  # unaffected

    def test_settle_refunds_the_overcharge(self):
        control = AdmissionController(
            max_inflight=8, quota_steps=1000, window_seconds=60.0
        )
        # Priced pessimistically at 900, actually spent 10: the refund
        # leaves room for the next pessimistic admission.
        control.admit("s", 900).settle(10)
        control.admit("s", 900).settle(10)

    def test_settle_is_idempotent(self):
        control = AdmissionController(max_inflight=1, quota_steps=None)
        ticket = control.admit("s", 10)
        ticket.settle(1)
        ticket.settle(1)
        assert control.inflight == 0

    def test_forget_session_resets_the_quota(self):
        control = AdmissionController(
            max_inflight=8, quota_steps=1000, window_seconds=60.0
        )
        control.admit("s", 1000).settle(1000)
        control.forget_session("s")
        control.admit("s", 1000).settle(1000)  # fresh bucket


class TestServer:
    def test_tcp_roundtrip_matches_the_corpus(self, corpus, server):
        with ServiceClient(*server.address) as client:
            response = client.query(["//δ"])
        assert response["results"] == _expected_rows(
            corpus, [xpath_query("//δ")]
        )

    def test_many_sequential_requests_reuse_the_session(self, server):
        with ServiceClient(*server.address) as client:
            for _ in range(10):
                assert client.ping() == {"ok": True, "pong": True}
            stats = client.stats()
        assert len(stats["sessions"]) == 1

    def test_concurrent_clients_all_get_correct_answers(
        self, corpus, server
    ):
        expected = _expected_rows(corpus, [xpath_query("//δ")])
        failures = []

        def hammer():
            try:
                with ServiceClient(*server.address) as client:
                    for _ in range(20):
                        if client.query(["//δ"])["results"] != expected:
                            failures.append("wrong answer")
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(repr(exc))

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert failures == []

    def test_disconnect_frees_the_session(self, dispatcher, server):
        client = ServiceClient(*server.address)
        client.ping()
        client.close()
        deadline = time.time() + 5
        while dispatcher._sessions and time.time() < deadline:
            time.sleep(0.01)
        assert not dispatcher._sessions

    def test_stopped_server_refuses_connections(self, dispatcher):
        server = QueryServer(dispatcher).start_in_thread()
        address = server.address
        server.stop()
        with pytest.raises(OSError):
            ServiceClient(*address, timeout=0.5).ping()


class TestStoreBacked:
    def test_readonly_store_serves_while_a_writer_holds_the_lock(
        self, tmp_path
    ):
        from repro.trees import parse_term

        path = str(tmp_path / "store")
        writer = CorpusStore.create(path)
        for term in TERMS:
            writer.append(parse_term(term))
        # The writer still holds the lock; a read-only open must not
        # steal it, and the served answers must match the writer's.
        reader = CorpusStore.open(path, readonly=True)
        try:
            dispatcher = Dispatcher(reader)
            session = dispatcher.open_session()
            response = dispatcher.handle(
                {
                    "op": "query",
                    "queries": [{"kind": "xpath", "text": "//δ"}],
                },
                session,
            )
            assert response["ok"] is True
            assert response["results"] == _expected_rows(
                writer, [xpath_query("//δ")]
            )
        finally:
            reader.close()
            writer.close()
