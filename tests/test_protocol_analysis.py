"""Δ accounting tests (Definition 4.4 quantities)."""

import pytest

from repro.hypersets.counting import Tower
from repro.protocol import (
    dialogue_vs_bound,
    estimate_delta,
    observed_message_counts,
    run_protocol,
)
from repro.protocol.programs import atp_all_same, nested_constant_suffixes, walking_all_same


def test_estimate_components_ordered():
    estimate = estimate_delta(atp_all_same(), d_size=4)
    # atp-requests dominate (they embed types × stores)
    assert estimate.types < estimate.atp_requests
    assert estimate.stores < estimate.atp_requests
    assert estimate.atp_requests <= estimate.total


def test_estimate_grows_with_domain():
    small = estimate_delta(atp_all_same(), d_size=2)
    large = estimate_delta(atp_all_same(), d_size=64)
    assert small.total < large.total


def test_estimate_respects_lemma_43_shape():
    # the total stays a height-≤4 tower: exp₃(p(N+|D|)) up to the
    # outer products
    estimate = estimate_delta(nested_constant_suffixes(), d_size=8)
    assert estimate.total.normalized().height <= 4


def test_observed_counts_match_dialogue():
    result = run_protocol(atp_all_same(), ["a", "b"], ["a"])
    observed = observed_message_counts(result)
    assert observed.get("TypeMessage") == 2
    assert sum(observed.values()) <= len(result.dialogue)


def test_dialogue_far_below_bound():
    program = nested_constant_suffixes()
    result = run_protocol(program, ["a", "a"], ["a"])
    rounds, bound = dialogue_vs_bound(program, result, d_size=2)
    assert Tower.of(float(rounds)) < bound


def test_walking_program_has_trivial_selector_component():
    estimate = estimate_delta(walking_all_same(), d_size=4)
    # no selectors: the request bound collapses to states × types × stores
    assert estimate.atp_requests <= estimate.total
