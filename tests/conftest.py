"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.trees import Tree, parse_term, random_tree


@pytest.fixture
def small_tree() -> Tree:
    """A fixed attributed tree used across modules."""
    return parse_term(
        'catalog(dept[name="db"](item[price=30, cur="EUR"], '
        'item[price=2, cur="EUR"]), dept(item[cur="USD"]))'
    )


@pytest.fixture
def sigma_delta_tree() -> Tree:
    """A Σ = {σ, δ}, A = {a} tree (the Example 3.2 setting)."""
    return parse_term("σ[a=1](δ[a=2](σ[a=3], σ[a=3]), σ[a=4](δ[a=5]))")


def tree_family(count: int = 12, max_size: int = 12, **kwargs):
    """A deterministic family of random trees for sweep tests."""
    defaults = dict(
        alphabet=("σ", "δ"), attributes=("a",), value_pool=(1, 2, 3)
    )
    defaults.update(kwargs)
    return [
        random_tree(1 + (seed * 5) % max_size, seed=seed, **defaults)
        for seed in range(count)
    ]
