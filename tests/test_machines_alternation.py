"""Alternating xTM tests (the A-classes of Definition 6.1)."""

import pytest

from tests.conftest import tree_family

from repro.machines import (
    AltXTM,
    EXISTENTIAL,
    UNIVERSAL,
    XTM,
    XTMError,
    XTMRule,
    exists_leaf_value_alt,
    forall_leaves_value_alt,
    run_alternating,
)
from repro.trees import parse_term

FAMILY = tree_family(count=10, max_size=12, value_pool=(1, 2))


def leaf_values(tree):
    return [tree.val("a", u) for u in tree.nodes if tree.is_leaf(u)]


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_exists_leaf(tree):
    got = run_alternating(exists_leaf_value_alt("a", 1), tree)
    assert got.accepted == (1 in leaf_values(tree))


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_forall_leaves(tree):
    got = run_alternating(forall_leaves_value_alt("a", 1), tree)
    assert got.accepted == all(v == 1 for v in leaf_values(tree))


def test_duality_on_fixed_trees():
    t = parse_term("r[a=1](x[a=1], y[a=2])")
    assert run_alternating(exists_leaf_value_alt("a", 1), t).accepted
    assert run_alternating(exists_leaf_value_alt("a", 2), t).accepted
    assert not run_alternating(exists_leaf_value_alt("a", 3), t).accepted
    assert not run_alternating(forall_leaves_value_alt("a", 1), t).accepted


def test_single_node_tree():
    t = parse_term("r[a=5]")
    assert run_alternating(exists_leaf_value_alt("a", 5), t).accepted
    assert run_alternating(forall_leaves_value_alt("a", 5), t).accepted
    assert not run_alternating(forall_leaves_value_alt("a", 6), t).accepted


def test_vacuous_universal_accepts():
    # a universal state with no successors accepts
    m = XTM(frozenset({"q0", "acc"}), "q0", frozenset({"acc"}), 1, ())
    alt = AltXTM(m, {"q0": UNIVERSAL})
    assert run_alternating(alt, parse_term("n")).accepted


def test_dead_existential_rejects():
    m = XTM(frozenset({"q0", "acc"}), "q0", frozenset({"acc"}), 1, ())
    alt = AltXTM(m, {"q0": EXISTENTIAL})
    assert not run_alternating(alt, parse_term("n")).accepted


def test_cycle_is_not_accepting():
    # ∃-loop with no accepting configuration: least fixpoint stays ⊥
    rules = (XTMRule("q0", "q0"),)
    m = XTM(frozenset({"q0", "acc"}), "q0", frozenset({"acc"}), 1, rules)
    alt = AltXTM(m, {"q0": EXISTENTIAL})
    result = run_alternating(alt, parse_term("n"))
    assert not result.accepted


def test_mode_validation():
    m = XTM(frozenset({"q0"}), "q0", frozenset(), 1, ())
    with pytest.raises(XTMError):
        AltXTM(m, {"nope": EXISTENTIAL})
    with pytest.raises(XTMError):
        AltXTM(m, {"q0": "both"})


def test_config_budget():
    rules = (
        XTMRule("q0", "q0", tape_write="1", head_move=1),
    )
    m = XTM(frozenset({"q0", "acc"}), "q0", frozenset({"acc"}), 1, rules)
    alt = AltXTM(m, {})
    with pytest.raises(XTMError):
        run_alternating(alt, parse_term("n"), max_configs=10)
