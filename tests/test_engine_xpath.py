"""Unit tests for :mod:`repro.engine.xpath` — the bitset/interval
XPath evaluator — against the reference and against hand-computed
selections."""

import pytest

from tests.conftest import tree_family
from repro.engine import xpath as fast_xpath
from repro.trees import parse_term
from repro.xpath.evaluator import select as reference_select
from repro.xpath.parser import parse_xpath

EXPRESSIONS = [
    "σ",
    "*",
    ".",
    "/σ",
    "σ/δ",
    "σ//σ",
    "//σ",
    "//*",
    "//σ//δ",
    "//*//*",
    "σ//*//δ",
    "./δ",
    "σ[δ]",
    "σ[δ][σ]",
    "*[.//δ]",
    "//σ[δ/σ]",
    "//*[//δ]",
    "σ/δ | σ//σ",
    "missing",
    "//missing",
    "σ[missing]",
]


@pytest.mark.parametrize("text", EXPRESSIONS)
def test_matches_reference_on_family(text):
    expr = parse_xpath(text)
    for tree in tree_family(count=8, max_size=12):
        for context in tree.nodes:
            assert fast_xpath.select(expr, tree, context) == \
                reference_select(expr, tree, context)


def test_hand_computed_selections(small_tree):
    db = small_tree
    assert fast_xpath.select(parse_xpath("catalog//item"), db) == (
        (0, 0), (0, 1), (1, 0),
    )
    assert fast_xpath.select(parse_xpath("catalog/dept/item"), db) == (
        (0, 0), (0, 1), (1, 0),
    )
    assert fast_xpath.select(parse_xpath("//dept[item]"), db) == ((0,), (1,))
    assert fast_xpath.select(parse_xpath("//item"), db, (1,)) == (
        (0, 0), (0, 1), (1, 0),
    )  # absolute-ish: // anchors at the root regardless of context
    assert fast_xpath.select(parse_xpath("missing"), db) == ()


def test_document_order_output():
    tree = parse_term("σ(σ(σ), σ, σ(σ(σ)))")
    out = fast_xpath.select(parse_xpath("//σ"), tree)
    indexes = [tree.document_index(u) for u in out]
    assert indexes == sorted(indexes)


def test_filters_are_existential_not_universal():
    tree = parse_term("σ(δ(σ), δ)")
    # (0,) has a σ child, (1,) does not: the filter keeps only (0,).
    out = fast_xpath.select(parse_xpath("//δ[σ]"), tree)
    assert out == ((0,),)


def test_deep_descendant_chain_on_a_path_tree():
    # A 30-deep unary chain: //σ//σ selects every strict-descendant σ
    # pair target; interval merging must not double-count.
    term = "σ(" * 29 + "σ" + ")" * 29
    tree = parse_term(term)
    expr = parse_xpath("//σ//σ")
    assert fast_xpath.select(expr, tree) == reference_select(expr, tree, ())
