"""Hypothesis round-trip properties: every text formatter in the repo
is an exact inverse of its parser — ``parse(format(x)) == x``.

These formats are what the oracle corpus persists, so a formatter that
drops information would silently corrupt stored counterexamples.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.caterpillar import format_caterpillar, parse_caterpillar
from repro.logic import format_formula, parse_formula
from repro.oracle import generators as gen
from repro.trees import format_term, parse_term, random_tree
from repro.xpath.parser import parse_xpath

seeds = st.integers(min_value=0, max_value=10_000)


@given(seeds, st.integers(min_value=1, max_value=14))
@settings(max_examples=80, deadline=None)
def test_term_syntax_round_trips(seed, size):
    tree = random_tree(
        size,
        alphabet=("σ", "δ", "a", "b"),
        attributes=("a", "name"),
        value_pool=(0, 1, -3, "x", 'say "hi"', ""),
        seed=seed,
    )
    assert parse_term(format_term(tree)) == tree


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_formula_syntax_round_trips(seed):
    formula = gen.random_exists_star(random.Random(seed), depth=3)
    assert parse_formula(format_formula(formula)) == formula


@given(seeds, st.integers(min_value=1, max_value=10))
@settings(max_examples=80, deadline=None)
def test_caterpillar_syntax_round_trips(seed, budget):
    expr = gen.random_caterpillar(random.Random(seed), budget=budget)
    assert parse_caterpillar(format_caterpillar(expr)) == expr


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_xpath_repr_round_trips(seed):
    expr = gen.random_xpath(random.Random(seed))
    assert parse_xpath(repr(expr)) == expr
