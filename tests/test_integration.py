"""Cross-module integration: the paper's storyline end to end.

Each test stitches several subsystems together the way the paper does:
XPath → FO(∃*) → atp selectors; Example 3.2 vs its FO spec; the four
evaluation strategies agreeing on one automaton; walking vs hedge
automata vs alternating machines on the same language; the protocol vs
the runner.
"""

import pytest

from tests.conftest import tree_family

from repro import TreeDatabase
from repro.automata import AutomatonBuilder, STAY, accepts
from repro.automata.examples import (
    all_leaves_same_spec,
    all_leaves_same_twrl,
    example_32,
    example_32_fo_spec,
    example_32_spec,
)
from repro.logic import evaluate
from repro.machines import run_alternating, exists_leaf_value_alt
from repro.mso import exists_label_hedge, leaf_count_mod_hedge, run_extended, walker_from_hedge
from repro.protocol import protocol_agrees_with_run
from repro.protocol.programs import atp_all_same
from repro.simulation import evaluate_memo, evaluate_twr_chain
from repro.store.fo import Var, eq, exists as fo_exists, rel
from repro.trees import delim, parse_term, random_tree
from repro.xpath import compile_xpath, parse_xpath

z = Var("z")
FAMILY = tree_family(count=10, max_size=12)


# -- XPath selectors inside automata -----------------------------------------------------


def xpath_driven_automaton(expression: str, value) -> "TWAutomaton":
    """An automaton whose atp selector comes from compiled XPath:
    accepts iff some node selected by ``expression`` (from the root)
    carries attribute a = value."""
    b = AutomatonBuilder(f"xpath[{expression}]", register_arities=[1])
    b.atp("q0", "q1", compile_xpath(parse_xpath(expression)),
          substate="rep", register=1)
    b.move("q1", "qF", STAY,
           guard=fo_exists(z, rel(1, z)) if value is None
           else rel(1, value))
    from repro.store.fo import Attr

    b.update("rep", "done", 1, eq(z, Attr("a")), [z])
    b.move("done", "qF", STAY)
    return b.build(initial="q0", final="qF")


def test_xpath_selector_in_automaton():
    t = parse_term("σ[a=1](δ[a=2](σ[a=3]), σ[a=4])")
    a = xpath_driven_automaton("σ//δ", 2)
    assert accepts(a, t)
    assert not accepts(xpath_driven_automaton("σ//δ", 9), t)
    # σ/σ selects the a=4 child only
    assert accepts(xpath_driven_automaton("σ/σ", 4), t)
    assert not accepts(xpath_driven_automaton("σ/σ", 3), t)


@pytest.mark.parametrize("tree", FAMILY[:6], ids=lambda t: f"n{t.size}")
def test_xpath_automaton_agrees_with_direct_evaluation(tree):
    expression = "σ//δ"
    a = xpath_driven_automaton(expression, 2)
    from repro.xpath import select

    selected = select(parse_xpath(expression), tree, ())
    want = any(tree.val("a", v) == 2 for v in selected)
    assert accepts(a, tree) == want


# -- Example 3.2: automaton ≡ FO ≡ Python spec ---------------------------------------------


@pytest.mark.parametrize("tree", FAMILY[:8], ids=lambda t: f"n{t.size}")
def test_example_32_three_ways(tree):
    by_automaton = accepts(example_32(), delim(tree))
    by_fo = evaluate(example_32_fo_spec(), tree)
    by_python = example_32_spec(tree)
    assert by_automaton == by_fo == by_python


# -- one automaton, four evaluators ----------------------------------------------------------


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_evaluators_agree(tree):
    a = all_leaves_same_twrl()
    runner = accepts(a, tree)
    memo = evaluate_memo(a, tree).accepted
    spec = all_leaves_same_spec()(tree)
    assert runner == memo == spec


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_chain_evaluator_agrees(tree):
    from repro.automata.examples import all_values_same_twr

    a = all_values_same_twr()
    assert evaluate_twr_chain(a, tree).accepted == accepts(a, tree)


# -- same language, three machine models -------------------------------------------------------


@pytest.mark.parametrize("tree", FAMILY[:8], ids=lambda t: f"n{t.size}")
def test_exists_delta_three_models(tree):
    """'some δ-labelled node exists' via hedge automaton, look-ahead
    walker, and a tw automaton."""
    want = any(tree.label(u) == "δ" for u in tree.nodes)
    hedge = exists_label_hedge(("σ", "δ"), "δ")
    assert hedge.accepts(tree) == want
    assert run_extended(walker_from_hedge(hedge), tree) == want
    # tw: DFS searching for the label
    from repro.automata.examples import (
        _add_dfs_backtrack, AT_INNER, AT_LEAF,
    )
    from repro.automata.rules import DOWN, PositionTest

    b = AutomatonBuilder("find-δ")
    b.move("fwd", "qF", STAY, label="δ")
    b.move("fwd", "back", STAY, label="σ", position=AT_LEAF)
    b.move("fwd", "fwd", DOWN, label="σ", position=AT_INNER)
    _add_dfs_backtrack(b, "fwd", "back")
    a = b.build(initial="fwd", final="qF")
    assert accepts(a, tree) == want


@pytest.mark.parametrize("tree", FAMILY[:8], ids=lambda t: f"n{t.size}")
def test_alternating_machine_agrees_with_hedge(tree):
    """'some leaf has a = 1': alternating xTM vs direct check."""
    want = any(
        tree.val("a", u) == 1 for u in tree.nodes if tree.is_leaf(u)
    )
    assert run_alternating(exists_leaf_value_alt("a", 1), tree).accepted == want


# -- protocol vs runner (the Lemma 4.5 bridge) ------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_protocol_matches_runner_on_fresh_strings(seed):
    import random

    rng = random.Random(seed + 100)
    f = [rng.choice([1, 2]) for _ in range(rng.randint(1, 3))]
    g = [rng.choice([1, 2]) for _ in range(rng.randint(1, 3))]
    direct, proto, _result = protocol_agrees_with_run(atp_all_same(), f, g)
    assert direct == proto


# -- the facade ties it together -----------------------------------------------------------------


def test_facade_full_story():
    db = TreeDatabase.from_term(
        "σ[a=1](δ[a=2](σ[a=7], σ[a=7]), δ[a=3](σ[a=7]))"
    )
    # XPath and its FO compilation agree
    assert db.xpath("σ//δ") == db.xpath_as_fo("σ//δ").select(db.tree, ())
    # Example 3.2 holds on this document
    assert db.run_automaton(example_32(), delimited=True)
    # leaf-count parity via a regular language
    hedge = leaf_count_mod_hedge(("σ", "δ"), "σ", 3, [0])
    assert db.matches_hedge(hedge)  # three σ leaves
