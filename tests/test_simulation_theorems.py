"""The Theorem 7.1 / Proposition 7.2 constructions, end to end."""

import pytest

from tests.conftest import tree_family

from repro.automata import AutomatonBuilder, DOWN, STAY, accepts, run
from repro.automata.examples import (
    _add_dfs_backtrack,
    AT_INNER,
    AT_LEAF,
    AT_ROOT,
    all_leaves_same_spec,
    all_leaves_same_twrl,
    all_values_same_spec,
    all_values_same_twr,
    example_32,
    example_32_spec,
    root_value_at_some_leaf,
    spine_constant_automaton,
)
from repro.machines import run_xtm
from repro.machines.programs import (
    all_same_attr_xtm,
    even_nodes_binary_xtm,
    even_nodes_spec,
    unary_nodes_xtm,
)
from repro.simulation import (
    check_tw_in_logspace,
    compile_pspace_xtm_to_twr,
    eliminate_registers,
    evaluate_memo,
    evaluate_twr_chain,
    simulate_logspace_xtm,
    store_content_count,
    twl_configuration_bound,
    twrl_configuration_bound,
    with_ids,
)
from repro.simulation.noattr import EliminationError
from repro.store.fo import Var, conj, disj, eq, rel
from repro.trees import all_trees, delim, random_tree

z = Var("z")
FAMILY = tree_family(count=10, max_size=12)


# -- Theorem 7.1(1): tw = LOGSPACE^X --------------------------------------------------


@pytest.mark.parametrize("tree", FAMILY[:8], ids=lambda t: f"n{t.size}")
def test_pebble_simulation_of_logspace_xtm(tree):
    machine = even_nodes_binary_xtm()
    reference = run_xtm(machine, tree)
    simulated = simulate_logspace_xtm(machine, tree)
    assert simulated.accepted == reference.accepted == even_nodes_spec(tree)


def test_pebble_simulation_registers_only():
    machine = all_same_attr_xtm()
    for seed in range(5):
        tree = random_tree(6, attributes=("a",), value_pool=(1, 2), seed=seed)
        assert (
            simulate_logspace_xtm(machine, tree).accepted
            == run_xtm(machine, tree).accepted
        )


@pytest.mark.parametrize("tree", FAMILY[:6], ids=lambda t: f"n{t.size}")
def test_tw_fits_logspace_configurations(tree):
    for automaton in (root_value_at_some_leaf(), spine_constant_automaton()):
        containment = check_tw_in_logspace(automaton, tree)
        assert containment.within


# -- Theorem 7.1(2)/(4): memoised configuration-graph evaluation ------------------------


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_memo_agrees_with_runner_twl(tree):
    a = spine_constant_automaton()
    assert evaluate_memo(a, tree).accepted == accepts(a, tree)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_memo_agrees_with_runner_twrl(tree):
    a = all_leaves_same_twrl()
    assert evaluate_memo(a, tree).accepted == all_leaves_same_spec()(tree)


@pytest.mark.parametrize("tree", FAMILY[:6], ids=lambda t: f"n{t.size}")
def test_memo_agrees_on_example_32(tree):
    a = example_32()
    d = delim(tree)
    assert evaluate_memo(a, d).accepted == example_32_spec(tree)


def test_memo_caches_subcomputations():
    # a program whose atp re-selects the same nodes benefits from the memo
    tree = random_tree(10, attributes=("a",), value_pool=(1,), seed=0)
    a = all_leaves_same_twrl()
    result = evaluate_memo(a, tree)
    assert result.accepted
    assert result.stats.distinct_starts <= twl_configuration_bound(a, tree)


def test_configuration_bounds_ordering():
    tree = random_tree(8, attributes=("a",), value_pool=(1, 2), seed=0)
    a = all_leaves_same_twrl()
    assert twl_configuration_bound(a, tree) <= twrl_configuration_bound(a, tree)


# -- Theorem 7.1(3): tw^r chains and the tape-as-relation compiler -----------------------


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_chain_evaluation_agrees(tree):
    a = all_values_same_twr()
    chain = evaluate_twr_chain(a, tree)
    assert chain.accepted == all_values_same_spec()(tree)


def test_chain_space_is_store_rows_only():
    tree = random_tree(12, attributes=("a",), value_pool=(1, 2, 3), seed=2)
    chain = evaluate_twr_chain(all_values_same_twr(), tree)
    assert chain.max_store_rows <= 3  # at most the value pool


def test_chain_rejects_atp():
    with pytest.raises(ValueError):
        evaluate_twr_chain(all_leaves_same_twrl(), random_tree(3, seed=0,
                                                               attributes=("a",)))


@pytest.mark.parametrize("size", range(1, 8))
def test_pspace_compiler_unary_counter(size):
    machine = unary_nodes_xtm()
    compiled = compile_pspace_xtm_to_twr(machine)
    tree = random_tree(size, seed=size)
    reference = run_xtm(machine, tree)
    got = run(compiled, with_ids(tree), fuel=5_000_000)
    assert got.accepted == reference.accepted == even_nodes_spec(tree)


def test_pspace_compiled_automaton_is_twr():
    from repro.automata import TWClass, classify

    compiled = compile_pspace_xtm_to_twr(unary_nodes_xtm())
    assert classify(compiled) in (TWClass.TW_R,)


# -- Proposition 7.2: A = ∅ register elimination -------------------------------------------


from repro.automata.examples import (
    delta_leaves_mod3_spec as mod3_spec,
    delta_leaves_mod3_twr as delta_leaves_mod3,
)


def test_elimination_exhaustive_small_trees():
    twr = delta_leaves_mod3()
    tw = eliminate_registers(twr)
    assert tw.schema.count == 1 and not tw.has_updates()
    for tree in all_trees(4, ("σ", "δ")):
        assert accepts(tw, tree) == accepts(twr, tree) == mod3_spec(tree)


def test_elimination_random_larger():
    twr = delta_leaves_mod3()
    tw = eliminate_registers(twr)
    for seed in range(6):
        tree = random_tree(11, alphabet=("σ", "δ"), seed=seed)
        assert accepts(tw, tree) == mod3_spec(tree)


def test_elimination_rejects_attributes():
    with pytest.raises(EliminationError):
        eliminate_registers(all_values_same_twr())


def test_elimination_rejects_atp():
    with pytest.raises(EliminationError):
        eliminate_registers(all_leaves_same_twrl())


def test_store_content_count_finite():
    twr = delta_leaves_mod3()
    assert store_content_count(twr) == 2 ** 3  # subsets of {0,1,2}
