"""Delta-debugging shrinker tests.

The central check deliberately injects a bug into one engine (a
*subclass* — the shipped pair stays correct) and asserts that the
shrinker reduces whatever the fuzzer catches to a tiny reproducer.
"""

import random

from repro.caterpillar.ast import Epsilon, LabelTest, concat
from repro.caterpillar.nfa import walk
from repro.oracle.pairs import (
    Case,
    Outcome,
    XPathVsCaterpillar,
    _CHILD_WALK,
    _summary,
)
from repro.oracle.shrink import shrink_case
from repro.trees.parser import parse_term
from repro.xpath.ast import NameTest
from repro.xpath.evaluator import select as xpath_select


class _BuggyDescendantPair(XPathVsCaterpillar):
    """Injected bug: the descendant axis is translated as child."""

    name = "xpath/caterpillar-buggy"

    def check(self, case):
        path = case.query
        left = xpath_select(path, case.tree, case.context)
        parts = []
        if isinstance(path.steps[0].test, NameTest):
            parts.append(LabelTest(path.steps[0].test.name))
        for _axis, step in zip(path.axes, path.steps[1:]):
            parts.append(_CHILD_WALK)  # BUG: '//' should be one-or-more
            if isinstance(step.test, NameTest):
                parts.append(LabelTest(step.test.name))
        expr = concat(*parts) if parts else Epsilon()
        right = walk(expr, case.tree, case.context)
        return Outcome(
            tuple(left) == tuple(right), _summary(left), _summary(right)
        )


def _first_disagreement(pair, seed=0, max_size=12, attempts=500):
    rng = random.Random(seed)
    for _ in range(attempts):
        case = pair.generate(rng, max_size)
        if not pair.check(case).agree:
            return case
    raise AssertionError("fuzzer never caught the injected bug")


def test_injected_bug_is_caught_and_shrunk_small():
    pair = _BuggyDescendantPair()
    case = _first_disagreement(pair)
    small, outcome, evals = shrink_case(pair, case)
    assert not outcome.agree
    assert small.tree.size <= 6, small.tree
    assert small.tree.size <= case.tree.size
    assert evals <= 400


def test_shrunk_case_still_disagrees_after_reload():
    # The minimised case must be self-contained: re-checking it from
    # scratch reproduces the divergence.
    pair = _BuggyDescendantPair()
    case = _first_disagreement(pair, seed=1)
    small, _, _ = shrink_case(pair, case)
    assert not pair.check(small).agree


def test_agreeing_case_is_returned_unchanged():
    pair = XPathVsCaterpillar()
    tree = parse_term("σ[a=1](δ[a=2], σ[a=3])")
    case = Case(tree, pair.generate(random.Random(2), 5).query, ())
    outcome = pair.check(case)
    assert outcome.agree
    small, small_outcome, evals = shrink_case(pair, case)
    assert small == case
    assert small_outcome.agree
    assert evals == 1


def test_shrink_respects_eval_budget():
    pair = _BuggyDescendantPair()
    case = _first_disagreement(pair, seed=3)
    _, _, evals = shrink_case(pair, case, max_evals=10)
    assert evals <= 10
