"""The REPL over StringIO: commands map to protocol requests, session
options persist until changed, answers format flat, errors print
without ending the loop, and a dead connection exits with code 1."""

import io

import pytest

from repro.corpus import TreeCorpus
from repro.service import Dispatcher, run_repl
from repro.service.protocol import error_response

TERMS = ["σ(δ, σ(δ))", "δ(σ(δ), δ)", "σ(σ, σ(δ, δ))"]


@pytest.fixture(scope="module")
def handle():
    with TreeCorpus.from_terms(TERMS) as corpus:
        dispatcher = Dispatcher(corpus)
        session = dispatcher.open_session()
        yield lambda request: dispatcher.handle(request, session)


def _repl(handle, script):
    stdout = io.StringIO()
    code = run_repl(
        handle, stdin=io.StringIO(script), stdout=stdout, interactive=False
    )
    return code, stdout.getvalue()


class TestCommands:
    def test_xpath_prints_one_line_per_tree(self, handle):
        code, out = _repl(handle, "xpath //δ\n")
        assert code == 0
        lines = out.splitlines()
        assert lines[0].startswith("tree 0: ")
        assert len([l for l in lines if l.startswith("tree ")]) == len(TERMS)
        assert lines[-1].startswith(f"[{len(TERMS)} trees in ")

    def test_ask_prints_booleans(self, handle):
        _, out = _repl(handle, "ask exists x O_σ(x)\n")
        assert "tree 0: true" in out

    def test_catrel_prints_arrow_pairs(self, handle):
        _, out = _repl(handle, "catrel down <σ>\n")
        pair_lines = [l for l in out.splitlines() if "->" in l]
        assert pair_lines  # e.g. "tree 0: /->/0"

    def test_empty_result_prints_none(self, handle):
        _, out = _repl(handle, "xpath //missing\n")
        assert "tree 0: (none)" in out

    def test_ping_and_health_print_json(self, handle):
        _, out = _repl(handle, "ping\nhealth\n")
        assert '"pong": true' in out
        assert '"status": "ok"' in out

    def test_help_lists_the_commands(self, handle):
        _, out = _repl(handle, "help\n")
        assert "xpath EXPR" in out
        assert "quit" in out


class TestSessionOptions:
    def test_window_limits_and_offsets_the_listing(self, handle):
        _, out = _repl(handle, "window 1 3\nxpath //δ\n")
        lines = [l for l in out.splitlines() if l.startswith("tree ")]
        assert [l.split(":")[0] for l in lines] == ["tree 1", "tree 2"]

    def test_window_without_args_resets_to_all_trees(self, handle):
        _, out = _repl(handle, "window 1 2\nwindow\nxpath //δ\n")
        lines = [l for l in out.splitlines() if l.startswith("tree ")]
        assert len(lines) == len(TERMS)

    def test_engine_persists_across_queries(self, handle):
        # An unknown engine is refused and the previous one kept.
        _, out = _repl(
            handle, "engine reference\nengine warp\nxpath //δ\n"
        )
        assert "error BAD_REQUEST: unknown engine 'warp'" in out
        assert "tree 0: " in out

    def test_timeout_zero_clears_the_deadline(self, handle):
        _, out = _repl(
            handle, "timeout 5000\ntimeout 0\ntimeout soon\nxpath //δ\n"
        )
        assert "error BAD_REQUEST: timeout needs an integer" in out
        assert "tree 0: " in out


class TestErrorHandling:
    def test_parse_error_does_not_end_the_repl(self, handle):
        _, out = _repl(handle, "xpath //[\nxpath //δ\n")
        assert "error PARSE_ERROR: " in out
        assert "tree 0: " in out  # the next command still ran

    def test_unknown_command_suggests_help(self, handle):
        _, out = _repl(handle, "frobnicate now\n")
        assert "error BAD_REQUEST: unknown command 'frobnicate'" in out

    def test_query_command_without_text_is_refused(self, handle):
        _, out = _repl(handle, "select\n")
        assert "error BAD_REQUEST: select needs a query text" in out

    def test_retry_hint_is_printed_when_present(self):
        def overloaded(request):
            return error_response("OVERLOADED", "full", retry_after_ms=25)

        _, out = _repl(overloaded, "xpath //δ\n")
        assert "error OVERLOADED: full (retry after 25ms)" in out

    def test_connection_loss_exits_with_code_1(self):
        def dead(request):
            raise ConnectionResetError("peer vanished")

        code, out = _repl(dead, "ping\nping\n")
        assert code == 1
        assert "connection lost: peer vanished" in out


class TestLoopTermination:
    def test_quit_stops_before_later_commands(self, handle):
        code, out = _repl(handle, "ping\nquit\nhealth\n")
        assert code == 0
        assert '"pong": true' in out
        assert '"status"' not in out

    def test_eof_is_a_clean_exit(self, handle):
        code, out = _repl(handle, "")
        assert code == 0
        assert out == ""

    def test_blank_lines_are_skipped(self, handle):
        code, out = _repl(handle, "\n   \nping\n")
        assert code == 0
        assert '"pong": true' in out

    def test_interactive_mode_writes_the_prompt(self, handle):
        stdout = io.StringIO()
        run_repl(
            handle,
            stdin=io.StringIO("quit\n"),
            stdout=stdout,
            interactive=True,
        )
        assert stdout.getvalue().startswith("repro> ")
