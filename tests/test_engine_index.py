"""Unit tests for :mod:`repro.engine.index` — interval labels,
navigation arrays, inverted indexes and the bitset helpers."""

from tests.conftest import tree_family
from repro.engine.index import TreeIndex, bit_count, index_for, iter_bits
from repro.trees import format_term, parse_term
from repro.trees.values import BOTTOM


def test_iter_bits_ascending_and_bit_count():
    bits = (1 << 0) | (1 << 3) | (1 << 17)
    assert list(iter_bits(bits)) == [0, 3, 17]
    assert bit_count(bits) == 3
    assert list(iter_bits(0)) == []
    assert bit_count(0) == 0


def test_ids_are_document_order(sigma_delta_tree):
    idx = TreeIndex(sigma_delta_tree)
    assert idx.node_of == sigma_delta_tree.nodes
    for i, u in enumerate(sigma_delta_tree.nodes):
        assert idx.id_of[u] == i
        assert sigma_delta_tree.document_index(u) == i
    assert idx.to_nodes(idx.all_mask) == sigma_delta_tree.nodes


def test_descendant_interval_containment_matches_tree():
    for tree in tree_family():
        idx = TreeIndex(tree)
        for u in tree.nodes:
            for v in tree.nodes:
                assert idx.descendant(idx.id_of[u], idx.id_of[v]) == \
                    tree.descendant(u, v)


def test_pre_post_numbering_is_the_classic_descendant_test():
    # u ≺ v  ⇔  pre(u) < pre(v) and post(v) < post(u)
    for tree in tree_family(count=6):
        idx = TreeIndex(tree)
        for i in range(idx.n):
            for j in range(idx.n):
                classic = i < j and idx.post_of[j] < idx.post_of[i]
                assert idx.descendant(i, j) == classic


def test_navigation_arrays_match_tree():
    for tree in tree_family(count=8):
        idx = TreeIndex(tree)
        for u in tree.nodes:
            i = idx.id_of[u]
            kids = [idx.node_of[j] for j in idx.children_of(i)]
            assert tuple(kids) == tree.children(u)
            assert idx.to_nodes(idx.children_mask[i]) == tree.children(u)
            if u == ():
                assert idx.parent[i] == -1
            else:
                assert idx.node_of[idx.parent[i]] == tree.parent(u)
            assert idx.depth[i] == len(u)


def test_sibling_links(sigma_delta_tree):
    idx = TreeIndex(sigma_delta_tree)
    for u in sigma_delta_tree.nodes:
        i = idx.id_of[u]
        right = sigma_delta_tree.right_sibling(u)
        if right is None:
            assert idx.next_sibling[i] == -1
        else:
            assert idx.node_of[idx.next_sibling[i]] == right
            assert idx.prev_sibling[idx.id_of[right]] == i


def test_unary_masks(sigma_delta_tree):
    idx = TreeIndex(sigma_delta_tree)
    tree = sigma_delta_tree
    assert idx.to_nodes(idx.root_mask) == ((),)
    assert idx.to_nodes(idx.leaf_mask) == tuple(
        u for u in tree.nodes if tree.is_leaf(u)
    )
    assert idx.to_nodes(idx.first_mask) == tuple(
        u for u in tree.nodes if tree.is_first_child(u)
    )
    assert idx.to_nodes(idx.last_mask) == tuple(
        u for u in tree.nodes if tree.is_last_child(u)
    )


def test_inverted_indexes(sigma_delta_tree):
    idx = TreeIndex(sigma_delta_tree)
    tree = sigma_delta_tree
    for label in ("σ", "δ"):
        assert idx.to_nodes(idx.labelled(label)) == tuple(
            u for u in tree.nodes if tree.label(u) == label
        )
    assert idx.labelled("missing") == 0
    for value in (1, 2, 3, 4, 5):
        assert idx.to_nodes(idx.valued("a", value)) == tuple(
            u for u in tree.nodes if tree.val("a", u) == value
        )
    assert idx.valued("a", 99) == 0
    assert idx.valued("nope", 1) == 0


def test_value_mask_totalizes_with_bottom():
    tree = parse_term("σ[a=1](δ, σ[a=1])")
    idx = TreeIndex(tree)
    assert idx.to_nodes(idx.valued("a", BOTTOM)) == ((0,),)
    assert bit_count(idx.valued("a", 1)) == 2


def test_subtree_mask_is_proper_descendant_range(sigma_delta_tree):
    idx = TreeIndex(sigma_delta_tree)
    for u in sigma_delta_tree.nodes:
        i = idx.id_of[u]
        assert idx.to_nodes(idx.subtree_mask(i)) == \
            sigma_delta_tree.descendants(u)


def test_descendants_mask_merges_overlapping_subtrees(sigma_delta_tree):
    idx = TreeIndex(sigma_delta_tree)
    # Root plus an inner node: the inner subtree is swallowed by the
    # root's interval, so the merged result is just "everything below
    # the root".
    sources = idx.root_mask | (1 << idx.id_of[(0,)])
    assert idx.descendants_mask(sources) == idx.subtree_mask(0)
    # Disjoint subtrees union cleanly.
    a, b = idx.id_of[(0,)], idx.id_of[(1,)]
    assert idx.descendants_mask((1 << a) | (1 << b)) == \
        idx.subtree_mask(a) | idx.subtree_mask(b)


def test_children_of_mask(sigma_delta_tree):
    idx = TreeIndex(sigma_delta_tree)
    sources = idx.root_mask | (1 << idx.id_of[(0,)])
    expected = set(sigma_delta_tree.children(())) | set(
        sigma_delta_tree.children((0,))
    )
    assert set(idx.to_nodes(idx.children_of_mask(sources))) == expected


def test_index_for_caches_per_tree_object(sigma_delta_tree, small_tree):
    first = index_for(sigma_delta_tree)
    assert index_for(sigma_delta_tree) is first
    assert index_for(small_tree) is not first
    # An equal but distinct tree object gets its own index.
    clone = parse_term(format_term(sigma_delta_tree))
    assert clone == sigma_delta_tree
    assert index_for(clone) is not first
