"""The store's advisory single-writer lock: a live foreign writer is a
fail-fast :class:`StoreLockedError`, a dead writer's stale lock is
stolen, read-only opens neither take nor disturb the lock, and closing
hands the store to the next writer."""

import os
import subprocess
import sys

import pytest

from repro.corpus import CorpusStore, StoreLockedError, xpath_query
from repro.corpus.segment import StoreError
from repro.corpus.store import LOCKFILE
from repro.trees import parse_term

TERMS = ["σ(δ, σ(δ))", "δ(σ(δ), δ)"]


def _build(path):
    store = CorpusStore.create(path)
    for term in TERMS:
        store.append(parse_term(term))
    return store


def _lock_path(path):
    return os.path.join(path, LOCKFILE)


def _dead_pid():
    """A pid guaranteed to be free: a child we already reaped."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


class TestWriterLock:
    def test_create_takes_the_lock_with_our_pid(self, tmp_path):
        path = str(tmp_path / "store")
        store = _build(path)
        try:
            with open(_lock_path(path), encoding="utf-8") as handle:
                assert int(handle.read().strip()) == os.getpid()
        finally:
            store.close()

    def test_live_foreign_writer_blocks_a_second_writer(self, tmp_path):
        path = str(tmp_path / "store")
        _build(path).close()
        # pid 1 is always alive: simulate another live process's lock.
        with open(_lock_path(path), "w", encoding="utf-8") as handle:
            handle.write("1\n")
        with pytest.raises(StoreLockedError) as err:
            CorpusStore.open(path)
        assert "pid 1" in str(err.value)
        # The foreign lock survives the refused attempt.
        with open(_lock_path(path), encoding="utf-8") as handle:
            assert handle.read().strip() == "1"

    def test_stale_lock_from_a_dead_writer_is_stolen(self, tmp_path):
        path = str(tmp_path / "store")
        _build(path).close()
        with open(_lock_path(path), "w", encoding="utf-8") as handle:
            handle.write(f"{_dead_pid()}\n")
        store = CorpusStore.open(path)  # crashed writer: lock is stale
        try:
            with open(_lock_path(path), encoding="utf-8") as handle:
                assert int(handle.read().strip()) == os.getpid()
        finally:
            store.close()

    def test_reacquisition_within_one_process_is_reentrant(self, tmp_path):
        path = str(tmp_path / "store")
        writer = _build(path)
        try:
            # Same pid, second handle: the advisory lock is per-process,
            # not per-handle, so this does not deadlock ourselves.
            second = CorpusStore.open(path)
            second.close()
        finally:
            writer.close()

    def test_close_releases_the_lock_for_the_next_writer(self, tmp_path):
        path = str(tmp_path / "store")
        _build(path).close()
        assert not os.path.exists(_lock_path(path))
        next_writer = CorpusStore.open(path)
        try:
            next_writer.append(parse_term("σ(δ)"))
            assert next_writer.tree_count == len(TERMS) + 1
        finally:
            next_writer.close()


class TestReadonly:
    def test_readonly_open_leaves_a_foreign_lock_alone(self, tmp_path):
        path = str(tmp_path / "store")
        _build(path).close()
        with open(_lock_path(path), "w", encoding="utf-8") as handle:
            handle.write("1\n")
        reader = CorpusStore.open(path, readonly=True)
        try:
            assert reader.readonly
            rows = reader.run([xpath_query("//δ")]).rows
            assert len(rows) == len(TERMS)
        finally:
            reader.close()
        # Closing a readonly handle must not release someone else's lock.
        with open(_lock_path(path), encoding="utf-8") as handle:
            assert handle.read().strip() == "1"

    def test_readonly_mutations_are_refused(self, tmp_path):
        path = str(tmp_path / "store")
        _build(path).close()
        reader = CorpusStore.open(path, readonly=True)
        try:
            with pytest.raises(StoreError, match="readonly"):
                reader.append(parse_term("σ(δ)"))
        finally:
            reader.close()
