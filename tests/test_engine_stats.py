"""Property battery for the planner's statistics and the wander-join
cardinality estimator (:mod:`repro.engine.stats`).

The load-bearing properties, pinned with Hypothesis on seeded random
trees and exactly on degenerate shapes (chains, stars, single-label
documents):

* unary counts are exact popcounts — never sampled;
* join estimates are **exact whenever the source population fits in
  the sample** (the wander join degenerates to full enumeration);
* estimates are deterministic under a seed — two estimators with the
  same seed and call sequence return identical numbers;
* fingerprints follow content: equal-content trees share one, any
  profile-visible change (relabel, growth) moves it, and the corpus
  fingerprint is order-sensitive.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.index import bit_count, index_for, iter_bits
from repro.engine.stats import (
    CardinalityEstimator,
    TreeStatistics,
    closure_reach_estimate,
    corpus_statistics,
    tree_statistics,
)
from repro.trees.generators import random_tree
from repro.trees.parser import parse_term

pytestmark = pytest.mark.planner

seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=1, max_value=60)


def _tree(seed, size):
    return random_tree(
        size=size,
        alphabet=("σ", "δ"),
        max_children=3,
        seed=random.Random(seed),
        value_pool=(1, 2),
    )


def _descendant_pairs_exact(tree):
    nodes = tree.nodes
    return sum(
        1
        for u in nodes
        for v in nodes
        if v != u and v[: len(u)] == u
    )


def _chain(length):
    text = "σ"
    for _ in range(length - 1):
        text = f"σ({text})"
    return parse_term(text)


def _star(arms):
    return parse_term("σ(" + ", ".join(["δ"] * arms) + ")")


# -- exact unary statistics --------------------------------------------------


@given(seeds, sizes)
@settings(max_examples=60, deadline=None)
def test_label_counts_are_exact_popcounts(seed, size):
    tree = _tree(seed, size)
    est = CardinalityEstimator(index_for(tree))
    for label in ("σ", "δ", "missing"):
        expected = sum(1 for u in tree.nodes if tree.label(u) == label)
        assert est.label_count(label) == expected
        assert bit_count(index_for(tree).labelled(label)) == expected


@given(seeds, sizes)
@settings(max_examples=60, deadline=None)
def test_profile_statistics_match_definitions(seed, size):
    tree = _tree(seed, size)
    stats = tree_statistics(tree)
    nodes = tree.nodes
    assert stats.n == len(nodes)
    assert stats.height == max(len(u) for u in nodes)
    assert stats.leaf_count == sum(1 for u in nodes if not tree.children(u))
    # Σ|proper descendants| = Σ depth — the one-pass identity.
    assert stats.avg_subtree * stats.n == pytest.approx(
        _descendant_pairs_exact(tree)
    )
    assert stats.avg_subtree * stats.n == pytest.approx(
        sum(len(u) for u in nodes)
    )
    for label in ("σ", "δ"):
        expected = sum(1 for u in nodes if tree.label(u) == label)
        assert stats.label_fraction(label) == pytest.approx(
            expected / stats.n
        )


# -- exactness when the sample covers the population -------------------------


@given(seeds, st.integers(min_value=1, max_value=50))
@settings(max_examples=60, deadline=None)
def test_join_estimates_exact_when_sample_covers_population(seed, size):
    """With ``sample_size >= n`` the wander join enumerates every
    source, so the "estimate" must equal the brute-force pair count on
    *any* tree."""
    tree = _tree(seed, size)
    index = index_for(tree)
    est = CardinalityEstimator(index, seed=seed, sample_size=max(size, 1))
    assert est.descendant_pairs(
        index.all_mask, index.all_mask
    ) == _descendant_pairs_exact(tree)
    # Every non-root node is one (parent, child) pair.
    assert est.child_pairs(index.all_mask, index.all_mask) == index.n - 1


@pytest.mark.parametrize("length", [1, 2, 7, 33, 64])
def test_chain_descendant_pairs_closed_form(length):
    """A chain of k nodes has exactly k(k-1)/2 descendant pairs and a
    root-to-leaf walk of depth k-1, with no sampling variance while the
    population fits the default sample."""
    tree = _chain(length)
    index = index_for(tree)
    est = CardinalityEstimator(index, sample_size=64)
    assert est.descendant_pairs(index.all_mask, index.all_mask) == (
        length * (length - 1) // 2
    )
    assert est.child_pairs(index.all_mask, index.all_mask) == length - 1
    assert est.random_walk_depth() == float(length - 1)
    stats = tree_statistics(tree)
    assert stats.avg_subtree == pytest.approx((length - 1) / 2)
    assert stats.label_fraction("σ") == 1.0  # single-label document


@pytest.mark.parametrize("arms", [1, 5, 64, 200])
def test_star_pairs_closed_form(arms):
    """A root with m leaf children: m descendant pairs, all rooted at
    the (population-1, hence exactly counted) root source."""
    tree = _star(arms)
    index = index_for(tree)
    est = CardinalityEstimator(index, sample_size=8)
    root_mask = index.all_mask & ~index.labelled("δ")
    assert est.descendant_pairs(root_mask, index.all_mask) == arms
    assert est.child_pairs(root_mask, index.labelled("δ")) == arms
    assert est.random_walk_depth() == 1.0
    assert est.label_count("δ") == arms


# -- sampled estimates stay sane and deterministic ---------------------------


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_undersampled_estimates_are_bounded_and_deterministic(seed):
    """With a tiny sample the estimate may wobble, but it can never
    leave [0, n * (n-1)] (each sampled source contributes at most its
    proper-subtree size, counted exactly) and must be bit-identical
    under the same seed."""
    tree = _tree(seed, 120)
    index = index_for(tree)
    stats = tree_statistics(tree)
    a = CardinalityEstimator(index, seed=seed, sample_size=4)
    b = CardinalityEstimator(index, seed=seed, sample_size=4)
    exact_bound = stats.n * (stats.n - 1)
    for est in (a, b):
        pairs = est.descendant_pairs(index.all_mask, index.all_mask)
        assert 0 <= pairs <= exact_bound
    assert a.descendant_pairs(
        index.all_mask, index.all_mask
    ) == b.descendant_pairs(index.all_mask, index.all_mask)
    assert a.child_pairs(index.all_mask, index.all_mask) == b.child_pairs(
        index.all_mask, index.all_mask
    )
    assert a.random_walk_depth() == b.random_walk_depth()


def test_sample_size_must_be_positive():
    tree = _chain(3)
    with pytest.raises(ValueError):
        CardinalityEstimator(index_for(tree), sample_size=0)


# -- fingerprints ------------------------------------------------------------


def test_fingerprint_follows_content_not_identity():
    left = parse_term("σ(δ, σ(δ))")
    right = parse_term("σ(δ, σ(δ))")
    assert left is not right
    assert tree_statistics(left).fingerprint == tree_statistics(
        right
    ).fingerprint
    relabelled = parse_term("σ(δ, σ(σ))")
    assert (
        tree_statistics(relabelled).fingerprint
        != tree_statistics(left).fingerprint
    )


@given(seeds, sizes)
@settings(max_examples=40, deadline=None)
def test_fingerprint_is_pure_and_cached(seed, size):
    tree = _tree(seed, size)
    once = tree_statistics(tree)
    again = tree_statistics(tree)
    assert once is again  # id-keyed cache hit
    assert once == TreeStatistics.from_tree(tree)


def test_corpus_fingerprint_is_order_sensitive():
    a, b = parse_term("σ(δ)"), parse_term("δ(σ, σ)")
    forward = corpus_statistics([a, b])
    backward = corpus_statistics([b, a])
    assert forward.fingerprint != backward.fingerprint
    assert forward.total_nodes == backward.total_nodes == 5
    grown = corpus_statistics([a, b, parse_term("σ")])
    assert grown.fingerprint != forward.fingerprint


# -- closure reachability (caterpillar-style direction stars) -----------------


_DIRECTION_SETS = [
    frozenset(c)
    for r in range(1, 5)
    for c in __import__("itertools").combinations(
        ("up", "down", "left", "right"), r
    )
]


def _brute_closure(idx, u, dirs):
    """Reflexive dirs* image of one node, by naive graph search."""
    step = {
        "up": lambda v: [idx.parent[v]] if idx.parent[v] >= 0 else [],
        "down": lambda v: (
            [idx.child_ids[idx.child_start[v]]]
            if idx.child_start[v] < idx.child_start[v + 1]
            else []
        ),
        "right": lambda v: (
            [idx.next_sibling[v]] if idx.next_sibling[v] >= 0 else []
        ),
        "left": lambda v: (
            [idx.prev_sibling[v]] if idx.prev_sibling[v] >= 0 else []
        ),
    }
    seen = {u}
    stack = [u]
    while stack:
        v = stack.pop()
        for d in dirs:
            for w in step[d](v):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
    return seen


@given(seeds, st.integers(min_value=1, max_value=30))
@settings(max_examples=30, deadline=None)
def test_closure_pair_count_exact_at_full_sample(seed, size):
    """With the sample covering the population, every direction-set
    closure pair count — O(1) interval forms, chain walks and the
    saturation fallback alike — equals the brute-force reachability
    count."""
    tree = _tree(seed, size)
    index = index_for(tree)
    est = CardinalityEstimator(index, seed=seed, sample_size=index.n)
    for dirs in _DIRECTION_SETS:
        expected = sum(
            len(_brute_closure(index, u, dirs)) for u in range(index.n)
        )
        assert est.closure_pair_count(index.all_mask, dirs) == expected


@given(seeds, st.integers(min_value=1, max_value=30), st.integers(0, 2**30))
@settings(max_examples=30, deadline=None)
def test_closure_image_size_is_exact(seed, size, mask_bits):
    tree = _tree(seed, size)
    index = index_for(tree)
    est = CardinalityEstimator(index)
    sources = mask_bits & index.all_mask
    for dirs in ({"up"}, {"down"}, {"down", "right"}, {"up", "left"}):
        union = set()
        for u in iter_bits(sources):
            union |= _brute_closure(index, u, dirs)
        assert est.closure_image_size(sources, dirs) == len(union)


@pytest.mark.parametrize("length", [1, 2, 7, 33])
def test_chain_closure_closed_forms(length):
    """On a k-chain the spine closures have triangular pair counts and
    the profile estimate recovers them from height alone."""
    tree = _chain(length)
    index = index_for(tree)
    est = CardinalityEstimator(index, sample_size=64)
    triangular = length * (length + 1) // 2
    assert est.closure_pair_count(index.all_mask, {"down"}) == triangular
    assert est.closure_pair_count(index.all_mask, {"up"}) == triangular
    assert est.closure_pair_count(index.all_mask, {"right"}) == length
    assert (
        est.closure_pair_count(index.all_mask, {"down", "right"})
        == triangular
    )
    stats = tree_statistics(tree)
    # down* on a chain is the worst case for the height/2 heuristic,
    # but it must stay within the spine bound.
    assert 1.0 <= closure_reach_estimate(stats, {"down"}) <= length
    # up* expected length is the mean depth + 1 — exact on any tree.
    assert closure_reach_estimate(stats, {"up"}) == pytest.approx(
        stats.avg_subtree + 1.0
    )


@pytest.mark.parametrize("arms", [1, 5, 64])
def test_star_closure_closed_forms(arms):
    tree = _star(arms)
    index = index_for(tree)
    est = CardinalityEstimator(index, sample_size=index.n)
    # right* from leaf i reaches arms - i leaves; the root only itself.
    assert est.closure_pair_count(index.all_mask, {"right"}) == (
        1 + arms * (arms + 1) // 2
    )
    # (down|right)* from the root sweeps everything; from leaf i, the
    # trailing leaves.
    assert est.closure_pair_count(index.all_mask, {"down", "right"}) == (
        (arms + 1) + arms * (arms + 1) // 2
    )
    assert est.closure_image_size(1, {"down", "right"}) == arms + 1


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_closure_pair_count_deterministic_under_seed(seed):
    tree = _tree(seed, 120)
    index = index_for(tree)
    a = CardinalityEstimator(index, seed=seed, sample_size=4)
    b = CardinalityEstimator(index, seed=seed, sample_size=4)
    for dirs in ({"down"}, {"down", "right"}, {"up", "right"}):
        assert a.closure_pair_count(
            index.all_mask, dirs
        ) == b.closure_pair_count(index.all_mask, dirs)


@given(seeds, sizes)
@settings(max_examples=40, deadline=None)
def test_closure_reach_estimate_is_bounded(seed, size):
    """The profile estimate always lands in [1, n] — it is a mean image
    size, never a pair count."""
    stats = tree_statistics(_tree(seed, size))
    for dirs in _DIRECTION_SETS:
        estimate = closure_reach_estimate(stats, dirs)
        assert 1.0 <= estimate <= stats.n
    assert closure_reach_estimate(stats, ()) == 1.0
