"""The corpus engine: shared plans, picklable trees, batch execution."""

import pickle

import pytest

from repro.corpus import (
    BatchResult,
    CorpusQuery,
    TreeCorpus,
    ask_query,
    caterpillar_query,
    caterpillar_relation_query,
    run_batch,
    select_query,
    xpath_query,
)
from repro.engine.index import TreeIndex, index_for
from repro.engine.plans import (
    compile_xpath_plan,
    plan_cache_clear,
    plan_cache_info,
)
from repro.queries.facade import TreeDatabase
from repro.resilience.errors import ParseError
from repro.resilience.faults import Fault
from repro.trees.parser import parse_term

TERMS = [
    "σ(δ, σ)",
    "δ(σ(δ))",
    "σ(σ(δ, δ), δ, σ)",
    "δ",
    "σ(δ(σ, δ), σ(σ))",
]

QUERIES = [
    xpath_query("//δ"),
    ask_query("exists x O_σ(x)"),
    select_query("x << y & O_δ(y)"),
    caterpillar_query("down*"),
    caterpillar_relation_query("down <σ>"),
]


def sequential_rows(trees, queries):
    """The answers a per-tree loop of facade calls produces."""
    rows = []
    for tree in trees:
        db = TreeDatabase(tree)
        row = []
        for q in queries:
            if q.kind == "xpath":
                row.append(db.xpath(q.text, context=q.context))
            elif q.kind == "ask":
                row.append(db.ask(q.text))
            elif q.kind == "select":
                row.append(db.select_where(q.text, context=q.context))
            elif q.kind == "caterpillar":
                row.append(db.caterpillar(q.text, context=q.context))
            else:
                row.append(tuple(sorted(db.caterpillar_relation(q.text))))
        rows.append(tuple(row))
    return tuple(rows)


@pytest.fixture()
def trees():
    return [parse_term(text) for text in TERMS]


# -- shared plan cache -------------------------------------------------


def test_plan_cache_shared_across_databases(trees):
    plan_cache_clear()
    db1 = TreeDatabase(trees[0])
    db2 = TreeDatabase(trees[1])
    db1.xpath("//δ")
    before = plan_cache_info()
    db2.xpath("//δ")  # second database, same text: no recompile
    after = plan_cache_info()
    assert after.misses == before.misses
    # Two shared artifacts per text: the parsed AST and the lowered IR plan.
    assert after.hits == before.hits + 2


def test_plan_cache_returns_same_object():
    plan_cache_clear()
    assert compile_xpath_plan("//δ") is compile_xpath_plan("//δ")


# -- pickling ----------------------------------------------------------


def test_tree_pickle_round_trip(trees):
    for tree in trees:
        clone = pickle.loads(pickle.dumps(tree))
        assert clone == tree
        assert clone.nodes == tree.nodes
        assert tuple(clone.attributes) == tuple(tree.attributes)
        for name in tree.attributes:
            for node in tree.nodes:
                assert clone.value(name, node) == tree.value(name, node)


def test_tree_pickle_is_compact(trees):
    # Derived structure (children maps, node orderings) is rebuilt on
    # load, not shipped; the payload stays within a few hundred bytes
    # for small trees.
    assert len(pickle.dumps(trees[0])) < 600


def test_index_pickle_round_trip(trees):
    index = index_for(trees[2])
    clone = pickle.loads(pickle.dumps(index))
    assert isinstance(clone, TreeIndex)
    assert clone.tree == trees[2]
    assert clone.id_of[()] == index.id_of[()]


def test_corpus_query_pickle_round_trip():
    query = CorpusQuery("xpath", "//δ", (0, 1))
    assert pickle.loads(pickle.dumps(query)) == query


# -- batch execution ---------------------------------------------------


def test_batch_matches_sequential_loop(trees):
    result = run_batch(trees, QUERIES)
    assert result.rows == sequential_rows(trees, QUERIES)


def test_batch_ordering_invariant_under_chunking(trees):
    baseline = run_batch(trees, QUERIES, chunk_size=len(trees))
    for chunk_size in (1, 2, 3):
        again = run_batch(trees, QUERIES, chunk_size=chunk_size)
        assert again.rows == baseline.rows


def test_batch_with_workers_matches_serial(trees):
    serial = run_batch(trees, QUERIES)
    fanned = run_batch(trees, QUERIES, workers=2, chunk_size=2)
    assert fanned.rows == serial.rows
    assert fanned.workers == 2
    # The answers must come from live workers, not from the parent-side
    # degradation path silently absorbing worker crashes.
    assert not fanned.fell_back, [c.error for c in fanned.chunks]


def test_reference_engine_batch_agrees(trees):
    assert (
        run_batch(trees, QUERIES, engine="reference").rows
        == run_batch(trees, QUERIES).rows
    )


def test_batch_result_accessors(trees):
    result = run_batch(trees, QUERIES)
    assert isinstance(result, BatchResult)
    assert result.tree_count == len(trees)
    assert result.for_query(1) == tuple(row[1] for row in result.rows)
    assert result.cell(0, 0) == result.rows[0][0]
    assert not result.fell_back
    assert "trees" in repr(result)


def test_empty_batch_shapes():
    empty = run_batch([], QUERIES)
    assert empty.rows == ()
    assert empty.chunks == ()
    no_queries = run_batch([parse_term("σ")], [])
    assert no_queries.rows == ((),)


def test_run_batch_validates_arguments(trees):
    with pytest.raises(ValueError):
        run_batch(trees, QUERIES, engine="mystery")
    with pytest.raises(ValueError):
        run_batch(trees, QUERIES, workers=-1)
    with pytest.raises(ValueError):
        run_batch(trees, QUERIES, chunk_size=0)


def test_parse_error_propagates(trees):
    with pytest.raises(ParseError):
        run_batch(trees, [xpath_query("//[")])


# -- resilience --------------------------------------------------------


def test_faulted_chunk_degrades_without_failing_batch(trees):
    clean = run_batch(trees, QUERIES, chunk_size=1)
    faulty = run_batch(
        trees, QUERIES, chunk_size=1, faults={2: Fault(1, "error")}
    )
    assert faulty.rows == clean.rows  # same answers, same order
    assert faulty.fell_back
    assert [c.fell_back for c in faulty.chunks] == [
        False, False, True, False, False,
    ]
    report = faulty.chunks[2]
    assert report.engine == "reference"
    assert "InjectedFault" in report.error


def test_stall_fault_degrades_too(trees):
    clean = run_batch(trees, QUERIES)
    stalled = run_batch(trees, QUERIES, faults={0: Fault(1, "stall")})
    assert stalled.rows == clean.rows
    assert stalled.chunks[0].fell_back


def test_budget_exhaustion_degrades_every_chunk(trees):
    clean = run_batch(trees, QUERIES, chunk_size=2)
    tight = run_batch(trees, QUERIES, chunk_size=2, budget_steps=1)
    assert tight.rows == clean.rows
    assert all(c.fell_back for c in tight.chunks)


def test_fault_in_worker_chunk_degrades(trees):
    clean = run_batch(trees, QUERIES)
    faulty = run_batch(
        trees, QUERIES, workers=2, chunk_size=2, faults={0: Fault(1, "error")}
    )
    assert faulty.rows == clean.rows
    assert faulty.chunks[0].fell_back


# -- TreeCorpus --------------------------------------------------------


def test_corpus_construction_and_inspection(trees):
    corpus = TreeCorpus(trees)
    assert len(corpus) == len(trees)
    assert corpus[0] == trees[0]
    assert list(corpus) == list(trees)
    assert corpus.total_nodes() == sum(t.size for t in trees)
    assert "unprepared" in repr(corpus)
    corpus.prepare()
    assert "prepared" in repr(corpus)


def test_corpus_from_terms_and_run():
    with TreeCorpus.from_terms(TERMS) as corpus:
        result = corpus.run(QUERIES)
        assert result.rows == sequential_rows(corpus.trees, QUERIES)


def test_corpus_random_is_deterministic():
    a = TreeCorpus.random(6, max_size=9, seed=3)
    b = TreeCorpus.random(6, max_size=9, seed=3)
    assert a.trees == b.trees
    assert TreeCorpus.random(6, max_size=9, seed=4).trees != a.trees
    with pytest.raises(ValueError):
        TreeCorpus.random(-1)
    with pytest.raises(ValueError):
        TreeCorpus.random(1, max_size=0)


def test_corpus_reuses_pool_across_runs(trees):
    with TreeCorpus(trees) as corpus:
        first = corpus.run(QUERIES, workers=2)
        pool = corpus._pools[2]
        second = corpus.run(QUERIES, workers=2)
        assert corpus._pools[2] is pool
        assert first.rows == second.rows
        assert not first.fell_back and not second.fell_back
    assert corpus._pools == {}
