"""XML subset I/O tests."""

import pytest

from repro.trees import XmlSyntaxError, from_xml, parse_term, random_tree, to_xml


def test_roundtrip_fixed(small_tree):
    assert from_xml(to_xml(small_tree)) == small_tree


def test_roundtrip_random():
    for seed in range(8):
        t = random_tree(10, alphabet=("a", "b-c"), attributes=("k",),
                        value_pool=(1, "two", 'say "hi" & bye'), seed=seed)
        assert from_xml(to_xml(t)) == t


def test_int_values_keep_type():
    t = parse_term("n[x=5]")
    text = to_xml(t)
    assert 'x="int:5"' in text
    assert from_xml(text).val("x", ()) == 5


def test_escaping():
    t = parse_term("n").with_attribute("s", {(): '<a> & "b"'})
    text = to_xml(t)
    assert "&lt;" in text and "&amp;" in text and "&quot;" in text
    assert from_xml(text).val("s", ()) == '<a> & "b"'


def test_self_closing_leaves():
    assert to_xml(parse_term("a")) == "<a/>\n"


def test_xml_declaration_skipped():
    t = from_xml('<?xml version="1.0"?>\n<a><b/></a>')
    assert t.size == 2


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "<a>",
        "<a></b>",
        "<a x=5/>",
        "<a><b/></a><c/>",
        "<a x='unterminated/>",
    ],
)
def test_malformed_rejected(bad):
    with pytest.raises(XmlSyntaxError):
        from_xml(bad)


def test_bottom_attributes_omitted(small_tree):
    # "name" is ⊥ except on the first dept — it must not appear on items
    text = to_xml(small_tree)
    for line in text.splitlines():
        if "<item" in line:
            assert "name=" not in line
