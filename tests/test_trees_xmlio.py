"""XML subset I/O tests."""

import pytest

from repro.trees import XmlSyntaxError, from_xml, parse_term, random_tree, to_xml


def test_roundtrip_fixed(small_tree):
    assert from_xml(to_xml(small_tree)) == small_tree


def test_roundtrip_random():
    for seed in range(8):
        t = random_tree(10, alphabet=("a", "b-c"), attributes=("k",),
                        value_pool=(1, "two", 'say "hi" & bye'), seed=seed)
        assert from_xml(to_xml(t)) == t


def test_int_values_keep_type():
    t = parse_term("n[x=5]")
    text = to_xml(t)
    assert 'x="int:5"' in text
    assert from_xml(text).val("x", ()) == 5


def test_escaping():
    t = parse_term("n").with_attribute("s", {(): '<a> & "b"'})
    text = to_xml(t)
    assert "&lt;" in text and "&amp;" in text and "&quot;" in text
    assert from_xml(text).val("s", ()) == '<a> & "b"'


def test_self_closing_leaves():
    assert to_xml(parse_term("a")) == "<a/>\n"


def test_xml_declaration_skipped():
    t = from_xml('<?xml version="1.0"?>\n<a><b/></a>')
    assert t.size == 2


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "<a>",
        "<a></b>",
        "<a x=5/>",
        "<a><b/></a><c/>",
        "<a x='unterminated/>",
    ],
)
def test_malformed_rejected(bad):
    with pytest.raises(XmlSyntaxError):
        from_xml(bad)


def test_bottom_attributes_omitted(small_tree):
    # "name" is ⊥ except on the first dept — it must not appear on items
    text = to_xml(small_tree)
    for line in text.splitlines():
        if "<item" in line:
            assert "name=" not in line


def test_iter_xml_stream_yields_each_concatenated_document():
    from repro.trees import iter_xml_stream

    originals = [random_tree(6, seed=s) for s in range(5)]
    stream = "\n".join(to_xml(t) for t in originals)
    parsed = list(iter_xml_stream(stream))
    assert len(parsed) == len(originals)
    for a, b in zip(parsed, originals):
        assert a._labels == b._labels
        assert a._attrs == b._attrs


def test_iter_xml_stream_is_incremental_over_a_file_object(tmp_path):
    import io

    from repro.trees import iter_xml_stream

    originals = [random_tree(4, seed=s) for s in range(3)]
    handle = io.StringIO("".join(to_xml(t) for t in originals))
    it = iter_xml_stream(handle, chunk_size=7)  # force many refills
    first = next(it)
    assert first._labels == originals[0]._labels
    assert len(list(it)) == 2


def test_iter_xml_stream_raises_on_a_torn_tail():
    from repro.trees import XmlSyntaxError, iter_xml_stream

    whole = to_xml(random_tree(5, seed=1))
    with pytest.raises(XmlSyntaxError):
        list(iter_xml_stream(whole + "<dangling><open>"))
