"""tw → xTM compilation tests (Theorem 7.1(1), ⊆ direction)."""

import pytest

from tests.conftest import tree_family

from repro.automata import accepts, run
from repro.automata.examples import (
    all_leaves_same_twrl,
    all_values_same_twr,
    delta_leaves_mod3_twr,
    even_leaves_automaton,
    exists_value_automaton,
    root_value_at_some_leaf,
)
from repro.machines import run_xtm
from repro.simulation.tw_to_xtm import UnsupportedFeature, compile_tw_to_xtm

FAMILY = tree_family(count=10, max_size=12)

TW_SOURCES = [
    even_leaves_automaton,
    lambda: exists_value_automaton("a", 2),
    root_value_at_some_leaf,
    delta_leaves_mod3_twr,
]


@pytest.mark.parametrize("factory", TW_SOURCES,
                         ids=["even", "exists", "root-leaf", "mod3"])
@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_compiled_xtm_agrees(factory, tree):
    automaton = factory()
    machine = compile_tw_to_xtm(automaton)
    assert run_xtm(machine, tree).accepted == accepts(automaton, tree)


def test_simulation_is_step_for_step():
    automaton = even_leaves_automaton()
    machine = compile_tw_to_xtm(automaton)
    for tree in FAMILY[:5]:
        tw_result = run(automaton, tree)
        xtm_result = run_xtm(machine, tree)
        assert xtm_result.steps == tw_result.steps
        assert xtm_result.space == 1  # the tape is never touched


def test_initial_assignment_becomes_preamble():
    automaton = delta_leaves_mod3_twr()  # τ₀(1) = 0
    machine = compile_tw_to_xtm(automaton)
    assert machine.initial.startswith("xtm:init")
    for tree in FAMILY[:4]:
        assert run_xtm(machine, tree).accepted == accepts(automaton, tree)


def test_guarded_mod3_counts_through_registers():
    """delta_leaves_mod3 keeps a constant in the register and its guard
    X1(0) translates to RegEqConst — the whole pipeline in one case."""
    from repro.trees import parse_term

    machine = compile_tw_to_xtm(delta_leaves_mod3_twr())
    assert run_xtm(machine, parse_term("σ(δ, δ, δ)")).accepted
    assert not run_xtm(machine, parse_term("σ(δ, δ)")).accepted
    assert run_xtm(machine, parse_term("σ(σ)")).accepted  # zero ≡ 0 (mod 3)


def test_atp_rejected():
    with pytest.raises(UnsupportedFeature):
        compile_tw_to_xtm(all_leaves_same_twrl())


def test_wide_updates_rejected():
    with pytest.raises(UnsupportedFeature):
        compile_tw_to_xtm(all_values_same_twr())


def test_quantified_guard_rejected():
    from repro.automata import AutomatonBuilder, STAY
    from repro.store.fo import Var, exists, rel

    z = Var("z")
    b = AutomatonBuilder(register_arities=[1])
    b.move("q0", "qF", STAY, guard=exists(z, rel(1, z)))
    with pytest.raises(UnsupportedFeature):
        compile_tw_to_xtm(b.build(initial="q0", final="qF"))
