"""k-type machinery tests (Lemma 4.3)."""

import itertools

import pytest

from repro.logic.types import (
    StringStructure,
    atomic_type,
    classes_partition,
    count_realized_classes,
    equivalent,
    type_summary,
)
from repro.trees import string_tree


def test_structure_from_tree():
    s = StringStructure.from_tree(string_tree([1, 2, 3]))
    assert len(s) == 3
    assert s.value(1) == 2
    assert s.label(0) == "σ"


def test_structure_needs_positions():
    with pytest.raises(Exception):
        StringStructure(())


def test_atomic_type_records_values_and_flags():
    s = StringStructure((5, 6, 7))
    infos, pairs = atomic_type(s, (0, 2))
    assert infos[0][0] == 5 and infos[1][0] == 7
    assert infos[0][2] is True      # first
    assert infos[1][4] is True      # last
    sign, succ_ab, succ_ba = pairs[0]
    assert sign == -1 and not succ_ab and not succ_ba


def test_atomic_type_succ_flags():
    s = StringStructure((5, 6))
    _infos, pairs = atomic_type(s, (0, 1))
    assert pairs[0] == (-1, True, False)
    _infos, pairs = atomic_type(s, (1, 0))
    assert pairs[0] == (1, False, True)


def test_summary_equality_same_string():
    a = StringStructure((1, 2, 1))
    b = StringStructure((1, 2, 1))
    assert type_summary(a, (), 2) == type_summary(b, (), 2)


def test_equivalence_separates_on_values():
    a = StringStructure((1, 2))
    b = StringStructure((1, 3))
    assert not equivalent(a, b, 1)


def test_equivalence_coarser_for_smaller_k():
    # same boundary pattern and the same *set* of interior values,
    # different interior order: 1 variable cannot see the order
    a = StringStructure((1, 2, 3, 4, 2, 9))
    b = StringStructure((1, 2, 4, 3, 2, 9))
    assert equivalent(a, b, 1)       # same realized 1-types
    assert not equivalent(a, b, 2)   # order visible with two variables


def test_distinguished_positions_matter():
    s = StringStructure((1, 2, 1))
    assert type_summary(s, (0,), 1) != type_summary(s, (2,), 1)
    # positions 0 and 2 carry the same value but different flags
    with pytest.raises(Exception):
        type_summary(s, (5,), 1)


def test_realized_class_counting():
    structs = [
        StringStructure(tuple(w))
        for w in itertools.product((1, 2), repeat=3)
    ]
    classes = count_realized_classes(structs, 2)
    assert 1 < classes <= len(structs)
    partition = classes_partition(structs, 2)
    assert sum(len(v) for v in partition.values()) == len(structs)


def test_monotone_in_k():
    structs = [
        StringStructure(tuple(w))
        for w in itertools.product((1, 2), repeat=4)
    ]
    c1 = count_realized_classes(structs, 1)
    c2 = count_realized_classes(structs, 2)
    assert c1 <= c2


def test_lemma_43_composition_on_instances():
    """tp_k(f#g) is determined by tp_k(f#) and tp_k(#g): whenever the
    component summaries agree, the whole-string summaries agree."""
    k = 2
    seen = {}
    words = list(itertools.product((1, 2), repeat=2))
    for f in words:
        for g in words:
            left = type_summary(StringStructure(f + ("#",)), (), k)
            right = type_summary(StringStructure(("#",) + g), (), k)
            whole = type_summary(StringStructure(f + ("#",) + g), (), k)
            key = (left, right)
            if key in seen:
                assert seen[key] == whole
            else:
                seen[key] = whole
