"""Fuzzing the look-ahead walker construction against random DHAs.

The `walker_from_hedge` compiler claims to work for *every*
deterministic complete hedge automaton; random automata hunt for the
corners the hand-written languages miss.
"""

import random

import pytest

from repro.mso import DFA, HedgeAutomaton, LabelRule, run_extended, walker_from_hedge
from repro.trees import all_trees, random_tree

ALPHA = ("σ", "δ")


def random_hedge(seed: int, state_count: int = 2, dfa_states: int = 2) -> HedgeAutomaton:
    """A random deterministic complete hedge automaton."""
    rng = random.Random(seed)
    hstates = tuple(range(state_count))
    rules = []
    for label in ALPHA:
        dstates = tuple(range(dfa_states))
        transitions = tuple(
            ((d, q), rng.choice(dstates))
            for d in dstates
            for q in hstates
        )
        dfa = DFA(
            states=frozenset(dstates),
            alphabet=frozenset(hstates),
            transitions=transitions,
            start=0,
            finals=frozenset(),
        )
        output = tuple((d, rng.choice(hstates)) for d in dstates)
        rules.append((label, LabelRule(dfa, output)))
    finals = frozenset(
        q for q in hstates if rng.random() < 0.5
    ) or frozenset({hstates[0]})
    return HedgeAutomaton(
        states=frozenset(hstates),
        alphabet=frozenset(ALPHA),
        rules=tuple(rules),
        finals=finals,
        name=f"fuzz-{seed}",
    )


@pytest.mark.parametrize("seed", range(20))
def test_walker_matches_random_hedge(seed):
    hedge = random_hedge(seed)
    walker = walker_from_hedge(hedge)
    for tree_seed in range(6):
        tree = random_tree(1 + tree_seed * 2, alphabet=ALPHA,
                           seed=1000 + tree_seed)
        assert run_extended(walker, tree) == hedge.accepts(tree), (
            seed, tree_seed,
        )


@pytest.mark.parametrize("seed", range(8))
def test_walker_matches_random_hedge_exhaustive_small(seed):
    hedge = random_hedge(seed, state_count=3, dfa_states=2)
    walker = walker_from_hedge(hedge)
    for tree in all_trees(3, ALPHA):
        assert run_extended(walker, tree) == hedge.accepts(tree), tree


def test_fuzz_is_not_degenerate():
    """Across the corpus both verdicts occur and languages differ."""
    verdicts = set()
    distinct = set()
    trees = all_trees(3, ALPHA)
    for seed in range(20):
        hedge = random_hedge(seed)
        signature = tuple(hedge.accepts(t) for t in trees)
        distinct.add(signature)
        verdicts |= set(signature)
    assert verdicts == {True, False}
    assert len(distinct) >= 5
