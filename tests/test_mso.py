"""Regular tree languages: DFAs, hedge automata, the look-ahead walker."""

import pytest

from tests.conftest import tree_family

from repro.mso import (
    DFA,
    FAError,
    HedgeAutomaton,
    HedgeError,
    all_symbols_dfa,
    contains_symbol_dfa,
    count_mod_dfa,
    dfa_from_map,
    exists_label_hedge,
    label_everywhere_hedge,
    leaf_count_mod_hedge,
    run_extended,
    walker_from_hedge,
)
from repro.trees import all_trees, parse_term, random_tree

ALPHA = ("σ", "δ")
FAMILY = tree_family(count=10, max_size=11, attributes=())


# -- DFAs --------------------------------------------------------------------------


def test_count_mod_dfa():
    d = count_mod_dfa("ab", "a", 3, [0])
    assert d.accepts("")
    assert d.accepts("aaab" + "bb")
    assert not d.accepts("a")
    assert d.accepts("bab" + "aa")


def test_contains_and_allowed():
    c = contains_symbol_dfa("ab", "a")
    assert c.accepts("bba") and not c.accepts("bb")
    only = all_symbols_dfa("ab", "a")
    assert only.accepts("aaa") and not only.accepts("ab")


def test_dfa_must_be_complete():
    with pytest.raises(FAError):
        dfa_from_map("ab", "s", ["s"], {("s", "a"): "s"})


def test_dfa_boolean_operations():
    mod2 = count_mod_dfa("ab", "a", 2, [0])
    has_a = contains_symbol_dfa("ab", "a")
    both = mod2.product(has_a, "and")
    assert both.accepts("aa") and not both.accepts("a") and not both.accepts("b")
    either = mod2.product(has_a, "or")
    assert either.accepts("b") and either.accepts("a")
    diff = mod2.product(has_a, "diff")
    assert diff.accepts("bb") and not diff.accepts("aa")
    comp = mod2.complement()
    assert comp.accepts("a") and not comp.accepts("")


def test_dfa_emptiness():
    mod2 = count_mod_dfa("ab", "a", 2, [0])
    assert not mod2.is_empty()
    impossible = mod2.product(mod2.complement(), "and")
    assert impossible.is_empty()


def test_dfa_rejects_foreign_symbols():
    with pytest.raises(FAError):
        count_mod_dfa("ab", "a", 2, [0]).accepts("z")


# -- hedge automata ------------------------------------------------------------------


def delta_leaf_parity_spec(tree):
    return (
        sum(1 for u in tree.nodes if tree.is_leaf(u) and tree.label(u) == "δ")
        % 2 == 0
    )


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_leaf_count_mod(tree):
    h = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    assert h.accepts(tree) == delta_leaf_parity_spec(tree)


def test_label_everywhere():
    h = label_everywhere_hedge(ALPHA, "σ")
    assert h.accepts(parse_term("σ(σ, σ(σ))"))
    assert not h.accepts(parse_term("σ(δ)"))


def test_exists_label():
    h = exists_label_hedge(ALPHA, "δ")
    assert h.accepts(parse_term("σ(σ, δ)"))
    assert not h.accepts(parse_term("σ(σ)"))


def test_annotate_assigns_every_node():
    h = leaf_count_mod_hedge(ALPHA, "δ", 3, [1])
    t = random_tree(9, alphabet=ALPHA, seed=3)
    assignment = h.annotate(t)
    assert set(assignment) == set(t.nodes)
    assert all(state in h.states for state in assignment.values())


def test_hedge_complement_and_product():
    even = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    has_delta = exists_label_hedge(ALPHA, "δ")
    odd = even.complement()
    for tree in FAMILY:
        assert odd.accepts(tree) == (not even.accepts(tree))
        both = even.product(has_delta, "and")
        assert both.accepts(tree) == (
            even.accepts(tree) and has_delta.accepts(tree)
        )
        either = even.product(has_delta, "or")
        assert either.accepts(tree) == (
            even.accepts(tree) or has_delta.accepts(tree)
        )


def test_hedge_emptiness():
    everywhere_sigma = label_everywhere_hedge(ALPHA, "σ")
    exists_delta = exists_label_hedge(ALPHA, "δ")
    contradiction = everywhere_sigma.product(exists_delta, "and")
    assert contradiction.is_empty()
    assert not everywhere_sigma.is_empty()


def test_hedge_producible_states():
    h = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    assert h.producible_states() == h.states  # both parities realisable


def test_hedge_requires_complete_alphabet():
    h = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    with pytest.raises(HedgeError):
        h.accepts(parse_term("x"))


# -- the look-ahead walker (Proposition 7.2, the [4] direction) --------------------------


def test_walker_equals_hedge_exhaustively():
    h = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    walker = walker_from_hedge(h)
    for tree in all_trees(3, ALPHA):
        assert run_extended(walker, tree) == h.accepts(tree)


@pytest.mark.parametrize("tree", FAMILY[:8], ids=lambda t: f"n{t.size}")
def test_walker_equals_hedge_random(tree):
    h = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    walker = walker_from_hedge(h)
    assert run_extended(walker, tree) == h.accepts(tree)


def test_walker_on_other_languages():
    for h in (label_everywhere_hedge(ALPHA, "σ"), exists_label_hedge(ALPHA, "δ")):
        walker = walker_from_hedge(h)
        for tree in all_trees(3, ALPHA):
            assert run_extended(walker, tree) == h.accepts(tree), (h.name, tree)


def test_walker_counts_nontrivially():
    # mod-2 leaf counting is NOT FO-definable: the walker really counts
    h = leaf_count_mod_hedge(("σ",), "σ", 2, [0])
    walker = walker_from_hedge(h)
    assert run_extended(walker, parse_term("σ(σ, σ)"))
    assert not run_extended(walker, parse_term("σ(σ, σ, σ)"))
