"""Traversal and numbering tests (in-order matters for Section 7)."""

import pytest

from repro.trees import (
    chain_tree,
    depth_of_tree,
    full_tree,
    inorder,
    leaves,
    lowest_common_ancestor,
    node_at,
    numbering,
    parse_term,
    postorder,
    preorder,
    random_tree,
    walk_path,
)
from repro.trees.traversal import depth_first_edges


def test_orders_are_permutations():
    for seed in range(6):
        t = random_tree(9, seed=seed)
        for order in (preorder, postorder, inorder):
            assert sorted(order(t)) == sorted(t.nodes)


def test_inorder_definition():
    # visit(u): first child's subtree, u, remaining children's subtrees
    t = parse_term("a(b(c, d), e)")
    # a=(), b=(0,), c=(0,0), d=(0,1), e=(1,)
    assert inorder(t) == ((0, 0), (0,), (0, 1), (), (1,))


def test_inorder_on_chain_is_bottom_up():
    t = chain_tree(4)
    assert inorder(t) == ((0, 0, 0), (0, 0), (0,), ())


def test_numbering_bijection():
    t = random_tree(11, seed=3)
    num = numbering(t)
    assert sorted(num.values()) == list(range(t.size))
    for u, i in num.items():
        assert node_at(t, i) == u


def test_node_at_out_of_range():
    with pytest.raises(IndexError):
        node_at(chain_tree(3), 3)


def test_leaves(small_tree):
    got = leaves(small_tree)
    assert got == ((0, 0), (0, 1), (1, 0))


def test_depth_of_tree():
    assert depth_of_tree(parse_term("a")) == 0
    assert depth_of_tree(chain_tree(5)) == 4
    assert depth_of_tree(full_tree(2, 3)) == 2


def test_lowest_common_ancestor(small_tree):
    assert lowest_common_ancestor(small_tree, (0, 0), (0, 1)) == (0,)
    assert lowest_common_ancestor(small_tree, (0, 0), (1, 0)) == ()
    assert lowest_common_ancestor(small_tree, (0,), (0, 1)) == (0,)


def test_walk_path(small_tree):
    assert walk_path(small_tree, (), "DD") == (0, 0)
    assert walk_path(small_tree, (0, 0), "RU") == (0,)
    assert walk_path(small_tree, (), "U") is None
    with pytest.raises(ValueError):
        walk_path(small_tree, (), "X")


def test_depth_first_edges_is_euler_tour():
    t = parse_term("a(b(c), d)")
    moves = list(depth_first_edges(t))
    assert moves == [
        ((), (0,), "down"),       # a -> b
        ((0,), (0, 0), "down"),   # b -> c
        ((0, 0), (0,), "up"),     # c -> b (subtree done)
        ((0,), (1,), "right"),    # b -> d
        ((1,), (), "up"),         # d -> a
    ]


def test_full_tree_size():
    assert full_tree(2, 2).size == 7
    assert full_tree(0, 5).size == 1
    with pytest.raises(ValueError):
        full_tree(-1, 2)
