"""Theorem 6.2: encodings, ordinary TMs, and the correspondence harness."""

import pytest

from tests.conftest import tree_family

from repro.machines import (
    EncodedWalker,
    RegEqConst,
    SetConst,
    TuringMachine,
    XTMRule,
    XTM,
    XTMError,
    compare_on,
    encode_tree,
    make_walker,
    paren_parity_tm,
    run_tm,
    run_xtm_encoded,
    value_index_table,
)
from repro.machines.programs import (
    all_same_attr_spec,
    all_same_attr_xtm,
    even_nodes_binary_xtm,
    even_nodes_spec,
    even_nodes_xtm,
)
from repro.trees import parse_term, random_tree

FAMILY = tree_family(count=10, max_size=11)


# -- encoding --------------------------------------------------------------------


def test_encoding_shape():
    t = parse_term("a(b[x=5], b[x=5], c[x=7])", attributes=["x"])
    enc = encode_tree(t)
    assert enc.count("(") == enc.count(")") == t.size
    # equal values share an index; distinct values differ
    assert enc.count(";0") == 2  # both x=5 nodes
    assert ";1" in enc


def test_value_index_first_occurrence():
    t = parse_term("a[x=9](b[x=3], c[x=9])")
    assert value_index_table(t) == {9: 0, 3: 1}


def test_encoding_rejects_colliding_labels():
    from repro.machines import EncodingError
    from repro.trees import Tree

    with pytest.raises(EncodingError):
        encode_tree(Tree({(): "a(b"}))  # a label containing '('


# -- the encoded walker --------------------------------------------------------------


def test_walker_navigation_matches_tree():
    for seed in range(6):
        t = random_tree(9, alphabet=("a", "b"), attributes=("x",),
                        value_pool=(1, 2), seed=seed)
        walker = make_walker(t)
        table = value_index_table(t)
        # replay a full depth-first traversal and compare every fact
        def visit(node):
            assert walker.label() == t.label(node)
            assert walker.is_leaf() == t.is_leaf(node)
            assert walker.is_root() == t.is_root(node)
            assert walker.is_first_child() == t.is_first_child(node)
            assert walker.is_last_child() == t.is_last_child(node)
            value = t.val("x", node)
            assert walker.attr_index("x") == table[value]
            kids = t.children(node)
            if kids:
                assert walker.down()
                visit(kids[0])
                for kid in kids[1:]:
                    assert walker.right()
                    visit(kid)
                assert not walker.right()
                assert walker.up()
            else:
                assert not walker.down()

        visit(())
        assert walker.is_root()


def test_walker_left():
    t = parse_term("a(b, c(d), e)")
    walker = make_walker(t)
    walker.down()
    walker.right()
    walker.right()
    assert walker.label() == "e"
    assert walker.left()
    assert walker.label() == "c"
    assert walker.left()
    assert walker.label() == "b"
    assert not walker.left()


def test_walker_charges_steps():
    t = random_tree(12, seed=0)
    walker = make_walker(t)
    walker.down()
    assert walker.char_steps > 0


# -- correspondence ---------------------------------------------------------------------


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_xtm_verdicts_agree_on_encoding(tree):
    report = compare_on(even_nodes_xtm(), tree)
    assert report.verdicts_agree
    assert report.encoded.char_steps >= report.direct.steps / 4


@pytest.mark.parametrize("tree", FAMILY[:6], ids=lambda t: f"n{t.size}")
def test_register_machine_on_encoding(tree):
    report = compare_on(all_same_attr_xtm(), tree)
    assert report.verdicts_agree
    assert report.encoded.accepted == all_same_attr_spec()(tree)


def test_overhead_is_bounded_by_encoding_length():
    t = random_tree(20, seed=1)
    report = compare_on(even_nodes_binary_xtm(), t)
    assert report.verdicts_agree
    # each direct step scans at most the whole encoding
    assert report.overhead <= report.encoding_length + 1


def test_constant_machines_rejected_on_encodings():
    rules = (XTMRule("q0", "acc", action=SetConst(1, 5)),)
    m = XTM(frozenset({"q0", "acc"}), "q0", frozenset({"acc"}), 1, rules)
    with pytest.raises(XTMError):
        run_xtm_encoded(m, parse_term("n"))


# -- ordinary TMs ----------------------------------------------------------------------


def test_tm_paren_parity_direct():
    tm = paren_parity_tm("(", alphabet=list("();,01ab"))
    assert run_tm(tm, "(a(b)(b))").accepted is False  # 3 opens
    assert run_tm(tm, "(a(b))").accepted              # 2 opens
    assert run_tm(tm, "").accepted                    # 0 opens


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_theorem_62_pair(tree):
    """even_nodes as an xTM on t ≡ paren-parity as a TM on enc(t)."""
    alphabet = sorted(set("();,01") | set("".join(tree.alphabet)))
    tm = paren_parity_tm("(", alphabet=alphabet)
    tm_verdict = run_tm(tm, encode_tree(tree)).accepted
    assert tm_verdict == even_nodes_spec(tree)


def test_tm_cycle_detection():
    tm = TuringMachine(
        states=frozenset({"s"}),
        initial="s",
        accepting=frozenset(),
        transitions=((("s", "_"), ("s", "_", 0)),),
    )
    result = run_tm(tm, "")
    assert not result.accepted and "cycle" in result.reason
