"""Stock xTM programs vs. their specs, plus resource-class checks."""

import pytest

from tests.conftest import tree_family

from repro.machines import (
    check_space_bound,
    check_time_bound,
    fit_constant_for_logspace,
    fit_polynomial_degree,
    logspace_bound,
    measure,
    polynomial_bound,
    run_xtm,
)
from repro.machines.programs import (
    all_same_attr_spec,
    all_same_attr_xtm,
    even_nodes_binary_xtm,
    even_nodes_spec,
    even_nodes_xtm,
    unary_nodes_xtm,
)
from repro.trees import chain_tree, full_tree, parse_term

FAMILY = tree_family(count=12, max_size=14)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_even_nodes(tree):
    assert run_xtm(even_nodes_xtm(), tree).accepted == even_nodes_spec(tree)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_even_nodes_binary(tree):
    assert run_xtm(even_nodes_binary_xtm(), tree).accepted == even_nodes_spec(tree)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_unary_nodes(tree):
    assert run_xtm(unary_nodes_xtm(), tree).accepted == even_nodes_spec(tree)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_all_same_attr(tree):
    assert (
        run_xtm(all_same_attr_xtm(), tree).accepted
        == all_same_attr_spec()(tree)
    )


def test_counter_machines_on_shapes():
    for tree in (chain_tree(9), full_tree(2, 3), parse_term("a")):
        want = tree.size % 2 == 0
        assert run_xtm(even_nodes_xtm(), tree).accepted == want
        assert run_xtm(even_nodes_binary_xtm(), tree).accepted == want
        assert run_xtm(unary_nodes_xtm(), tree).accepted == want


def test_even_nodes_is_logspace():
    trees = [chain_tree(n) for n in (2, 4, 8, 16, 32, 64, 128)]
    ms = measure(even_nodes_xtm(), trees)
    assert check_space_bound(ms, logspace_bound(2.0, 3.0))
    # and time is (low-degree) polynomial
    assert check_time_bound(ms, polynomial_bound(40.0, 2))


def test_unary_nodes_is_linear_space():
    trees = [chain_tree(n) for n in (4, 8, 16, 32, 64)]
    ms = measure(unary_nodes_xtm(), trees)
    assert not check_space_bound(ms, logspace_bound(3.0, 4.0))
    degree = fit_polynomial_degree(ms, key=lambda m: m.space)
    assert 0.7 < degree < 1.2


def test_logspace_constant_fit():
    trees = [chain_tree(n) for n in (8, 32, 128)]
    ms = measure(even_nodes_xtm(), trees)
    c = fit_constant_for_logspace(ms)
    assert 0 < c < 4


def test_registers_only_machine_uses_one_cell():
    ms = measure(all_same_attr_xtm(), [chain_tree(20, attributes=("a",))])
    assert ms[0].space == 1  # the head never moved


def test_fit_requires_data():
    with pytest.raises(ValueError):
        fit_polynomial_degree([])
