"""Property-based tests for the extension modules."""

import hypothesis.strategies as st
from hypothesis import given, settings

from tests.test_properties import trees

from repro.caterpillar import (
    Epsilon,
    alt,
    concat,
    matches,
    parse_caterpillar,
    star,
    walk,
)
from repro.pebbleautomata import (
    exists_equal_pair,
    exists_equal_pair_spec,
    run_pebble_automaton,
)
from repro.transducer import identity_transducer, run_transducer
from repro.xpath import compile_xpath, parse_xpath, select

# -- caterpillar invariants ----------------------------------------------------------

caterpillar_texts = st.sampled_from(
    [
        "up", "down", "left", "right",
        "up*", "(down | right)*", "down right*",
        "isLeaf", "up* isRoot", "(down right*)+ isLeaf",
        "down? right?", "<a> down", "(up | down)*",
    ]
)


@given(trees(), caterpillar_texts)
@settings(max_examples=60, deadline=None)
def test_walk_stays_inside_the_tree(t, text):
    expr = parse_caterpillar(text)
    for node in walk(expr, t, ()):
        assert node in t


@given(trees(), caterpillar_texts)
@settings(max_examples=40, deadline=None)
def test_star_contains_start(t, text):
    expr = star(parse_caterpillar(text))
    for u in t.nodes:
        assert u in walk(expr, t, u)


@given(trees(), caterpillar_texts, caterpillar_texts)
@settings(max_examples=40, deadline=None)
def test_alternation_is_union(t, a, b):
    ea, eb = parse_caterpillar(a), parse_caterpillar(b)
    union = set(walk(alt(ea, eb), t, ()))
    assert union == set(walk(ea, t, ())) | set(walk(eb, t, ()))


@given(trees(), caterpillar_texts, caterpillar_texts)
@settings(max_examples=40, deadline=None)
def test_concat_is_composition(t, a, b):
    ea, eb = parse_caterpillar(a), parse_caterpillar(b)
    composed = set(walk(concat(ea, eb), t, ()))
    stepwise = set()
    for mid in walk(ea, t, ()):
        stepwise |= set(walk(eb, t, mid))
    assert composed == stepwise


@given(trees())
@settings(max_examples=40, deadline=None)
def test_epsilon_is_identity(t):
    for u in t.nodes:
        assert walk(Epsilon(), t, u) == (u,)


# -- transducer invariants --------------------------------------------------------------


@given(trees())
@settings(max_examples=50, deadline=None)
def test_identity_transduction_roundtrips(t):
    assert run_transducer(identity_transducer(), t) == t


# -- pebble automaton invariants ------------------------------------------------------------


@given(trees(max_nodes=8))
@settings(max_examples=30, deadline=None)
def test_pebble_join_matches_spec(t):
    got = run_pebble_automaton(exists_equal_pair(), t, fuel=2_000_000)
    assert got.accepted == exists_equal_pair_spec()(t)
    assert got.max_pebbles <= 1


# -- xpath invariants -----------------------------------------------------------------------

xpath_texts = st.sampled_from(
    ["a", "a/b", "a//b", "//b", "*", ".", "*[a]", "a/*", "b|a"]
)


@given(trees(), xpath_texts)
@settings(max_examples=50, deadline=None)
def test_xpath_compiler_agreement(t, text):
    expr = parse_xpath(text)
    query = compile_xpath(expr)
    for context in t.nodes:
        assert select(expr, t, context) == query.select(t, context)


@given(trees(), xpath_texts)
@settings(max_examples=50, deadline=None)
def test_xpath_results_in_document_order(t, text):
    got = select(parse_xpath(text), t, ())
    indices = [t.document_index(u) for u in got]
    assert indices == sorted(indices)
