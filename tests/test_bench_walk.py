"""Smoke tests for the ``--suite walk`` benchmark and the
``--check`` trajectory ratchet — both stay runnable at toy sizes and
their JSON stays well-formed."""

import json
from pathlib import Path

from repro import bench


def test_quick_walk_benchmark_writes_wellformed_json(tmp_path):
    out = tmp_path / "BENCH_walk.json"
    code = bench.main(
        [
            "--suite", "walk", "--quick",
            "--output", str(out), "--seed", "3", "--repeats", "1",
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == bench.WALK_SCHEMA
    assert report["quick"] is True
    assert report["seed"] == 3
    cat_rows = report["caterpillar"]["rows"]
    twa_rows = report["twa"]["rows"]
    assert len(cat_rows) == (
        len(bench.CATERPILLAR_SIZES_QUICK) * len(bench.CATERPILLAR_EXPRESSIONS)
    )
    assert len(twa_rows) == (
        len(bench.TWA_SIZES_QUICK) * len(bench.TWA_AUTOMATA)
    )
    for row in cat_rows + twa_rows:
        assert row["reference_seconds"] > 0
        assert row["engine_seconds"] > 0
        assert row["speedup"] > 0
    for row in twa_rows:
        assert row["steps"] > 0
    assert report["errors"] == []  # no per-case exception was swallowed
    summary = report["summary"]
    assert summary["errors"] == 0
    assert summary["caterpillar_max_size"] == bench.CATERPILLAR_SIZES_QUICK[-1]
    assert summary["twa_max_size"] == bench.TWA_SIZES_QUICK[-1]
    assert summary["pass"] is True  # quick mode never gates on speed


def test_walk_benchmark_is_agreement_checked(monkeypatch):
    # The bench raises (rather than records nonsense) if the walking
    # engines ever disagree on a timed case.
    def broken(expr, tree):
        return frozenset({(("bogus",), ("bogus",))})

    monkeypatch.setattr(bench.fast_walk, "relation", broken)
    try:
        bench.run_caterpillar_benchmark([6], seed=0, repeats=1)
    except AssertionError as err:
        assert "disagree" in str(err)
    else:  # pragma: no cover
        raise AssertionError("expected the differential guard to fire")


def test_committed_walk_trajectory_matches_schema():
    # The repo ships a full-size BENCH_walk.json; keep it honest.
    path = Path(__file__).resolve().parents[1] / "BENCH_walk.json"
    report = json.loads(path.read_text())
    assert report["schema"] == bench.WALK_SCHEMA
    assert report.get("errors", []) == []
    summary = report["summary"]
    assert summary["pass"] is True
    assert summary.get("errors", 0) == 0
    if not report["quick"]:  # `make bench-walk` may have left a quick regen
        assert (
            summary["caterpillar_median_speedup_at_max_size"]
            >= summary["thresholds"]["caterpillar"]
        )
        assert (
            summary["twa_median_speedup_at_max_size"]
            >= summary["thresholds"]["twa"]
        )


def test_check_passes_on_committed_trajectories():
    root = Path(__file__).resolve().parents[1]
    paths = sorted(root.glob("BENCH_*.json"))
    assert paths, "the repo should ship committed benchmark trajectories"
    assert bench.check_reports(paths) == []


def test_check_flags_regressed_and_malformed_reports(tmp_path):
    regressed = tmp_path / "BENCH_slow.json"
    regressed.write_text(json.dumps({
        "schema": "repro-bench-walk/1",
        "summary": {"caterpillar_median_speedup_at_max_size": 0.5},
    }))
    alien = tmp_path / "BENCH_alien.json"
    alien.write_text(json.dumps({"schema": "something-else"}))
    empty = tmp_path / "BENCH_empty.json"
    empty.write_text(json.dumps({"schema": "repro-bench-walk/1",
                                 "summary": {}}))
    broken = tmp_path / "BENCH_broken.json"
    broken.write_text("{not json")
    failures = bench.check_reports([regressed, alien, empty, broken])
    assert len(failures) == 4
    assert any("below the 1.0x floor" in f for f in failures)
    assert any("unrecognised schema" in f for f in failures)
    assert any("no median speedups" in f for f in failures)
    assert any("unreadable" in f for f in failures)


def test_check_cli_returns_failure_on_regression(tmp_path, capsys):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({
        "schema": "repro-bench-engine/1",
        "summary": {"fo_median_speedup_at_max_size": 0.2},
    }))
    assert bench.main(["--check", str(bad)]) == 1
    good = tmp_path / "BENCH_good.json"
    good.write_text(json.dumps({
        "schema": "repro-bench-engine/1",
        "summary": {"fo_median_speedup_at_max_size": 12.0},
    }))
    assert bench.main(["--check", str(good)]) == 0
