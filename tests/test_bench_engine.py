"""Smoke tests for :mod:`repro.bench` — the engine benchmark runner
stays runnable and its JSON stays well-formed (tiny sizes only)."""

import json

from repro import bench


def test_quick_benchmark_writes_wellformed_json(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    code = bench.main(
        ["--quick", "--output", str(out), "--seed", "3", "--repeats", "1"]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == bench.SCHEMA
    assert report["quick"] is True
    assert report["seed"] == 3
    fo_rows = report["fo"]["rows"]
    xpath_rows = report["xpath"]["rows"]
    assert len(fo_rows) == len(bench.FO_SIZES_QUICK) * len(bench.FO_FORMULAS)
    assert len(xpath_rows) == (
        len(bench.XPATH_SIZES_QUICK) * len(bench.XPATH_EXPRESSIONS)
    )
    for row in fo_rows + xpath_rows:
        assert row["reference_seconds"] > 0
        assert row["engine_seconds"] > 0
        assert row["speedup"] > 0
    assert report["errors"] == []  # no per-case exception was swallowed
    summary = report["summary"]
    assert summary["errors"] == 0
    assert summary["fo_max_size"] == bench.FO_SIZES_QUICK[-1]
    assert summary["xpath_max_size"] == bench.XPATH_SIZES_QUICK[-1]
    assert summary["pass"] is True  # quick mode never gates on speed


def test_benchmark_report_is_agreement_checked(monkeypatch):
    # The bench raises (rather than records nonsense) if the engines
    # ever disagree on a timed case.
    def broken(formula, tree, order):
        return frozenset({(("bogus",),)})

    monkeypatch.setattr(bench.fast_fo, "satisfying_assignments", broken)
    try:
        bench.run_fo_benchmark([6], seed=0, repeats=1)
    except AssertionError as err:
        assert "disagree" in str(err)
    else:  # pragma: no cover
        raise AssertionError("expected the differential guard to fire")


def test_committed_trajectory_matches_schema():
    # The repo ships a full-size BENCH_engine.json; keep it honest.
    from pathlib import Path

    path = Path(__file__).resolve().parents[1] / "BENCH_engine.json"
    report = json.loads(path.read_text())
    assert report["schema"] == bench.SCHEMA
    assert report.get("errors", []) == []
    summary = report["summary"]
    assert summary["pass"] is True
    assert summary.get("errors", 0) == 0
    if not report["quick"]:  # `make bench` may have left a quick regen
        assert (
            summary["fo_median_speedup_at_max_size"]
            >= summary["thresholds"]["fo"]
        )
        assert (
            summary["xpath_median_speedup_at_max_size"]
            >= summary["thresholds"]["xpath"]
        )
