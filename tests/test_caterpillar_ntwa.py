"""Caterpillar → NTWA compilation: [7] embeds into the TWA model."""

import pytest

from repro.automata.nondet import ntwa_accepts, reachable_configurations
from repro.caterpillar import caterpillar_to_ntwa, parse_caterpillar, walk
from repro.trees import all_trees, parse_term, random_tree

EXPRESSIONS = [
    "up",
    "down",
    "(down | right)* isLeaf",
    "up* isRoot",
    "down right* isLast",
    "<δ> down",
    "(down down)* isLeaf",
    "down+ <σ>",
    "eps",
    "isRoot | down",
    "left? right?",
]


@pytest.mark.parametrize("text", EXPRESSIONS)
def test_compiled_ntwa_agrees_with_walk(text):
    expr = parse_caterpillar(text)
    ntwa = caterpillar_to_ntwa(expr)
    for seed in range(5):
        tree = random_tree(1 + seed * 2, alphabet=("σ", "δ"), seed=seed)
        for start in tree.nodes:
            assert ntwa_accepts(ntwa, tree, start=start) == bool(
                walk(expr, tree, start)
            ), (text, seed, start)


def test_compiled_ntwa_exhaustive_small():
    expr = parse_caterpillar("(down | right)* <δ> isLeaf")
    ntwa = caterpillar_to_ntwa(expr)
    for tree in all_trees(3, ("σ", "δ")):
        want = bool(walk(expr, tree, ()))
        assert ntwa_accepts(ntwa, tree) == want, tree


def test_compiled_size_is_linear_in_expression():
    small = caterpillar_to_ntwa(parse_caterpillar("down"))
    large = caterpillar_to_ntwa(parse_caterpillar("(down | right)* isLeaf up*"))
    assert len(small.states) < len(large.states) < 40


def test_configurations_stay_linear():
    ntwa = caterpillar_to_ntwa(parse_caterpillar("(down | right)* isLeaf"))
    for n in (8, 16, 32):
        tree = random_tree(n, seed=n)
        assert reachable_configurations(ntwa, tree) <= n * len(ntwa.states)


def test_semantics_of_fixed_cases():
    tree = parse_term("σ(δ(σ), σ)")
    assert ntwa_accepts(
        caterpillar_to_ntwa(parse_caterpillar("down <δ> down isLeaf")), tree
    )
    assert not ntwa_accepts(
        caterpillar_to_ntwa(parse_caterpillar("down <δ> down down")), tree
    )
