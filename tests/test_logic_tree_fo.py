"""FO over τ_{Σ,A}: atoms, connectives, quantifiers, model checking."""

import pytest

from repro.logic import tree_fo as T
from repro.logic import evaluate, free_variables, satisfying_assignments
from repro.logic.tree_fo import NVar, TreeFormulaError
from repro.trees import parse_term

x, y, v = NVar("x"), NVar("y"), NVar("v")


def test_label_atom(small_tree):
    f = T.exists(x, T.Label("dept", x))
    assert evaluate(f, small_tree)
    assert not evaluate(T.exists(x, T.Label("zzz", x)), small_tree)


def test_edge_vs_descendant(small_tree):
    child = T.exists([x, y], T.conj(T.Label("catalog", x), T.Edge(x, y),
                                    T.Label("item", y)))
    desc = T.exists([x, y], T.conj(T.Label("catalog", x), T.Desc(x, y),
                                   T.Label("item", y)))
    assert not evaluate(child, small_tree)  # items are grandchildren
    assert evaluate(desc, small_tree)


def test_sibling_order(small_tree):
    f = T.exists([x, y], T.conj(T.SibLess(x, y), T.Label("dept", x),
                                T.Label("dept", y)))
    assert evaluate(f, small_tree)


def test_val_const_and_val_eq(small_tree):
    f = T.exists(x, T.ValConst("cur", x, "USD"))
    assert evaluate(f, small_tree)
    g = T.exists([x, y], T.conj(T.Not(T.NodeEq(x, y)),
                                T.ValEq("cur", x, "cur", y)))
    assert evaluate(g, small_tree)  # the two EUR items


def test_paper_example_sentence():
    # ∀x (val_a(x) = d ∨ val_a(x) = val_b(x)) — the §2.2 example
    t = parse_term("r[a=5, b=5](n[a=9, b=9], n[a=5, b=1])")
    f = T.forall(x, T.disj(T.ValConst("a", x, 5), T.ValEq("a", x, "b", x)))
    assert evaluate(f, t)
    t2 = parse_term("r[a=5, b=5](n[a=9, b=8])")
    assert not evaluate(f, t2)


def test_extra_predicates(small_tree):
    assert evaluate(T.exists(x, T.conj(T.Root(x), T.Label("catalog", x))),
                    small_tree)
    assert evaluate(T.forall(x, T.implies(T.Leaf(x), T.Label("item", x))),
                    small_tree)
    first_and_last = T.exists(x, T.conj(T.First(x), T.Last(x)))
    assert evaluate(first_and_last, small_tree)  # the lone USD item
    succ = T.exists([x, y], T.conj(T.Succ(x, y), T.Label("dept", x)))
    assert evaluate(succ, small_tree)


def test_quantifier_shadowing():
    t = parse_term("a(b)")
    # ∃x (Label_a(x) ∧ ∃x Label_b(x)) — inner x shadows outer
    f = T.Exists(x, T.And((T.Label("a", x), T.Exists(x, T.Label("b", x)))))
    assert evaluate(f, t)


def test_free_variables():
    f = T.Exists(x, T.conj(T.Edge(x, y), T.Label("a", x)))
    assert free_variables(f) == frozenset({y})
    assert free_variables(T.forall([x, y], T.Edge(x, y))) == frozenset()


def test_unbound_variable_raises(small_tree):
    with pytest.raises(TreeFormulaError):
        evaluate(T.Edge(x, y), small_tree)


def test_explicit_assignment(small_tree):
    f = T.Label("dept", x)
    assert evaluate(f, small_tree, {x: (0,)})
    assert not evaluate(f, small_tree, {x: ()})


def test_satisfying_assignments(small_tree):
    f = T.conj(T.Edge(x, y), T.Label("dept", y))
    got = satisfying_assignments(f, small_tree, [x, y])
    assert got == frozenset({((), (0,)), ((), (1,))})


def test_satisfying_assignments_order_checked(small_tree):
    with pytest.raises(TreeFormulaError):
        satisfying_assignments(T.Edge(x, y), small_tree, [x])


def test_quantifier_free_detector():
    from repro.logic import quantifier_free

    assert quantifier_free(T.conj(T.Edge(x, y), T.Not(T.Label("a", x))))
    assert not quantifier_free(T.exists(x, T.Label("a", x)))


def test_variables_counter():
    f = T.exists([x, y], T.conj(T.Edge(x, y), T.Desc(x, v)))
    assert T.variables(f) == frozenset({x, y, v})
