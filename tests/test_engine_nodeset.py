"""Property battery for the shared node-set kernel
(:mod:`repro.engine.nodeset`).

Everything downstream — the walking engine, the plan IR, the stacked
shard executor — leans on a handful of algebraic identities of these
primitives.  This battery pins them down with Hypothesis directly on
random bit patterns and random partial injections, independently of any
tree:

* ``iter_bits``/``bit_count`` agree with the naive binary expansion;
* a shift-decomposed move equals the naive per-edge image, and
  decomposition round-trips through application edge by edge;
* interval masks are exactly the half-open id ranges they claim;
* lane stacking is lossless (``split ∘ stack = id``), lane widths are
  powers of two large enough for their trees, and the SWAR broadcast
  maps "lane non-empty" to "lane full" without ever leaking bits
  across lanes.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.nodeset import (
    apply_atom,
    apply_shift_groups,
    bit_count,
    broadcast_lanes,
    interval_mask,
    iter_bits,
    lane_tiler,
    lane_width_for,
    shift_groups,
    split_lanes,
    stack_masks,
)

bitsets = st.integers(min_value=0, max_value=2**96 - 1)
small = st.integers(min_value=0, max_value=63)


# -- bit iteration / popcount -------------------------------------------------


@given(bitsets)
@settings(max_examples=100, deadline=None)
def test_iter_bits_matches_binary_expansion(bits):
    expected = [i for i in range(bits.bit_length()) if bits >> i & 1]
    assert list(iter_bits(bits)) == expected
    assert bit_count(bits) == len(expected)
    assert bit_count(bits) == bin(bits).count("1")


def test_iter_bits_ascending_is_document_order():
    assert list(iter_bits(0)) == []
    assert list(iter_bits(0b1010011)) == [0, 1, 4, 6]


# -- shift decomposition ------------------------------------------------------


@st.composite
def partial_injections(draw):
    """A partial injective map on [0, 64) as an edge list — the shape of
    every move graph (parent, sibling, first-child links)."""
    n = draw(st.integers(min_value=1, max_value=64))
    sources = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            unique=True,
            max_size=n,
        )
    )
    targets = draw(
        st.permutations(list(range(n))).map(lambda p: p[: len(sources)])
    )
    return n, list(zip(sources, targets))


@given(partial_injections(), bitsets)
@settings(max_examples=100, deadline=None)
def test_shift_groups_equal_naive_edge_image(edges_spec, frontier_bits):
    n, edges = edges_spec
    frontier = frontier_bits & ((1 << n) - 1)
    groups = shift_groups(edges)
    expected = 0
    for source, target in edges:
        if frontier >> source & 1:
            expected |= 1 << target
    assert apply_shift_groups(groups, frontier) == expected
    # apply_atom with groups behaves identically; with None it is the
    # test-mask intersection instead.
    assert apply_atom(groups, 0, frontier) == expected
    assert apply_atom(None, frontier, (1 << n) - 1) == frontier


@given(partial_injections())
@settings(max_examples=60, deadline=None)
def test_shift_groups_partition_sources(edges_spec):
    """Every source lands in exactly one group, with the shift equal to
    its target distance — the decomposition loses nothing."""
    _, edges = edges_spec
    groups = shift_groups(edges)
    seen = 0
    for shift, mask in groups:
        assert mask  # no empty buckets
        assert not (seen & mask)  # disjoint
        seen |= mask
        for source in iter_bits(mask):
            assert (source, source + shift) in edges
    assert bit_count(seen) == len(edges)


# -- intervals ----------------------------------------------------------------


@given(small, small)
@settings(max_examples=100, deadline=None)
def test_interval_mask_is_half_open_range(a, b):
    start, stop = min(a, b), max(a, b)
    mask = interval_mask(start, stop)
    assert list(iter_bits(mask)) == list(range(start, stop))
    assert interval_mask(start, start) == 0


# -- lane stacking ------------------------------------------------------------


@given(st.integers(min_value=1, max_value=10_000))
@settings(max_examples=100, deadline=None)
def test_lane_width_is_smallest_sufficient_power_of_two(n):
    width = lane_width_for(n)
    assert width >= n
    assert width & (width - 1) == 0  # power of two
    assert width == 1 or width // 2 < n  # smallest such


@given(
    st.lists(
        st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=12
    )
)
@settings(max_examples=100, deadline=None)
def test_stack_then_split_roundtrips(masks):
    width = lane_width_for(16)
    packed = stack_masks(masks, width)
    assert split_lanes(packed, width, len(masks)) == masks
    # Popcount distributes over lanes.
    assert bit_count(packed) == sum(bit_count(m) for m in masks)


@given(
    st.lists(
        st.integers(min_value=0, max_value=2**16 - 1), min_size=1, max_size=12
    )
)
@settings(max_examples=100, deadline=None)
def test_broadcast_maps_nonempty_lanes_to_full(masks):
    """The SWAR OR-fold turns each non-empty lane into an all-ones lane
    and leaves empty lanes empty — no cross-lane leakage, the property
    the power-of-two padding exists for."""
    width = lane_width_for(16)
    packed = stack_masks(masks, width)
    spread = broadcast_lanes(packed, width, len(masks))
    full = (1 << width) - 1
    assert split_lanes(spread, width, len(masks)) == [
        full if m else 0 for m in masks
    ]


def test_broadcast_requires_power_of_two_width():
    with pytest.raises(ValueError):
        broadcast_lanes(1, 48, 2)


@given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=12))
@settings(max_examples=60, deadline=None)
def test_lane_tiler_places_one_bit_per_lane(width, lanes):
    tiler = lane_tiler(width, lanes)
    assert list(iter_bits(tiler)) == [lane * width for lane in range(lanes)]
    assert lane_tiler(width, 0) == 0
