"""The service wire protocol in isolation: framing round-trips, the
size cap binds at both ends, torn input is detected, and the error
envelope carries its closed code set."""

import socket
import threading

import pytest

from repro.service import protocol


class TestFraming:
    def test_roundtrip(self):
        frame = protocol.encode_frame({"op": "ping", "n": 3})
        body, rest = protocol.split_frame(frame)
        assert rest == b""
        assert protocol.decode_payload(body) == {"op": "ping", "n": 3}

    def test_prefix_is_big_endian_length(self):
        frame = protocol.encode_frame({})
        assert frame[:4] == (len(frame) - 4).to_bytes(4, "big")

    def test_split_waits_for_a_full_frame(self):
        frame = protocol.encode_frame({"op": "ping"})
        for cut in range(len(frame)):
            body, rest = protocol.split_frame(frame[:cut])
            assert body is None
            assert rest == frame[:cut]

    def test_split_leaves_the_next_frame_in_the_buffer(self):
        one = protocol.encode_frame({"a": 1})
        two = protocol.encode_frame({"b": 2})
        body, rest = protocol.split_frame(one + two)
        assert protocol.decode_payload(body) == {"a": 1}
        assert rest == two

    def test_oversized_frame_is_rejected_before_buffering(self):
        prefix = (protocol.MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(protocol.FrameTooLarge):
            protocol.split_frame(prefix)

    def test_encode_rejects_an_oversized_payload(self):
        with pytest.raises(protocol.FrameTooLarge):
            protocol.encode_frame({"blob": "x" * (protocol.MAX_FRAME + 1)})

    def test_non_json_body_is_a_frame_error(self):
        with pytest.raises(protocol.FrameError):
            protocol.decode_payload(b"\xff\xfe not json")

    def test_non_object_payload_is_a_frame_error(self):
        with pytest.raises(protocol.FrameError):
            protocol.decode_payload(b"[1, 2, 3]")

    def test_unicode_query_text_survives_the_wire(self):
        payload = {"queries": [{"kind": "xpath", "text": "//σ//δ"}]}
        body, _ = protocol.split_frame(protocol.encode_frame(payload))
        assert protocol.decode_payload(body) == payload


class TestSocketReads:
    def _serve_bytes(self, blob):
        """A throwaway listener that sends ``blob`` and closes."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def run():
            conn, _ = listener.accept()
            conn.sendall(blob)
            conn.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        client = socket.create_connection(listener.getsockname(), timeout=5)
        return listener, thread, client

    def test_read_frame_from_socket_roundtrips(self):
        frame = protocol.encode_frame({"op": "pong"})
        listener, thread, client = self._serve_bytes(frame)
        try:
            assert protocol.read_frame_from_socket(client) == {"op": "pong"}
        finally:
            client.close()
            listener.close()
            thread.join(timeout=5)

    def test_torn_body_is_detected(self):
        frame = protocol.encode_frame({"op": "pong"})
        listener, thread, client = self._serve_bytes(frame[:-3])
        try:
            with pytest.raises(protocol.TornFrame):
                protocol.read_frame_from_socket(client)
        finally:
            client.close()
            listener.close()
            thread.join(timeout=5)

    def test_torn_prefix_is_detected(self):
        listener, thread, client = self._serve_bytes(b"\x00\x00")
        try:
            with pytest.raises(protocol.TornFrame):
                protocol.read_frame_from_socket(client)
        finally:
            client.close()
            listener.close()
            thread.join(timeout=5)


class TestErrorEnvelope:
    def test_error_response_shape(self):
        response = protocol.error_response(
            protocol.OVERLOADED, "full", retry_after_ms=40
        )
        assert response == {
            "ok": False,
            "error": {
                "code": "OVERLOADED",
                "message": "full",
                "retry_after_ms": 40,
            },
        }

    def test_unknown_code_is_rejected(self):
        with pytest.raises(ValueError):
            protocol.error_response("SURPRISE", "nope")

    def test_raise_for_error_passes_success_through(self):
        response = protocol.ok_response(results=[])
        assert protocol.raise_for_error(response) is response

    def test_raise_for_error_raises_the_structured_code(self):
        response = protocol.error_response(
            protocol.DEADLINE, "too slow"
        )
        with pytest.raises(protocol.ServiceError) as err:
            protocol.raise_for_error(response)
        assert err.value.code == protocol.DEADLINE
        assert err.value.retry_after_ms is None

    def test_every_code_is_in_the_closed_set(self):
        assert set(protocol.ERROR_CODES) == {
            "PARSE_ERROR", "RESOURCE_EXHAUSTED", "DEADLINE",
            "OVERLOADED", "BAD_REQUEST", "INTERNAL", "SHUTDOWN",
        }
