"""Hypothesis differential properties: the indexed set-at-a-time
engines (:mod:`repro.engine`) agree with the reference evaluators on
seeded random trees and queries.

These complement the ``fo/fast-fo`` and ``xpath/fast-xpath`` oracle
pairs: the oracle fuzzes broadly with shrinking and corpus persistence;
these run on every test invocation and pin the agreement into tier 1.
"""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine import fo as fast_fo
from repro.engine import xpath as fast_xpath
from repro.logic import tree_fo
from repro.logic.exists_star import ExistsStarQuery, X, Y
from repro.oracle import generators as gen
from repro.xpath.evaluator import select as reference_xpath_select

seeds = st.integers(min_value=0, max_value=10_000)


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_fast_fo_relations_match_reference(seed):
    """Full FO (∀/→/¬ freely nested): identical satisfying-assignment
    relations, which subsumes sentence truth (arity-0 relations)."""
    rng = random.Random(seed)
    tree = gen.random_attributed_tree(rng, 10)
    formula = gen.random_fo_formula(rng)
    order = sorted(tree_fo.free_variables(formula), key=lambda v: v.name)
    assert fast_fo.satisfying_assignments(
        formula, tree, order
    ) == tree_fo.satisfying_assignments(formula, tree, order)


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_fast_fo_sentences_match_reference(seed):
    rng = random.Random(seed)
    tree = gen.random_attributed_tree(rng, 12)
    sentence = gen.random_fo_sentence(rng)
    assert fast_fo.evaluate(sentence, tree) == tree_fo.evaluate(
        sentence, tree
    )


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_fast_fo_select_matches_exists_star(seed):
    """Binary selectors: same nodes, same document order, including the
    y-not-free all-or-none convention."""
    rng = random.Random(seed)
    tree = gen.random_attributed_tree(rng, 12)
    formula = gen.random_exists_star(rng)
    context = gen.random_context(rng, tree)
    query = ExistsStarQuery(formula, X, Y)
    assert fast_fo.select(formula, tree, context, X, Y) == query.select(
        tree, context
    )


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_fast_xpath_matches_reference(seed):
    """XPath with the raised variable cap: deeper filter nesting than
    the compile-to-FO pairs can afford."""
    rng = random.Random(seed)
    tree = gen.random_attributed_tree(rng, 16)
    expr = gen.random_xpath(
        rng, max_variables=gen.FAST_ENGINE_MAX_VARIABLES
    )
    context = gen.random_context(rng, tree)
    assert fast_xpath.select(expr, tree, context) == reference_xpath_select(
        expr, tree, context
    )
