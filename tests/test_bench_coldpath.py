"""Smoke tests for the ``--suite coldpath`` benchmark — the
zero-rebuild sweep stays runnable at toy sizes, its JSON stays
well-formed, the committed full-size trajectory keeps clearing its
gates, and ``--check`` rejects a trajectory that stopped clearing
them."""

import json
from pathlib import Path

import pytest

from repro import bench

pytestmark = pytest.mark.store


@pytest.fixture(scope="module")
def quick_report(tmp_path_factory):
    """One quick sweep, shared: the suite forks ingest and measurement
    children, so rerunning it per test would dominate the battery."""
    out = tmp_path_factory.mktemp("coldpath") / "BENCH_coldpath.json"
    code = bench.main(
        [
            "--suite", "coldpath", "--quick",
            "--output", str(out), "--seed", "3", "--repeats", "1",
        ]
    )
    return code, json.loads(out.read_text())


def test_quick_coldpath_benchmark_writes_wellformed_json(quick_report):
    code, report = quick_report
    assert code == 0
    assert report["schema"] == bench.COLDPATH_SCHEMA
    assert report["quick"] is True
    assert report["seed"] == 3
    assert report["errors"] == []  # no per-case exception was swallowed
    rows = report["coldpath"]["rows"]
    assert [r["n"] for r in rows] == list(bench.COLDPATH_TREE_COUNTS_QUICK)
    for row in rows:
        assert row["window"] == min(bench.COLDPATH_WINDOW, row["n"])
        assert row["ingest_seconds"] > 0
        assert row["cold_sidecar_seconds"] > 0
        assert row["cold_rebuild_seconds"] > 0
        assert row["packed_lanes"] > 0  # the packed path really engaged
        assert row["disagreements"] == 0
        assert row["speedup"] > 0
    cache_rows = report["coldpath"]["cache_rows"]
    assert [r["n"] for r in cache_rows] == list(
        bench.COLDPATH_TREE_COUNTS_QUICK
    )
    for row in cache_rows:
        assert row["windows"] > 0
        assert row["hit_p50_ms"] < row["miss_p50_ms"]
        assert row["wrong_answers"] == 0
        assert row["cache_info"]["hits"] > 0
    summary = report["summary"]
    assert summary["errors"] == 0
    assert summary["coldpath_disagreements"] == 0
    assert summary["coldpath_wrong_answers"] == 0
    assert summary["pass"] is True  # quick mode never gates on speed


def test_committed_coldpath_trajectory_matches_schema():
    # The repo ships a full-size BENCH_coldpath.json; keep it honest.
    path = Path(__file__).resolve().parents[1] / "BENCH_coldpath.json"
    report = json.loads(path.read_text())
    assert report["schema"] == bench.COLDPATH_SCHEMA
    assert report.get("errors", []) == []
    summary = report["summary"]
    assert summary["pass"] is True
    assert summary["coldpath_disagreements"] == 0
    assert summary["coldpath_wrong_answers"] == 0
    if not report["quick"]:  # a quick regen may be lying around
        thresholds = summary["thresholds"]
        assert (
            summary["coldpath_sidecar_speedup_at_max_size"]
            >= thresholds["sidecar"]
        )
        assert (
            summary["coldpath_cache_speedup_at_max_size"]
            >= thresholds["cache"]
        )


def test_check_rejects_a_coldpath_trajectory_below_its_gates(
    quick_report, tmp_path
):
    _, report = quick_report
    report = json.loads(json.dumps(report))  # private mutable copy
    report["quick"] = False  # full-size reports must carry their gates
    report["summary"]["coldpath_sidecar_speedup_at_max_size"] = 1.2
    path = tmp_path / "BENCH_coldpath.json"
    path.write_text(json.dumps(report))
    assert bench.main(["--check", str(path)]) == 1


def test_check_rejects_any_wrong_cached_answer(quick_report, tmp_path):
    _, report = quick_report
    report = json.loads(json.dumps(report))
    report["summary"]["coldpath_wrong_answers"] = 1  # quick or not
    path = tmp_path / "BENCH_coldpath.json"
    path.write_text(json.dumps(report))
    assert bench.main(["--check", str(path)]) == 1


def test_check_accepts_a_passing_coldpath_trajectory(
    quick_report, tmp_path
):
    _, report = quick_report
    path = tmp_path / "BENCH_coldpath.json"
    path.write_text(json.dumps(report))
    assert bench.main(["--check", str(path)]) == 0
