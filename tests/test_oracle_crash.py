"""Engine crashes inside the oracle become structured ``crash``
disagreements — persisted like value mismatches, never aborting a run."""

import json

import pytest

from repro.oracle.driver import run_oracle
from repro.oracle.pairs import Outcome, XPathVsFastXPath, crash_outcome
from repro.oracle.shrink import shrink_case


class CrashingPair(XPathVsFastXPath):
    """A pair whose right engine always dies — the worst-case engine bug."""

    name = "crash/always"

    def check(self, case):
        raise RuntimeError("engine exploded mid-query")


class FlakyPair(XPathVsFastXPath):
    """Crashes only on trees larger than one node, so the shrinker has a
    gradient to descend."""

    name = "crash/flaky"

    def check(self, case):
        if case.tree.size > 1:
            raise RuntimeError("engine exploded on a non-trivial tree")
        return super().check(case)


def test_crash_outcome_is_structured():
    outcome = crash_outcome(RuntimeError("boom"))
    assert not outcome.agree
    assert outcome.error == "crash: RuntimeError: boom"
    assert outcome.problem_class == "crash"
    # Ordinary error/mismatch classes are untouched.
    assert Outcome(agree=False, left="a", right="b").problem_class == "mismatch"
    assert Outcome(agree=False, left="?", right="?",
                   error="fuel gone").problem_class == "error"


def test_run_oracle_survives_a_crashing_pair(tmp_path):
    report = run_oracle(
        seed=0, budget=6, pairs=(CrashingPair(),), max_size=5,
        corpus_dir=tmp_path,
    )
    assert report.total_cases() == 6
    assert report.total_disagreements() == 6
    assert len(report.disagreements) == 6
    for d in report.disagreements:
        assert d.outcome.problem_class == "crash"
        assert "RuntimeError" in d.outcome.error
        assert d.saved_to is not None and d.saved_to.exists()
    # The persisted entry is a decodable corpus record.
    entry = json.loads(report.disagreements[0].saved_to.read_text())
    assert entry["pair"] == "crash/always"
    assert "tree" in entry and "query" in entry


def test_shrinker_minimises_a_crash_case():
    pair = FlakyPair()
    import random

    case = pair.generate(random.Random(42), 8)
    assert case.tree.size > 1  # otherwise nothing to shrink toward
    shrunk, outcome, evals = shrink_case(pair, case)
    assert outcome.problem_class == "crash"
    assert shrunk.tree.size <= case.tree.size
    assert evals >= 1


def test_healthy_pairs_are_unaffected():
    report = run_oracle(seed=0, budget=4, pairs=(XPathVsFastXPath(),),
                        max_size=6, corpus_dir=None)
    assert report.total_cases() == 4
    assert report.total_disagreements() == 0
