"""CLI tests (python -m repro …)."""

import pytest

from repro.__main__ import main


@pytest.fixture
def doc_file(tmp_path):
    path = tmp_path / "doc.term"
    path.write_text(
        'catalog(dept(item[cur="EUR"], item[cur="EUR"]), dept(item[cur="USD"]))'
    )
    return str(path)


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text('<a><b cur="EUR"/><b cur="EUR"/></a>')
    return str(path)


def test_info(doc_file, capsys):
    assert main(["info", doc_file]) == 0
    out = capsys.readouterr().out
    assert "nodes:      6" in out
    assert "cur" in out


def test_info_xml(xml_file, capsys):
    assert main(["info", xml_file]) == 0
    assert "nodes:      3" in capsys.readouterr().out


def test_query_xpath(doc_file, capsys):
    assert main(["query", doc_file, "--xpath", "catalog//item"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines == ["1.1", "1.2", "2.1"]


def test_query_ask(doc_file, capsys):
    assert main(["query", doc_file, "--ask", 'exists x val_cur(x) = "USD"']) == 0
    assert capsys.readouterr().out.strip() == "true"
    assert main(["query", doc_file, "--ask", 'exists x val_cur(x) = "GBP"']) == 1


def test_query_select(doc_file, capsys):
    assert main(["query", doc_file, "--select", "x << y & O_dept(y)"]) == 0
    assert capsys.readouterr().out.strip().splitlines() == ["1", "2"]


def test_run_listing(capsys):
    assert main(["run", "--list"]) == 0
    out = capsys.readouterr().out
    assert "example-3.2" in out and "even-leaves" in out


def test_run_automaton(doc_file, capsys):
    assert main(["run", doc_file, "even-leaves"]) == 1  # 3 leaves: odd
    assert capsys.readouterr().out.strip() == "reject"
    assert main(["run", doc_file, "all-values-same"]) == 1


def test_run_unknown(doc_file, capsys):
    assert main(["run", doc_file, "nope"]) == 2


def test_transform(doc_file, capsys):
    assert main(["transform", doc_file, "catalog-report"]) == 0
    out = capsys.readouterr().out
    assert "<report>" in out and "item-ref" in out


def test_transform_listing(capsys):
    assert main(["transform", "--list"]) == 0
    assert "identity" in capsys.readouterr().out


def test_protocol(capsys):
    assert main(["protocol", "atp-all-same", "a,a", "a"]) == 0
    out = capsys.readouterr().out
    assert "TypeMessage" in out and "verdict: accept" in out
    assert main(["protocol", "atp-all-same", "a", "b"]) == 1


def test_protocol_listing(capsys):
    assert main(["protocol", "--list"]) == 0
    assert "walking-all-same" in capsys.readouterr().out


def test_stdin(capsys, monkeypatch):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("a(b, c)"))
    assert main(["info", "-"]) == 0
    assert "nodes:      3" in capsys.readouterr().out


def test_protocol_program_file(tmp_path, capsys):
    from repro.automata.textformat import serialize_automaton
    from repro.protocol.programs import atp_all_same

    path = tmp_path / "program.tw"
    path.write_text(serialize_automaton(atp_all_same()))
    assert main(["protocol", "x", "a,a", "a", "--program-file", str(path)]) == 0
    assert "verdict: accept" in capsys.readouterr().out


def test_corpus_batch(doc_file, xml_file, capsys):
    assert main([
        "corpus", doc_file, xml_file,
        "--xpath", "//item", "--ask", "exists x O_dept(x)",
        "--stats",
    ]) == 0
    out = capsys.readouterr().out
    assert f"{doc_file}:" in out
    assert f"{xml_file}:" in out
    assert "xpath //item:" in out
    assert "true" in out and "false" in out
    assert "2 trees x 2 queries" in out
    assert "chunk 0" in out


def test_corpus_requires_a_query(doc_file, capsys):
    assert main(["corpus", doc_file]) == 2
    assert "at least one" in capsys.readouterr().err
