"""Run the doctests embedded in module docstrings."""

import doctest

import pytest

import repro.caterpillar
import repro.corpus
import repro.oracle
import repro.pebbleautomata
import repro.queries.facade
import repro.transducer

MODULES = [
    repro.caterpillar,
    repro.corpus,
    repro.oracle,
    repro.pebbleautomata,
    repro.queries.facade,
    repro.transducer,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, attempted = doctest.testmod(module)
    assert attempted > 0, f"{module.__name__} lost its doctest examples"
    assert failures == 0
