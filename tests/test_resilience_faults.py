"""The fault-injection harness: injectors, schedules, and campaigns."""

import pytest

from repro.resilience import (
    Fault,
    FaultInjector,
    InjectedFault,
    InjectedStall,
    ResourceExhausted,
    broken_internals,
    run_campaign,
)
from repro.resilience.cli import main as resilience_main


# -- injector mechanics ------------------------------------------------------------


def test_fault_validates_its_fields():
    with pytest.raises(ValueError):
        Fault(at_checkpoint=0)
    with pytest.raises(ValueError):
        Fault(at_checkpoint=1, kind="meltdown")


def test_injector_counts_without_a_fault():
    injector = FaultInjector()
    for _ in range(5):
        injector.checkpoint()
    assert injector.count == 5
    assert injector.fired == 0


def test_injector_fires_exactly_at_the_scheduled_checkpoint():
    injector = FaultInjector(Fault(at_checkpoint=3, kind="error"))
    injector.checkpoint()
    injector.checkpoint()
    with pytest.raises(InjectedFault):
        injector.checkpoint()
    assert injector.fired == 1
    # Past the scheduled point it is inert again.
    injector.checkpoint()
    assert injector.count == 4


def test_stall_is_resource_exhausted():
    injector = FaultInjector(Fault(at_checkpoint=1, kind="stall"))
    with pytest.raises(InjectedStall) as info:
        injector.checkpoint()
    assert isinstance(info.value, ResourceExhausted)
    assert info.value.resource == "deadline"


def test_broken_internals_restores_on_exit():
    class Engine:
        def work(self):
            return 42

    engine = Engine()
    with broken_internals(Engine, "work", calls_before_failure=1):
        assert engine.work() == 42  # first call passes
        with pytest.raises(InjectedFault):
            engine.work()
    assert engine.work() == 42  # original restored


# -- campaigns ----------------------------------------------------------------------


@pytest.mark.faults
def test_campaign_absorbs_every_injected_fault():
    report = run_campaign(seed=0, cases=25, max_size=6)
    assert report.ok, "\n".join(report.summary_lines())
    assert len(report.cases) == 25
    assert report.injected > 0
    # Every injected fault was answered via fallback, byte-identically.
    for case in report.cases:
        assert case.agreed
        assert case.error is None
        if case.fault is not None:
            assert case.fell_back


@pytest.mark.faults
def test_campaign_is_deterministic():
    first = run_campaign(seed=7, cases=10, max_size=5)
    second = run_campaign(seed=7, cases=10, max_size=5)
    assert [(c.operation, c.query, c.tree, c.fault) for c in first.cases] == \
        [(c.operation, c.query, c.tree, c.fault) for c in second.cases]


@pytest.mark.faults
def test_campaign_covers_every_operation():
    report = run_campaign(seed=1, cases=10, max_size=5)
    assert {c.operation for c in report.cases} == {
        "xpath", "holds", "caterpillar", "caterpillar_relation",
        "run_automaton",
    }


@pytest.mark.faults
def test_cli_exit_status(capsys):
    assert resilience_main(["--seed", "3", "--cases", "5"]) == 0
    out = capsys.readouterr().out
    assert "fault campaign: seed=3 cases=5" in out
