"""Unit tests for the differential oracle: generators, engine pairs,
encodings, and the driver."""

import random

import pytest

from repro.logic import tree_fo
from repro.logic.exists_star import ExistsStarQuery, is_exists_star, variable_count
from repro.oracle import (
    Case,
    default_pairs,
    pairs_by_name,
    run_oracle,
)
from repro.oracle import generators as gen
from repro.oracle.pairs import (
    FUEL,
    XPathVsCaterpillar,
    enumerate_select,
    path_to_caterpillar,
)
from repro.trees.parser import parse_term
from repro.xpath.compiler import compile_xpath
from repro.xpath.parser import parse_xpath

from tests.conftest import tree_family


# -- generators --------------------------------------------------------------------


def test_random_tree_respects_vocabulary():
    rng = random.Random(1)
    for _ in range(20):
        tree = gen.random_attributed_tree(rng, 9)
        assert 1 <= tree.size <= 9
        assert set(tree.alphabet) <= set(gen.ALPHABET)
        assert tree.attributes == gen.ATTRIBUTES


def test_random_context_is_a_node():
    rng = random.Random(2)
    tree = gen.random_attributed_tree(rng, 12)
    for _ in range(10):
        assert gen.random_context(rng, tree) in tree


def test_random_xpath_round_trips_and_stays_small():
    rng = random.Random(3)
    for _ in range(40):
        expr = gen.random_xpath(rng)
        assert parse_xpath(repr(expr)) == expr
        assert variable_count(compile_xpath(expr).formula) <= 5


def test_random_walking_xpath_translates():
    rng = random.Random(4)
    for _ in range(40):
        path = gen.random_walking_xpath(rng)
        path_to_caterpillar(path)  # must not raise


def test_random_exists_star_is_in_fragment():
    rng = random.Random(5)
    for _ in range(40):
        formula = gen.random_exists_star(rng)
        assert is_exists_star(formula)
        assert tree_fo.free_variables(formula) <= {gen.X, gen.Y}


def test_specimens_cover_all_templates():
    rng = random.Random(6)
    seen = {gen.random_automaton_specimen(rng).template for _ in range(200)}
    assert seen == set(gen.TEMPLATES)


def test_generators_are_deterministic_per_seed():
    a = gen.random_attributed_tree(random.Random(7), 10)
    b = gen.random_attributed_tree(random.Random(7), 10)
    assert a == b
    assert gen.random_xpath(random.Random(7)) == gen.random_xpath(random.Random(7))


# -- the xpath → caterpillar translation -------------------------------------------


def test_path_to_caterpillar_child_axis(sigma_delta_tree):
    pair = XPathVsCaterpillar()
    for text in ["σ/δ", "*/σ", "./δ//σ", "σ//δ/σ", "*"]:
        case = Case(sigma_delta_tree, parse_xpath(text), ())
        outcome = pair.check(case)
        assert outcome.agree, (text, outcome)


def test_path_to_caterpillar_rejects_absolute_and_filters():
    with pytest.raises(ValueError):
        path_to_caterpillar(parse_xpath("/σ"))
    with pytest.raises(ValueError):
        path_to_caterpillar(parse_xpath("σ[δ]"))


# -- the from-scratch FO(∃*) reference ---------------------------------------------


def test_enumerate_select_matches_query_on_family():
    rng = random.Random(8)
    for tree in tree_family(count=6, max_size=7):
        for _ in range(5):
            formula = gen.random_exists_star(rng)
            query = ExistsStarQuery(formula, gen.X, gen.Y)
            for context in tree.nodes:
                assert enumerate_select(formula, tree, context) == query.select(
                    tree, context
                )


def test_enumerate_select_all_or_none_convention():
    # φ does not mention y → every node or none, matching ExistsStarQuery.
    tree = parse_term("σ[a=1](δ[a=2])")
    holds = tree_fo.Label("σ", gen.X)
    assert enumerate_select(holds, tree, ()) == tree.nodes
    assert enumerate_select(holds, tree, (0,)) == ()


# -- engine pairs ------------------------------------------------------------------


@pytest.mark.parametrize("pair", default_pairs(), ids=lambda p: p.name)
def test_pair_agrees_on_generated_cases(pair):
    rng = random.Random(9)
    for _ in range(8):
        case = pair.generate(rng, 8)
        outcome = pair.check(case)
        assert outcome.agree, (pair.name, outcome)


@pytest.mark.parametrize("pair", default_pairs(), ids=lambda p: p.name)
def test_pair_query_encoding_round_trips(pair):
    rng = random.Random(10)
    for _ in range(10):
        case = pair.generate(rng, 8)
        payload = pair.encode_query(case.query)
        assert pair.decode_query(payload) == case.query


@pytest.mark.parametrize("pair", default_pairs(), ids=lambda p: p.name)
def test_pair_shrink_candidates_are_wellformed(pair):
    rng = random.Random(11)
    case = pair.generate(rng, 8)
    for candidate in pair.shrink_query(case.query):
        # Every candidate must stay encodable (hence persistable).
        pair.encode_query(candidate)


# -- driver ------------------------------------------------------------------------


def test_run_oracle_round_robin_and_clean():
    report = run_oracle(seed=0, budget=28, max_size=6)
    assert report.total_cases() == 28
    assert report.total_disagreements() == 0
    assert [s.cases for s in report.stats] == [2] * 14


def test_run_oracle_subset_of_pairs():
    registry = pairs_by_name()
    report = run_oracle(
        seed=1, budget=6, pairs=[registry["runner/memo"]], max_size=6
    )
    assert len(report.stats) == 1
    assert report.stats[0].name == "runner/memo"
    assert report.stats[0].cases == 6
    # The runner/memo pair reports comparable step counters.
    assert report.stats[0].left_steps > 0
    assert report.stats[0].right_steps > 0


def test_runner_memo_fuel_is_bounded():
    assert FUEL <= 1_000_000  # keep the fuzzer's worst case bounded


def test_summary_lines_cover_all_pairs():
    report = run_oracle(seed=2, budget=6, max_size=5)
    text = "\n".join(report.summary_lines())
    for pair in default_pairs():
        assert pair.name in text
