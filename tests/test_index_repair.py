"""Hypothesis battery for incremental index repair.

:func:`repro.engine.index.repair_index` promises *byte identity*: after
a single-subtree splice, every derived structure of the patched index
equals the same structure of a from-scratch ``TreeIndex`` build — on
the splice path and on the damage-threshold rebuild fallback alike.
These properties run on every test invocation and pin that contract
into tier 1; the ``store`` bench then gates the speed half (repair
≥ 5x a rebuild at n ≥ 10k).
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine.index import (
    REPAIR_THRESHOLD,
    TreeIndex,
    index_structures,
    repair_index,
)
from repro.trees.generators import random_tree

seeds = st.integers(min_value=0, max_value=10_000)


def _splice(seed, tree_size, patch_size):
    """A (base index, edited tree, site) triple: one random subtree of
    a random tree swapped for an independently random replacement."""
    rng = random.Random(seed)
    tree = random_tree(
        tree_size, value_pool=(1, 2, 3), max_children=3, seed=seed
    )
    base = TreeIndex(tree)
    site = base.node_of[rng.randrange(base.n)]
    replacement = random_tree(
        patch_size, value_pool=(1, 2, 3), max_children=3, seed=seed + 1
    )
    edited = tree.replace_subtree(site, replacement)
    edited.nodes  # warm the lazy preorder before timing-sensitive use
    return base, edited, site


def _assert_identical(repaired, edited):
    rebuilt = TreeIndex(edited)
    left = index_structures(repaired)
    right = index_structures(rebuilt)
    assert left.keys() == right.keys()
    for name in left:
        assert left[name] == right[name], f"slot {name!r} diverged"


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_small_splice_repairs_byte_identically(seed):
    """Patches well under the damage threshold take the splice path and
    still reproduce every derived slot of a fresh build."""
    base, edited, site = _splice(seed, tree_size=60, patch_size=4)
    _assert_identical(repair_index(base, edited, site), edited)


@given(seeds)
@settings(max_examples=40, deadline=None)
def test_large_splice_falls_back_to_identical_rebuild(seed):
    """Patches past the threshold (here: bigger than the whole base
    tree) must fall back to a rebuild — and stay byte-identical."""
    base, edited, site = _splice(seed, tree_size=20, patch_size=30)
    assert 30 > REPAIR_THRESHOLD * max(base.n, len(edited.nodes))
    _assert_identical(repair_index(base, edited, site), edited)


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_threshold_zero_forces_the_rebuild_path(seed):
    """``threshold=0`` turns every repair into the fallback, so both
    code paths answer identically on the *same* splice."""
    base, edited, site = _splice(seed, tree_size=50, patch_size=4)
    spliced = repair_index(base, edited, site)
    rebuilt = repair_index(base, edited, site, threshold=0.0)
    assert index_structures(spliced) == index_structures(rebuilt)


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_chained_repairs_stay_identical(seed):
    """Repair-of-a-repair: the patched index is a valid base for the
    next edit, with no drift across a chain of splices."""
    rng = random.Random(seed)
    tree = random_tree(80, value_pool=(1, 2), max_children=3, seed=seed)
    index = TreeIndex(tree)
    for step in range(3):
        site = index.node_of[rng.randrange(index.n)]
        replacement = random_tree(
            3 + step, value_pool=(1, 2), max_children=3, seed=seed + step
        )
        edited = tree.replace_subtree(site, replacement)
        edited.nodes
        index = repair_index(index, edited, site)
        _assert_identical(index, edited)
        tree = edited


def test_repair_rejects_a_site_missing_from_the_old_tree():
    base, edited, _ = _splice(0, tree_size=30, patch_size=3)
    with pytest.raises(ValueError):
        repair_index(base, edited, (0,) * 40)


def test_repair_rejects_a_non_splice_edit():
    """Two simultaneous subtree swaps are not a single splice; the
    precondition check must refuse rather than patch garbage."""
    tree = random_tree(40, value_pool=(1, 2), max_children=3, seed=7)
    base = TreeIndex(tree)
    patch = random_tree(3, value_pool=(1, 2), max_children=3, seed=8)
    first, last = base.node_of[1], base.node_of[base.n - 1]
    singly = tree.replace_subtree(first, patch)
    if last not in set(singly.nodes):  # pragma: no cover - shape-dependent
        pytest.skip("second site swallowed by the first splice")
    doubly = singly.replace_subtree(last, patch)
    doubly.nodes
    if doubly.nodes == singly.nodes:  # pragma: no cover - shape-dependent
        pytest.skip("second splice was a no-op")
    with pytest.raises(ValueError):
        repair_index(base, doubly, first)
