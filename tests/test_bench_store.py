"""Smoke tests for the ``--suite store`` benchmark — the disk-store
sweep stays runnable at toy sizes, its JSON stays well-formed, the
committed full-size trajectory keeps clearing its gates, and
``--check`` rejects a trajectory that stopped clearing them."""

import json
from pathlib import Path

import pytest

from repro import bench

pytestmark = pytest.mark.store


def test_quick_store_benchmark_writes_wellformed_json(tmp_path):
    out = tmp_path / "BENCH_store.json"
    code = bench.main(
        [
            "--suite", "store", "--quick",
            "--output", str(out), "--seed", "3", "--repeats", "1",
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == bench.STORE_SCHEMA
    assert report["quick"] is True
    assert report["seed"] == 3
    assert report["errors"] == []  # no per-case exception was swallowed
    rows = report["store"]["rows"]
    assert [r["n"] for r in rows] == list(bench.STORE_TREE_COUNTS_QUICK)
    for row in rows:
        assert row["window"] == bench.STORE_WINDOW
        assert row["ingest_seconds"] > 0
        assert row["ingest_trees_per_second"] > 0
        assert row["ingest_peak_rss_kb"] > 0
        assert row["cold_open_seconds"] > 0
        assert row["warm_batch_seconds"] > 0
        assert row["speedup"] > 0
    repair_rows = report["store"]["repair_rows"]
    assert [r["n"] for r in repair_rows] == list(
        bench.STORE_REPAIR_SIZES_QUICK
    )
    for row in repair_rows:
        assert row["edits"] > 0
        assert 0 < row["min_speedup"] <= row["median_speedup"]
        assert row["median_speedup"] <= row["max_speedup"]
    assert len(report["store"]["queries"]) == len(bench.STORE_QUERIES)
    summary = report["summary"]
    assert summary["errors"] == 0
    assert summary["store_max_trees"] == bench.STORE_TREE_COUNTS_QUICK[-1]
    assert summary["store_warm_flat_ratio"] > 0
    assert summary["store_ingest_rss_ratio"] > 0
    assert summary["pass"] is True  # quick mode never gates on speed


def test_store_benchmark_is_agreement_checked(monkeypatch):
    # The bench raises (rather than records nonsense) if the store
    # batch ever disagrees with the naive per-call loop on the window.
    original = bench._naive_corpus_rows

    def broken(trees, queries):
        grid = original(trees, queries)
        return grid[::-1]  # scrambled tree order

    monkeypatch.setattr(bench, "_naive_corpus_rows", broken)
    try:
        bench.run_store_benchmark(
            [bench.STORE_WINDOW + 8], seed=0, repeats=1
        )
    except AssertionError as err:
        assert "disagrees" in str(err)
    else:  # pragma: no cover
        raise AssertionError("expected the differential guard to fire")


def test_committed_store_trajectory_matches_schema():
    # The repo ships a full-size BENCH_store.json; keep it honest.
    path = Path(__file__).resolve().parents[1] / "BENCH_store.json"
    report = json.loads(path.read_text())
    assert report["schema"] == bench.STORE_SCHEMA
    assert report.get("errors", []) == []
    summary = report["summary"]
    assert summary["pass"] is True
    assert summary.get("errors", 0) == 0
    if not report["quick"]:  # `make bench-store` may have left a quick regen
        thresholds = summary["thresholds"]
        assert 0 < summary["store_warm_flat_ratio"] <= thresholds["flat"]
        assert 0 < summary["store_ingest_rss_ratio"] <= thresholds["rss"]
        assert (
            summary["store_repair_median_speedup_at_max_size"]
            >= thresholds["repair"]
        )
        assert (
            summary["store_warm_median_speedup_at_max_size"]
            >= bench.CHECK_FLOOR
        )


def test_check_rejects_a_store_trajectory_below_its_gates(tmp_path):
    report = bench.run_store_suite(quick=True, seed=0, repeats=1)
    report["quick"] = False  # full-size reports must carry their gates
    report["summary"]["store_warm_flat_ratio"] = 2.4  # latency doubled
    path = tmp_path / "BENCH_store.json"
    path.write_text(json.dumps(report))
    assert bench.main(["--check", str(path)]) == 1


def test_check_accepts_a_passing_store_trajectory(tmp_path):
    report = bench.run_store_suite(quick=True, seed=0, repeats=1)
    path = tmp_path / "BENCH_store.json"
    path.write_text(json.dumps(report))
    assert bench.main(["--check", str(path)]) == 0
