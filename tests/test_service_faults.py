"""The service chaos battery.

Every scenario here misbehaves in one session while a *bystander*
session runs real queries concurrently — and every scenario asserts
the same three things: the bystander's answers are byte-correct, the
misbehaving session got a structured error (or a degraded-but-correct
answer), and the server process survived to serve again.  This is the
ISSUE's robustness headline as executable claims: disconnects, torn
and oversized frames, injected worker crashes (backoff, then
degradation), deadline expiry mid-query, and admission bursts."""

import json
import socket
import struct
import threading
import time

import pytest

from repro.corpus import TreeCorpus, ask_query, xpath_query
from repro.service import (
    AdmissionController,
    Dispatcher,
    QueryServer,
    ServiceClient,
    ServiceError,
)
from repro.service.protocol import (
    MAX_FRAME,
    encode_frame,
    read_frame_from_socket,
)

pytestmark = pytest.mark.service

#: An expensive query over biggish trees — forced onto the
#: node-at-a-time reference engine it costs milliseconds per tree,
#: enough to hold an admission slot (and blow a 1ms deadline) while a
#: bystander works.
SLOW_QUERY = {
    "kind": "ask",
    "text": "forall x forall y (x << y -> O_δ(y) | O_σ(y))",
}
SLOW_OPTIONS = {"engine": "reference"}
FAST_QUERY = {"kind": "xpath", "text": "//δ"}


@pytest.fixture(scope="module")
def corpus():
    with TreeCorpus.random(6, max_size=220, seed=11) as corpus:
        corpus.prepare()
        yield corpus


@pytest.fixture(scope="module")
def expected(corpus):
    return {
        "fast": json.loads(json.dumps(corpus.run([xpath_query("//δ")]).rows)),
        "slow": json.loads(
            json.dumps(corpus.run([ask_query(SLOW_QUERY["text"])]).rows)
        ),
    }


def _bystander(address, expected, stop, failures):
    """Hammer fast queries until told to stop; record any wrongness."""
    try:
        with ServiceClient(*address) as client:
            while not stop.is_set():
                response = client.query_with_retry([FAST_QUERY], attempts=8)
                if response["results"] != expected["fast"]:
                    failures.append("bystander got a wrong answer")
                    return
    except Exception as exc:
        failures.append(f"bystander died: {exc!r}")


class _Bystander:
    """Context manager running the bystander loop through a scenario."""

    def __init__(self, address, expected):
        self.stop = threading.Event()
        self.failures = []
        self.thread = threading.Thread(
            target=_bystander,
            args=(address, expected, self.stop, self.failures),
        )

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop.set()
        self.thread.join(timeout=30)
        if exc_type is None:
            assert self.failures == []


@pytest.fixture()
def server(corpus):
    dispatcher = Dispatcher(
        corpus,
        admission=AdmissionController(max_inflight=16, quota_steps=None),
        allow_faults=True,
    )
    with QueryServer(dispatcher).start_in_thread() as server:
        yield server


class TestDisconnects:
    def test_disconnect_mid_query_leaves_others_unharmed(
        self, server, expected
    ):
        with _Bystander(server.address, expected):
            for _ in range(3):
                rude = ServiceClient(*server.address)
                # Fire an expensive query and hang up without reading
                # the answer — the server is mid-execution when the
                # pipe dies.
                rude._sock.sendall(
                    encode_frame({"op": "query", "queries": [SLOW_QUERY]})
                )
                time.sleep(0.005)
                rude.close()
        # The server is still serving after the rudeness.
        with ServiceClient(*server.address) as client:
            assert client.query([FAST_QUERY])["results"] == expected["fast"]

    def test_torn_frame_then_eof_is_contained(self, server, expected):
        with _Bystander(server.address, expected):
            for blob in (b"\x00", b"\x00\x00\x00\x09{\"op\": ", b""):
                raw = socket.create_connection(server.address, timeout=5)
                raw.sendall(blob)
                raw.close()
                time.sleep(0.01)

    def test_oversized_frame_is_rejected_and_connection_dropped(
        self, server, expected
    ):
        with _Bystander(server.address, expected):
            raw = socket.create_connection(server.address, timeout=5)
            try:
                raw.sendall(struct.pack(">I", MAX_FRAME + 1))
                response = read_frame_from_socket(raw)
                assert response["error"]["code"] == "BAD_REQUEST"
                # The stream is unframed garbage now: the server ends it.
                raw.settimeout(5)
                assert raw.recv(1) == b""
            finally:
                raw.close()

    def test_malformed_json_keeps_the_session_alive(self, server, expected):
        raw = socket.create_connection(server.address, timeout=5)
        try:
            body = b"this is not json"
            raw.sendall(struct.pack(">I", len(body)) + body)
            response = read_frame_from_socket(raw)
            assert response["error"]["code"] == "BAD_REQUEST"
            # Same connection, next request answers fine.
            raw.sendall(encode_frame({"op": "ping"}))
            assert read_frame_from_socket(raw) == {"ok": True, "pong": True}
        finally:
            raw.close()


class TestInjectedFaults:
    def test_engine_fault_degrades_with_correct_answers(
        self, server, expected
    ):
        with _Bystander(server.address, expected):
            with ServiceClient(*server.address) as client:
                response = client.query(
                    [FAST_QUERY],
                    faults={"0": {"at": 2, "kind": "error"}},
                )
        assert response["results"] == expected["fast"]
        assert response["degraded_chunks"] >= 1
        degraded = [c for c in response["chunks"] if c["fell_back"]]
        assert degraded and "injected" in degraded[0]["error"]

    def test_stall_fault_is_reported_as_a_deadline(self, server, expected):
        # An injected stall models a fast engine hanging until its
        # budget slice expires (resource="deadline"), so the service
        # reports it exactly like a real deadline expiry.
        with _Bystander(server.address, expected):
            with ServiceClient(*server.address) as client:
                with pytest.raises(ServiceError) as err:
                    client.query(
                        [FAST_QUERY],
                        faults={"0": {"at": 1, "kind": "stall"}},
                    )
        assert err.value.code == "DEADLINE"


@pytest.mark.faults
class TestWorkerCrash:
    def test_crash_retries_then_degrades_and_pool_heals(self, corpus, expected):
        dispatcher = Dispatcher(
            corpus,
            admission=AdmissionController(max_inflight=16, quota_steps=None),
            workers=1,
            worker_retries=2,
            retry_backoff=0.01,
            allow_faults=True,
        )
        with QueryServer(dispatcher).start_in_thread() as server:
            with _Bystander(server.address, expected):
                with ServiceClient(*server.address) as client:
                    # The scheduled crash kills the routed worker at a
                    # budget checkpoint; every backoff retry meets the
                    # same deterministic crash, so the chunk finally
                    # degrades to the in-process reference — with the
                    # right answers.
                    response = client.query_with_retry(
                        [FAST_QUERY],
                        attempts=8,
                        faults={"0": {"at": 2, "kind": "crash"}},
                        timeout_ms=60_000,
                    )
                    assert response["results"] == expected["fast"]
                    crashed = [
                        c for c in response["chunks"] if c["fell_back"]
                    ]
                    assert crashed
                    assert crashed[0]["retries"] >= 1
                    # The healed pool serves the next worker batch.
                    again = client.query_with_retry(
                        [FAST_QUERY], attempts=8, timeout_ms=60_000
                    )
                    assert again["results"] == expected["fast"]
                    assert all(
                        not c["fell_back"] for c in again["chunks"]
                    )
            with ServiceClient(*server.address) as client:
                health = client.health()
                assert health["status"] == "ok"


class TestDeadlines:
    def test_deadline_expiry_mid_query_is_a_structured_error(
        self, server, expected
    ):
        with _Bystander(server.address, expected):
            with ServiceClient(*server.address) as client:
                with pytest.raises(ServiceError) as err:
                    client.query(
                        [SLOW_QUERY] * 4, timeout_ms=1, **SLOW_OPTIONS
                    )
                assert err.value.code == "DEADLINE"
                # The same session immediately works again.
                response = client.query_with_retry([FAST_QUERY], attempts=8)
                assert response["results"] == expected["fast"]


class _GatedCorpus:
    """Wraps a corpus so ``run`` blocks until released — makes the
    in-flight window deterministic for admission tests."""

    def __init__(self, corpus, release):
        self._corpus = corpus
        self._release = release

    def __getattr__(self, name):
        return getattr(self._corpus, name)

    def __len__(self):
        return len(self._corpus)

    def run(self, *args, **kwargs):
        assert self._release.wait(timeout=30)
        return self._corpus.run(*args, **kwargs)


class TestAdmission:
    def test_burst_rejection_is_explicit_and_bounded(self, corpus):
        release = threading.Event()
        dispatcher = Dispatcher(
            _GatedCorpus(corpus, release),
            admission=AdmissionController(max_inflight=1, quota_steps=None),
        )
        holder = dispatcher.open_session()
        burst = dispatcher.open_session()
        responses = []
        thread = threading.Thread(
            target=lambda: responses.append(
                dispatcher.handle(
                    {"op": "query", "queries": [FAST_QUERY]}, holder
                )
            )
        )
        thread.start()
        deadline = time.time() + 10
        while dispatcher.admission.inflight < 1 and time.time() < deadline:
            time.sleep(0.005)
        assert dispatcher.admission.inflight == 1
        # The slot is held: the burst session is rejected with an
        # explicit retry hint, not queued.
        rejected = dispatcher.handle(
            {"op": "query", "queries": [FAST_QUERY]}, burst
        )
        assert rejected["error"]["code"] == "OVERLOADED"
        assert rejected["error"]["retry_after_ms"] >= 1
        release.set()
        thread.join(timeout=30)
        assert responses and responses[0]["ok"] is True
        # The slot settled: the burst session's retry now succeeds.
        retried = dispatcher.handle(
            {"op": "query", "queries": [FAST_QUERY]}, burst
        )
        assert retried["ok"] is True
        assert dispatcher.admission.counters()["rejected_inflight"] == 1

    def test_overloaded_clients_with_backoff_all_complete(
        self, corpus, expected
    ):
        dispatcher = Dispatcher(
            corpus,
            admission=AdmissionController(max_inflight=2, quota_steps=None),
            allow_faults=True,
        )
        failures = []

        def pushy():
            try:
                with ServiceClient(*server.address) as client:
                    for _ in range(6):
                        response = client.query_with_retry(
                            [SLOW_QUERY],
                            attempts=10,
                            timeout_ms=60_000,
                            **SLOW_OPTIONS,
                        )
                        if response["results"] != expected["slow"]:
                            failures.append("wrong answer under burst")
            except Exception as exc:
                failures.append(repr(exc))

        with QueryServer(dispatcher).start_in_thread() as server:
            threads = [threading.Thread(target=pushy) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            counters = dispatcher.admission.counters()
        assert failures == []
        # With 6 pushy clients and 2 slots, the bucket must have
        # actually rejected someone — and everyone still finished.
        assert counters["rejected_inflight"] > 0

    def test_quota_exhaustion_names_the_wait(self, corpus):
        # Quota far below the admission floor (50 steps/query/tree x 6
        # trees), with a refill so slow it cannot recover mid-test: the
        # first query drains the whole window, the executor's actual
        # fuel keeps it drained through reconciliation, and the second
        # query is an explicit OVERLOADED with a wait hint.
        dispatcher = Dispatcher(
            corpus,
            admission=AdmissionController(
                max_inflight=8, quota_steps=200, window_seconds=300.0
            ),
        )
        session = dispatcher.open_session()
        first = dispatcher.handle(
            {"op": "query", "queries": [FAST_QUERY]}, session
        )
        assert first["ok"] is True
        assert sum(c["steps"] for c in first["chunks"]) > 0
        rejected = dispatcher.handle(
            {"op": "query", "queries": [FAST_QUERY]}, session
        )
        assert rejected["error"]["code"] == "OVERLOADED"
        assert rejected["error"]["retry_after_ms"] >= 1
