"""Protocol fuzzing: random programs × random split strings.

The strongest Lemma 4.5 evidence in the suite: for every generated
deterministic tw^{r,l} program the protocol verdict must equal the
direct run — accept, reject-by-stuck, reject-by-cycle, all of it.
"""

import random

import pytest

from repro.automata.runner import FuelExhausted
from repro.protocol import ProtocolError, protocol_agrees_with_run
from repro.protocol.fuzz import random_program


def _instances(rng: random.Random, count: int):
    for _ in range(count):
        f = [rng.choice("ab") for _ in range(rng.randint(1, 3))]
        g = [rng.choice("ab") for _ in range(rng.randint(1, 3))]
        yield f, g


@pytest.mark.parametrize("seed", range(40))
def test_fuzzed_program_agrees(seed):
    program = random_program(seed)
    rng = random.Random(1000 + seed)
    checked = 0
    for f, g in _instances(rng, 6):
        try:
            direct, proto, result = protocol_agrees_with_run(
                program, f, g, fuel=120_000, max_rounds=4_000
            )
        except (FuelExhausted, ProtocolError):
            continue  # a genuinely huge run: out of scope for the fuzz
        assert direct == proto, (seed, f, g, result.reason)
        checked += 1
    assert checked >= 3  # the budget must not swallow everything


def test_fuzz_produces_all_outcomes():
    """Across the corpus both verdicts and several reject reasons occur
    — the fuzz is not stuck in a trivial corner."""
    rng = random.Random(7)
    verdicts = set()
    reasons = set()
    for seed in range(40):
        program = random_program(seed)
        for f, g in _instances(rng, 2):
            try:
                _direct, proto, result = protocol_agrees_with_run(
                    program, f, g, fuel=120_000, max_rounds=4_000
                )
            except (FuelExhausted, ProtocolError):
                continue
            verdicts.add(proto)
            if not proto:
                reasons.add(result.reason.split(":")[-1].strip()[:20])
    assert verdicts == {True, False}
    assert len(reasons) >= 2


def test_fuzz_programs_are_deterministic_by_construction():
    from repro.automata.runner import NondeterminismError, run
    from repro.trees.strings import split_string_tree

    for seed in range(15):
        program = random_program(seed)
        tree = split_string_tree(["a", "b"], ["b"])
        try:
            run(program, tree, fuel=120_000)
        except NondeterminismError:  # pragma: no cover
            pytest.fail(f"seed {seed} generated a nondeterministic program")
        except FuelExhausted:
            pass


@pytest.mark.parametrize("seed", range(25))
def test_fuzzed_program_memo_evaluator_agrees(seed):
    """The Theorem 7.1(2)/(4) memoised evaluator on the same random
    corpus: memo ≡ runner on every instance it can afford."""
    from repro.simulation import evaluate_memo
    from repro.automata.runner import run
    from repro.trees.strings import split_string_tree

    program = random_program(seed)
    rng = random.Random(2000 + seed)
    checked = 0
    for f, g in _instances(rng, 4):
        tree = split_string_tree(f, g)
        try:
            direct = run(program, tree, fuel=150_000).accepted
            memo = evaluate_memo(program, tree, fuel=150_000).accepted
        except FuelExhausted:
            continue
        assert direct == memo, (seed, f, g)
        checked += 1
    assert checked >= 2
