"""Unit tests for the Tree type: construction, navigation, relations."""

import pytest

from repro.trees import BOTTOM, Tree, TreeError, TreeNode, parse_term


def test_single_node_tree():
    t = Tree.leaf("a")
    assert t.size == 1
    assert t.label(()) == "a"
    assert t.is_root(()) and t.is_leaf(())
    assert t.children(()) == ()


def test_build_from_treenode():
    root = TreeNode("a")
    b = root.add(TreeNode("b", attrs={"x": 1}))
    b.add(TreeNode("c"))
    t = Tree.build(root)
    assert t.size == 3
    assert t.label((0,)) == "b"
    assert t.val("x", (0,)) == 1
    assert t.val("x", ()) is BOTTOM


def test_missing_root_rejected():
    with pytest.raises(TreeError):
        Tree({(0,): "a"})


def test_gap_in_children_rejected():
    with pytest.raises(TreeError):
        Tree({(): "a", (1,): "b"})  # child 0 missing


def test_orphan_rejected():
    with pytest.raises(TreeError):
        Tree({(): "a", (0, 0): "c"})


def test_navigation(small_tree):
    t = small_tree
    assert t.parent((0, 1)) == (0,)
    assert t.first_child(()) == (0,)
    assert t.last_child(()) == (1,)
    assert t.left_sibling((1,)) == (0,)
    assert t.right_sibling((0,)) == (1,)
    assert t.right_sibling((1,)) is None
    assert t.parent(()) is None
    assert t.first_child((1, 0)) is None


def test_positional_predicates(small_tree):
    t = small_tree
    assert t.is_root(()) and not t.is_leaf(())
    assert t.is_first_child((0,)) and not t.is_last_child((0,))
    assert t.is_last_child((1,)) and not t.is_first_child((1,))
    # The root is neither first nor last child.
    assert not t.is_first_child(()) and not t.is_last_child(())


def test_vocabulary_relations(small_tree):
    t = small_tree
    assert t.edge((), (0,))
    assert not t.edge((), (0, 0))
    assert t.descendant((), (0, 0))
    assert not t.descendant((0, 0), ())
    assert t.sibling_less((0,), (1,))
    assert not t.sibling_less((0,), (0, 1))


def test_unknown_node_raises(small_tree):
    with pytest.raises(TreeError):
        small_tree.label((9, 9))
    with pytest.raises(TreeError):
        small_tree.val("cur", (9,))


def test_unknown_attribute_raises(small_tree):
    with pytest.raises(TreeError):
        small_tree.val("nope", ())


def test_attributes_are_totalised(small_tree):
    # every attribute has a (possibly ⊥) value at every node
    for attr in small_tree.attributes:
        for node in small_tree.nodes:
            small_tree.val(attr, node)  # must not raise


def test_active_domain(small_tree):
    adom = small_tree.active_domain()
    assert {"EUR", "USD", "db", 30, 2} <= adom
    assert BOTTOM not in adom


def test_document_order_is_preorder(small_tree):
    nodes = small_tree.nodes
    assert nodes[0] == ()
    for i, u in enumerate(nodes):
        assert small_tree.document_index(u) == i
    # parents precede children
    for u in nodes:
        for c in small_tree.children(u):
            assert small_tree.document_index(u) < small_tree.document_index(c)


def test_postorder_children_first(small_tree):
    order = {u: i for i, u in enumerate(small_tree.nodes_postorder)}
    for u in small_tree.nodes:
        for c in small_tree.children(u):
            assert order[c] < order[u]


def test_subtree_readdressing(small_tree):
    sub = small_tree.subtree((0,))
    assert sub.label(()) == "dept"
    assert sub.size == 3
    assert sub.val("cur", (0,)) == "EUR"


def test_with_attribute_and_relabel(small_tree):
    t2 = small_tree.with_attribute("flag", {(): "yes"})
    assert t2.val("flag", ()) == "yes"
    assert t2.val("flag", (0,)) is BOTTOM
    t3 = small_tree.relabel({"dept": "division"})
    assert t3.label((0,)) == "division"
    assert t3.label(()) == "catalog"


def test_equality_and_hash():
    a = parse_term("a(b[x=1], c)")
    b = parse_term("a(b[x=1], c)")
    c = parse_term("a(b[x=2], c)")
    assert a == b and hash(a) == hash(b)
    assert a != c


def test_attr_on_unknown_node_rejected():
    with pytest.raises(TreeError):
        Tree({(): "a"}, {"x": {(1,): 5}})


def test_non_d_attribute_value_rejected():
    with pytest.raises(TreeError):
        Tree({(): "a"}, {"x": {(): [1, 2]}})


def test_iter_edges(small_tree):
    edges = list(small_tree.iter_edges())
    assert ((), (0,)) in edges
    assert len(edges) == small_tree.size - 1
