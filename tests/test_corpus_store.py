"""The disk-backed corpus store: segment format, crash recovery, and
batch answers identical to the in-memory loop.

Covers the on-disk layer bottom-up: segment round-trips and resumable
writers, a hypothesis fault-injection battery over torn writes (every
truncation point either opens clean or recovers to an exact record
prefix), the store error taxonomy, generation-counter invalidation,
and the query path — serial, fanned-out, windowed, and after in-place
``replace`` edits — element-wise against the naive per-tree loop.
"""

import json
import os

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.__main__ import main
from repro.bench import _naive_corpus_rows
from repro.corpus import (
    CorpusStore,
    Segment,
    SegmentWriter,
    StoreCorruptError,
    StoreError,
    StoreMissingError,
    StoreVersionError,
    recover_segment,
)
from repro.corpus.query import (
    ask_query,
    caterpillar_query,
    caterpillar_relation_query,
    select_query,
    xpath_query,
)
from repro.trees.generators import random_tree

pytestmark = pytest.mark.store

QUERIES = (
    xpath_query("//σ//δ"),
    ask_query("exists x O_σ(x)"),
    select_query("x << y & O_δ(y)"),
    caterpillar_query("(down | right)* <δ>"),
    caterpillar_relation_query("down <σ>"),
)


def _trees(count, seed=0):
    return [
        random_tree(
            3 + (i * 5) % 11, value_pool=(1, 2), max_children=3, seed=seed + i
        )
        for i in range(count)
    ]


def _same_tree(a, b):
    return a._labels == b._labels and a._attrs == b._attrs


# ---------------------------------------------------------------------------
# segment files
# ---------------------------------------------------------------------------


def test_segment_round_trip(tmp_path):
    trees = _trees(9)
    path = str(tmp_path / "seg-00000.seg")
    writer = SegmentWriter(path, 0)
    for tree in trees:
        writer.append(tree)
    footer = writer.seal()
    assert footer["trees"] == len(trees)
    with Segment(path) as segment:
        assert len(segment) == len(trees)
        for i, tree in enumerate(trees):
            assert _same_tree(segment.tree(i), tree)
        window = segment.trees(2, 6)
        assert len(window) == 4
        assert all(_same_tree(a, b) for a, b in zip(window, trees[2:6]))
        rows = segment.statistics_rows()
        assert [s.n for s in rows] == [len(t.nodes) for t in trees]


def test_segment_writer_resumes_an_unsealed_file(tmp_path):
    trees = _trees(7, seed=3)
    path = str(tmp_path / "seg-00000.seg")
    writer = SegmentWriter(path, 0)
    for tree in trees[:4]:
        writer.append(tree)
    writer.seal()
    resumed = SegmentWriter.resume(path, 0)
    assert resumed.tree_count == 4
    for tree in trees[4:]:
        resumed.append(tree)
    resumed.seal()
    with Segment(path) as segment:
        assert len(segment) == 7
        assert all(_same_tree(segment.tree(i), t) for i, t in enumerate(trees))


def _sealed_segment_bytes(tmp_path, trees):
    path = str(tmp_path / "torn.seg")
    writer = SegmentWriter(path, 0)
    for tree in trees:
        writer.append(tree)
    writer.seal()
    with open(path, "rb") as handle:
        return path, handle.read()


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_any_torn_write_recovers_to_an_exact_record_prefix(tmp_path_factory, seed):
    """Fault injection: chop a sealed segment at an arbitrary byte.

    Whatever survives, ``recover_segment`` must reseal a file whose
    records are an exact prefix of the originals — or refuse loudly
    when even the header is gone.  No truncation point may yield a
    segment that quietly reads back wrong trees."""
    import random as _random

    tmp_path = tmp_path_factory.mktemp("torn")
    trees = _trees(6, seed=seed)
    path, data = _sealed_segment_bytes(tmp_path, trees)
    cut = _random.Random(seed).randrange(len(data))
    with open(path, "wb") as handle:
        handle.write(data[:cut])
    if cut < 16:  # the fixed header itself is torn: nothing to save
        with pytest.raises(StoreCorruptError):
            recover_segment(path)
        return
    with pytest.raises((StoreCorruptError, StoreVersionError)):
        Segment(path)  # a torn file must never open as sealed
    footer = recover_segment(path)
    kept = footer["trees"]
    assert 0 <= kept <= len(trees)
    with Segment(path) as segment:
        assert len(segment) == kept
        assert all(
            _same_tree(segment.tree(i), trees[i]) for i in range(kept)
        )


# ---------------------------------------------------------------------------
# the store: lifecycle, errors, generations
# ---------------------------------------------------------------------------


def test_store_error_taxonomy(tmp_path):
    with pytest.raises(StoreMissingError):
        CorpusStore.open(str(tmp_path / "absent"))
    root = tmp_path / "store"
    CorpusStore.create(str(root), segment_size=4).close()
    with pytest.raises(StoreError):
        CorpusStore.create(str(root))  # already a store
    manifest = root / "store.json"
    good = manifest.read_text()
    manifest.write_text("{ not json")
    with pytest.raises(StoreCorruptError):
        CorpusStore.open(str(root))
    payload = json.loads(good)
    payload["version"] = 99
    manifest.write_text(json.dumps(payload))
    with pytest.raises(StoreVersionError):
        CorpusStore.open(str(root))
    payload["version"] = 1
    payload["format"] = "something-else"
    manifest.write_text(json.dumps(payload))
    with pytest.raises(StoreMissingError):
        CorpusStore.open(str(root))


def test_ingest_append_reopen_and_statistics(tmp_path):
    trees = _trees(11, seed=1)
    root = str(tmp_path / "store")
    with CorpusStore.create(root, segment_size=4) as store:
        assert store.ingest(iter(trees[:10])) == 10
        extra_at = store.append(trees[10])
        assert extra_at == 10
        assert len(store) == 11
        first = store.statistics()
    with CorpusStore.open(root) as store:
        assert len(store) == 11
        assert all(_same_tree(store.tree(i), t) for i, t in enumerate(trees))
        assert all(
            _same_tree(a, b) for a, b in zip(store.trees(3, 9), trees[3:9])
        )
        stats = store.statistics()
        assert stats.tree_count == 11
        assert stats.total_nodes == sum(len(t.nodes) for t in trees)
        assert stats.fingerprint == first.fingerprint  # reopen: same corpus
    with pytest.raises(TypeError):
        with CorpusStore.open(root) as store:
            store.ingest(["not a tree"])


def test_mutations_bump_the_generation_and_retire_the_token(tmp_path):
    trees = _trees(6, seed=2)
    with CorpusStore.create(str(tmp_path / "s"), segment_size=3) as store:
        store.ingest(trees[:5])
        g0, token0, print0 = (
            store.generation, store.token, store.statistics().fingerprint,
        )
        store.append(trees[5])
        assert store.generation > g0
        assert store.token != token0
        assert store.statistics().fingerprint != print0
        token1, print1 = store.token, store.statistics().fingerprint
        store.replace(2, trees[0])
        assert store.token != token1
        assert store.statistics().fingerprint != print1


def test_crash_mid_ingest_is_recoverable(tmp_path):
    trees = _trees(10, seed=4)
    root = str(tmp_path / "s")
    with CorpusStore.create(root, segment_size=4) as store:
        store.ingest(trees)
        entry = store._manifest["segments"][-1]
        tail = os.path.join(root, entry["name"])
    with open(tail, "rb") as handle:  # tear the tail segment's seal
        data = handle.read()
    with open(tail, "wb") as handle:
        handle.write(data[:-9])
    with CorpusStore.open(root) as store:
        with pytest.raises(StoreCorruptError):
            store.tree(9)
        assert store.recover() == 1
        kept = len(store)
        assert 8 <= kept <= 10  # the sealed segments never lose a record
        assert all(
            _same_tree(store.tree(i), trees[i]) for i in range(kept)
        )
        assert store.recover() == 0  # idempotent


# ---------------------------------------------------------------------------
# the query path
# ---------------------------------------------------------------------------


def test_store_batches_match_the_sequential_loop(tmp_path):
    trees = _trees(23, seed=5)
    expected = _naive_corpus_rows(trees, QUERIES)
    with CorpusStore.create(str(tmp_path / "s"), segment_size=7) as store:
        store.ingest(trees)
        assert store.run(QUERIES).rows == expected
        assert store.run(QUERIES, chunk_size=1).rows == expected
        assert store.run(QUERIES, workers=2).rows == expected
        assert store.run(QUERIES, workers=2).rows == expected  # warm pool
        assert store.run(QUERIES, engine="auto").rows == expected


def test_windowed_runs_answer_for_exactly_their_window(tmp_path):
    trees = _trees(20, seed=6)
    expected = _naive_corpus_rows(trees, QUERIES)
    with CorpusStore.create(str(tmp_path / "s"), segment_size=6) as store:
        store.ingest(trees)
        assert store.run(QUERIES).rows == expected  # warm the full range
        assert store.run(QUERIES, start=5, stop=17).rows == expected[5:17]
        assert (
            store.run(QUERIES, start=5, stop=17, workers=2).rows
            == expected[5:17]
        )
        assert store.run(QUERIES, stop=4).rows == expected[:4]
        with pytest.raises(ValueError):
            store.run(QUERIES, start=9, stop=3)


def test_replace_updates_answers_with_and_without_a_site(tmp_path):
    trees = _trees(9, seed=7)
    with CorpusStore.create(str(tmp_path / "s"), segment_size=4) as store:
        store.ingest(trees)
        store.run(QUERIES, workers=2)  # warm worker shard caches

        # whole-tree swap: no splice site, index rebuilt from scratch
        trees[1] = random_tree(8, value_pool=(1, 2), max_children=3, seed=99)
        store.replace(1, trees[1])

        # single-subtree splice: the repair_index path
        victim = store.tree(6)
        site = victim.nodes[len(victim.nodes) // 2]
        edited = victim.replace_subtree(
            site, random_tree(4, value_pool=(1, 2), max_children=3, seed=98)
        )
        edited.nodes
        store.replace(6, edited, site=site)
        trees[6] = edited

        expected = _naive_corpus_rows(trees, QUERIES)
        assert store.run(QUERIES).rows == expected
        assert store.run(QUERIES, workers=2).rows == expected  # stale caches?
    with CorpusStore.open(str(tmp_path / "s")) as store:  # and on disk
        assert store.run(QUERIES).rows == expected


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------


def _write_xml(path):
    path.write_text(
        "<σ a='1'><δ a='2'><σ a='1'/></δ><δ a='1'/></σ>\n"
        "<δ a='3'><σ a='2'/></δ>\n",
        encoding="utf-8",
    )
    return str(path)


def test_cli_ingests_and_queries_a_store(tmp_path, capsys):
    docs = _write_xml(tmp_path / "docs.xml")
    root = str(tmp_path / "store")
    assert main(["corpus", "--store", root, "--ingest", docs]) == 0
    summary = capsys.readouterr().out
    assert "2" in summary  # two documents streamed in
    assert (
        main(["corpus", "--store", root, "--xpath", "//σ//δ", "--stats"]) == 0
    )
    out = capsys.readouterr().out
    assert "tree 0" in out and "tree 1" in out
    with CorpusStore.open(root) as store:
        assert len(store) == 2


def test_cli_store_errors_exit_2(tmp_path, capsys):
    docs = _write_xml(tmp_path / "docs.xml")
    missing = str(tmp_path / "absent")
    # querying a store that does not exist is an error, not a create
    assert main(["corpus", "--store", missing, "--xpath", "//σ"]) == 2
    assert "no corpus store" in capsys.readouterr().err
    # --ingest without --store has nowhere to write
    assert main(["corpus", "--ingest", docs]) == 2
    assert "--store" in capsys.readouterr().err
