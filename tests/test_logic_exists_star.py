"""FO(∃*) fragment: membership, selectors, single-valuedness."""

import pytest

from repro.logic import tree_fo as T
from repro.logic.exists_star import (
    ExistsStarQuery,
    FragmentError,
    X,
    Y,
    children_selector,
    descendants_selector,
    descendants_with_label,
    first_child_selector,
    functional_selectors,
    is_exists_star,
    is_single_valued,
    leaves_selector,
    parent_selector,
    selector,
    self_selector,
    strip_prefix,
    variable_count,
)
from repro.trees import parse_term, random_tree

z = T.NVar("z")


def test_is_exists_star():
    assert is_exists_star(T.exists([X, Y], T.Edge(X, Y)))
    assert is_exists_star(T.Edge(X, Y))  # quantifier-free is fine
    assert not is_exists_star(T.forall(X, T.Leaf(X)))
    assert not is_exists_star(T.Exists(X, T.Forall(Y, T.Edge(X, Y))))
    # quantifier inside the matrix breaks prenexness
    assert not is_exists_star(T.conj(T.Exists(z, T.Leaf(z)), T.Leaf(X)))


def test_negation_in_matrix_allowed():
    assert is_exists_star(T.exists(z, T.Not(T.Label("a", z))))


def test_strip_prefix():
    prefix, matrix = strip_prefix(T.exists([X, z], T.Edge(X, z)))
    assert prefix == [X, z]
    assert isinstance(matrix, T.Edge)
    with pytest.raises(FragmentError):
        strip_prefix(T.forall(X, T.Leaf(X)))


def test_query_rejects_extra_free_vars():
    with pytest.raises(FragmentError):
        selector(T.Edge(X, z))  # z free but not the designated pair


def test_query_rejects_universals():
    with pytest.raises(FragmentError):
        selector(T.forall(z, T.Edge(X, Y)))


def test_selector_select(small_tree):
    q = descendants_with_label("item")
    assert q.select(small_tree, ()) == ((0, 0), (0, 1), (1, 0))
    assert q.select(small_tree, (0,)) == ((0, 0), (0, 1))
    assert q.select(small_tree, (1, 0)) == ()


def test_selector_holds(small_tree):
    q = children_selector()
    assert q.holds(small_tree, (), (0,))
    assert not q.holds(small_tree, (), (0, 0))


def test_stock_selectors(small_tree):
    assert self_selector().select(small_tree, (0,)) == ((0,),)
    assert parent_selector().select(small_tree, (0, 1)) == ((0,),)
    assert parent_selector().select(small_tree, ()) == ()
    assert first_child_selector().select(small_tree, ()) == ((0,),)
    assert leaves_selector().select(small_tree, ()) == (
        (0, 0), (0, 1), (1, 0),
    )
    assert descendants_selector().select(small_tree, (1,)) == ((1, 0),)


def test_functional_selectors_single_valued():
    for seed in range(5):
        t = random_tree(8, seed=seed)
        for q in functional_selectors():
            assert is_single_valued(q, t)


def test_children_selector_not_single_valued(small_tree):
    assert not is_single_valued(children_selector(), small_tree)


def test_selector_without_y(small_tree):
    # φ(x, y) ≡ root(x): mentions only x — selects all or nothing
    q = selector(T.Root(X))
    assert q.select(small_tree, ()) == small_tree.nodes
    assert q.select(small_tree, (0,)) == ()


def test_variable_count():
    q = T.exists([z], T.conj(T.Edge(X, z), T.Edge(z, Y)))
    assert variable_count(q) == 3


def test_query_size(small_tree):
    q = descendants_with_label("item")
    assert q.size() >= 3  # conj + two atoms
