"""Execution semantics: moves, guards, cycles, atp, rejection."""

import pytest

from repro.automata import (
    AutomatonBuilder,
    DOWN,
    FuelExhausted,
    LEFT,
    NondeterminismError,
    PositionTest,
    RIGHT,
    STAY,
    UP,
    accepts,
    run,
)
from repro.logic import tree_fo as T
from repro.logic.exists_star import X, Y, children_selector, selector
from repro.store.fo import Attr, FalseF, Var, eq, rel
from repro.trees import parse_term

z = Var("z")


def test_accept_immediately_in_final_state():
    b = AutomatonBuilder()
    a = b.build(initial="qF", final="qF")
    result = run(a, parse_term("x"))
    assert result.accepted and result.steps == 0


def test_stuck_rejects():
    b = AutomatonBuilder()
    a = b.build(initial="q0", final="qF")
    result = run(a, parse_term("x"))
    assert not result.accepted
    assert "stuck" in result.reason


def test_move_off_tree_rejects():
    b = AutomatonBuilder()
    b.move("q0", "qF", UP)  # the root has no parent
    a = b.build(initial="q0", final="qF")
    result = run(a, parse_term("x"))
    assert not result.accepted
    assert "off the tree" in result.reason


def test_cycle_rejects():
    b = AutomatonBuilder()
    b.move("q0", "q1", DOWN)
    b.move("q1", "q0", UP)
    a = b.build(initial="q0", final="qF")
    result = run(a, parse_term("x(y)"))
    assert not result.accepted
    assert "cycle" in result.reason


def test_label_dispatch():
    b = AutomatonBuilder()
    b.move("q0", "qF", STAY, label="good")
    a = b.build(initial="q0", final="qF")
    assert accepts(a, parse_term("good"))
    assert not accepts(a, parse_term("bad"))


def test_position_dispatch():
    b = AutomatonBuilder()
    b.move("q0", "q1", DOWN, position=PositionTest(leaf=False))
    b.move("q1", "qF", STAY, position=PositionTest(first=True, last=False))
    a = b.build(initial="q0", final="qF")
    assert accepts(a, parse_term("a(b, c)"))
    assert not accepts(a, parse_term("a(b)"))  # only child: last=True


def test_guard_on_attribute():
    b = AutomatonBuilder()
    b.move("q0", "qF", STAY, guard=eq(Attr("k"), 5))
    a = b.build(initial="q0", final="qF")
    assert accepts(a, parse_term("n[k=5]"))
    assert not accepts(a, parse_term("n[k=6]"))


def test_nondeterminism_detected():
    b = AutomatonBuilder()
    b.move("q0", "qF", STAY)
    b.move("q0", "q1", STAY)
    a = b.build(initial="q0", final="qF")
    with pytest.raises(NondeterminismError):
        run(a, parse_term("x"))


def test_guards_can_disambiguate():
    from repro.store.fo import Not

    b = AutomatonBuilder()
    found = eq(Attr("k"), 1)
    b.move("q0", "qF", STAY, guard=found)
    b.move("q0", "dead", STAY, guard=Not(found))
    a = b.build(initial="q0", final="qF")
    assert accepts(a, parse_term("n[k=1]"))
    assert not accepts(a, parse_term("n[k=2]"))


def test_update_then_guard():
    b = AutomatonBuilder(register_arities=[1])
    b.update("q0", "q1", 1, eq(z, Attr("k")), [z])
    b.move("q1", "qF", STAY, guard=rel(1, 7))
    a = b.build(initial="q0", final="qF")
    assert accepts(a, parse_term("n[k=7]"))
    assert not accepts(a, parse_term("n[k=8]"))


def test_atp_union_of_results():
    b = AutomatonBuilder(register_arities=[1])
    b.atp("q0", "q1", children_selector(), substate="rep", register=1)
    # accept iff both 1 and 2 were collected
    b.move("q1", "qF", STAY, guard=T_and_rel())
    b.update("rep", "done", 1, eq(z, Attr("k")), [z])
    b.move("done", "qF", STAY)
    a = b.build(initial="q0", final="qF")
    assert accepts(a, parse_term("r(x[k=1], y[k=2])"))
    assert not accepts(a, parse_term("r(x[k=1], y[k=1])"))


def T_and_rel():
    from repro.store.fo import conj

    return conj(rel(1, 1), rel(1, 2))


def test_atp_empty_selection_gives_empty_relation():
    b = AutomatonBuilder(register_arities=[1])
    b.atp("q0", "q1", children_selector(), substate="rep", register=1)
    from repro.store.fo import Not, exists

    b.move("q1", "qF", STAY, guard=Not(exists(z, rel(1, z))))
    b.update("rep", "done", 1, eq(z, Attr("k")), [z])
    b.move("done", "qF", STAY)
    a = b.build(initial="q0", final="qF")
    assert accepts(a, parse_term("leaf"))           # no children: empty union
    assert not accepts(a, parse_term("r(c[k=1])"))  # a child reported a value


def test_rejecting_subcomputation_rejects_everything():
    b = AutomatonBuilder(register_arities=[1])
    b.atp("q0", "q1", children_selector(), substate="sub", register=1)
    b.move("q1", "qF", STAY)
    b.move("sub", "qF", STAY, label="ok")  # stuck on any other label
    a = b.build(initial="q0", final="qF")
    assert accepts(a, parse_term("r(ok, ok)"))
    assert not accepts(a, parse_term("r(ok, bad)"))


def test_atp_self_recursion_rejects():
    # atp at the same node, same state, same store: infinite regress
    b = AutomatonBuilder(register_arities=[1])
    self_sel = selector(T.NodeEq(X, Y))
    b.atp("q0", "q1", self_sel, substate="q0", register=1)
    b.move("q1", "qF", STAY)
    a = b.build(initial="q0", final="qF")
    result = run(a, parse_term("x"))
    assert not result.accepted
    assert "cycle" in result.reason


def test_subcomputations_start_with_current_store():
    b = AutomatonBuilder(register_arities=[1], initial_assignment=[None])
    b.update("q0", "q1", 1, eq(z, 5), [z])
    b.atp("q1", "q2", children_selector(), substate="sub", register=1)
    b.move("q2", "qF", STAY, guard=rel(1, 5))
    # the subcomputation accepts with the inherited store untouched
    b.move("sub", "qF", STAY, guard=rel(1, 5))
    a = b.build(initial="q0", final="qF")
    assert accepts(a, parse_term("r(c)"))


def test_fuel_exhaustion_raises():
    b = AutomatonBuilder(register_arities=[1])
    b.move("q0", "q1", DOWN)
    b.move("q1", "q0", UP)
    a = b.build(initial="q0", final="qF")
    # a cycle is detected long before fuel runs out; force tiny fuel
    with pytest.raises(FuelExhausted):
        run(a, parse_term("x(y)"), fuel=1)


def test_trace_collection():
    b = AutomatonBuilder()
    b.move("q0", "qF", STAY)
    a = b.build(initial="q0", final="qF")
    result = run(a, parse_term("x"), collect_trace=True)
    assert result.trace and any("accept" in line for line in result.trace)


def test_start_node_parameter(small_tree):
    b = AutomatonBuilder()
    b.move("q0", "qF", STAY, label="item")
    a = b.build(initial="q0", final="qF")
    assert not accepts(a, small_tree)
    assert accepts(a, small_tree, start=(0, 0))


# -- the guard-free fast path ------------------------------------------------


def _guard_free_spine_automaton():
    """Walk the first-child spine to a leaf, then accept — guard-free,
    Move-only, so eligible for the compiled fast path."""
    b = AutomatonBuilder()
    b.move("q0", "q0", DOWN, position=PositionTest(leaf=False))
    b.move("q0", "qF", STAY, position=PositionTest(leaf=True))
    return b.build(initial="q0", final="qF")


def test_fast_plan_eligibility():
    from repro.automata import fast_plan_for
    from repro.automata.examples import even_leaves_automaton

    assert fast_plan_for(_guard_free_spine_automaton()) is not None
    assert fast_plan_for(even_leaves_automaton()) is not None
    guarded = AutomatonBuilder()
    guarded.move("q0", "qF", STAY, guard=eq(Attr("k"), 1))
    assert fast_plan_for(guarded.build(initial="q0", final="qF")) is None


def test_fast_engine_matches_reference_run(small_tree):
    from repro.automata.examples import even_leaves_automaton

    for automaton in (_guard_free_spine_automaton(), even_leaves_automaton()):
        for tree in (small_tree, parse_term("a"), parse_term("a(b(c), d)")):
            ref = run(automaton, tree, engine="reference")
            fst = run(automaton, tree, engine="fast")
            assert (ref.accepted, ref.steps, ref.reason) == (
                fst.accepted, fst.steps, fst.reason,
            )


def test_fast_engine_detects_cycles_and_fuel(small_tree):
    b = AutomatonBuilder()
    b.move("q0", "q1", DOWN)
    b.move("q1", "q0", UP)
    bouncer = b.build(initial="q0", final="qF")
    ref = run(bouncer, small_tree, engine="reference")
    fst = run(bouncer, small_tree, engine="fast")
    assert not ref.accepted and not fst.accepted
    assert (ref.steps, ref.reason) == (fst.steps, fst.reason)
    with pytest.raises(FuelExhausted):
        run(bouncer, small_tree, engine="fast", fuel=1)


def test_fast_engine_falls_back_for_guarded_automata(small_tree):
    # A guarded automaton silently takes the reference path — same API.
    guarded = AutomatonBuilder()
    guarded.move("q0", "qF", STAY, guard=eq(Attr("cur"), "USD"))
    a = guarded.build(initial="q0", final="qF")
    assert run(a, small_tree, engine="fast").accepted == run(
        a, small_tree
    ).accepted


def test_run_rejects_unknown_engine(small_tree):
    b = AutomatonBuilder()
    b.move("q0", "qF", STAY)
    a = b.build(initial="q0", final="qF")
    with pytest.raises(ValueError):
        run(a, small_tree, engine="bogus")
