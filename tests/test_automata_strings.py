"""Two-way DFA warm-up tests."""

import pytest

from repro.automata.strings import (
    GO_RIGHT,
    GO_STAY,
    LEFT_MARK,
    TwoWayDFA,
    TwoWayError,
    multiple_of_automaton,
    palindrome_automaton,
    run_two_way,
)


def test_multiple_of():
    m3 = multiple_of_automaton(3)
    for n in range(10):
        assert run_two_way(m3, ["a"] * n).accepted == (n % 3 == 0)


def test_multiple_of_one_accepts_everything():
    m1 = multiple_of_automaton(1)
    for n in range(5):
        assert run_two_way(m1, ["a"] * n).accepted


def test_bad_divisor():
    with pytest.raises(TwoWayError):
        multiple_of_automaton(0)


def test_first_equals_last():
    pal = palindrome_automaton(["a", "b"])
    cases = {
        "a": True, "aa": True, "ab": False, "aba": True,
        "abb": False, "bab": True, "baab": True,
    }
    for word, want in cases.items():
        assert run_two_way(pal, list(word)).accepted == want, word


def test_two_way_actually_reverses():
    # the palindrome automaton visits positions in both directions
    pal = palindrome_automaton(["a", "b"])
    result = run_two_way(pal, list("aba"))
    assert result.steps > 2 * 3  # more than one sweep


def test_input_validation():
    m = multiple_of_automaton(2)
    with pytest.raises(TwoWayError):
        run_two_way(m, [LEFT_MARK])
    with pytest.raises(TwoWayError):
        run_two_way(m, ["z"])


def test_rejects_on_stuck_and_reports():
    dfa = TwoWayDFA(
        states=frozenset({"s", "acc"}),
        alphabet=frozenset({"a"}),
        transitions=((("s", LEFT_MARK), ("s", GO_RIGHT)),),
        initial="s",
        finals=frozenset({"acc"}),
    )
    result = run_two_way(dfa, ["a"])
    assert not result.accepted and "stuck" in result.reason


def test_cycle_detection():
    dfa = TwoWayDFA(
        states=frozenset({"s"}),
        alphabet=frozenset({"a"}),
        transitions=((("s", LEFT_MARK), ("s", GO_STAY)),),
        initial="s",
        finals=frozenset(),
    )
    result = run_two_way(dfa, ["a"])
    assert not result.accepted and "cycle" in result.reason


def test_duplicate_transition_rejected():
    with pytest.raises(TwoWayError):
        TwoWayDFA(
            states=frozenset({"s"}),
            alphabet=frozenset({"a"}),
            transitions=(
                (("s", "a"), ("s", GO_RIGHT)),
                (("s", "a"), ("s", GO_STAY)),
            ),
            initial="s",
            finals=frozenset(),
        )
