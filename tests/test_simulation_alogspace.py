"""The alternating-logspace pebble simulation (Thm 7.1(2)'s converse leg)."""

import pytest

from tests.conftest import tree_family

from repro.machines import run_alternating
from repro.machines.alternation import (
    all_leaves_even_depth_alt,
    all_leaves_even_depth_spec,
    exists_leaf_value_alt,
    forall_leaves_value_alt,
)
from repro.simulation.alogspace import simulate_alternating_logspace
from repro.trees import chain_tree, full_tree, parse_term, random_tree

FAMILY = tree_family(count=10, max_size=10, value_pool=(1, 2))


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_even_depth_three_ways(tree):
    alt = all_leaves_even_depth_alt()
    want = all_leaves_even_depth_spec(tree)
    assert run_alternating(alt, tree).accepted == want
    assert simulate_alternating_logspace(alt, tree).accepted == want


@pytest.mark.parametrize(
    "term,want",
    [
        ("a", True),                   # the root leaf is at depth 0
        ("a(b)", False),
        ("a(b(c))", True),
        ("a(b(c), d)", False),         # d at depth 1
        ("a(b(c), d(e))", True),
    ],
)
def test_even_depth_fixed(term, want):
    alt = all_leaves_even_depth_alt()
    assert simulate_alternating_logspace(alt, parse_term(term)).accepted == want


def test_even_depth_shapes():
    alt = all_leaves_even_depth_alt()
    assert simulate_alternating_logspace(alt, full_tree(2, 3)).accepted
    assert not simulate_alternating_logspace(alt, full_tree(3, 2)).accepted
    assert simulate_alternating_logspace(alt, chain_tree(5)).accepted
    assert not simulate_alternating_logspace(alt, chain_tree(4)).accepted


@pytest.mark.parametrize("tree", FAMILY[:6], ids=lambda t: f"n{t.size}")
def test_tapeless_alternating_machines(tree):
    for alt, spec in (
        (
            exists_leaf_value_alt("a", 1),
            lambda t: any(
                t.val("a", u) == 1 for u in t.nodes if t.is_leaf(u)
            ),
        ),
        (
            forall_leaves_value_alt("a", 1),
            lambda t: all(
                t.val("a", u) == 1 for u in t.nodes if t.is_leaf(u)
            ),
        ),
    ):
        assert simulate_alternating_logspace(alt, tree).accepted == spec(tree)


def test_true_verdicts_are_memoised():
    alt = all_leaves_even_depth_alt()
    tree = full_tree(2, 3)  # 13 nodes, shared suffix configurations
    result = simulate_alternating_logspace(alt, tree)
    assert result.accepted
    # with 9 leaves and per-node increments, memoisation keeps the
    # evaluation count well under the naive strategy-tree size
    assert result.evaluations < 200


def test_walker_never_materialises_the_tape():
    alt = all_leaves_even_depth_alt()
    tree = chain_tree(9)
    result = simulate_alternating_logspace(alt, tree)
    assert result.walker_steps > 0  # the tape work happened on pebbles
