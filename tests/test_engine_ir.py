"""The plan IR (:mod:`repro.engine.ir`) against the reference
evaluators, per tree and stacked.

Two families of properties:

* **dialect round-trips** — every XPath / FO sentence / FO(∃*)
  selector / caterpillar query that lowers into the IR must evaluate,
  through :func:`evaluate_tree`, to exactly what the reference
  evaluator answers on the same tree; and through
  :func:`evaluate_shard` — every seed tree packed into one wide
  integer — to exactly the per-tree results, lane by lane.
* **statistics-informed join ordering** — with corpus statistics in
  hand, the lowering orders ``Join`` children cheapest-first by
  estimated cardinality; without them, syntactic order is preserved
  (the satellite the planner's estimator feeds).
"""

import random

import pytest

from repro.corpus.executor import evaluate_cell
from repro.corpus.query import CorpusQuery
from repro.engine.index import index_for
from repro.engine.ir import (
    Join,
    LabelScan,
    StackedShard,
    evaluate_shard,
    evaluate_tree,
    lower_sentence,
)
from repro.engine.plans import compile_ir_plan
from repro.engine.stats import corpus_statistics
from repro.logic.parser import parse_sentence
from repro.trees.generators import random_tree
from repro.trees.parser import parse_term

SEED_TREES = [
    parse_term("σ"),
    parse_term("σ(δ)"),
    parse_term("σ(δ, σ(δ, δ), σ)"),
    parse_term("δ(σ(σ(δ)), δ)"),
]
SEED_TREES += [
    random_tree(
        size, alphabet=("σ", "δ"), max_children=3,
        seed=random.Random(seed), value_pool=(1, 2),
    )
    for seed, size in ((1, 9), (2, 17), (3, 30), (4, 44))
]

QUERIES = [
    CorpusQuery("xpath", "//δ"),
    CorpusQuery("xpath", "//σ//δ"),
    CorpusQuery("xpath", "//σ[.//δ]//σ"),
    CorpusQuery("xpath", "/σ/*"),
    CorpusQuery("ask", "exists x O_σ(x)"),
    CorpusQuery("ask", "forall x (leaf(x) -> O_δ(x))"),
    CorpusQuery("ask", "exists x exists y (x << y & O_σ(x) & O_δ(y))"),
    CorpusQuery("select", "x << y & O_δ(y)"),
    CorpusQuery("select", "exists z (y << z & leaf(z) & O_σ(y))"),
    CorpusQuery("caterpillar", "down*"),
    CorpusQuery("caterpillar", "(down | right)* <δ>"),
    CorpusQuery("caterpillar", "(up | down | left | right)* (<σ> isLeaf)"),
]


def _ir_answer(query, tree):
    plan = compile_ir_plan(query.kind, query.text)
    assert plan is not None, f"{query.kind} {query.text!r} should lower"
    idx = index_for(tree)
    bits = evaluate_tree(plan, idx)
    if plan.mode == "boolean":
        return bool(bits)
    return idx.to_nodes(bits)


# -- dialect round-trips ------------------------------------------------------


@pytest.mark.parametrize(
    "query", QUERIES, ids=[f"{q.kind}:{q.text}" for q in QUERIES]
)
def test_ir_matches_reference_per_tree(query):
    for tree in SEED_TREES:
        assert _ir_answer(query, tree) == evaluate_cell(
            query, tree, "reference"
        )


@pytest.mark.parametrize(
    "query", QUERIES, ids=[f"{q.kind}:{q.text}" for q in QUERIES]
)
def test_ir_stacked_shard_matches_per_tree(query):
    """One evaluation of the plan over all seed trees at once — each in
    its own lane — splits back into exactly the per-tree bitsets."""
    plan = compile_ir_plan(query.kind, query.text)
    indexes = [index_for(tree) for tree in SEED_TREES]
    shard = StackedShard(indexes)
    lanes = shard.split(evaluate_shard(plan, shard))
    for idx, lane in zip(indexes, lanes):
        assert lane == evaluate_tree(plan, idx)


def test_lowering_is_partial_where_documented():
    # The all-pairs relation kind has no single-result register shape.
    assert compile_ir_plan("caterpillar-relation", "down <σ>") is None
    # Value atoms live outside the IR's label/structure vocabulary.
    assert (
        compile_ir_plan("ask", "exists x (val_a(x) = 1)")
        is None
    )


def test_ir_plans_are_cached_by_text_and_stats():
    first = compile_ir_plan("xpath", "//δ")
    assert compile_ir_plan("xpath", "//δ") is first
    stats = corpus_statistics(SEED_TREES[:3])
    informed = compile_ir_plan("xpath", "//δ", stats=stats)
    assert compile_ir_plan("xpath", "//δ", stats=stats) is informed
    assert informed is not first  # fingerprint joins the key


# -- statistics-informed join ordering ---------------------------------------


def _join_scan_labels(plan):
    """The label names of a plan's first Join over LabelScans, in
    execution order."""
    for op in plan.ops:
        if isinstance(op, Join):
            labels = [
                plan.ops[src].name
                for src in op.srcs
                if isinstance(plan.ops[src], LabelScan)
            ]
            if labels:
                return labels
    raise AssertionError("no Join over LabelScans in plan")


@pytest.mark.planner
def test_join_children_reorder_under_skewed_statistics():
    """``common & rare`` joins rare-first once the estimator knows the
    label histogram — and keeps syntactic order without statistics."""
    formula = parse_sentence("exists x (O_b(x) & O_a(x))")
    skewed = corpus_statistics(
        [parse_term("b(b, b, b(b, b), b, a)") for _ in range(3)]
    )
    uninformed = lower_sentence(formula)
    informed = lower_sentence(formula, stats=skewed)
    assert _join_scan_labels(uninformed) == ["b", "a"]  # syntactic
    assert _join_scan_labels(informed) == ["a", "b"]  # cheapest first


@pytest.mark.planner
def test_join_order_is_stable_under_uniform_statistics():
    formula = parse_sentence("exists x (O_b(x) & O_a(x))")
    uniform = corpus_statistics(
        [parse_term("b(a, b(a), a)") for _ in range(3)]
    )
    plan = lower_sentence(formula, stats=uniform)
    # Equal estimates tie-break on register order = syntactic order.
    assert _join_scan_labels(plan) == ["b", "a"]
