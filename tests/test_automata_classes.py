"""The Definition 5.1 restriction lattice."""

import pytest

from repro.automata import (
    AutomatonBuilder,
    ClassViolation,
    STAY,
    TWClass,
    check_single_valued_on,
    classify,
    is_functional_selector,
    is_in_class,
    require_class,
    violations,
)
from repro.automata.examples import (
    all_leaves_same_twrl,
    all_values_same_twr,
    even_leaves_automaton,
    example_32,
    spine_constant_automaton,
)
from repro.logic.exists_star import (
    children_selector,
    first_child_selector,
    parent_selector,
    self_selector,
)
from repro.store.fo import Attr, FalseF, Var, eq
from repro.trees import parse_term

z = Var("z")


@pytest.mark.parametrize(
    "factory, expected",
    [
        (even_leaves_automaton, TWClass.TW),
        (spine_constant_automaton, TWClass.TW_L),
        (all_values_same_twr, TWClass.TW_R),
        (all_leaves_same_twrl, TWClass.TW_RL),
        (example_32, TWClass.TW_RL),
    ],
)
def test_stock_examples_classify(factory, expected):
    assert classify(factory()) == expected


def test_lattice_inclusions():
    # tw ⊆ tw^l ∩ tw^r ⊆ tw^{r,l}
    a = even_leaves_automaton()
    for cls in TWClass:
        assert is_in_class(a, cls)
    l = spine_constant_automaton()
    assert is_in_class(l, TWClass.TW_L) and is_in_class(l, TWClass.TW_RL)
    assert not is_in_class(l, TWClass.TW)
    assert not is_in_class(l, TWClass.TW_R)


def test_functional_selector_whitelist():
    for q in (self_selector(), parent_selector(), first_child_selector()):
        assert is_functional_selector(q)
    assert not is_functional_selector(children_selector())


def test_single_value_update_shapes():
    b = AutomatonBuilder(register_arities=[1])
    b.update("q0", "q1", 1, eq(z, Attr("a")), [z])      # z = @a: ok
    b.update("q1", "q2", 1, eq(z, 5), [z])              # z = 5: ok
    b.update("q2", "q3", 1, FalseF(), [z])              # clear: ok
    b.move("q3", "qF", STAY)
    a = b.build(initial="q0", final="qF")
    assert classify(a) == TWClass.TW


def test_set_update_is_not_tw():
    from repro.store.fo import disj, rel

    b = AutomatonBuilder(register_arities=[1])
    b.update("q0", "qF", 1, disj(rel(1, z), eq(z, Attr("a"))), [z])
    a = b.build(initial="q0", final="qF")
    assert classify(a) == TWClass.TW_R
    problems = violations(a, TWClass.TW)
    assert problems and "define one value" in problems[0]


def test_wide_register_is_not_twl():
    b = AutomatonBuilder(register_arities=[2])
    a = b.build(initial="q0", final="qF")
    assert not is_in_class(a, TWClass.TW_L)
    assert is_in_class(a, TWClass.TW_R)


def test_require_class_raises_with_reasons():
    a = all_values_same_twr()
    with pytest.raises(ClassViolation) as err:
        require_class(a, TWClass.TW)
    assert "tw" in str(err.value)
    # and passes for its own class
    require_class(a, TWClass.TW_R)
    require_class(a, TWClass.TW_RL)


def test_runtime_single_valued_check():
    a = spine_constant_automaton()
    t = parse_term("r[a=1](c[a=1](d[a=1]))")
    assert check_single_valued_on(a, t) == []
    wide = all_leaves_same_twrl()
    assert check_single_valued_on(wide, parse_term("r(a, b)"))
