"""Cross-half FO(∃*) evaluation (the Lemma 4.3(1) composition engine)."""

import random

import pytest

from repro.logic import tree_fo as T
from repro.logic.exists_star import X, Y, selector
from repro.logic.types import StringStructure, type_summary
from repro.protocol.split_eval import (
    Abstract,
    Concrete,
    LEFT,
    RIGHT,
    SplitEvalError,
    holds_split,
    select_in_zone,
)
from repro.trees.strings import HASH, string_tree

z1, z2 = T.NVar("z1"), T.NVar("z2")

QUERIES = [
    selector(T.Desc(X, Y)),
    selector(T.conj(T.Desc(X, Y), T.Leaf(Y))),
    selector(T.Edge(X, Y)),
    selector(T.exists(z1, T.conj(T.Desc(X, z1), T.ValEq("a", z1, "a", Y)))),
    selector(
        T.exists(
            [z1, z2],
            T.conj(T.Edge(X, z1), T.Edge(z1, z2),
                   T.ValEq("a", z2, "a", Y), T.Desc(X, Y)),
        )
    ),
    selector(T.conj(T.Root(Y), T.ValConst("a", X, 1))),
    selector(T.exists(z1, T.conj(T.Edge(Y, z1), T.ValConst("a", z1, 2)))),
    selector(T.Not(T.ValEq("a", X, "a", Y))),
    selector(T.conj(T.First(Y), T.Not(T.Leaf(Y)))),
]


def halves(word, b):
    return (
        StringStructure(tuple(word[: b + 1])),
        StringStructure(tuple(word[b:])),
    )


def make_instance(seed):
    rng = random.Random(seed)
    f = [rng.choice([1, 2, 3]) for _ in range(rng.randint(1, 4))]
    g = [rng.choice([1, 2, 3]) for _ in range(rng.randint(1, 4))]
    word = f + [HASH] + g
    return word, len(f)


N = 4


@pytest.mark.parametrize("seed", range(12))
def test_same_side_evaluation_matches_truth(seed):
    word, b = make_instance(seed)
    tree = string_tree(word)
    lhalf, rhalf = halves(word, b)
    ltype = type_summary(lhalf, (), N)
    rtype = type_summary(rhalf, (), N)
    for q in QUERIES:
        for u in range(b + 1):
            for v in range(b + 1):
                want = q.holds(tree, (0,) * u, (0,) * v)
                got = holds_split(
                    q, lhalf, LEFT,
                    {q.x: Concrete(u), q.y: Concrete(v)}, rtype,
                )
                assert got == want, (q, word, u, v)
        for ul in range(len(rhalf)):
            for vl in range(len(rhalf)):
                want = q.holds(tree, (0,) * (b + ul), (0,) * (b + vl))
                got = holds_split(
                    q, rhalf, RIGHT,
                    {q.x: Concrete(ul), q.y: Concrete(vl)}, ltype,
                )
                assert got == want, (q, word, ul, vl)


@pytest.mark.parametrize("seed", range(12))
def test_abstract_current_node(seed):
    """Party II evaluating φ(u, v) with u known only through its type."""
    word, b = make_instance(seed)
    tree = string_tree(word)
    lhalf, rhalf = halves(word, b)
    for q in QUERIES:
        for u in range(b + 1):
            theta = type_summary(lhalf, (u,), N)
            for vl in range(len(rhalf)):
                want = q.holds(tree, (0,) * u, (0,) * (b + vl))
                got = holds_split(
                    q, rhalf, RIGHT,
                    {q.x: Abstract(0), q.y: Concrete(vl)}, theta,
                )
                assert got == want, (q, word, u, vl)


def test_select_in_zone_matches_reference():
    word = [1, 2, HASH, 2, 1]
    b = 2
    tree = string_tree(word)
    lhalf, rhalf = halves(word, b)
    rtype = type_summary(rhalf, (), N)
    q = QUERIES[0]  # descendants
    got = select_in_zone(q, lhalf, LEFT, Concrete(0), rtype,
                         list(range(b + 1)))
    want = tuple(
        v for v in range(b + 1) if q.holds(tree, (), (0,) * v)
    )
    assert got == want


def test_bad_side_rejected():
    s = StringStructure((1, HASH))
    with pytest.raises(SplitEvalError):
        holds_split(QUERIES[0], s, "M", {}, type_summary(s, (), 1))


def test_narrow_summary_limits_witnesses():
    """With k = 0 the other half contributes no witnesses: a formula
    whose only witness lives there goes false."""
    word = [1, HASH, 9]
    lhalf, rhalf = halves(word, 1)
    q = selector(T.exists(z1, T.ValConst("a", z1, 9)))
    wide = type_summary(rhalf, (), 2)
    narrow = type_summary(rhalf, (), 0)
    bindings = {q.x: Concrete(0), q.y: Concrete(0)}
    assert holds_split(q, lhalf, LEFT, bindings, wide)
    assert not holds_split(q, lhalf, LEFT, bindings, narrow)
