"""The cost-based adaptive planner (:mod:`repro.engine.planner`):
decisions, determinism, guarded execution and mid-flight re-planning.

Covers the planner-facing contract end to end: plans are frozen,
cached, and keyed to content fingerprints; tiny documents go to the
reference evaluators while large ones go to the indexed engines; every
route returns the same answers as the manual engine choices; a guarded
fast attempt that faults mid-flight re-plans onto the reference engine
and the ``replans`` counter says so.
"""

import random

import pytest

from repro.engine.planner import (
    GUARD_THRESHOLD,
    Plan,
    Planner,
    default_planner,
)
from repro.queries import TreeDatabase
from repro.resilience.faults import Fault, FaultInjector
from repro.trees.generators import random_tree
from repro.trees.parser import parse_term

pytestmark = pytest.mark.planner


def _big_tree(size=400, seed=0):
    return random_tree(
        size=size,
        alphabet=("σ", "δ"),
        max_children=2,
        seed=random.Random(seed),
        value_pool=(1, 2, 3),
    )


# -- planning decisions ------------------------------------------------------


def test_plan_is_frozen_and_cost_ordered():
    planner = Planner()
    plan = planner.plan_for_tree("xpath", "//δ", _big_tree())
    assert isinstance(plan, Plan)
    assert plan.engine == plan.costs[0][0]
    assert [c for _, c in plan.costs] == sorted(c for _, c in plan.costs)
    assert plan.estimated_cost == plan.costs[0][1]
    assert plan.estimated_rows >= 0
    with pytest.raises(AttributeError):
        plan.engine = "reference"


def test_tiny_document_prefers_reference_large_prefers_fast():
    planner = Planner()
    tiny = planner.plan_for_tree("xpath", "//δ", parse_term("σ(δ)"))
    big = planner.plan_for_tree("xpath", "//δ", _big_tree())
    assert tiny.engine == "reference"  # setup dominates on 2 nodes
    assert big.engine == "fast"


def test_planning_is_deterministic_and_cached():
    planner = Planner()
    tree = _big_tree()
    first = planner.plan_for_tree("ask", "exists x O_σ(x)", tree)
    planned_after_first = planner.planned
    second = planner.plan_for_tree("ask", "exists x O_σ(x)", tree)
    assert second is first  # cache hit — same text, same fingerprint
    assert planner.planned == planned_after_first
    assert planner.requests >= 2
    # A planner with the same configuration rebuilds an equal plan.
    assert Planner().plan_for_tree("ask", "exists x O_σ(x)", tree) == first


def test_distinct_sampling_seeds_key_distinct_plans():
    tree = _big_tree()
    a = Planner(seed=0).plan_for_tree("select", "x << y & O_δ(y)", tree)
    b = Planner(seed=99).plan_for_tree("select", "x << y & O_δ(y)", tree)
    # Different sampling configuration never shares cache slots (the
    # estimates may coincide, the cache keys must not).
    assert a is not b


@pytest.mark.parametrize(
    "kind, text",
    [
        ("xpath", "//σ//δ"),
        ("ask", "forall x (leaf(x) -> O_δ(x))"),
        ("select", "x << y & O_δ(y)"),
        ("caterpillar", "(down | right)* <δ>"),
        ("caterpillar-relation", "down <σ>"),
    ],
)
def test_auto_agrees_with_manual_engines(kind, text):
    db = TreeDatabase(_big_tree(120), planner=Planner())
    call = {
        "xpath": lambda e: db.xpath(text, engine=e),
        "ask": lambda e: db.ask(text, engine=e),
        "select": lambda e: db.select_where(text, engine=e),
        "caterpillar": lambda e: db.caterpillar(text, engine=e),
        "caterpillar-relation": lambda e: db.caterpillar_relation(
            text, engine=e
        ),
    }[kind]
    assert call("auto") == call("fast") == call("reference")
    assert db.last_plan is not None
    assert db.last_plan.kind == kind
    assert db.last_plan.engine in ("fast", "reference")


def test_facade_counters_track_requests():
    planner = Planner()
    db = TreeDatabase(_big_tree(80), planner=planner)
    assert db.planner is planner
    assert db.last_plan is None
    db.xpath("//δ", engine="auto")
    db.xpath("//δ", engine="auto")
    assert planner.requests == 2
    assert planner.planned == 1  # second call hit the plan cache
    assert db.last_plan.text == "//δ"


def test_default_planner_is_shared():
    assert default_planner() is default_planner()
    db = TreeDatabase(parse_term("σ(δ)"))
    assert db.planner is default_planner()


# -- guarded execution and re-planning ---------------------------------------


def test_guard_threshold_zero_forces_guarded_fast_plans():
    planner = Planner(guard_threshold=0.0)
    plan = planner.plan_for_tree("xpath", "//δ", _big_tree())
    assert plan.engine == "fast"
    assert plan.guarded
    assert plan.replan_steps > 0
    # The stock threshold leaves cheap plans unguarded.
    cheap = Planner().plan_for_tree("xpath", "//δ", _big_tree())
    assert not cheap.guarded
    assert cheap.estimated_cost < GUARD_THRESHOLD


def test_injected_fault_replans_onto_reference():
    """A guarded fast attempt that dies mid-flight must re-plan onto
    the reference engine, return its answer, and count the re-plan."""
    planner = Planner(guard_threshold=0.0)
    db = TreeDatabase(_big_tree(150), planner=planner)
    expected = db.xpath("//σ//δ", engine="reference")
    db._fault_injector = FaultInjector(Fault(at_checkpoint=1, kind="error"))
    try:
        got = db.xpath("//σ//δ", engine="auto")
    finally:
        db._fault_injector = None
    assert got == expected
    assert db.last_plan.engine == "fast" and db.last_plan.guarded
    assert planner.replans == 1
    assert db.resilience_info()["fallbacks"] == 1


def test_injected_stall_replans_too():
    planner = Planner(guard_threshold=0.0)
    db = TreeDatabase(_big_tree(150, seed=7), planner=planner)
    sentence = "forall x (leaf(x) -> O_δ(x))"
    expected = db.ask(sentence, engine="reference")
    db._fault_injector = FaultInjector(Fault(at_checkpoint=1, kind="stall"))
    try:
        got = db.ask(sentence, engine="auto")
    finally:
        db._fault_injector = None
    assert got == expected
    assert planner.replans >= 1


def test_unguarded_and_reference_plans_never_replan():
    planner = Planner()
    db = TreeDatabase(parse_term("σ(δ, σ(δ))"), planner=planner)
    db.xpath("//δ", engine="auto")  # reference pick on a tiny tree
    big = TreeDatabase(_big_tree(90), planner=planner)
    big.xpath("//δ", engine="auto")  # unguarded fast pick
    assert planner.replans == 0
