"""The shared ``KeyedLRU`` — one cache implementation, one stats shape."""

import pytest

from repro.caching import CacheInfo, KeyedLRU


def test_get_or_compute_hits_and_misses():
    cache = KeyedLRU(4)
    calls = []

    def make(key):
        def factory():
            calls.append(key)
            return key * 2
        return factory

    assert cache.get_or_compute("a", make("a")) == "aa"
    assert cache.get_or_compute("a", make("a")) == "aa"
    assert cache.get_or_compute("b", make("b")) == "bb"
    assert calls == ["a", "b"]
    assert cache.cache_info() == CacheInfo(hits=1, misses=2, maxsize=4, currsize=2)


def test_cache_info_compares_equal_to_plain_tuple():
    cache = KeyedLRU(2)
    assert cache.cache_info() == (0, 0, 2, 0)


def test_eviction_is_least_recently_used():
    cache = KeyedLRU(2)
    cache.get_or_compute("a", lambda: 1)
    cache.get_or_compute("b", lambda: 2)
    cache.get_or_compute("a", lambda: 1)  # refresh a
    cache.get_or_compute("c", lambda: 3)  # evicts b, the cold entry
    assert "a" in cache and "c" in cache and "b" not in cache


def test_raising_factory_leaves_cache_untouched():
    cache = KeyedLRU(4)

    def boom():
        raise RuntimeError("no value")

    with pytest.raises(RuntimeError):
        cache.get_or_compute("k", boom)
    assert "k" not in cache
    # The failed computation is not counted as a miss either: stats
    # describe the cache's contents, not the factory's reliability.
    assert cache.cache_info() == (0, 0, 4, 0)
    assert cache.get_or_compute("k", lambda: 7) == 7
    assert cache.cache_info() == (0, 1, 4, 1)


def test_maxsize_zero_disables_storage_but_counts_misses():
    cache = KeyedLRU(0)
    assert cache.get_or_compute("a", lambda: 1) == 1
    assert cache.get_or_compute("a", lambda: 2) == 2  # recomputed
    assert cache.cache_info() == (0, 2, 0, 0)
    cache.put("a", 3)
    assert len(cache) == 0


def test_negative_maxsize_rejected():
    with pytest.raises(ValueError):
        KeyedLRU(-1)


def test_stats_free_get_and_put():
    cache = KeyedLRU(2)
    assert cache.get("missing") is None
    assert cache.get("missing", "fallback") == "fallback"
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes recency...
    cache.put("c", 3)           # ...so b is the one evicted
    assert sorted(cache) == ["a", "c"]
    assert cache.cache_info() == (0, 0, 2, 2)  # get/put never touch stats


def test_clear_resets_contents_and_stats():
    cache = KeyedLRU(4, name="demo")
    cache.get_or_compute("a", lambda: 1)
    cache.get_or_compute("a", lambda: 1)
    cache.cache_clear()
    assert len(cache) == 0
    assert cache.cache_info() == (0, 0, 4, 0)
    assert "demo" in repr(cache)
