"""Plan-cache regression battery: ``engine="auto"`` plans are keyed by
query text **plus statistics fingerprint**, so they follow content —
two objects with equal content share one plan, and any change to the
trees behind the statistics makes the old plan unreachable.

Pins the contracts of :func:`repro.engine.plans.cached_query_plan`,
:func:`repro.engine.stats.corpus_statistics` and the corpus executor's
``adopt_index`` path (a worker's content-equal tree copy must *reuse*
the batch's plans, not re-plan).
"""

import pytest

from repro.corpus import TreeCorpus, ask_query, run_batch, xpath_query
from repro.corpus.executor import evaluate_cell, plan_queries
from repro.engine.index import adopt_index, index_cache_clear, index_for
from repro.engine.planner import Planner, default_planner
from repro.engine.plans import plan_cache_clear
from repro.engine.stats import corpus_statistics, tree_statistics
from repro.queries import TreeDatabase
from repro.trees.parser import parse_term

pytestmark = pytest.mark.planner

QUERIES = (xpath_query("//δ"), ask_query("exists x O_σ(x)"))


def test_equal_content_trees_share_one_plan():
    """Plans are content-keyed: a parsed copy of the same term hits the
    cache, no matter that it is a different object with its own id."""
    planner = Planner()
    left = parse_term("σ(δ, σ(δ, δ))")
    right = parse_term("σ(δ, σ(δ, δ))")
    assert tree_statistics(left).fingerprint == \
        tree_statistics(right).fingerprint
    first = planner.plan_for_tree("xpath", "//δ", left)
    planned = planner.planned
    second = planner.plan_for_tree("xpath", "//δ", right)
    assert second is first
    assert planner.planned == planned


def test_different_content_invalidates_the_fingerprint():
    planner = Planner()
    base = parse_term("σ(δ, σ(δ))")
    grown = parse_term("σ(δ, σ(δ), δ)")
    first = planner.plan_for_tree("xpath", "//δ", base)
    planned = planner.planned
    second = planner.plan_for_tree("xpath", "//δ", grown)
    assert planner.planned == planned + 1  # new fingerprint, new plan
    assert second.fingerprint != first.fingerprint


def test_corpus_statistics_fingerprint_tracks_tree_set():
    corpus = TreeCorpus.random(6, max_size=20, seed=0)
    stats = corpus.statistics()
    assert corpus.statistics() is stats  # computed once per corpus
    extended = TreeCorpus(tuple(corpus.trees) + (parse_term("σ"),))
    reordered = TreeCorpus(tuple(reversed(corpus.trees)))
    assert extended.statistics().fingerprint != stats.fingerprint
    assert reordered.statistics().fingerprint != stats.fingerprint


def test_batch_replan_only_when_corpus_changes():
    """Re-running a batch over the same corpus reuses every plan; a
    corpus with one extra tree re-plans (its aggregate fingerprint
    moved)."""
    planner = default_planner()
    with TreeCorpus.random(8, max_size=24, seed=3) as corpus:
        first = corpus.run(QUERIES, engine="auto")
        planned = planner.planned
        second = corpus.run(QUERIES, engine="auto")
        assert planner.planned == planned  # all plans cache-hit
        assert second.plans == first.plans
        assert second.rows == first.rows
    with TreeCorpus.random(9, max_size=24, seed=3) as bigger:
        bigger.run(QUERIES, engine="auto")
        assert planner.planned > planned


def test_plan_cache_clear_forces_rebuild():
    planner = Planner()
    tree = parse_term("σ(δ, σ(δ))")
    planner.plan_for_tree("ask", "exists x O_δ(x)", tree)
    planned = planner.planned
    plan_cache_clear()
    planner.plan_for_tree("ask", "exists x O_δ(x)", tree)
    assert planner.planned == planned + 1


def test_adopted_index_keeps_plans_reachable():
    """The worker path: re-seating a pinned index via ``adopt_index``
    (after cache churn evicted it) changes neither the statistics
    fingerprint nor the cached plan — and a content-equal copy of the
    tree plans onto the very same cache slot."""
    tree = parse_term("σ(δ(σ, σ), σ(δ))")
    pinned = index_for(tree)
    planner = default_planner()
    first = evaluate_cell(QUERIES[0], tree, "auto")
    planned = planner.planned
    index_cache_clear()
    adopt_index(tree, pinned)  # re-seat without rebuilding
    assert index_for(tree) is pinned
    assert evaluate_cell(QUERIES[0], tree, "auto") == first
    assert planner.planned == planned  # same fingerprint, same plan
    copy = parse_term("σ(δ(σ, σ), σ(δ))")
    assert evaluate_cell(QUERIES[0], copy, "auto") == first
    assert planner.planned == planned  # content-keyed, not id-keyed


def test_batch_plans_align_with_queries_and_match_manual_engines():
    trees = [parse_term("σ(δ, σ(δ))"), parse_term("δ(σ)")]
    stats = corpus_statistics(trees)
    plans = plan_queries(QUERIES, stats)
    assert len(plans) == len(QUERIES)
    assert all(p.fingerprint == stats.fingerprint for p in plans)
    auto = run_batch(trees, QUERIES, engine="auto")
    fast = run_batch(trees, QUERIES, engine="fast")
    reference = run_batch(trees, QUERIES, engine="reference")
    assert auto.rows == fast.rows == reference.rows
    assert auto.plans is not None and len(auto.plans) == len(QUERIES)
    assert fast.plans is None
