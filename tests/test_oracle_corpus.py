"""Corpus persistence and regression replay.

Every JSON file under ``tests/corpus/`` is replayed through its engine
pair on every test run — entries are either pinned agreements (seeded
with the oracle) or shrunk counterexamples of bugs fixed since, and in
both cases the engines must agree *now*.
"""

import json
import random
from pathlib import Path

import pytest

from repro.oracle import (
    decode_case,
    default_pairs,
    encode_case,
    iter_corpus,
    pairs_by_name,
    replay_corpus,
    run_oracle,
    save_entry,
)
from repro.oracle.corpus import DEFAULT_CORPUS, entry_filename

CORPUS_ENTRIES = list(iter_corpus())


def test_corpus_directory_is_populated():
    assert CORPUS_ENTRIES, f"no corpus entries under {DEFAULT_CORPUS}"
    assert {e["pair"] for _, e in CORPUS_ENTRIES} == {
        p.name for p in default_pairs()
    }


@pytest.mark.parametrize(
    "path,entry", CORPUS_ENTRIES, ids=[p.name for p, _ in CORPUS_ENTRIES]
)
def test_corpus_entry_replays_clean(path, entry):
    pair, case = decode_case(entry, pairs_by_name())
    outcome = pair.check(case)
    assert outcome.agree, (
        f"{path.name}: {pair.name} disagrees again — "
        f"left={outcome.left} right={outcome.right}"
    )


def test_replay_corpus_driver():
    results = replay_corpus()
    assert len(results) == len(CORPUS_ENTRIES)
    assert all(r.ok for r in results)


def test_replay_skips_unknown_pairs(tmp_path):
    save_entry(
        {
            "schema": 1,
            "pair": "retired/engine",
            "tree": "σ",
            "attributes": [],
            "query": "*",
        },
        tmp_path,
    )
    results = replay_corpus(tmp_path)
    assert len(results) == 1
    assert results[0].skipped
    assert not results[0].ok


@pytest.mark.parametrize("pair", default_pairs(), ids=lambda p: p.name)
def test_encode_decode_round_trip(pair, tmp_path):
    rng = random.Random(13)
    case = pair.generate(rng, 7)
    entry = encode_case(pair, case, note="round-trip test")
    path = save_entry(entry, tmp_path)
    reloaded = json.loads(path.read_text(encoding="utf-8"))
    assert reloaded == entry
    pair2, case2 = decode_case(reloaded, pairs_by_name())
    assert pair2.name == pair.name
    assert case2.tree == case.tree
    assert case2.query == case.query
    assert case2.context == case.context


def test_entry_filename_is_deterministic_and_slugged():
    entry = {"schema": 1, "pair": "xpath/fo", "tree": "σ", "query": "*"}
    assert entry_filename(entry) == entry_filename(dict(entry))
    assert entry_filename(entry).startswith("xpath-fo-")
    assert "/" not in entry_filename(entry)


def test_decode_rejects_unknown_schema():
    with pytest.raises(ValueError):
        decode_case({"schema": 99, "pair": "xpath/fo"}, pairs_by_name())


def test_oracle_persists_shrunk_disagreements(tmp_path):
    # With correct engines nothing is written...
    report = run_oracle(seed=0, budget=6, max_size=5, corpus_dir=tmp_path)
    assert report.total_disagreements() == 0
    assert not list(tmp_path.glob("*.json"))
