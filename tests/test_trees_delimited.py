"""delim(t) / undelim tests (Section 3's delimited trees)."""

import pytest

from repro.trees import (
    BOTTOM,
    LEAF_DELIM,
    LEFT_DELIM,
    RIGHT_DELIM,
    ROOT_DELIM,
    TreeError,
    delim,
    is_delimiter,
    is_original_leaf,
    original_nodes,
    parse_term,
    random_tree,
    undelim,
)


def test_delimiters_recognised():
    for lab in (ROOT_DELIM, LEFT_DELIM, RIGHT_DELIM, LEAF_DELIM):
        assert is_delimiter(lab)
    assert not is_delimiter("a")


def test_delim_structure_single_node():
    t = parse_term("a")
    d = delim(t)
    assert d.label(()) == ROOT_DELIM
    kids = d.children(())
    assert [d.label(k) for k in kids] == [LEFT_DELIM, "a", RIGHT_DELIM]
    # the original leaf gets a △ child
    assert [d.label(k) for k in d.children((1,))] == [LEAF_DELIM]


def test_delim_wraps_every_child_sequence():
    t = parse_term("a(b, c)")
    d = delim(t)
    a = (1,)
    labels = [d.label(k) for k in d.children(a)]
    assert labels[0] == LEFT_DELIM and labels[-1] == RIGHT_DELIM
    assert labels[1:-1] == ["b", "c"]


def test_delimiter_attributes_are_bottom(sigma_delta_tree):
    d = delim(sigma_delta_tree)
    for u in d.nodes:
        if is_delimiter(d.label(u)):
            for attr in d.attributes:
                assert d.val(attr, u) is BOTTOM


def test_original_attributes_preserved(sigma_delta_tree):
    d = delim(sigma_delta_tree)
    originals = original_nodes(d)
    assert len(originals) == sigma_delta_tree.size
    values = sorted(
        str(d.val("a", u)) for u in originals
    )
    expected = sorted(
        str(sigma_delta_tree.val("a", u)) for u in sigma_delta_tree.nodes
    )
    assert values == expected


def test_undelim_inverse_random():
    for seed in range(8):
        t = random_tree(7, attributes=("a",), seed=seed)
        assert undelim(delim(t)) == t


def test_delim_size_formula():
    # each node adds: itself + (leaf ? 1 : 2) wrapper children; plus ▽,▷,◁
    for seed in range(6):
        t = random_tree(6, seed=seed)
        leaves = sum(1 for u in t.nodes if t.is_leaf(u))
        inner = t.size - leaves
        assert delim(t).size == 3 + t.size + leaves + 2 * inner


def test_is_original_leaf(sigma_delta_tree):
    d = delim(sigma_delta_tree)
    got = {u for u in d.nodes if is_original_leaf(d, u)}
    want_count = sum(
        1 for u in sigma_delta_tree.nodes if sigma_delta_tree.is_leaf(u)
    )
    assert len(got) == want_count


def test_delim_rejects_delimiter_labels():
    with pytest.raises(TreeError):
        delim(parse_term("▽"))


def test_undelim_rejects_plain_tree():
    with pytest.raises(TreeError):
        undelim(parse_term("a(b)"))
