"""xTM model tests: rules, determinism, tape, registers, resources."""

import pytest

from repro.automata.rules import DOWN, PositionTest
from repro.machines import (
    AttrEqConst,
    BLANK,
    CopyReg,
    HEAD_LEFT,
    HEAD_RIGHT,
    LoadAttr,
    RegEqAttr,
    RegEqConst,
    RegEqReg,
    SetConst,
    TreeMove,
    XTM,
    XTMError,
    XTMRule,
    run_xtm,
)
from repro.trees import parse_term


def machine(rules, registers=1, accepting=("acc",)):
    states = {"q0"} | set(accepting)
    for r in rules:
        states |= {r.state, r.new_state}
    return XTM(frozenset(states), "q0", frozenset(accepting),
               registers, tuple(rules))


def test_accept_immediately():
    m = machine([], accepting=("q0",))
    result = run_xtm(m, parse_term("x"))
    assert result.accepted and result.steps == 0


def test_stuck_rejects():
    m = machine([])
    result = run_xtm(m, parse_term("x"))
    assert not result.accepted


def test_label_and_position_dispatch():
    rules = [
        XTMRule("q0", "q1", label="a", position=PositionTest(leaf=False),
                action=TreeMove(DOWN)),
        XTMRule("q1", "acc", label="b"),
    ]
    m = machine(rules)
    assert run_xtm(m, parse_term("a(b)")).accepted
    assert not run_xtm(m, parse_term("a(c)")).accepted
    assert not run_xtm(m, parse_term("b(b)")).accepted


def test_tape_write_read():
    rules = [
        XTMRule("q0", "q1", tape_write="x", head_move=HEAD_RIGHT),
        XTMRule("q1", "q2", tape_symbol=BLANK, head_move=HEAD_LEFT),
        XTMRule("q2", "acc", tape_symbol="x"),
    ]
    result = run_xtm(machine(rules), parse_term("n"))
    assert result.accepted
    assert result.tape.startswith("x")
    assert result.space == 2


def test_head_cannot_go_negative():
    rules = [XTMRule("q0", "acc", head_move=HEAD_LEFT)]
    assert not run_xtm(machine(rules), parse_term("n")).accepted


def test_registers():
    rules = [
        XTMRule("q0", "q1", action=LoadAttr(1, "k")),
        XTMRule("q1", "q2", action=SetConst(2, 5), tests=(RegEqConst(1, 5),)),
        XTMRule("q2", "q3", tests=(RegEqReg(1, 2),), action=CopyReg(3, 1)),
        XTMRule("q3", "acc", tests=(RegEqAttr(3, "k"),)),
    ]
    m = machine(rules, registers=3)
    assert run_xtm(m, parse_term("n[k=5]")).accepted
    assert not run_xtm(m, parse_term("n[k=6]")).accepted


def test_negated_tests():
    rules = [XTMRule("q0", "acc", tests=(AttrEqConst("k", 9, negate=True),))]
    m = machine(rules)
    assert run_xtm(m, parse_term("n[k=1]")).accepted
    assert not run_xtm(m, parse_term("n[k=9]")).accepted


def test_head_at_zero_sensing():
    rules = [
        XTMRule("q0", "q1", head_move=HEAD_RIGHT),
        XTMRule("q1", "q1", head_at_zero=False, head_move=HEAD_LEFT),
        XTMRule("q1", "acc", head_at_zero=True),
    ]
    assert run_xtm(machine(rules), parse_term("n")).accepted


def test_nondeterminism_raises():
    rules = [
        XTMRule("q0", "acc"),
        XTMRule("q0", "q1"),
    ]
    with pytest.raises(XTMError):
        run_xtm(machine(rules), parse_term("n"))


def test_cycle_detected():
    rules = [
        XTMRule("q0", "q1", action=TreeMove(DOWN)),
        XTMRule("q1", "q0", action=TreeMove("up")),
    ]
    result = run_xtm(machine(rules), parse_term("a(b)"))
    assert not result.accepted and "cycle" in result.reason


def test_fuel_raises():
    rules = [XTMRule("q0", "q0", tape_write="1", head_move=HEAD_RIGHT)]
    with pytest.raises(XTMError):
        run_xtm(machine(rules), parse_term("n"), fuel=10)


def test_validation_register_range():
    with pytest.raises(XTMError):
        machine([XTMRule("q0", "acc", action=LoadAttr(2, "k"))], registers=1)
    with pytest.raises(XTMError):
        machine([XTMRule("q0", "acc", tests=(RegEqReg(1, 3),))], registers=2)


def test_validation_states():
    with pytest.raises(XTMError):
        XTM(frozenset({"a"}), "missing", frozenset(), 1, ())
