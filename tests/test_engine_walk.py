"""The compiled walking engine (:mod:`repro.engine.walk`) agrees with
the reference caterpillar NFA, and its building blocks — the index's
shift-decomposed move graphs and the ε-closed compiled edge tables —
behave as documented.

These complement the ``caterpillar/fast-caterpillar`` and
``ntwa/fast-caterpillar`` oracle pairs: the oracle fuzzes broadly with
shrinking and corpus persistence; these run on every test invocation
and pin the agreement into tier 1.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.caterpillar import nfa as reference
from repro.caterpillar.parser import parse_caterpillar
from repro.engine import walk as fast
from repro.engine.index import index_for, iter_bits
from repro.oracle import generators as gen
from repro.trees import parse_term

seeds = st.integers(min_value=0, max_value=10_000)


# ---------------------------------------------------------------------------
# hypothesis differential: reference NFA vs compiled product graph
# ---------------------------------------------------------------------------


@given(seeds)
@settings(max_examples=80, deadline=None)
def test_fast_walk_matches_reference(seed):
    """Per-context walks: identical answer node tuples."""
    rng = random.Random(seed)
    tree = gen.random_attributed_tree(rng, 10)
    expr = gen.random_caterpillar(rng, budget=rng.randint(2, 8))
    context = gen.random_context(rng, tree)
    assert fast.walk(expr, tree, context) == tuple(
        reference.walk(expr, tree, context)
    )


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_fast_relation_matches_reference(seed):
    """Full walk relations: the stacked all-pairs BFS agrees with the
    reference relation (which itself walks once per context)."""
    rng = random.Random(seed)
    tree = gen.random_attributed_tree(rng, 9)
    expr = gen.random_caterpillar(rng, budget=rng.randint(2, 7))
    assert fast.relation(expr, tree) == reference.relation(expr, tree)


@given(seeds)
@settings(max_examples=60, deadline=None)
def test_all_pairs_consistent_with_per_context(seed):
    """The stacked evaluation is just n per-context evaluations at once:
    slicing the all-pairs relation at a context must equal walking it."""
    rng = random.Random(seed)
    tree = gen.random_attributed_tree(rng, 9)
    expr = gen.random_caterpillar(rng, budget=rng.randint(2, 7))
    pairs = fast.relation(expr, tree)
    for context in tree.nodes:
        expected = {v for u, v in pairs if u == context}
        assert set(fast.walk(expr, tree, context)) == expected


# ---------------------------------------------------------------------------
# move-graph arrays
# ---------------------------------------------------------------------------


@pytest.fixture
def index(sigma_delta_tree):
    return index_for(sigma_delta_tree)


def _bits_to_nodes(index, bits):
    return {index.node_of[i] for i in iter_bits(bits)}


def test_move_groups_down_is_one_preorder_shift(index):
    """First children sit at preorder id + 1, so DOWN to first children
    is a single shift group over the non-leaf mask."""
    groups = index.move_groups["down"]
    assert len(groups) == 1
    shift, mask = groups[0]
    assert shift == 1
    assert mask == index.all_mask & ~index.leaf_mask


def test_move_masks_match_tree_structure(index):
    root_bit = 1 << index.id_of[()]
    # DOWN is the caterpillar move: first child only (down right* spans all).
    assert _bits_to_nodes(index, index.down_mask(root_bit)) == {(0,)}
    child_bit = 1 << index.id_of[(0,)]
    assert _bits_to_nodes(index, index.up_mask(child_bit)) == {()}
    assert _bits_to_nodes(index, index.right_mask(child_bit)) == {(1,)}
    assert _bits_to_nodes(index, index.left_mask(child_bit)) == set()
    assert index.up_mask(root_bit) == 0


def test_move_groups_shifts_agree_with_parent_map(index):
    """Every (shift, mask) group moves each masked source to exactly
    the node the tree relation says it should reach."""
    for direction, mover in index.moves.items():
        for u, node in enumerate(index.node_of):
            image = mover(1 << u)
            neighbours = _bits_to_nodes(index, image)
            if direction == "up":
                expected = {node[:-1]} if node else set()
            elif direction == "down":
                expected = {node + (0,)} if index.children_of(u) else set()
            elif direction == "right":
                sib = node[:-1] + (node[-1] + 1,) if node else None
                expected = {sib} if sib in index.id_of else set()
            else:  # left
                sib = (
                    node[:-1] + (node[-1] - 1,)
                    if node and node[-1] > 0
                    else None
                )
                expected = {sib} if sib is not None else set()
            assert neighbours == expected, (direction, node)


def test_position_masks(index):
    assert _bits_to_nodes(index, index.root_mask) == {()}
    leaves = _bits_to_nodes(index, index.leaf_mask)
    assert leaves == {(0, 0), (0, 1), (1, 0)}
    firsts = _bits_to_nodes(index, index.first_mask)
    assert firsts == {(0,), (0, 0), (1, 0)}  # first siblings; root is not


# ---------------------------------------------------------------------------
# compiled edge tables
# ---------------------------------------------------------------------------


def test_compiled_walk_collapses_star_plumbing():
    """``(down | right)*`` is behaviourally a single accepting state
    with two move self-loops; compilation must find that."""
    compiled = fast.compile_walk(parse_caterpillar("(down | right)*"))
    assert compiled.state_count == 1
    assert compiled.start == 0
    assert compiled.accepting == (0,)
    atoms = {atom for atom, _ in compiled.edges[0]}
    assert atoms == {("move", "down"), ("move", "right")}
    assert all(targets == (0,) for _, targets in compiled.edges[0])


def test_compiled_walk_epsilon_closure_folds_sequencing():
    """In ``down isLeaf`` the ε-glue between the two atoms disappears:
    the start state steps on DOWN into a state whose only edge is the
    leaf test into the accepting state."""
    compiled = fast.compile_walk(parse_caterpillar("down isLeaf"))
    assert compiled.start == 0
    assert 0 not in compiled.accepting  # must actually move first
    (atom, targets) = compiled.edges[0][0]
    assert atom == ("move", "down")
    (mid,) = targets
    test_edges = dict(compiled.edges[mid])
    (target,) = test_edges[("test", "isLeaf")]
    assert target in compiled.accepting


def test_compiled_walk_label_atoms():
    compiled = fast.compile_walk(parse_caterpillar("<σ> down"))
    atoms = [atom for state_edges in compiled.edges for atom, _ in state_edges]
    assert ("label", "σ") in atoms
    assert ("move", "down") in atoms


def test_evaluator_result_mask_marks_answers(sigma_delta_tree):
    expr = parse_caterpillar("(down | right)* isLeaf")
    evaluator = fast.compile_walk(expr).bind(sigma_delta_tree)
    index = index_for(sigma_delta_tree)
    answers = _bits_to_nodes(index, evaluator.result_mask(()))
    assert answers == {(0, 0), (0, 1), (1, 0)}


# ---------------------------------------------------------------------------
# the compile cache
# ---------------------------------------------------------------------------


def test_compile_cache_reuses_compiled_form():
    fast.compile_cache_clear()
    expr = parse_caterpillar("(up | down)* isRoot")
    first = fast.compile_walk(expr)
    again = fast.compile_walk(parse_caterpillar("(up | down)* isRoot"))
    assert first is again
    hits, misses, maxsize, currsize = fast.compile_cache_info()
    assert (hits, misses) == (1, 1)
    assert currsize == 1 and maxsize >= currsize
    fast.compile_cache_clear()
    assert fast.compile_cache_info() == (0, 0, maxsize, 0)


def test_evaluator_cache_reuses_bound_tables(sigma_delta_tree):
    fast.compile_cache_clear()
    expr = parse_caterpillar("(down | right)*")
    first = fast.evaluator_for(expr, sigma_delta_tree)
    again = fast.evaluator_for(expr, sigma_delta_tree)
    assert first is again
    other = fast.evaluator_for(expr, parse_term("a(b)"))
    assert other is not first


# ---------------------------------------------------------------------------
# fixed end-to-end cases (no randomness, readable answers)
# ---------------------------------------------------------------------------


def test_walk_next_leaf_caterpillar(sigma_delta_tree):
    """The paper's next-leaf caterpillar, from the first leaf."""
    expr = parse_caterpillar(
        "isLeaf (up isLast)* (up right | right) (down isFirst)* isLeaf"
    )
    # From (0, 0) the `up right` alternative also jumps a level, so the
    # answer set holds both following leaves; from the last leaf, none.
    assert fast.walk(expr, sigma_delta_tree, (0, 0)) == ((0, 1), (1, 0))
    assert fast.walk(expr, sigma_delta_tree, (0, 1)) == ((1, 0),)
    assert fast.walk(expr, sigma_delta_tree, (1, 0)) == ()


def test_relation_reaches_all_from_everywhere(sigma_delta_tree):
    expr = parse_caterpillar("(up | down | left | right)*")
    nodes = set(sigma_delta_tree.nodes)
    assert fast.relation(expr, sigma_delta_tree) == frozenset(
        (u, v) for u in nodes for v in nodes
    )


def test_matches(sigma_delta_tree):
    assert fast.matches(
        parse_caterpillar("(down | right)* <δ>"), sigma_delta_tree
    )
    assert not fast.matches(parse_caterpillar("up"), sigma_delta_tree)
