"""Unit tests for node-address arithmetic."""

import pytest

from repro.trees.node import (
    ROOT,
    ancestors,
    are_siblings,
    child,
    child_index,
    depth,
    document_less,
    format_node,
    is_ancestor,
    is_ancestor_or_self,
    left_sibling,
    parent,
    parse_node,
    right_sibling,
    sibling_less,
)


def test_root_is_empty_tuple():
    assert ROOT == ()
    assert parent(ROOT) is None
    assert depth(ROOT) == 0


def test_child_and_parent_inverse():
    node = child(child(ROOT, 2), 0)
    assert node == (2, 0)
    assert parent(node) == (2,)
    assert child_index(node) == 0


def test_child_rejects_negative_index():
    with pytest.raises(ValueError):
        child(ROOT, -1)


def test_left_sibling_of_first_child_is_none():
    assert left_sibling((0,)) is None
    assert left_sibling((3, 0)) is None
    assert left_sibling((3, 2)) == (3, 1)


def test_right_sibling_arithmetic():
    assert right_sibling((1,)) == (2,)
    with pytest.raises(ValueError):
        right_sibling(ROOT)


def test_ancestor_relations():
    assert is_ancestor((), (0, 1))
    assert not is_ancestor((0, 1), (0, 1))
    assert is_ancestor_or_self((0, 1), (0, 1))
    assert not is_ancestor((1,), (0, 1))


def test_siblings():
    assert are_siblings((0, 1), (0, 2))
    assert not are_siblings((0, 1), (1, 2))
    assert not are_siblings((0, 1), (0, 1))
    assert sibling_less((0, 1), (0, 2))
    assert not sibling_less((0, 2), (0, 1))


def test_document_order_ancestors_first():
    assert document_less((), (0,))
    assert document_less((0,), (1,))
    assert document_less((0, 5), (1,))
    assert not document_less((1,), (0, 5))


def test_ancestors_iteration_closest_first():
    assert list(ancestors((0, 1, 2))) == [(0, 1), (0,), ()]


def test_format_parse_roundtrip():
    for node in [(), (0,), (1, 2, 3)]:
        assert parse_node(format_node(node)) == node
    assert format_node(()) == "ε"
    assert format_node((0, 1)) == "1.2"


def test_parse_node_rejects_garbage():
    with pytest.raises(ValueError):
        parse_node("a.b")
    with pytest.raises(ValueError):
        parse_node("0.1")  # components are 1-based
