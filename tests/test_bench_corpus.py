"""Smoke tests for the ``--suite corpus`` benchmark — the batch
executor sweep stays runnable at toy sizes, its JSON stays well-formed,
and the committed full-size trajectory keeps clearing its gates."""

import json
from pathlib import Path

from repro import bench

MODES = ["naive", "serial_cold", "serial_warm"] + [
    f"workers_{w}" for w in bench.CORPUS_WORKER_COUNTS
]


def test_quick_corpus_benchmark_writes_wellformed_json(tmp_path):
    out = tmp_path / "BENCH_corpus.json"
    code = bench.main(
        [
            "--suite", "corpus", "--quick",
            "--output", str(out), "--seed", "5", "--repeats", "1",
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == bench.CORPUS_SCHEMA
    assert report["quick"] is True
    assert report["seed"] == 5
    rows = report["corpus"]["rows"]
    assert len(rows) == len(bench.CORPUS_TREE_COUNTS_QUICK) * len(MODES)
    for row in rows:
        assert row["mode"] in MODES
        assert row["seconds"] > 0
        assert row["speedup"] > 0
        assert row["nodes"] > 0
    # every mode appears at every tree count
    for count in bench.CORPUS_TREE_COUNTS_QUICK:
        assert {r["mode"] for r in rows if r["n"] == count} == set(MODES)
    assert len(report["corpus"]["queries"]) == len(bench.CORPUS_QUERIES)
    assert report["errors"] == []  # no per-case exception was swallowed
    summary = report["summary"]
    assert summary["errors"] == 0
    assert summary["corpus_max_trees"] == bench.CORPUS_TREE_COUNTS_QUICK[-1]
    assert summary["pass"] is True  # quick mode never gates on speed


def test_corpus_benchmark_is_agreement_checked(monkeypatch):
    # The bench raises (rather than records nonsense) if the batch
    # executor ever disagrees with the naive per-call loop.
    original = bench._naive_corpus_rows

    def broken(trees, queries):
        grid = original(trees, queries)
        return grid[::-1]  # scrambled tree order

    monkeypatch.setattr(bench, "_naive_corpus_rows", broken)
    try:
        bench.run_corpus_benchmark([4], seed=0, repeats=1)
    except AssertionError as err:
        assert "disagrees" in str(err)
    else:  # pragma: no cover
        raise AssertionError("expected the differential guard to fire")


def test_committed_corpus_trajectory_matches_schema():
    # The repo ships a full-size BENCH_corpus.json; keep it honest.
    path = Path(__file__).resolve().parents[1] / "BENCH_corpus.json"
    report = json.loads(path.read_text())
    assert report["schema"] == bench.CORPUS_SCHEMA
    assert report.get("errors", []) == []
    summary = report["summary"]
    assert summary["pass"] is True
    assert summary.get("errors", 0) == 0
    if not report["quick"]:  # `make bench-corpus` may have left a quick regen
        assert (
            summary["corpus_median_speedup_at_max_size"]
            >= summary["thresholds"]["batch"]
        )
        assert (
            summary["corpus_warm_median_speedup_at_max_size"]
            >= summary["thresholds"]["warm"]
        )


def test_corpus_trajectory_is_seen_by_the_check_ratchet():
    root = Path(__file__).resolve().parents[1]
    path = root / "BENCH_corpus.json"
    assert bench.check_reports([path]) == []
