"""Smoke tests for the ``--suite serve`` benchmark — the closed-loop
client sweep stays runnable at toy sizes, its JSON stays well-formed,
the committed full-size trajectory keeps clearing its chaos gates, and
``--check`` rejects a trajectory that stopped clearing them."""

import json
from pathlib import Path

import pytest

from repro import bench

pytestmark = pytest.mark.service


def test_quick_serve_benchmark_writes_wellformed_json(tmp_path):
    out = tmp_path / "BENCH_serve.json"
    code = bench.main(
        [
            "--suite", "serve", "--quick",
            "--output", str(out), "--seed", "3",
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == bench.SERVE_SCHEMA
    assert report["quick"] is True
    assert report["seed"] == 3
    assert report["errors"] == []
    serve = report["serve"]
    assert serve["tree_count"] == bench.SERVE_TREE_COUNT_QUICK
    assert serve["query"] == {
        "kind": bench.SERVE_QUERY.kind,
        "text": bench.SERVE_QUERY.text,
    }
    rows = serve["rows"]
    assert [r["clients"] for r in rows] == list(bench.SERVE_CLIENT_COUNTS[:2])
    for row in rows:
        assert row["faulted"] is False
        assert row["requests"] > 0
        assert row["errors"] == 0
        assert row["wrong_answers"] == 0
        assert row["throughput_rps"] > 0
        assert 0 < row["p50_ms"] <= row["p99_ms"]
    chaos = serve["fault_row"]
    assert chaos["faulted"] is True
    assert chaos["clients"] == 8
    # The chaos round injected real faults and every one degraded to a
    # correct answer: the robustness headline, measured.
    assert chaos["degraded_chunks"] > 0
    assert chaos["errors"] == 0
    assert chaos["wrong_answers"] == 0
    summary = report["summary"]
    assert summary["serve_throughput_rps_1"] > 0
    assert summary["serve_throughput_rps_8"] > 0
    assert summary["serve_wrong_answers"] == 0
    assert summary["serve_fault_error_rate"] == 0.0
    assert summary["pass"] is True  # quick mode never gates on scale


def test_committed_serve_trajectory_matches_schema():
    # The repo ships a full-size BENCH_serve.json; keep it honest.
    path = Path(__file__).resolve().parents[1] / "BENCH_serve.json"
    report = json.loads(path.read_text())
    assert report["schema"] == bench.SERVE_SCHEMA
    assert report.get("errors", []) == []
    summary = report["summary"]
    assert summary["pass"] is True
    assert summary["serve_wrong_answers"] == 0
    assert summary["serve_fault_error_rate"] == 0.0
    if not report["quick"]:  # `make bench-serve` may have left a quick regen
        thresholds = summary["thresholds"]
        assert summary["serve_scale_at_8_clients"] >= thresholds["scale"]
        assert (
            0.0
            < summary["serve_fault_p99_ratio"]
            <= thresholds["fault_p99_ratio"]
        )


def test_check_rejects_a_serve_trajectory_with_wrong_answers(tmp_path):
    report = bench.run_serve_suite(quick=True, seed=0)
    report["summary"]["serve_wrong_answers"] = 3
    path = tmp_path / "BENCH_serve.json"
    path.write_text(json.dumps(report))
    assert bench.main(["--check", str(path)]) == 1


def test_check_rejects_a_full_trajectory_that_lost_its_scale(tmp_path):
    report = bench.run_serve_suite(quick=True, seed=0)
    report["quick"] = False  # full-size reports must carry their gates
    report["summary"]["serve_scale_at_8_clients"] = 1.1
    path = tmp_path / "BENCH_serve.json"
    path.write_text(json.dumps(report))
    assert bench.main(["--check", str(path)]) == 1


def test_check_accepts_a_passing_serve_trajectory(tmp_path):
    report = bench.run_serve_suite(quick=True, seed=0)
    path = tmp_path / "BENCH_serve.json"
    path.write_text(json.dumps(report))
    assert bench.main(["--check", str(path)]) == 0
