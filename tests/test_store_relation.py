"""Relation algebra tests."""

import pytest

from repro.store import Relation, RelationError


def test_construction_and_basics():
    r = Relation(2, [(1, 2), (3, 4), (1, 2)])
    assert r.arity == 2
    assert len(r) == 2
    assert (1, 2) in r
    assert (2, 1) not in r
    assert bool(r)
    assert not Relation.empty(3)


def test_bad_arity_rejected():
    with pytest.raises(RelationError):
        Relation(0)
    with pytest.raises(RelationError):
        Relation(2, [(1,)])


def test_non_d_values_rejected():
    with pytest.raises(RelationError):
        Relation(1, [([1],)])
    with pytest.raises(RelationError):
        Relation(1, [(True,)])  # booleans are not D-values


def test_constructors():
    assert Relation.singleton(5).rows == frozenset({(5,)})
    assert Relation.singleton("a", "b").arity == 2
    assert Relation.unary([1, 2, 1]).unary_values() == frozenset({1, 2})
    with pytest.raises(RelationError):
        Relation.singleton()


def test_single_value():
    assert Relation.singleton(9).single_value() == 9
    with pytest.raises(RelationError):
        Relation.unary([1, 2]).single_value()
    with pytest.raises(RelationError):
        Relation.empty(1).single_value()
    with pytest.raises(RelationError):
        Relation.singleton(1, 2).single_value()


def test_set_operations():
    a = Relation.unary([1, 2, 3])
    b = Relation.unary([3, 4])
    assert a.union(b).unary_values() == frozenset({1, 2, 3, 4})
    assert a.intersection(b).unary_values() == frozenset({3})
    assert a.difference(b).unary_values() == frozenset({1, 2})


def test_schema_mismatch():
    with pytest.raises(RelationError):
        Relation.unary([1]).union(Relation(2, [(1, 2)]))


def test_project():
    r = Relation(3, [(1, 2, 3), (4, 5, 6)])
    assert r.project([2, 0]).rows == frozenset({(3, 1), (6, 4)})
    with pytest.raises(RelationError):
        r.project([3])
    with pytest.raises(RelationError):
        r.project([])


def test_select():
    r = Relation(2, [(1, 2), (1, 3), (2, 2)])
    assert r.select_eq(0, 1).rows == frozenset({(1, 2), (1, 3)})
    assert r.select_eq_cols(0, 1).rows == frozenset({(2, 2)})
    with pytest.raises(RelationError):
        r.select_eq(5, 1)


def test_product_and_join():
    a = Relation.unary([1, 2])
    b = Relation.unary(["x"])
    prod = a.product(b)
    assert prod.arity == 2 and len(prod) == 2
    left = Relation(2, [(1, "a"), (2, "b")])
    right = Relation(2, [("a", 10), ("c", 30)])
    joined = left.join(right, [(1, 0)])
    assert joined.rows == frozenset({(1, "a", "a", 10)})


def test_values_and_hash():
    r = Relation(2, [(1, "x")])
    assert r.values() == frozenset({1, "x"})
    assert hash(Relation.unary([1])) == hash(Relation.unary([1]))
    assert Relation.unary([1]) == Relation.unary([1])
    assert Relation.unary([1]) != Relation.unary([2])


def test_iteration_deterministic():
    r = Relation.unary([3, 1, 2])
    assert list(r) == list(r)
