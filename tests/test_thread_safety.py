"""Concurrent-hammer regressions for the shared mutable state the
query service leans on: :class:`repro.caching.KeyedLRU` (plan and
index caches shared across session threads) and
:class:`repro.resilience.log.ResilienceLog` (one log, many recorders).

Each hammer drives many threads through the full API mix and then
checks *invariants*, not schedules: returned values are always correct
for their key, caches never exceed their bound, counters add up
exactly, and every mid-flight snapshot is internally consistent."""

import threading

from repro.caching import KeyedLRU
from repro.resilience.log import ResilienceLog

THREADS = 8
ROUNDS = 400


def _run_threads(target, count=THREADS):
    errors = []

    def wrapped(worker_id):
        try:
            target(worker_id)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []


class TestKeyedLRUHammer:
    def test_mixed_traffic_never_corrupts_the_cache(self):
        cache = KeyedLRU(maxsize=16, name="hammer")
        stop_clearing = threading.Event()

        def value_for(key):
            return ("value", key)

        def hammer(worker_id):
            for i in range(ROUNDS):
                key = (worker_id * 7 + i) % 40
                got = cache.get_or_compute(key, lambda k=key: value_for(k))
                # The factory races outside the lock by design; whoever
                # wins, the value handed back must belong to OUR key.
                assert got == value_for(key)
                peeked = cache.get(key)
                assert peeked is None or peeked == value_for(key)
                cache.put((worker_id, "private"), i)
                assert len(cache) <= 16
                if i % 50 == 0:
                    cache.cache_info()

        def clearer():
            while not stop_clearing.is_set():
                cache.cache_clear()
                stop_clearing.wait(0.002)

        clear_thread = threading.Thread(target=clearer)
        clear_thread.start()
        try:
            _run_threads(hammer)
        finally:
            stop_clearing.set()
            clear_thread.join(timeout=10)
        info = cache.cache_info()
        # cache_clear() resets statistics, so only the tail since the
        # last clear is visible — but it is never torn or negative.
        assert info.hits >= 0 and info.misses >= 0
        assert info.currsize == len(cache) <= 16

    def test_single_key_stampede_yields_one_coherent_value(self):
        cache = KeyedLRU(maxsize=4, name="stampede")
        barrier = threading.Barrier(THREADS)
        seen = []
        lock = threading.Lock()

        def hammer(worker_id):
            barrier.wait(timeout=30)
            value = cache.get_or_compute("hot", lambda: ("hot", "plan"))
            with lock:
                seen.append(value)

        _run_threads(hammer)
        # Several threads may have computed the miss concurrently (the
        # documented race), but everyone must still hold a correct value
        # and the cache exactly one coherent entry for the key.
        assert seen == [("hot", "plan")] * THREADS
        assert cache.get("hot") == ("hot", "plan")
        # Every call bumped exactly one of hits/misses — no lost or
        # double-counted probes.
        info = cache.cache_info()
        assert info.hits + info.misses == THREADS


class TestResilienceLogHammer:
    def test_counters_add_up_exactly_under_contention(self):
        log = ResilienceLog()
        operations = ("xpath", "ask", "select")
        per_thread = 120
        stop_reading = threading.Event()
        torn_snapshots = []

        def hammer(worker_id):
            operation = operations[worker_id % len(operations)]
            for i in range(per_thread):
                log.record_fast_success(operation)
                log.record_fallback(
                    operation, ValueError(f"boom {i}"), fallback_seconds=1.0
                )
                log.record_failure(operation, RuntimeError(f"dead {i}"))

        def reader():
            while not stop_reading.is_set():
                snap = log.snapshot()
                # A half-applied record would break this identity.
                if snap["calls"] != (
                    snap["fast_successes"]
                    + snap["fallbacks"]
                    + snap["failures"]
                ):
                    torn_snapshots.append(snap)

        read_thread = threading.Thread(target=reader)
        read_thread.start()
        try:
            _run_threads(hammer)
        finally:
            stop_reading.set()
            read_thread.join(timeout=10)
        assert torn_snapshots == []
        snap = log.snapshot()
        total = THREADS * per_thread
        assert snap["calls"] == total * 3
        assert snap["fast_successes"] == total
        assert snap["fallbacks"] == total
        assert snap["failures"] == total
        # 1.0 per fallback sums exactly in floating point.
        assert snap["fallback_seconds"] == float(total)
        assert sum(
            stats["calls"] for stats in snap["per_operation"].values()
        ) == total * 3
        assert snap["last_error"].startswith(("RuntimeError", "ValueError"))

    def test_clear_races_with_recording_without_corruption(self):
        log = ResilienceLog()

        def hammer(worker_id):
            for i in range(200):
                log.record_fast_success("op")
                if worker_id == 0 and i % 20 == 0:
                    log.clear()
                snap = log.snapshot()
                assert snap["calls"] == snap["fast_successes"]

        _run_threads(hammer)
