"""Generator tests: determinism, counts, scenario properties."""

import pytest

from repro.trees import (
    all_trees,
    catalog_document,
    chain_tree,
    full_tree,
    random_string_values,
    random_tree,
)
from repro.automata.examples import example_32_spec


def test_random_tree_deterministic_per_seed():
    a = random_tree(20, seed=5)
    b = random_tree(20, seed=5)
    c = random_tree(20, seed=6)
    assert a == b
    assert a != c


def test_random_tree_size_and_fanout():
    t = random_tree(30, max_children=3, seed=1)
    assert t.size == 30
    assert all(t.degree(u) <= 3 for u in t.nodes)


def test_random_tree_pools_respected():
    t = random_tree(25, alphabet=("x",), attributes=("p", "q"),
                    value_pool=(7,), seed=2)
    assert set(t.alphabet) == {"x"}
    for u in t.nodes:
        assert t.val("p", u) == 7 and t.val("q", u) == 7


def test_random_tree_rejects_empty():
    with pytest.raises(ValueError):
        random_tree(0)


def test_random_string_values_deterministic():
    assert random_string_values(9, seed=4) == random_string_values(9, seed=4)
    assert len(random_string_values(9, seed=4)) == 9


def test_chain_tree_is_monadic():
    t = chain_tree(6)
    assert t.size == 6
    assert all(t.degree(u) <= 1 for u in t.nodes)


def test_catalog_uniform_satisfies_example_32():
    doc = catalog_document(4, 3, seed=0)
    # relabel to the Example 3.2 alphabet: dept -> δ carries the check
    relabelled = doc.relabel({"dept": "δ", "item": "σ", "catalog": "σ"})
    t = relabelled.with_attribute("a", dict(doc.attr_table("cur")))
    assert example_32_spec(t)


def test_catalog_broken_violates_example_32():
    doc = catalog_document(4, 3, uniform_departments=False, seed=0)
    relabelled = doc.relabel({"dept": "δ", "item": "σ", "catalog": "σ"})
    t = relabelled.with_attribute("a", dict(doc.attr_table("cur")))
    assert not example_32_spec(t)


def test_catalog_break_needs_room():
    with pytest.raises(ValueError):
        catalog_document(2, 1, uniform_departments=False)


def test_all_trees_counts():
    # unlabelled tree shapes with n nodes: 1, 1, 2, 5 (Catalan-ish)
    assert len(all_trees(1)) == 1
    assert len(all_trees(2)) == 1
    assert len(all_trees(3)) == 2
    assert len(all_trees(4)) == 5
    # labellings multiply: shapes(3) * 2^3
    assert len(all_trees(3, ("a", "b"))) == 2 * 8


def test_all_trees_distinct():
    family = all_trees(4, ("a", "b"))
    assert len(set(family)) == len(family)


def test_random_tree_accepts_random_instance():
    import random

    from repro.trees import as_rng

    a = random_tree(15, seed=random.Random(3))
    b = random_tree(15, seed=random.Random(3))
    assert a == b
    assert as_rng(None) is not None


def test_as_rng_returns_instance_unchanged():
    import random

    from repro.trees import as_rng

    rng = random.Random(0)
    assert as_rng(rng) is rng
    assert isinstance(as_rng(7), random.Random)


def test_shared_rng_threads_one_stream():
    # Two draws from one Random must differ (the stream advances),
    # unlike two fresh int-seeded generators.
    import random

    rng = random.Random(9)
    first = random_tree(10, seed=rng)
    second = random_tree(10, seed=rng)
    assert first != second
    assert random_tree(10, seed=9) == random_tree(10, seed=9)
