"""FO text-syntax parser tests."""

import pytest

from repro.logic import evaluate, parse_formula, parse_query, parse_sentence
from repro.logic.parser import FormulaSyntaxError
from repro.logic import tree_fo as T
from repro.trees import parse_term


@pytest.fixture
def doc():
    return parse_term(
        'catalog(dept(item[cur="EUR"], item[cur="EUR"]), dept(item[cur="USD"]))'
    )


@pytest.mark.parametrize(
    "text,want",
    [
        ("true", True),
        ("false", False),
        ("~false", True),
        ('exists x val_cur(x) = "USD"', True),
        ('exists x val_cur(x) = "GBP"', False),
        ("forall x (O_dept(x) -> exists y (E(x, y) & O_item(y)))", True),
        ("forall x (leaf(x) -> O_item(x))", True),
        ("exists x y (x << y & O_item(y) & root(x))", True),
        ("exists x y (x < y & O_dept(x) & O_dept(y))", True),
        ("exists x y succ(x, y)", True),
        ("exists x y (~x = y & val_cur(x) = val_cur(y))", True),
        ('forall x (O_item(x) -> val_cur(x) = "EUR" | val_cur(x) = "USD")', True),
        ("forall x exists y x = y", True),
        ("exists x (first(x) & last(x))", True),  # the lone USD item
        ("exists x (root(x) <-> O_catalog(x))", True),
    ],
)
def test_parse_and_evaluate(doc, text, want):
    assert evaluate(parse_formula(text), doc) == want


def test_unicode_connectives(doc):
    assert evaluate(parse_formula("∀x (O_item(x) → ∃y E(y, x))"), doc)
    assert evaluate(parse_formula("∃x ¬O_item(x)"), doc)
    assert evaluate(parse_formula("∃x y (x ≺ y ∧ O_item(y))"), doc)


def test_integer_constants():
    t = parse_term("n[k=5](m[k=-3])")
    assert evaluate(parse_formula("exists x val_k(x) = 5"), t)
    assert evaluate(parse_formula("exists x val_k(x) = -3"), t)
    assert not evaluate(parse_formula("exists x val_k(x) = 4"), t)


def test_string_escapes():
    t = parse_term("n").with_attribute("s", {(): 'say "hi"'})
    assert evaluate(parse_formula(r'exists x val_s(x) = "say \"hi\""'), t)


def test_comments_and_whitespace(doc):
    text = """
        forall x (          -- every department
            O_dept(x) ->    -- has an item child
            exists y (E(x, y) & O_item(y))
        )
    """
    assert evaluate(parse_formula(text), doc)


def test_precedence_and_binds_tighter_than_or():
    # a | b & c parses as a | (b & c)
    f = parse_formula("false | true & true")
    assert isinstance(f, T.Or)


def test_implies_right_associative():
    f = parse_formula("false -> false -> false")
    # false -> (false -> false) ≡ true
    assert evaluate(f, parse_term("n"))


def test_parse_sentence_rejects_free_variables():
    with pytest.raises(Exception):
        parse_sentence("E(x, y)")


def test_parse_query(doc):
    q = parse_query("x << y & O_item(y)")
    assert q.select(doc, ()) == ((0, 0), (0, 1), (1, 0))
    assert q.select(doc, (0,)) == ((0, 0), (0, 1))


def test_parse_query_fragment_checked():
    with pytest.raises(Exception):
        parse_query("forall z E(x, z)")  # universal: not FO(∃*)


@pytest.mark.parametrize(
    "bad",
    [
        "", "exists x (", "x ==", "forall (x)", "val_(x) = 1",
        "x y", "E(x)", "O_(x)", "exists", "(true", "true)",
        'val_a(x) = "unterminated',
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(FormulaSyntaxError):
        parse_formula(bad)


def test_roundtrip_through_ast(doc):
    # parse, evaluate, and compare against the hand-built AST
    x, y = T.NVar("x"), T.NVar("y")
    hand = T.forall(x, T.implies(T.Label("dept", x),
                                 T.exists(y, T.conj(T.Edge(x, y),
                                                    T.Label("item", y)))))
    parsed = parse_formula(
        "forall x (O_dept(x) -> exists y (E(x, y) & O_item(y)))"
    )
    for tree in (doc, parse_term("catalog(dept)")):
        assert evaluate(hand, tree) == evaluate(parsed, tree)


def test_facade_ask_and_select_where(doc):
    from repro import TreeDatabase

    db = TreeDatabase(doc)
    assert db.ask('exists x val_cur(x) = "USD"')
    assert not db.ask("forall x O_item(x)")
    assert db.select_where("x << y & O_dept(y)") == ((0,), (1,))
