"""The stock automata agree with their independent specifications."""

import pytest

from tests.conftest import tree_family

from repro.automata import accepts
from repro.automata.examples import (
    all_leaves_same_spec,
    all_leaves_same_twrl,
    all_values_same_spec,
    all_values_same_twr,
    even_leaves_automaton,
    even_leaves_spec,
    example_32,
    example_32_fo_spec,
    example_32_spec,
    exists_value_automaton,
    exists_value_spec,
    root_value_at_some_leaf,
    root_value_at_some_leaf_spec,
    run_example_32,
    spine_constant_automaton,
    spine_constant_spec,
)
from repro.logic import evaluate
from repro.trees import all_trees, delim, parse_term


FAMILY = tree_family(count=14, max_size=13)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_example_32_matches_python_spec(tree):
    assert run_example_32(tree) == example_32_spec(tree)


@pytest.mark.parametrize("tree", FAMILY[:8], ids=lambda t: f"n{t.size}")
def test_example_32_matches_fo_spec(tree):
    assert run_example_32(tree) == evaluate(example_32_fo_spec(), tree)


def test_example_32_positive_and_negative_fixed():
    good = parse_term("σ(δ(σ[a=1], σ[a=1]), δ(σ[a=2]))")
    bad = parse_term("σ(δ(σ[a=1], σ[a=2]))")
    assert run_example_32(good)
    assert not run_example_32(bad)


def test_example_32_vacuous_delta():
    # a δ-leaf has no leaf-descendants: vacuously uniform
    assert run_example_32(parse_term("δ[a=1]"))
    assert run_example_32(parse_term("σ[a=1](σ[a=2])"))  # no δ at all


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_even_leaves(tree):
    assert accepts(even_leaves_automaton(), tree) == even_leaves_spec(tree)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_exists_value(tree):
    a = exists_value_automaton("a", 2)
    assert accepts(a, tree) == exists_value_spec("a", 2)(tree)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_root_value_at_some_leaf(tree):
    a = root_value_at_some_leaf()
    assert accepts(a, tree) == root_value_at_some_leaf_spec()(tree)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_spine_constant(tree):
    a = spine_constant_automaton()
    assert accepts(a, tree) == spine_constant_spec()(tree)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_all_values_same(tree):
    a = all_values_same_twr()
    assert accepts(a, tree) == all_values_same_spec()(tree)


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_all_leaves_same(tree):
    a = all_leaves_same_twrl()
    assert accepts(a, tree) == all_leaves_same_spec()(tree)


def test_even_leaves_exhaustive_small():
    a = even_leaves_automaton()
    for t in all_trees(4, ("σ",)):
        assert accepts(a, t) == even_leaves_spec(t)


def test_even_leaves_not_fooled_by_single_node():
    assert not accepts(even_leaves_automaton(), parse_term("σ"))
    assert accepts(even_leaves_automaton(), parse_term("σ(σ, σ)"))
