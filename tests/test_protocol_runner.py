"""Lemma 4.5 end to end: the protocol simulates tw^{r,l} programs."""

import itertools
import random

import pytest

from repro.protocol import (
    AcceptMessage,
    AtpRequest,
    ConfigMessage,
    ProtocolError,
    Reply,
    TypeMessage,
    protocol_agrees_with_run,
    required_type_width,
    run_protocol,
)
from repro.protocol.programs import (
    all_same_spec,
    atp_all_same,
    first_equals_last_spec,
    nested_constant_suffixes,
    occurs_spec,
    root_value_reappears,
    value_occurs_after_hash,
    walking_all_same,
    walking_reporters,
)

PROGRAMS = [
    ("walking", walking_all_same(), lambda f, g: all_same_spec()(f + g)),
    ("atp", atp_all_same(), lambda f, g: all_same_spec()(f + g)),
    ("nested", nested_constant_suffixes(), lambda f, g: all_same_spec()(f + g)),
    ("first-last", root_value_reappears(),
     lambda f, g: first_equals_last_spec()(f + g)),
    ("occurs", value_occurs_after_hash("b"),
     lambda f, g: occurs_spec("b")(f + g)),
    ("reporters", walking_reporters(), lambda f, g: True),
]


@pytest.mark.parametrize("name,program,spec", PROGRAMS,
                         ids=[p[0] for p in PROGRAMS])
def test_exhaustive_tiny_instances(name, program, spec):
    for fl, gl in [(1, 1), (1, 2), (2, 1), (2, 2)]:
        for f in itertools.product("ab", repeat=fl):
            for g in itertools.product("ab", repeat=gl):
                direct, proto, result = protocol_agrees_with_run(
                    program, list(f), list(g)
                )
                assert direct == proto == spec(list(f), list(g)), (
                    name, f, g, result.reason,
                )


@pytest.mark.parametrize("name,program,spec", PROGRAMS,
                         ids=[p[0] for p in PROGRAMS])
def test_random_larger_instances(name, program, spec):
    rng = random.Random(hash(name) % 1000)
    for _ in range(10):
        f = [rng.choice("abc") for _ in range(rng.randint(1, 4))]
        g = [rng.choice("abc") for _ in range(rng.randint(1, 4))]
        direct, proto, result = protocol_agrees_with_run(program, f, g)
        assert direct == proto == spec(f, g), (name, f, g, result.reason)


def test_dialogue_starts_with_type_exchange():
    result = run_protocol(walking_all_same(), ["a"], ["a"])
    kinds = result.message_kinds()
    assert kinds[0] == kinds[1] == "TypeMessage"
    senders = [s for s, _m in result.dialogue[:2]]
    assert senders == ["I", "II"]


def test_walking_program_uses_config_messages_only():
    result = run_protocol(walking_all_same(), ["a", "a"], ["a"])
    kinds = set(result.message_kinds())
    assert "ConfigMessage" in kinds
    assert "AtpRequest" not in kinds


def test_atp_program_sends_requests_and_replies():
    result = run_protocol(atp_all_same(), ["a"], ["a"])
    kinds = result.message_kinds()
    assert "AtpRequest" in kinds and "Reply" in kinds


def test_walking_reporters_send_need_answer():
    """Subcomputations started on the f side walk past # — the ⟨q, τ̄,
    NeedAnswer⟩ message of the proof."""
    result = run_protocol(walking_reporters(), ["a", "b"], ["a"])
    assert result.accepted
    need_answer = [
        m for _s, m in result.dialogue
        if isinstance(m, ConfigMessage) and m.need_answer
    ]
    assert need_answer


def test_rounds_are_bounded_by_dedup():
    """Every request is sent at most once, so rounds stay small even
    for the nested program (the 2|Δ| argument)."""
    for f, g in [(["a"] * 4, ["a"] * 4), (["a", "b"] * 2, ["b", "a"])]:
        result = run_protocol(nested_constant_suffixes(), f, g)
        assert result.rounds <= 60


def test_verdict_messages_terminate():
    accept = run_protocol(atp_all_same(), ["a"], ["a"])
    assert isinstance(accept.dialogue[-1][1], AcceptMessage)
    reject = run_protocol(atp_all_same(), ["a"], ["b"])
    assert not reject.accepted


def test_required_type_width_covers_selectors():
    assert required_type_width(nested_constant_suffixes()) >= 2
    assert required_type_width(walking_all_same()) == 2  # no selectors


def test_empty_sides_rejected():
    with pytest.raises(ProtocolError):
        run_protocol(walking_all_same(), [], ["a"])


def test_hash_in_input_rejected():
    with pytest.raises(ProtocolError):
        run_protocol(walking_all_same(), ["#"], ["a"])


def test_messages_carry_only_legal_knowledge():
    """AtpRequests carry selector indices and type summaries — never raw
    positions of the sender's half."""
    result = run_protocol(atp_all_same(), ["a", "b"], ["a"])
    for _sender, message in result.dialogue:
        if isinstance(message, AtpRequest):
            assert isinstance(message.selector_index, int)
            assert message.theta.distinguished == 1
