"""Automaton file format and formula text parsers (store side)."""

import pytest

from tests.conftest import tree_family

from repro.automata import accepts
from repro.automata.examples import (
    all_leaves_same_twrl,
    all_values_same_twr,
    delta_leaves_mod3_twr,
    even_leaves_automaton,
    example_32,
    spine_constant_automaton,
)
from repro.automata.textformat import (
    AutomatonFormatError,
    parse_automaton,
    serialize_automaton,
)
from repro.store import Relation, StoreContext, StoreSchema, evaluate
from repro.store.parser import StoreSyntaxError, parse_guard, parse_store_formula
from repro.trees import delim, parse_term

FAMILY = tree_family(count=8, max_size=10)


# -- store formula parser --------------------------------------------------------------


def ctx(**attrs):
    schema = StoreSchema([1, 2])
    store = schema.initial_store().set(1, Relation.unary([1, 2])).set(
        2, Relation(2, [(1, 10)])
    )
    return StoreContext(store, attrs or {"a": 10})


@pytest.mark.parametrize(
    "text,want",
    [
        ("true", True),
        ("exists z X1(z)", True),
        ("exists z X2(z, z)", False),
        ("forall z (X1(z) -> z = 1 | z = 2)", True),
        ("forall z w (X1(z) & X1(w) -> z = w)", False),
        ("X2(1, @a)", True),
        ("@a = 10", True),
        ("@a != 10", False),
        ("exists z (X1(z) & ~z = 1)", True),
        ("∀z (X1(z) → ∃w X2(w, @a))", True),
    ],
)
def test_store_parser_evaluates(text, want):
    assert evaluate(parse_guard(text), ctx()) == want


def test_store_parser_string_constants():
    schema = StoreSchema([1])
    store = schema.initial_store().set(1, Relation.unary(["EUR"]))
    context = StoreContext(store, {})
    assert evaluate(parse_guard('X1("EUR")'), context)
    assert evaluate(parse_guard("X1('EUR')"), context)
    assert not evaluate(parse_guard('X1("USD")'), context)


def test_store_parser_rejects_free_variables():
    with pytest.raises(Exception):
        parse_guard("X1(z)")
    parse_store_formula("X1(z)")  # fine as an open formula


@pytest.mark.parametrize("bad", ["", "X1(", "z ==", "exists", "@ = 1", "X(z)"])
def test_store_parser_errors(bad):
    with pytest.raises(StoreSyntaxError):
        parse_store_formula(bad)


# -- the automaton file format --------------------------------------------------------------


STOCK = [
    (example_32, True),
    (all_values_same_twr, False),
    (all_leaves_same_twrl, False),
    (spine_constant_automaton, False),
    (even_leaves_automaton, False),
    (delta_leaves_mod3_twr, False),
]


@pytest.mark.parametrize("factory,delimited", STOCK,
                         ids=[f.__name__ for f, _d in STOCK])
def test_serialize_parse_behaviour_roundtrip(factory, delimited):
    original = factory()
    reparsed = parse_automaton(serialize_automaton(original))
    assert reparsed.schema == original.schema
    assert len(reparsed.rules) == len(original.rules)
    for tree in FAMILY:
        instance = delim(tree) if delimited else tree
        assert accepts(reparsed, instance) == accepts(original, instance)


def test_parse_minimal_file():
    automaton = parse_automaton(
        """
        automaton hello
        registers 1
        initial q0
        final qF
        rule q0 label=a : stay -> qF
        """
    )
    assert automaton.name == "hello"
    assert accepts(automaton, parse_term("a"))
    assert not accepts(automaton, parse_term("b"))


def test_parse_with_everything():
    automaton = parse_automaton(
        """
        # a kitchen-sink automaton
        automaton sink
        registers 1
        init 5
        initial q0
        final qF
        rule q0 pos=!leaf : down -> q1          # positions work
        rule q0 pos=leaf if [X1(5)] : stay -> qF
        rule q1 : set X1 { z | z = @a } -> q2   # updates work
        rule q2 if [X1(@a)] : up -> q3
        rule q3 : atp [E(x, y)] start q4 into X1 -> q5
        rule q4 : set X1 { z | z = @a } -> qF
        rule q5 : stay -> qF
        """
    )
    assert accepts(automaton, parse_term("r[a=1](x[a=1])"))
    assert accepts(automaton, parse_term("solo[a=9]"))  # leaf root, X1 = {5}


def test_init_values():
    automaton = parse_automaton(
        """
        registers 1 1 1
        init _ 7 hello
        initial q0
        final q0
        """
    )
    store = automaton.initial_store()
    assert not store.get(1)
    assert store.get(2).single_value() == 7
    assert store.get(3).single_value() == "hello"


@pytest.mark.parametrize(
    "bad",
    [
        "initial q0",                                    # missing final
        "initial q0\nfinal qF\nrule q0 : sideways -> qF",
        "initial q0\nfinal qF\nrule q0 stay -> qF",      # missing ':'
        "initial q0\nfinal qF\nrule q0 : stay",          # missing '->'
        "initial q0\nfinal qF\nrule q0 : set X1 { | true } -> qF",
        "initial q0\nfinal qF\nrule q0 : atp [E(x,y)] start q1 -> qF",
        "initial q0\nfinal qF\nbogus directive",
        "registers one\ninitial q0\nfinal qF",
    ],
)
def test_format_errors(bad):
    with pytest.raises(AutomatonFormatError):
        parse_automaton(bad)


def test_comments_and_hash_in_strings():
    automaton = parse_automaton(
        """
        registers 1
        initial q0
        final qF
        rule q0 if [@a = "#notacomment"] : stay -> qF   # but this is
        """
    )
    assert accepts(automaton, parse_term('n[a="#notacomment"]'))
    assert not accepts(automaton, parse_term("n[a=1]"))


def test_cli_automaton_file(tmp_path, capsys):
    from repro.__main__ import main

    spec = tmp_path / "even.tw"
    spec.write_text(serialize_automaton(even_leaves_automaton()))
    doc = tmp_path / "doc.term"
    doc.write_text("a(b, c)")
    assert main(["run", str(doc), "--automaton-file", str(spec)]) == 0
    assert capsys.readouterr().out.strip() == "accept"
