"""Register store tests (the τ of Definition 3.1)."""

import pytest

from repro.store import Relation, RegisterStore, StoreError, StoreSchema
from repro.trees import BOTTOM


def test_schema_basics():
    s = StoreSchema([1, 2, 1])
    assert s.count == 3
    assert s.arity(2) == 2
    with pytest.raises(StoreError):
        s.arity(0)
    with pytest.raises(StoreError):
        s.arity(4)
    with pytest.raises(StoreError):
        StoreSchema([0])


def test_initial_store_default_empty():
    s = StoreSchema([1, 2])
    store = s.initial_store()
    assert len(store.get(1)) == 0
    assert store.get(2).arity == 2


def test_initial_store_scalar_and_bottom():
    s = StoreSchema([1, 1])
    store = s.initial_store([7, BOTTOM])
    assert store.get(1).single_value() == 7
    assert not store.get(2)


def test_initial_store_with_relation():
    s = StoreSchema([2])
    rel = Relation(2, [(1, 2)])
    assert s.initial_store([rel]).get(1) == rel
    with pytest.raises(StoreError):
        s.initial_store([Relation.unary([1])])


def test_scalar_needs_unary_register():
    with pytest.raises(StoreError):
        StoreSchema([2]).initial_store([5])


def test_wrong_assignment_length():
    with pytest.raises(StoreError):
        StoreSchema([1, 1]).initial_store([1])


def test_set_is_functional():
    s = StoreSchema([1, 1])
    store = s.initial_store()
    updated = store.set(1, Relation.unary([9]))
    assert not store.get(1)           # original untouched
    assert updated.get(1).single_value() == 9
    assert updated.get(2) == store.get(2)


def test_set_arity_checked():
    store = StoreSchema([1]).initial_store()
    with pytest.raises(StoreError):
        store.set(1, Relation(2, [(1, 2)]))


def test_active_domain():
    s = StoreSchema([1, 2])
    store = s.initial_store().set(1, Relation.unary(["a"])).set(
        2, Relation(2, [(1, "b")])
    )
    assert store.active_domain() == frozenset({"a", 1, "b"})


def test_equality_and_hash():
    s = StoreSchema([1])
    a = s.initial_store([3])
    b = s.initial_store([3])
    c = s.initial_store([4])
    assert a == b and hash(a) == hash(b)
    assert a != c
