"""Bounded fuzz rounds of the differential oracle.

Marked ``oracle``: deselect with ``pytest -m "not oracle"`` for a quick
local run; CI (and ``make fuzz``) runs the fixed seed matrix below so
every build cross-checks the engines on a few hundred fresh cases.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.oracle import run_oracle

SEED_MATRIX = (0, 1, 2)


@pytest.mark.oracle
@pytest.mark.parametrize("seed", SEED_MATRIX)
def test_fuzz_round_finds_no_disagreements(seed):
    report = run_oracle(seed=seed, budget=120, max_size=10)
    assert report.total_cases() == 120
    failures = [
        f"[{d.pair}] tree={d.shrunk['tree']} query={d.shrunk['query']} "
        f"left={d.outcome.left} right={d.outcome.right}"
        for d in report.disagreements
    ]
    assert not failures, "\n".join(failures)


@pytest.mark.oracle
def test_fuzz_round_with_larger_trees():
    report = run_oracle(seed=3, budget=60, max_size=16)
    assert report.total_disagreements() == 0


@pytest.mark.oracle
def test_cli_end_to_end(tmp_path):
    repo = Path(__file__).resolve().parents[1]
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.oracle",
            "--seed", "0", "--budget", "30",
            "--corpus-dir", str(tmp_path),
        ],
        capture_output=True, text=True,
        cwd=repo, env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 disagreements" in proc.stdout


@pytest.mark.oracle
def test_cli_replay(tmp_path):
    repo = Path(__file__).resolve().parents[1]
    proc = subprocess.run(
        [sys.executable, "-m", "repro.oracle", "--replay"],
        capture_output=True, text=True,
        cwd=repo, env={"PYTHONPATH": str(repo / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 disagreeing" in proc.stdout


@pytest.mark.oracle
@pytest.mark.planner
def test_auto_pair_fuzz_planner_routes_agree():
    """≥300 fresh cases through auto/fast-fo alone: whichever engine
    the cost-based planner picks per case (guarded fast, reference, or
    a mid-flight re-plan onto the reference), the relation must equal
    the direct fast engine's.  Disagreements shrink and persist under
    ``tests/corpus/`` like every other pair's."""
    from repro.oracle import pairs_by_name

    report = run_oracle(
        seed=271828,
        budget=300,
        max_size=10,
        pairs=[pairs_by_name()["auto/fast-fo"]],
        corpus_dir=Path(__file__).parent / "corpus",
    )
    assert report.total_cases() == 300
    failures = [
        f"[{d.pair}] tree={d.shrunk['tree']} query={d.shrunk['query']} "
        f"left={d.outcome.left} right={d.outcome.right}"
        for d in report.disagreements
    ]
    assert not failures, "\n".join(failures)


@pytest.mark.oracle
def test_corpus_pair_fuzz_batch_equals_sequential():
    """≥300 fresh cases through corpus/sequential alone: the batch
    executor must be element-wise byte-identical to the per-tree loop
    for XPath, FO and caterpillar queries, under both chunkings."""
    import random

    from repro.oracle.pairs import CorpusVsSequential

    pair = CorpusVsSequential()
    rng = random.Random(1729)
    kinds = set()
    for _ in range(300):
        case = pair.generate(rng, max_size=10)
        kinds.add(case.query.kind)
        outcome = pair.check(case)
        assert outcome.agree, (
            f"query={case.query} left={outcome.left} right={outcome.right}"
        )
    assert kinds == set(pair.KINDS)  # every formalism was exercised


def test_vectorized_pair_fuzz_stacked_equals_sequential():
    """≥300 fresh cases through vectorized/sequential alone: the stacked
    shard executor — one wide integer per chunk per IR op — must be
    element-wise byte-identical to the per-tree loop for all five query
    kinds, under both chunkings."""
    import random

    from repro.oracle.pairs import VectorizedVsSequential

    pair = VectorizedVsSequential()
    rng = random.Random(1729)
    kinds = set()
    for _ in range(300):
        case = pair.generate(rng, max_size=10)
        kinds.add(case.query.kind)
        outcome = pair.check(case)
        assert outcome.agree, (
            f"query={case.query} left={outcome.left} right={outcome.right}"
        )
    assert kinds == set(pair.KINDS)  # every formalism was exercised
