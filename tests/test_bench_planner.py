"""Smoke tests for the ``--suite planner`` benchmark — the adaptive
-planner sweep stays runnable at toy sizes, its JSON stays well-formed
with zero swallowed per-case errors, and the committed full-size
trajectory keeps clearing the pick-rate and overhead gates."""

import json
from pathlib import Path

import pytest

from repro import bench

pytestmark = pytest.mark.planner

ENGINES = {"fast", "reference"}


def test_quick_planner_benchmark_writes_wellformed_json(tmp_path):
    out = tmp_path / "BENCH_planner.json"
    code = bench.main(
        [
            "--suite", "planner", "--quick",
            "--output", str(out), "--seed", "5", "--repeats", "1",
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == bench.PLANNER_SCHEMA
    assert report["quick"] is True
    assert report["seed"] == 5
    assert report["errors"] == []  # nothing was silently swallowed
    rows = report["planner"]["rows"]
    assert len(rows) == len(bench.PLANNER_SIZES_QUICK) * len(
        bench.CORPUS_QUERIES
    )
    for row in rows:
        assert row["chosen"] in ENGINES
        assert row["best_engine"] in ENGINES
        assert row["auto_seconds"] > 0
        assert row["fast_seconds"] > 0
        assert row["reference_seconds"] > 0
        assert row["auto_vs_best"] > 0
        assert row["estimate_q_error"] >= 1.0
        assert row["estimated_rows"] >= 0
        assert row["actual_rows"] >= 0
        assert row["replans"] >= 0
        assert isinstance(row["picked_fastest"], bool)
        assert dict(row["costs"])  # per-engine modeled costs recorded
    summary = report["summary"]
    assert summary["errors"] == 0
    assert summary["planner_max_size"] == bench.PLANNER_SIZES_QUICK[-1]
    assert summary["pass"] is True  # quick mode never gates on decisions


def test_planner_benchmark_is_agreement_checked(monkeypatch):
    # The bench raises (rather than records nonsense) if auto ever
    # returns a different answer than the manual engines.
    original = bench._facade_thunk

    def skewed(db, query, engine):
        thunk = original(db, query, engine)
        if engine != "reference":
            return thunk
        return lambda: ("skewed", thunk())

    monkeypatch.setattr(bench, "_facade_thunk", skewed)
    with pytest.raises(AssertionError, match="disagree"):
        bench.run_planner_benchmark([8], seed=0, repeats=1, errors=[])


def test_committed_planner_trajectory_matches_schema_and_gates():
    # The repo ships a full-size BENCH_planner.json; keep it honest.
    path = Path(__file__).resolve().parents[1] / "BENCH_planner.json"
    report = json.loads(path.read_text())
    assert report["schema"] == bench.PLANNER_SCHEMA
    assert report.get("errors", []) == []
    summary = report["summary"]
    assert summary["pass"] is True
    assert summary.get("errors", 0) == 0
    if not report["quick"]:  # `make bench-planner` may leave a quick regen
        assert (
            summary["planner_pick_fraction"]
            >= summary["thresholds"]["pick_fraction"]
        )
        assert (
            summary["planner_median_auto_vs_best_at_max_size"]
            <= summary["thresholds"]["auto_vs_best"]
        )
        # Rows carry the per-query audit trail the experiment report
        # (EXPERIMENTS.md E19) is built from.
        for row in report["planner"]["rows"]:
            assert {"chosen", "estimated_rows", "actual_rows", "replans"} \
                <= set(row)


def test_planner_trajectory_is_seen_by_the_check_ratchet():
    root = Path(__file__).resolve().parents[1]
    path = root / "BENCH_planner.json"
    assert bench.check_reports([path]) == []
