"""Rendering and the XMark-style auction generator."""

import pytest

from repro.automata import run
from repro.automata.examples import even_leaves_automaton
from repro.logic import evaluate, parse_formula
from repro.trees import (
    auction_document,
    parse_term,
    render_run,
    render_tree,
)
from repro.xpath import parse_xpath, select


# -- rendering ----------------------------------------------------------------------


def test_render_structure(small_tree):
    text = render_tree(small_tree)
    lines = text.splitlines()
    assert lines[0] == "catalog"
    assert any(line.startswith("├── dept") for line in lines)
    assert any("cur='EUR'" in line for line in lines)
    assert len(lines) == small_tree.size


def test_render_without_attrs(small_tree):
    text = render_tree(small_tree, show_attrs=False)
    assert "cur" not in text


def test_render_depth_limit(small_tree):
    text = render_tree(small_tree, max_depth=1)
    assert "…" in text
    assert "item" not in text


def test_render_subtree(small_tree):
    text = render_tree(small_tree, node=(0,))
    assert text.splitlines()[0].startswith("dept")
    assert len(text.splitlines()) == 3


def test_render_run_elides():
    result = run(even_leaves_automaton(), parse_term("a(b, c, d, e)"),
                 collect_trace=True)
    text = render_run(result.trace, limit=5)
    assert "elided" in text
    full = render_run(result.trace, limit=10_000)
    assert "elided" not in full


# -- the auction generator --------------------------------------------------------------


@pytest.fixture
def site():
    return auction_document(people=4, items=6, bids_per_item=3, seed=1)


def test_auction_shape(site):
    assert site.label(()) == "site"
    assert [site.label(k) for k in site.children(())] == [
        "regions", "people", "open_auctions",
    ]
    assert len(select(parse_xpath("site//item"), site, ())) == 6
    assert len(select(parse_xpath("site/people/person"), site, ())) == 4
    assert len(select(parse_xpath("site//bid"), site, ())) == 18


def test_auction_deterministic():
    assert auction_document(seed=3) == auction_document(seed=3)
    assert auction_document(seed=3) != auction_document(seed=4)


def test_auction_references_resolve(site):
    """Every auction's itemref names an existing item — the join the
    generator exists to exercise."""
    joined = parse_formula(
        "forall x (O_auction(x) -> exists y (O_item(y) "
        "& val_itemref(x) = val_id(y)))"
    )
    assert evaluate(joined, site)


def test_auction_bids_reference_people(site):
    joined = parse_formula(
        "forall x (O_bid(x) -> exists y (O_person(y) "
        "& val_personref(x) = val_name(y)))"
    )
    assert evaluate(joined, site)


def test_auction_bids_increase(site):
    """Within one auction, later bids are higher (generator invariant),
    checkable in FO via sibling order."""
    increasing = parse_formula(
        "forall x y (O_bid(x) & O_bid(y) & x < y -> "
        "~val_amount(x) = val_amount(y))"
    )
    assert evaluate(increasing, site)


def test_auction_data_join_walker(site):
    """A register walker chases a reference across the document: some
    bid's personref equals some person's name (always true here)."""
    from repro.pebbleautomata import run_pebble_automaton
    from repro.pebbleautomata.examples import exists_equal_pair
    from repro.pebbleautomata.model import AttrEqPebble

    # a bespoke join: bid.personref = person.name via the generic pair
    # machinery is covered elsewhere; here just confirm the document
    # feeds the FO join above and the XPath layer coherently.
    bids = select(parse_xpath("site//bid"), site, ())
    names = {site.val("name", u)
             for u in select(parse_xpath("site//person"), site, ())}
    assert all(site.val("personref", b) in names for b in bids)
