"""The generation-keyed window result cache.

Unit-level: :class:`ResultCache` keys on the effective window and the
exact query fingerprint, counts its own hits and misses (the wrapped
:class:`~repro.caching.KeyedLRU` is deliberately statistics-free), and
``maxsize=0`` stores nothing.  Dispatcher-level: replays are stamped
``cached`` with identical results; every store mutation — ``append``,
``replace``, ``recover``+``compact`` — moves the corpus token and so
orphans all cached windows without any explicit invalidation;
fault-injected requests bypass the cache in both directions; the
``stats`` verb surfaces the counters.
"""

import pytest

from repro.corpus import CorpusStore, TreeCorpus
from repro.service import Dispatcher, ResultCache
from repro.trees.generators import random_tree

pytestmark = pytest.mark.service

QUERY_OBJECTS = [
    {"kind": "xpath", "text": "//σ//δ"},
    {"kind": "select", "text": "x << y & O_δ(y)"},
]


def _trees(count, seed=0):
    return [
        random_tree(
            3 + (i * 5) % 14, value_pool=(1, 2), max_children=3, seed=seed + i
        )
        for i in range(count)
    ]


def _store(tmp_path, count=14, segment_size=4, seed=0):
    store = CorpusStore.create(str(tmp_path / "s"), segment_size=segment_size)
    store.ingest(iter(_trees(count, seed=seed)))
    return store


def _window_request(stop=None, start=0, **options):
    options = {"start": start, **options}
    if stop is not None:
        options["stop"] = stop
    return {"op": "query", "queries": QUERY_OBJECTS, "options": options}


# ---------------------------------------------------------------------------
# ResultCache unit behavior
# ---------------------------------------------------------------------------


def test_cache_counts_its_own_hits_and_misses():
    cache = ResultCache(maxsize=4)
    key = ("token", "fast", 0, 5, (("xpath", "//σ", ()),))
    assert cache.get(key) is None
    cache.put(key, {"ok": True, "results": [[1]]})
    assert cache.get(key) == {"ok": True, "results": [[1]]}
    assert cache.get(("other",) + key[1:]) is None
    info = cache.info()
    assert info == {"hits": 1, "misses": 2, "size": 1, "maxsize": 4}
    cache.clear()
    assert cache.info() == {"hits": 0, "misses": 0, "size": 0, "maxsize": 4}


def test_cache_returns_copies_not_aliases():
    cache = ResultCache(maxsize=2)
    key = ("t", "fast", 0, 1, ())
    response = {"ok": True, "results": [[1]]}
    cache.put(key, response)
    response["ok"] = False  # caller keeps mutating its dict
    hit = cache.get(key)
    assert hit["ok"] is True
    hit["poisoned"] = True  # and a hit is the caller's to mutate
    assert "poisoned" not in cache.get(key)


def test_zero_maxsize_stores_nothing():
    cache = ResultCache(maxsize=0)
    key = ("t", "fast", 0, 1, ())
    cache.put(key, {"ok": True})
    assert cache.get(key) is None


def test_key_fingerprints_the_exact_query_batch():
    queries = [
        type("Q", (), {"kind": "xpath", "text": "//σ", "context": ()})()
    ]
    key = ResultCache.key("tok", "fast", 0, 9, queries)
    assert key == ("tok", "fast", 0, 9, (("xpath", "//σ", ()),))


# ---------------------------------------------------------------------------
# dispatcher integration
# ---------------------------------------------------------------------------


def test_replay_is_cached_with_identical_results(tmp_path):
    with _store(tmp_path) as store:
        dispatcher = Dispatcher(store, workers=0, result_cache=8)
        session = dispatcher.open_session()
        request = _window_request(stop=8)
        first = dispatcher.handle(request, session)
        assert first["ok"] and "cached" not in first
        replay = dispatcher.handle(request, session)
        assert replay["cached"] is True
        assert replay["results"] == first["results"]
        assert replay["trees"] == first["trees"]


def test_explicit_and_implicit_full_stop_share_an_entry(tmp_path):
    with _store(tmp_path) as store:
        dispatcher = Dispatcher(store, workers=0, result_cache=8)
        session = dispatcher.open_session()
        open_ended = dispatcher.handle(_window_request(), session)
        assert "cached" not in open_ended
        clamped = dispatcher.handle(
            _window_request(stop=store.tree_count), session
        )
        assert clamped["cached"] is True
        assert clamped["results"] == open_ended["results"]


def test_append_invalidates_by_moving_the_token(tmp_path):
    with _store(tmp_path) as store:
        dispatcher = Dispatcher(store, workers=0, result_cache=8)
        session = dispatcher.open_session()
        request = _window_request(stop=8)
        dispatcher.handle(request, session)
        assert dispatcher.handle(request, session)["cached"] is True
        store.append(random_tree(9, value_pool=(1, 2), seed=50))
        after = dispatcher.handle(request, session)
        assert "cached" not in after  # old generation's entry orphaned
        assert dispatcher.handle(request, session)["cached"] is True


def test_replace_invalidates_and_the_fresh_answer_differs(tmp_path):
    with _store(tmp_path) as store:
        dispatcher = Dispatcher(store, workers=0, result_cache=8)
        session = dispatcher.open_session()
        request = _window_request(stop=4)
        before = dispatcher.handle(request, session)
        # A δ-free replacement changes the select answer for tree 2.
        store.replace(2, random_tree(1, value_pool=(1,), seed=1))
        after = dispatcher.handle(request, session)
        assert "cached" not in after
        assert after["results"] != before["results"]


def test_compact_invalidates_via_generation_bump(tmp_path):
    with _store(tmp_path, count=19) as store:
        victim = store._manifest["segments"][1]["name"]
        victim_path = str(tmp_path / "s" / victim)
        with open(victim_path, "rb") as handle:
            size = len(handle.read())
        with open(victim_path, "r+b") as handle:
            handle.truncate(size // 2)
        assert store.recover() == 1
        dispatcher = Dispatcher(store, workers=0, result_cache=8)
        session = dispatcher.open_session()
        request = _window_request(stop=6)
        before = dispatcher.handle(request, session)
        assert dispatcher.handle(request, session)["cached"] is True
        assert store.compact() > 0
        after = dispatcher.handle(request, session)
        assert "cached" not in after  # same trees, but a new generation
        assert after["results"] == before["results"]


def test_fault_requests_bypass_the_cache_both_ways(tmp_path):
    with _store(tmp_path) as store:
        dispatcher = Dispatcher(
            store, workers=0, result_cache=8, allow_faults=True
        )
        session = dispatcher.open_session()
        chaotic = _window_request(stop=8, faults={"0": {"kind": "error"}})
        clean = _window_request(stop=8)
        degraded = dispatcher.handle(chaotic, session)
        assert degraded["ok"] and degraded["degraded_chunks"] > 0
        # The degraded response was not stored: the clean twin misses.
        first_clean = dispatcher.handle(clean, session)
        assert "cached" not in first_clean
        # And a stored clean response is not replayed to a fault run.
        rerun = dispatcher.handle(chaotic, session)
        assert "cached" not in rerun
        assert first_clean["results"] == degraded["results"]  # answers agree


def test_stats_surfaces_counters_only_when_enabled(tmp_path):
    with _store(tmp_path) as store:
        cached = Dispatcher(store, workers=0, result_cache=8)
        session = cached.open_session()
        request = _window_request(stop=8)
        cached.handle(request, session)
        cached.handle(request, session)
        stats = cached.handle({"op": "stats"}, session)
        assert stats["result_cache"] == {
            "hits": 1, "misses": 1, "size": 1, "maxsize": 8
        }
        plain = Dispatcher(store, workers=0)
        assert plain.result_cache is None
        stats = plain.handle({"op": "stats"}, plain.open_session())
        assert "result_cache" not in stats


def test_in_memory_corpus_is_cacheable_too():
    corpus = TreeCorpus.from_terms(["σ(δ, σ)", "δ(σ(δ))", "σ(σ)"])
    dispatcher = Dispatcher(corpus, workers=0, result_cache=4)
    session = dispatcher.open_session()
    request = _window_request()
    first = dispatcher.handle(request, session)
    replay = dispatcher.handle(request, session)
    assert replay.get("cached") is True
    assert replay["results"] == first["results"]
    corpus.close()
