"""XPath fragment: parsing, evaluation, FO(∃*) compilation (§2.3)."""

import pytest

from repro.logic import tree_fo as T
from repro.xpath import (
    NameTest,
    Path,
    SelfTest,
    Union_,
    Wildcard,
    XPathSyntaxError,
    compile_xpath,
    parse_xpath,
    select,
)
from repro.xpath.ast import CHILD, DESCENDANT, Step
from repro.trees import parse_term, random_tree


# -- parsing -------------------------------------------------------------------


def test_parse_single_name():
    expr = parse_xpath("a")
    assert isinstance(expr, Path)
    assert isinstance(expr.steps[0].test, NameTest)
    assert not expr.absolute


def test_parse_axes():
    expr = parse_xpath("a/b//c")
    assert expr.axes == (CHILD, DESCENDANT)


def test_parse_absolute_and_double_slash():
    assert parse_xpath("/a").absolute
    expr = parse_xpath("//a")
    assert expr.absolute and expr.axes == (DESCENDANT,)
    assert isinstance(expr.steps[0].test, Wildcard)


def test_parse_filters():
    expr = parse_xpath("a[b][.//c]")
    assert len(expr.steps[0].filters) == 2


def test_parse_union():
    expr = parse_xpath("a | b/c")
    assert isinstance(expr, Union_)
    assert len(expr.alternatives) == 2


def test_parse_wildcard_and_self():
    assert isinstance(parse_xpath("*").steps[0].test, Wildcard)
    assert isinstance(parse_xpath(".").steps[0].test, SelfTest)


@pytest.mark.parametrize("bad", ["", "a[", "a]", "/", "a[b|c]", "a//", "|a"])
def test_parse_errors(bad):
    with pytest.raises(XPathSyntaxError):
        parse_xpath(bad)


def test_ast_validation():
    with pytest.raises(ValueError):
        Path((), ())
    with pytest.raises(ValueError):
        Path((Step(NameTest("a")),), (CHILD,))
    with pytest.raises(ValueError):
        Union_((parse_xpath("a"),))


# -- evaluation -------------------------------------------------------------------


@pytest.fixture
def doc():
    return parse_term("a(b(c, d), b(d), e(b(c(d))))")


def test_relative_first_test_applies_to_context(doc):
    assert select(parse_xpath("a"), doc, ()) == ((),)
    assert select(parse_xpath("b"), doc, ()) == ()


def test_child_axis(doc):
    assert select(parse_xpath("a/b"), doc, ()) == ((0,), (1,))


def test_descendant_axis(doc):
    assert select(parse_xpath("a//b"), doc, ()) == ((0,), (1,), (2, 0))


def test_filters_child_semantics(doc):
    # [d]: has a child labelled d (the paper's example reading)
    assert select(parse_xpath("a//b[d]"), doc, ()) == ((0,), (1,))


def test_filters_descendant(doc):
    assert select(parse_xpath("a//b[.//d]"), doc, ()) == ((0,), (1,), (2, 0))


def test_paper_worked_example(doc):
    # a//b[.//c][d] — both filters must hold
    assert select(parse_xpath("a//b[.//c][d]"), doc, ()) == ((0,),)


def test_absolute_ignores_context(doc):
    for ctx in doc.nodes:
        assert select(parse_xpath("/a/e"), doc, ctx) == ((2,),)


def test_union(doc):
    got = select(parse_xpath("a/e | a/b"), doc, ())
    assert got == ((0,), (1,), (2,))


def test_wildcard(doc):
    assert select(parse_xpath("a/*"), doc, ()) == ((0,), (1,), (2,))


def test_self_in_filter(doc):
    # *[.] is every node (trivially true filter)
    assert select(parse_xpath("*[.]"), doc, ()) == ((),)


# -- compilation --------------------------------------------------------------------


def test_paper_example_compiles_to_expected_shape():
    query = compile_xpath(parse_xpath("a//b[.//c][d]"))
    # prenex-existential with O_a(x), O_b(y), a descendant and an edge atom
    from repro.logic.exists_star import strip_prefix

    prefix, matrix = strip_prefix(query.formula)
    assert len(prefix) == 2  # y₂ for .//c, y₃ for d
    atoms = list(T.subformulas(matrix))
    assert any(isinstance(a, T.Label) and a.symbol == "a" for a in atoms)
    assert any(isinstance(a, T.Edge) for a in atoms)
    assert sum(isinstance(a, T.Desc) for a in atoms) == 2


@pytest.mark.parametrize(
    "expression",
    [
        "a", "a/b", "a//b", "//b", "/a/*/c", "b|e", "a//b[c]|a/e",
        "*[.//d]", ".", "a//b[.//c][d]", "a/b//c", "*[a][b]",
        "b[.//a]", "./b",
    ],
)
def test_compiler_agrees_with_evaluator(expression):
    expr = parse_xpath(expression)
    query = compile_xpath(expr)
    for seed in range(6):
        t = random_tree(9, alphabet=("a", "b", "c", "d", "e"), seed=seed)
        for ctx in t.nodes:
            assert query.select(t, ctx) == select(expr, t, ctx), (
                expression, seed, ctx,
            )


def test_compiled_queries_are_exists_star():
    from repro.logic.exists_star import is_exists_star

    for expression in ["a//b[.//c][d]", "a|b", "/a//*"]:
        assert is_exists_star(compile_xpath(parse_xpath(expression)).formula)
