"""Lemma 4.2: the generated FO sentence defines L^m."""

import itertools

import pytest

from repro.hypersets import in_lm, lm_formula, well_formedness
from repro.logic import evaluate
from repro.logic.tree_fo import Forall, subformulas
from repro.trees.strings import HASH, string_tree


def exhaustive_check(m, sigma, max_len):
    mismatches = []
    for length in range(1, max_len + 1):
        for word in itertools.product(sigma, repeat=length):
            if word.count(HASH) != 1:
                continue
            want = in_lm(list(word), m)
            got = evaluate(lm_formula(m), string_tree(list(word)))
            if want != got:
                mismatches.append((word, want, got))
    return mismatches


def test_m1_exhaustive():
    assert exhaustive_check(1, (1, "a", "b", HASH), 5) == []


def test_m2_exhaustive():
    assert exhaustive_check(2, (1, 2, "a", HASH), 6) == []


def test_m2_with_two_values():
    assert exhaustive_check(2, (1, 2, "a", "b", HASH), 5) == []


def test_m2_positive_instances():
    f2 = lm_formula(2)
    # {{a}} = {{a},{a}} (duplicate encodings)
    word = [2, 1, "a", HASH, 2, 1, "a", 2, 1, "a"]
    assert in_lm(word, 2)
    assert evaluate(f2, string_tree(word))
    # {{a},{}} ≠ {{a}}
    word = [2, 1, "a", 2, 1, HASH, 2, 1, "a"]
    assert not in_lm(word, 2)
    assert not evaluate(f2, string_tree(word))


def test_m3_spot_checks():
    f3 = lm_formula(3)
    same = [3, 2, 1, "a", HASH, 3, 2, 1, "a"]
    assert in_lm(same, 3) and evaluate(f3, string_tree(same))
    diff = [3, 2, 1, "a", HASH, 3, 2, 1, "b"]
    assert not in_lm(diff, 3) and not evaluate(f3, string_tree(diff))
    reordered = [3, 2, 1, "a", 2, 1, "b", HASH, 3, 2, 1, "b", 2, 1, "a"]
    assert in_lm(reordered, 3) and evaluate(f3, string_tree(reordered))


def test_well_formedness_alone():
    wf1 = well_formedness(1)
    assert evaluate(wf1, string_tree([1, "a", HASH, 1, "a"]))
    # a stray interior 1-marker is ill-formed at m = 1
    assert not evaluate(wf1, string_tree([1, "a", 1, HASH, 1])
                        )
    assert not evaluate(wf1, string_tree([1, 1, HASH, 1]))


def test_formula_is_fo():
    # the sentence quantifies universally — genuinely FO, not FO(∃*)
    f = lm_formula(2)
    assert any(isinstance(s, Forall) for s in subformulas(f))


def test_formula_size_grows_with_m():
    sizes = [sum(1 for _ in subformulas(lm_formula(m))) for m in (1, 2, 3)]
    assert sizes[0] < sizes[1] < sizes[2]


def test_bad_m():
    with pytest.raises(ValueError):
        lm_formula(0)
