"""Strings-as-monadic-trees tests (the Section 4 setting)."""

import pytest

from repro.trees import (
    HASH,
    split_positions,
    split_string_tree,
    string_tree,
    tree_string,
    parse_term,
)


def test_string_tree_shape():
    t = string_tree([10, 20, 30])
    assert t.size == 3
    assert all(t.degree(u) <= 1 for u in t.nodes)
    assert t.val("a", ()) == 10
    assert t.val("a", (0, 0)) == 30


def test_roundtrip():
    values = ["x", 1, "y", 2]
    assert tree_string(string_tree(values)) == values


def test_custom_label_and_attr():
    t = string_tree(["v"], label="pos", attr="letter")
    assert t.label(()) == "pos"
    assert tree_string(t, attr="letter") == ["v"]


def test_empty_rejected():
    with pytest.raises(ValueError):
        string_tree([])


def test_non_monadic_rejected():
    with pytest.raises(ValueError):
        tree_string(parse_term("a(b, c)"))


def test_split_string_tree():
    t = split_string_tree([1, 2], [3])
    assert tree_string(t) == [1, 2, HASH, 3]


def test_split_rejects_hash_inside():
    with pytest.raises(ValueError):
        split_string_tree([HASH], [1])


def test_split_positions():
    f, b, g = split_positions([1, 2, HASH, 3])
    assert (list(f), b, list(g)) == ([1, 2], 2, [3])
    with pytest.raises(ValueError):
        split_positions([1, 2, 3])
    with pytest.raises(ValueError):
        split_positions([HASH, HASH])
