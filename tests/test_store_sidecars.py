"""The zero-rebuild path: index serialization, ``.rpridx`` sidecars,
and segment compaction.

Bottom-up: :func:`serialize_index` round-trips byte-identically and
:class:`PackedIndex` exposes exactly the :class:`TreeIndex` lane
surface (hypothesis, arbitrary trees); the sidecar file format rejects
every torn prefix and every interior corruption rather than ever
returning wrong bytes; the store writes generation-tied sidecars at
ingest, splices them through ``replace``, rejects stale generation
tags, lazily rebuilds what is missing or corrupt, and keeps answering
correctly (against the naive loop) through all of it; ``compact``
rewrites a recovery-fragmented store into full segments without
changing a single answer.
"""

import os
import struct

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.__main__ import main
from repro.bench import _naive_corpus_rows
from repro.corpus import (
    CorpusStore,
    Sidecar,
    StoreError,
    ask_query,
    select_query,
    sidecar_path,
    write_sidecar,
    xpath_query,
)
from repro.corpus import executor
from repro.engine.index import (
    IndexFormatError,
    PackedIndex,
    TreeIndex,
    deserialize_index,
    index_structures,
    serialize_index,
)
from repro.engine.nodeset import iter_bits
from repro.trees.generators import random_tree

pytestmark = pytest.mark.store

#: Every query here compiles to a root-context IR plan, so a
#: vectorized batch takes the packed sidecar transport.
PACKED_QUERIES = (
    xpath_query("//σ//δ"),
    ask_query("exists x O_σ(x)"),
    select_query("x << y & O_δ(y)"),
)


def _trees(count, seed=0):
    return [
        random_tree(
            3 + (i * 5) % 14, value_pool=(1, 2), max_children=3, seed=seed + i
        )
        for i in range(count)
    ]


def _expected(store, queries=PACKED_QUERIES, stop=None):
    stop = store.tree_count if stop is None else stop
    return _naive_corpus_rows(
        [store.tree(i) for i in range(stop)], queries
    )


def _segment_files(store):
    return [
        os.path.join(store.path, entry["name"])
        for entry in store._manifest["segments"]
    ]


# ---------------------------------------------------------------------------
# index serialization
# ---------------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_serialized_index_round_trips_byte_identically(seed):
    tree = random_tree(
        1 + seed % 40, value_pool=(1, 2, 3), max_children=4, seed=seed
    )
    index = TreeIndex(tree)
    blob = serialize_index(index)
    restored = deserialize_index(tree, blob)
    assert index_structures(restored) == index_structures(index)
    assert serialize_index(restored) == blob


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_packed_index_exposes_the_tree_index_lane_surface(seed):
    tree = random_tree(
        1 + seed % 40, value_pool=(1, 2, 3), max_children=4, seed=seed
    )
    index = TreeIndex(tree)
    packed = PackedIndex(serialize_index(index))
    assert packed.n == index.n
    assert packed.all_mask == index.all_mask
    assert packed.leaf_mask == index.leaf_mask
    assert packed.first_mask == index.first_mask
    assert packed.last_mask == index.last_mask
    assert packed.label_mask == index.label_mask
    assert packed.move_groups == index.move_groups
    for label, bits in index.label_mask.items():
        assert packed.labelled(label) == bits
        assert packed.to_nodes(bits) == tuple(
            index.node_of[i] for i in iter_bits(bits)
        )
    assert packed.to_nodes(index.all_mask) == tuple(index.node_of)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_any_truncated_index_blob_raises_never_misparses(data):
    tree = random_tree(12, value_pool=(1, 2), max_children=3, seed=5)
    blob = serialize_index(TreeIndex(tree))
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(IndexFormatError):
        PackedIndex(blob[:cut])
        deserialize_index(tree, blob[:cut])


def test_deserialize_rejects_a_blob_for_the_wrong_tree():
    small, big = _trees(2, seed=9)[0], random_tree(30, seed=9)
    blob = serialize_index(TreeIndex(small))
    with pytest.raises(IndexFormatError):
        deserialize_index(big, blob)


# ---------------------------------------------------------------------------
# sidecar files
# ---------------------------------------------------------------------------


def test_sidecar_round_trips_blob_bytes(tmp_path):
    blobs = [serialize_index(TreeIndex(t)) for t in _trees(6)]
    path = str(tmp_path / "seg-00000.seg.rpridx")
    write_sidecar(path, 4, 17, blobs)
    with Sidecar(path) as sidecar:
        assert sidecar.segment_id == 4
        assert sidecar.generation == 17
        assert len(sidecar) == 6
        for i, blob in enumerate(blobs):
            assert bytes(sidecar.blob(i)) == blob
        assert sidecar.blobs(2, 5) == blobs[2:5]


def test_sidecar_path_swaps_the_segment_extension():
    assert sidecar_path("/s/seg-00003.seg") == "/s/seg-00003.rpridx"


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_any_torn_sidecar_raises_never_returns_bytes(tmp_path_factory, data):
    tmp_path = tmp_path_factory.mktemp("sidecar-torn")
    blobs = [serialize_index(TreeIndex(t)) for t in _trees(5, seed=2)]
    path = str(tmp_path / "torn.rpridx")
    write_sidecar(path, 0, 3, blobs)
    whole = open(path, "rb").read()
    cut = data.draw(st.integers(min_value=0, max_value=len(whole) - 1))
    with open(path, "wb") as handle:
        handle.write(whole[:cut])
    with pytest.raises(StoreError):
        Sidecar(path).close()


def test_sidecar_rejects_interior_corruption(tmp_path):
    blobs = [serialize_index(TreeIndex(t)) for t in _trees(4, seed=6)]
    path = str(tmp_path / "flip.rpridx")
    write_sidecar(path, 0, 1, blobs)
    whole = bytearray(open(path, "rb").read())
    # Make the offset table non-monotone: blob 2's start above its end.
    offset_at = struct.calcsize("<8sIIQI") + 8 * 2
    struct.pack_into("<Q", whole, offset_at, 1 << 40)
    with open(path, "wb") as handle:
        handle.write(whole)
    with pytest.raises(StoreError):
        with Sidecar(path) as sidecar:
            sidecar.blob(2)


# ---------------------------------------------------------------------------
# the store's sidecar lifecycle
# ---------------------------------------------------------------------------


def test_ingest_writes_generation_tied_sidecars(tmp_path):
    store = CorpusStore.create(str(tmp_path / "s"), segment_size=4)
    store.ingest(iter(_trees(11)))
    with store:
        position = 0
        for entry, segment_file in zip(
            store._manifest["segments"], _segment_files(store)
        ):
            with Sidecar(sidecar_path(segment_file)) as sidecar:
                assert sidecar.segment_id == entry["id"]
                assert sidecar.generation == entry["sidecar_gen"]
                assert sidecar.count == entry["trees"]
                for local in range(entry["trees"]):
                    tree = store.tree(position)
                    restored = deserialize_index(
                        tree, bytes(sidecar.blob(local))
                    )
                    assert index_structures(restored) == index_structures(
                        TreeIndex(tree)
                    )
                    position += 1


def test_packed_window_matches_fast_engine_and_naive_loop(tmp_path):
    store = CorpusStore.create(str(tmp_path / "s"), segment_size=8)
    store.ingest(iter(_trees(21)))
    with store:
        expected = _expected(store)
        lanes_before = len(executor._WORKER_LANES)
        vectorized = store.run(PACKED_QUERIES, engine="vectorized")
        assert len(executor._WORKER_LANES) > lanes_before  # packed path ran
        assert vectorized.rows == expected
        assert store.run(PACKED_QUERIES, engine="fast").rows == expected


def test_corrupt_sidecar_falls_back_then_lazily_rebuilds(tmp_path):
    store = CorpusStore.create(str(tmp_path / "s"), segment_size=6)
    store.ingest(iter(_trees(13, seed=4)))
    side_file = sidecar_path(_segment_files(store)[0])
    with open(side_file, "rb") as handle:
        size = len(handle.read())
    with open(side_file, "r+b") as handle:
        handle.truncate(size // 2)
    with store:
        expected = _expected(store)
        assert store.run(PACKED_QUERIES, engine="vectorized").rows == expected
        # The writable store noticed the tear and rewrote the sidecar.
        with Sidecar(side_file) as sidecar:
            entry = store._manifest["segments"][0]
            assert sidecar.generation == entry["sidecar_gen"]
            assert sidecar.count == entry["trees"]


def test_readonly_store_answers_without_rebuilding(tmp_path):
    path = str(tmp_path / "s")
    store = CorpusStore.create(path, segment_size=6)
    store.ingest(iter(_trees(13, seed=7)))
    store.close()
    side_file = sidecar_path(path + "/" + "seg-00000.seg")
    os.unlink(side_file)
    with CorpusStore.open(path, readonly=True) as readonly:
        expected = _expected(readonly)
        assert (
            readonly.run(PACKED_QUERIES, engine="vectorized").rows == expected
        )
        assert not os.path.exists(side_file)  # readonly never writes


def test_stale_generation_tag_is_rejected_and_retagged(tmp_path):
    store = CorpusStore.create(str(tmp_path / "s"), segment_size=6)
    store.ingest(iter(_trees(13, seed=11)))
    side_file = sidecar_path(_segment_files(store)[0])
    # Hand-retag the header's generation (u64 at offset 16): the file
    # still parses as a Sidecar, but its tag no longer matches the
    # manifest, so the store must treat it as stale.
    with open(side_file, "r+b") as handle:
        handle.seek(16)
        handle.write(struct.pack("<Q", 999))
    with Sidecar(side_file) as sidecar:
        assert sidecar.generation == 999  # parses fine; staleness is
    with store:  # the store's call
        expected = _expected(store)
        assert store.run(PACKED_QUERIES, engine="vectorized").rows == expected
        with Sidecar(side_file) as sidecar:
            assert (
                sidecar.generation
                == store._manifest["segments"][0]["sidecar_gen"]
            )


def test_replace_splices_the_sidecar_in_place(tmp_path):
    store = CorpusStore.create(str(tmp_path / "s"), segment_size=5)
    store.ingest(iter(_trees(12, seed=3)))
    with store:
        replacement = random_tree(
            17, value_pool=(1, 2), max_children=3, seed=99
        )
        store.replace(6, replacement)
        entry = store._manifest["segments"][1]
        with Sidecar(sidecar_path(_segment_files(store)[1])) as sidecar:
            assert sidecar.generation == entry["sidecar_gen"]
            local = 6 - 5  # tree 6 lives at slot 1 of segment 1
            restored = deserialize_index(
                store.tree(6), bytes(sidecar.blob(local))
            )
            assert index_structures(restored) == index_structures(
                TreeIndex(store.tree(6))
            )
        expected = _expected(store)
        assert store.run(PACKED_QUERIES, engine="vectorized").rows == expected


def test_sidecars_env_kill_switch_disables_the_packed_path(
    tmp_path, monkeypatch
):
    path = str(tmp_path / "s")
    store = CorpusStore.create(path, segment_size=6)
    store.ingest(iter(_trees(13, seed=13)))
    store.close()
    monkeypatch.setenv("REPRO_STORE_SIDECARS", "0")
    side_file = sidecar_path(path + "/" + "seg-00000.seg")
    os.unlink(side_file)
    with CorpusStore.open(path) as plain:
        expected = _expected(plain)
        assert plain.run(PACKED_QUERIES, engine="vectorized").rows == expected
        assert not os.path.exists(side_file)  # disabled: no rebuild either


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------


def _fragmented_store(tmp_path, count=25, segment_size=4):
    """A store with an under-full mid-store segment, the way one
    arises in practice: a torn segment recovered to a record prefix."""
    path = str(tmp_path / "s")
    store = CorpusStore.create(path, segment_size=segment_size)
    store.ingest(iter(_trees(count, seed=21)))
    victim = _segment_files(store)[1]
    with open(victim, "rb") as handle:
        size = len(handle.read())
    store.close()
    with open(victim, "r+b") as handle:
        handle.truncate(size // 2)  # drop whole records, not just the footer
    store = CorpusStore.open(path)
    assert store.recover() == 1
    assert store.tree_count < count  # records really were lost
    return store


def test_compact_rewrites_full_segments_without_changing_answers(tmp_path):
    store = _fragmented_store(tmp_path)
    with store:
        before = _expected(store)
        entries = store._manifest["segments"]
        assert any(
            e["trees"] != store.segment_size for e in entries[:-1]
        )  # genuinely fragmented
        generation = store.generation
        rewritten = store.compact()
        assert rewritten == len(store._manifest["segments"])
        assert store.generation == generation + 1
        entries = store._manifest["segments"]
        assert all(
            e["trees"] == store.segment_size for e in entries[:-1]
        )
        assert _expected(store) == before
        assert store.run(PACKED_QUERIES, engine="vectorized").rows == before
        assert store.run(PACKED_QUERIES, engine="fast").rows == before
        # Fresh sidecars rode along, tagged with the new generation.
        for entry, segment_file in zip(entries, _segment_files(store)):
            with Sidecar(sidecar_path(segment_file)) as sidecar:
                assert sidecar.generation == entry["sidecar_gen"]
        # On-disk files are exactly the manifest's: the old generation's
        # segments and sidecars are gone.
        names = {
            name
            for name in os.listdir(store.path)
            if name.endswith((".seg", ".rpridx"))
        }
        expected_names = set()
        for entry in entries:
            expected_names.add(entry["name"])
            expected_names.add(os.path.basename(sidecar_path(entry["name"])))
        assert names == expected_names


def test_compact_is_idempotent_and_ingest_continues_after(tmp_path):
    store = _fragmented_store(tmp_path)
    with store:
        assert store.compact() > 0
        generation = store.generation
        assert store.compact() == 0  # already compact: no-op, no bump
        assert store.generation == generation
        count = store.tree_count
        store.append(random_tree(9, value_pool=(1, 2), seed=77))
        assert store.tree_count == count + 1
        assert store.run(PACKED_QUERIES, engine="fast").rows == _expected(
            store
        )


def test_compact_cli_reports_both_outcomes(tmp_path, capsys):
    store = _fragmented_store(tmp_path)
    store.close()
    path = str(tmp_path / "s")
    assert main(["corpus", "--store", path, "--compact"]) == 0
    out = capsys.readouterr().out
    assert "compacted into" in out
    assert main(["corpus", "--store", path, "--compact"]) == 0
    assert "already compact" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# statistics memoization
# ---------------------------------------------------------------------------


def test_statistics_memoized_per_generation(tmp_path):
    store = CorpusStore.create(str(tmp_path / "s"), segment_size=4)
    store.ingest(iter(_trees(9, seed=31)))
    with store:
        first = store.statistics()
        assert store.statistics() is first  # same generation: same object
        store.append(random_tree(7, value_pool=(1, 2), seed=88))
        fresh = store.statistics()
        assert fresh is not first  # generation bump invalidates
        assert store.statistics() is fresh
