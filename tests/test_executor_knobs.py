"""The executor's service-facing knobs, at the run_batch level:
budget enforcement in both ``on_exhausted`` modes (including the
reference path's deadline), steps accounting on chunk reports,
chunk→pool routing with ``route``, explicit ``bounds``, and the
worker-crash retry ladder."""

import pytest

from repro.corpus import CorpusQuery, ask_query, xpath_query
from repro.corpus.executor import _run_chunk, run_batch
from repro.resilience.errors import ResourceExhausted
from repro.resilience.faults import Fault
from repro.trees import parse_term

TERMS = ["σ(δ, σ(δ))", "δ(σ(δ), δ)", "σ(σ, σ(δ, δ))"]
HEAVY = ask_query("forall x forall y (x << y -> O_δ(y) | O_σ(y))")


@pytest.fixture(scope="module")
def trees():
    return tuple(parse_term(term) for term in TERMS)


@pytest.fixture(scope="module")
def expected(trees):
    return run_batch(trees, [xpath_query("//δ")]).rows


class TestValidation:
    def test_on_exhausted_accepts_only_the_two_modes(self, trees):
        with pytest.raises(ValueError, match="on_exhausted"):
            run_batch(trees, [xpath_query("//δ")], on_exhausted="explode")

    def test_unknown_engine_is_refused(self, trees):
        with pytest.raises(ValueError, match="unknown engine"):
            run_batch(trees, [xpath_query("//δ")], engine="warp")


class TestBudgets:
    def test_degrade_mode_absorbs_exhaustion_into_reference(
        self, trees, expected
    ):
        result = run_batch(
            trees, [xpath_query("//δ")], budget_steps=1,
            on_exhausted="degrade",
        )
        assert result.rows == expected
        assert all(chunk.fell_back for chunk in result.chunks)
        assert all(
            "ResourceExhausted" in chunk.error for chunk in result.chunks
        )

    def test_raise_mode_propagates_exhaustion(self, trees):
        with pytest.raises(ResourceExhausted) as err:
            run_batch(
                trees, [xpath_query("//δ")], budget_steps=1,
                on_exhausted="raise",
            )
        assert err.value.resource == "steps"

    def test_expired_deadline_raises_with_the_deadline_resource(self, trees):
        with pytest.raises(ResourceExhausted) as err:
            run_batch(
                trees, [HEAVY], budget_seconds=0.0, on_exhausted="raise"
            )
        assert err.value.resource == "deadline"

    def test_reference_chunks_honor_the_deadline_when_raising(self, trees):
        # The service contract: a deadline cancels cooperatively on
        # EVERY engine, including an explicitly-requested reference run.
        with pytest.raises(ResourceExhausted) as err:
            run_batch(
                trees, [HEAVY], engine="reference",
                budget_seconds=0.0, on_exhausted="raise",
            )
        assert err.value.resource == "deadline"

    def test_reference_recovery_runs_unbudgeted_in_degrade_mode(
        self, trees, expected
    ):
        # In degrade mode the reference run IS the recovery: the budget
        # that killed the fast attempt must not kill the fallback too.
        result = run_batch(
            trees, [xpath_query("//δ")], engine="reference",
            budget_seconds=0.0, on_exhausted="degrade",
        )
        assert result.rows == expected
        assert not result.fell_back


class TestStepsAccounting:
    def test_budgeted_chunks_report_their_fuel(self, trees):
        result = run_batch(
            trees, [xpath_query("//δ")], budget_steps=10**9
        )
        assert all(chunk.steps > 0 for chunk in result.chunks)
        assert all(not chunk.fell_back for chunk in result.chunks)

    def test_unbudgeted_chunks_report_zero(self, trees):
        result = run_batch(trees, [xpath_query("//δ")])
        assert all(chunk.steps == 0 for chunk in result.chunks)

    def test_reference_chunks_meter_fuel_under_raise(self, trees):
        result = run_batch(
            trees, [xpath_query("//δ")], engine="reference",
            budget_steps=10**9, on_exhausted="raise",
        )
        assert all(chunk.steps > 0 for chunk in result.chunks)


class _FakeFuture:
    def __init__(self, payload):
        self._payload = payload

    def result(self):
        return _run_chunk(self._payload)


class _FakePool:
    """Runs chunks inline but records which chunk indices it was
    routed — enough to observe the route arithmetic without processes."""

    def __init__(self):
        self.chunks = []

    def submit(self, fn, payload):
        assert fn is _run_chunk
        self.chunks.append(payload[0])
        return _FakeFuture(payload)


class TestRouting:
    def test_route_rotates_the_chunk_to_pool_assignment(
        self, trees, expected
    ):
        pools = [_FakePool(), _FakePool()]
        result = run_batch(
            trees, [xpath_query("//δ")], workers=2, pool=pools,
            chunk_size=1, route=1,
        )
        assert result.rows == expected
        # Chunk i lands on pool (i + route) % len(pools).
        assert pools[0].chunks == [1]
        assert pools[1].chunks == [0, 2]

    def test_route_zero_is_the_identity_assignment(self, trees):
        pools = [_FakePool(), _FakePool()]
        run_batch(
            trees, [xpath_query("//δ")], workers=2, pool=pools,
            chunk_size=1, route=0,
        )
        assert pools[0].chunks == [0, 2]
        assert pools[1].chunks == [1]


class TestBounds:
    def test_explicit_bounds_window_the_batch(self, trees, expected):
        result = run_batch(
            trees, [xpath_query("//δ")], bounds=[(1, 3)]
        )
        assert result.rows == expected[1:3]
        assert result.chunks[0].start == 1
        assert result.chunks[0].stop == 3


class TestInjectedEngineFault:
    def test_error_fault_costs_the_chunk_its_fast_path_only(
        self, trees, expected
    ):
        result = run_batch(
            trees, [xpath_query("//δ")],
            faults={0: Fault(at_checkpoint=1, kind="error")},
        )
        assert result.rows == expected
        assert result.chunks[0].fell_back
        assert "injected" in result.chunks[0].error


@pytest.mark.faults
class TestWorkerCrashRetries:
    def test_deterministic_crash_exhausts_retries_then_degrades(
        self, trees, expected
    ):
        # The scheduled crash kills the worker on every resubmission,
        # so the ladder runs dry and the parent answers the chunk on
        # the reference engine, stamping the attempt count.
        result = run_batch(
            trees, [xpath_query("//δ")], workers=1,
            faults={0: Fault(at_checkpoint=1, kind="crash")},
            worker_retries=2, retry_backoff=0.01,
        )
        assert result.rows == expected
        report = result.chunks[0]
        assert report.fell_back
        assert report.retries == 2
        assert "worker failed" in report.error
