"""Budgets, execution contexts, and the budget/answer dichotomy.

The load-bearing property (hypothesis-checked below): under ANY step
budget, every engine either returns the byte-identical un-budgeted
answer or raises exactly :class:`ResourceExhausted` — never a wrong or
partial answer.
"""

import time

import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.queries import TreeDatabase
from repro.resilience import (
    Budget,
    ExecutionContext,
    ResourceExhausted,
    activate,
    checkpoint,
    current_context,
)

TERM = (
    'catalog(dept[name="db"](item[price=30, cur="EUR"], '
    'item[price=2, cur="EUR"]), dept(item[cur="USD"], d(e, f(g))))'
)

#: (operation, callable(db, engine, budget)) pairs the dichotomy test runs.
OPERATIONS = [
    ("xpath", lambda db, e, b: db.xpath("catalog//item", engine=e, budget=b)),
    ("xpath-filter", lambda db, e, b: db.xpath(
        "//dept[item]//item", engine=e, budget=b)),
    ("holds", lambda db, e, b: db.ask(
        "forall x (O_item(x) -> leaf(x))", engine=e, budget=b)),
    ("select", lambda db, e, b: db.select_where(
        "x << y & O_item(y)", engine=e, budget=b)),
    ("caterpillar", lambda db, e, b: db.caterpillar(
        "(down | right)* isLeaf", engine=e, budget=b)),
    ("caterpillar_relation", lambda db, e, b: tuple(
        sorted(db.caterpillar_relation("up* isRoot", engine=e, budget=b)))),
]

ENGINES = ("fast", "reference", "resilient")


@pytest.fixture(scope="module")
def db():
    return TreeDatabase.from_term(TERM)


# -- Budget mechanics --------------------------------------------------------------


def test_step_budget_trips_with_structured_fields():
    budget = Budget(steps=10)
    budget.checkpoint(10)  # exactly at the limit: fine
    with pytest.raises(ResourceExhausted) as info:
        budget.checkpoint(1)
    exc = info.value
    assert exc.resource == "steps"
    assert exc.steps == 11
    assert exc.limit == 10
    assert isinstance(exc, RuntimeError)  # pre-taxonomy compatibility


def test_predictive_charging_refuses_before_building():
    # A single huge charge trips immediately — the engines charge the
    # predicted materialisation size before allocating it.
    budget = Budget(steps=100)
    with pytest.raises(ResourceExhausted):
        budget.checkpoint(10**9)


def test_deadline_budget():
    budget = Budget(seconds=0.0)
    time.sleep(0.001)
    with pytest.raises(ResourceExhausted) as info:
        budget.checkpoint()
    assert info.value.resource == "deadline"


def test_cardinality_depth_and_formula_size_caps():
    budget = Budget(max_results=5, max_depth=3, max_formula_size=7)
    budget.check_results(5)
    with pytest.raises(ResourceExhausted) as info:
        budget.check_results(6)
    assert info.value.resource == "results"
    budget.check_depth(3)
    with pytest.raises(ResourceExhausted) as info:
        budget.check_depth(4)
    assert info.value.resource == "depth"
    budget.check_formula_size(7)
    with pytest.raises(ResourceExhausted) as info:
        budget.check_formula_size(8)
    assert info.value.resource == "formula-size"


def test_remaining_steps_and_slice():
    budget = Budget(steps=100, max_results=9)
    budget.checkpoint(40)
    assert budget.remaining_steps() == 60
    child = budget.slice(0.5)
    assert child.step_limit == 30
    assert child.max_results == 9  # non-step limits are inherited
    assert child.steps == 0
    # An unlimited budget slices to an unlimited child.
    assert Budget().slice(0.5).step_limit is None
    # A slice of a nearly-spent budget still gets at least one step.
    tight = Budget(steps=10)
    tight.checkpoint(10)
    assert tight.slice(0.5).step_limit == 1


def test_budget_rejects_negative_limits():
    with pytest.raises(ValueError):
        Budget(steps=-1)
    with pytest.raises(ValueError):
        Budget(seconds=-0.5)


# -- context activation ------------------------------------------------------------


def test_contexts_nest_and_clear():
    assert current_context() is None
    outer = ExecutionContext(Budget(steps=5))
    inner = ExecutionContext(Budget(steps=50))
    with activate(outer):
        assert current_context() is outer
        with activate(inner):
            assert current_context() is inner
            with activate(None):  # explicit shield, as the fallback uses
                assert current_context() is None
            assert current_context() is inner
        assert current_context() is outer
    assert current_context() is None


def test_module_level_checkpoint_charges_ambient_budget():
    checkpoint(10**9)  # no context active: a no-op
    budget = Budget(steps=3)
    with activate(ExecutionContext(budget)):
        checkpoint(2)
        with pytest.raises(ResourceExhausted):
            checkpoint(2)
    assert budget.steps == 4


# -- the dichotomy: right answer XOR ResourceExhausted ------------------------------


@pytest.fixture(scope="module")
def truths(db):
    """Un-budgeted answers, computed once per operation and engine."""
    out = {}
    for name, call in OPERATIONS:
        expected = call(db, "fast", None)
        for engine in ENGINES:
            assert call(db, engine, None) == expected, (name, engine)
        out[name] = expected
    return out


@given(
    case=st.sampled_from([name for name, _ in OPERATIONS]),
    engine=st.sampled_from(ENGINES),
    steps=st.integers(min_value=1, max_value=2_000),
)
@settings(max_examples=120, deadline=None)
def test_budgeted_run_is_exact_or_exhausted(db, truths, case, engine, steps):
    call = dict(OPERATIONS)[case]
    try:
        result = call(db, engine, Budget(steps=steps))
    except ResourceExhausted:
        return  # the honest refusal
    assert result == truths[case], (
        f"{case}/{engine} under steps={steps} returned a WRONG answer"
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_sufficient_budget_is_byte_identical(db, truths, engine):
    for name, call in OPERATIONS:
        assert call(db, engine, Budget(steps=10**9)) == truths[name], name


def test_insufficient_budget_raises_only_resource_exhausted(db):
    # A zero-step budget cannot cover any unit of work, so every
    # operation must refuse (rather than answer partially).
    for name, call in OPERATIONS:
        with pytest.raises(ResourceExhausted):
            call(db, "fast", Budget(steps=0))
