"""Pebble tree automata ([17]) tests."""

import pytest

from tests.conftest import tree_family

from repro.logic import evaluate, parse_formula
from repro.pebbleautomata import (
    AttrEqPebble,
    Lift,
    PRule,
    PebbleAutomaton,
    PebbleAutomatonError,
    PebbleHere,
    PebblesDown,
    Place,
    Walk,
    exists_double_join,
    exists_double_join_spec,
    exists_equal_pair,
    exists_equal_pair_spec,
    run_pebble_automaton,
)
from repro.trees import all_trees, parse_term, random_tree

FAMILY = tree_family(count=12, max_size=12, value_pool=(1, 2, 3, 4))


# -- the data-join automaton --------------------------------------------------------


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_equal_pair_matches_spec(tree):
    got = run_pebble_automaton(exists_equal_pair(), tree)
    assert got.accepted == exists_equal_pair_spec()(tree)


def test_equal_pair_fixed_cases():
    accept = parse_term("r[a=1](x[a=2], y[a=1])")
    reject = parse_term("r[a=1](x[a=2], y[a=3])")
    single = parse_term("r[a=1]")
    assert run_pebble_automaton(exists_equal_pair(), accept).accepted
    assert not run_pebble_automaton(exists_equal_pair(), reject).accepted
    assert not run_pebble_automaton(exists_equal_pair(), single).accepted


def test_equal_pair_agrees_with_fo():
    """The join is FO-definable; the pebble automaton and the logic
    agree — the cross-model check."""
    sentence = parse_formula("exists x y (~x = y & val_a(x) = val_a(y))")
    for seed in range(8):
        tree = random_tree(9, attributes=("a",), value_pool=(1, 2, 3, 4, 5),
                           seed=seed)
        assert (
            run_pebble_automaton(exists_equal_pair(), tree).accepted
            == evaluate(sentence, tree)
        )


def test_equal_pair_exhaustive_shapes():
    automaton = exists_equal_pair()
    for shape in all_trees(3, ("σ",)):
        for values in [(1, 1, 2), (1, 2, 3), (5, 5, 5)]:
            tree = shape.with_attribute(
                "a", dict(zip(shape.nodes, values))
            )
            assert (
                run_pebble_automaton(automaton, tree).accepted
                == exists_equal_pair_spec()(tree)
            )


def test_equal_pair_uses_one_pebble(small_tree):
    result = run_pebble_automaton(
        exists_equal_pair("cur"), small_tree
    )
    assert result.max_pebbles == 1
    assert result.accepted  # two EUR items


@pytest.mark.parametrize("tree", FAMILY[:8], ids=lambda t: f"n{t.size}")
def test_double_join_matches_spec(tree):
    two_attr = tree.with_attribute(
        "b", {u: tree.size % 3 for u in tree.nodes}
    )
    got = run_pebble_automaton(exists_double_join(), two_attr)
    assert got.accepted == exists_double_join_spec()(two_attr)


def test_double_join_needs_both():
    t = parse_term("r[a=1, b=1](x[a=1, b=2], y[a=2, b=1])")
    assert not run_pebble_automaton(exists_double_join(), t).accepted
    t2 = parse_term("r[a=1, b=1](x[a=1, b=1])")
    assert run_pebble_automaton(exists_double_join(), t2).accepted


# -- model mechanics ---------------------------------------------------------------------


def tiny(rules, pebbles=1, accepting=("ACC",)):
    states = {"q0", "ACC"} | {r.state for r in rules} | {r.new_state for r in rules}
    return PebbleAutomaton(frozenset(states), "q0", frozenset(accepting),
                           pebbles, tuple(rules))


def test_place_and_lift_roundtrip():
    rules = [
        PRule("q0", "q1", action=Place()),
        PRule("q1", "ACC", tests=(PebbleHere(1), PebblesDown(1)),
              action=Lift()),
    ]
    assert run_pebble_automaton(tiny(rules), parse_term("a")).accepted


def test_place_beyond_capacity_rejects():
    rules = [
        PRule("q0", "q1", action=Place()),
        PRule("q1", "ACC", action=Place()),
    ]
    result = run_pebble_automaton(tiny(rules, pebbles=1), parse_term("a"))
    assert not result.accepted and "no pebble left" in result.reason


def test_lift_without_pebble_rejects():
    rules = [PRule("q0", "ACC", action=Lift())]
    result = run_pebble_automaton(tiny(rules), parse_term("a"))
    assert not result.accepted and "no pebble down" in result.reason


def test_strong_discipline_lift_away_rejects():
    rules = [
        PRule("q0", "q1", action=Place()),
        PRule("q1", "q2", action=Walk("down")),
        PRule("q2", "ACC", action=Lift()),
    ]
    result = run_pebble_automaton(tiny(rules), parse_term("a(b)"))
    assert not result.accepted and "strong discipline" in result.reason


def test_stack_order_is_tracked():
    # place 1 at the root, walk down, place 2, test presence separately
    rules = [
        PRule("q0", "q1", action=Place()),
        PRule("q1", "q2", action=Walk("down")),
        PRule("q2", "q3", action=Place()),
        PRule("q3", "ACC",
              tests=(PebbleHere(2), PebbleHere(1, present=False),
                     PebblesDown(2))),
    ]
    assert run_pebble_automaton(tiny(rules, pebbles=2), parse_term("a(b)")).accepted


def test_join_against_missing_pebble_is_false():
    rules = [
        PRule("q0", "ACC", tests=(AttrEqPebble(1, "a"),)),
    ]
    result = run_pebble_automaton(tiny(rules), parse_term("a[a=1]"))
    assert not result.accepted  # the pebble is not down: no join


def test_cycle_detection():
    rules = [PRule("q0", "q0", action=Walk("stay"))]
    result = run_pebble_automaton(tiny(rules), parse_term("a"))
    assert not result.accepted and "cycle" in result.reason


def test_nondeterminism_raises():
    rules = [
        PRule("q0", "ACC"),
        PRule("q0", "q0"),
    ]
    with pytest.raises(PebbleAutomatonError):
        run_pebble_automaton(tiny(rules), parse_term("a"))


def test_validation():
    with pytest.raises(PebbleAutomatonError):
        tiny([PRule("q0", "ACC", tests=(PebbleHere(5),))], pebbles=1)
    with pytest.raises(PebbleAutomatonError):
        tiny([PRule("q0", "ACC", tests=(PebblesDown(9),))], pebbles=1)
    with pytest.raises(PebbleAutomatonError):
        PebbleAutomaton(frozenset({"a"}), "missing", frozenset(), 1, ())
