"""TreeDatabase facade tests."""

import pytest

from repro import TreeDatabase
from repro.automata import TWClass
from repro.automata.examples import (
    all_leaves_same_twrl,
    even_leaves_automaton,
    example_32,
)
from repro.logic import tree_fo as T
from repro.logic.exists_star import descendants_with_label
from repro.mso import leaf_count_mod_hedge


@pytest.fixture
def db():
    return TreeDatabase.from_term(
        'catalog(dept(item[cur="EUR"], item[cur="EUR"]), dept(item[cur="USD"]))'
    )


def test_roundtrips(db):
    assert TreeDatabase.from_term(db.to_term()).tree == db.tree
    assert TreeDatabase.from_xml(db.to_xml()).tree == db.tree
    assert db.size == 6


def test_xpath(db):
    assert db.xpath("catalog//item") == ((0, 0), (0, 1), (1, 0))
    assert db.xpath("catalog/dept[item]") == ((0,), (1,))
    assert db.xpath("item", context=(0, 0)) == ((0, 0),)


def test_xpath_cache(db):
    db.xpath("catalog//item")
    assert "catalog//item" in db._xpath_cache


def test_xpath_as_fo_agrees(db):
    query = db.xpath_as_fo("catalog//item")
    assert query.select(db.tree, ()) == db.xpath("catalog//item")


def test_holds(db):
    x = T.NVar("x")
    assert db.holds(T.exists(x, T.ValConst("cur", x, "USD")))
    assert not db.holds(T.forall(x, T.Leaf(x)))


def test_select(db):
    q = descendants_with_label("dept")
    assert db.select(q) == ((0,), (1,))


def test_run_automaton(db):
    assert not db.run_automaton(all_leaves_same_twrl("cur"))
    assert db.run_automaton(even_leaves_automaton()) == False  # 3 leaves
    t2 = TreeDatabase.from_term("a(b, c)")
    assert t2.run_automaton(even_leaves_automaton())


def test_run_automaton_delimited():
    db = TreeDatabase.from_term("σ(δ(σ[a=1], σ[a=1]))")
    assert db.run_automaton(example_32(), delimited=True)


def test_memoised_agrees(db):
    a = all_leaves_same_twrl("cur")
    assert db.run_automaton(a, memoised=True) == db.run_automaton(a)


def test_run_with_trace(db):
    result = db.run_with_trace(even_leaves_automaton())
    assert result.trace is not None and len(result.trace) > 0


def test_automaton_class(db):
    assert db.automaton_class(even_leaves_automaton()) is TWClass.TW


def test_matches_hedge(db):
    h = leaf_count_mod_hedge(("catalog", "dept", "item"), "item", 3, [0])
    assert db.matches_hedge(h)  # exactly 3 item leaves


def test_with_ids(db):
    extended = db.with_ids()
    assert "ID" in extended.tree.attributes
    assert db.tree.attributes == ("cur",)  # original untouched


def test_ensure_ids_flag():
    db = TreeDatabase.from_term("a(b)", ensure_ids=True)
    assert "ID" in db.tree.attributes


def test_cache_info_counts_hits_and_misses(db):
    assert db.cache_info() == (0, 0, 128, 0)
    db.xpath("catalog//item")
    db.xpath("catalog//item")
    db.xpath("catalog/dept")
    info = db.cache_info()
    assert (info.hits, info.misses, info.currsize) == (1, 2, 2)
    assert info.maxsize == 128


def test_cache_is_lru_bounded():
    db = TreeDatabase.from_term("a(b, c)", xpath_cache_size=2)
    db.xpath("a")
    db.xpath("b")
    db.xpath("a")      # refresh 'a' so 'b' is the eviction victim
    db.xpath("c")      # evicts 'b'
    assert set(db._xpath_cache) == {"a", "c"}
    assert db.cache_info().currsize == 2
    db.xpath("b")      # miss again after eviction
    assert db.cache_info().misses == 4


def test_cache_size_zero_disables_caching():
    db = TreeDatabase.from_term("a(b)", xpath_cache_size=0)
    db.xpath("a")
    db.xpath("a")
    info = db.cache_info()
    assert (info.hits, info.misses, info.currsize) == (0, 2, 0)


def test_cache_clear_resets_stats(db):
    db.xpath("catalog//item")
    db.xpath("catalog//item")
    db.cache_clear()
    assert db.cache_info() == (0, 0, 128, 0)
    assert db.xpath("catalog//item") == ((0, 0), (0, 1), (1, 0))


def test_cache_rejects_negative_size():
    with pytest.raises(ValueError):
        TreeDatabase.from_term("a", xpath_cache_size=-1)


def test_cached_result_identical_to_fresh(db):
    first = db.xpath("catalog/dept[item]")
    again = db.xpath("catalog/dept[item]")
    assert first == again
    assert db.cache_info().hits == 1


# -- caterpillar walks and their parse cache ---------------------------------


def test_caterpillar_walk_and_relation(db):
    leaves = db.caterpillar("(down | right)* isLeaf")
    assert leaves == ((0, 0), (0, 1), (1, 0))
    assert db.caterpillar("(down | right)* isLeaf", engine="reference") \
        == leaves
    pairs = db.caterpillar_relation("down")
    assert pairs == db.caterpillar_relation("down", engine="reference")
    assert ((), (0,)) in pairs  # DOWN is first-child


def test_caterpillar_context_parameter(db):
    assert db.caterpillar("isLeaf", context=(0, 0)) == ((0, 0),)
    assert db.caterpillar("isLeaf") == ()


def test_caterpillar_rejects_unknown_engine(db):
    with pytest.raises(ValueError):
        db.caterpillar("down", engine="bogus")
    with pytest.raises(ValueError):
        db.caterpillar_relation("down", engine="bogus")


def test_caterpillar_cache_counts_hits_and_misses(db):
    assert db.caterpillar_cache_info() == (0, 0, 128, 0)
    db.caterpillar("(down | right)* isLeaf")
    db.caterpillar("(down | right)* isLeaf")
    db.caterpillar_relation("down")
    info = db.caterpillar_cache_info()
    assert (info.hits, info.misses, info.currsize) == (1, 2, 2)
    assert info.maxsize == 128


def test_caterpillar_cache_is_lru_bounded():
    db = TreeDatabase.from_term("a(b, c)", caterpillar_cache_size=2)
    db.caterpillar("down")
    db.caterpillar("up")
    db.caterpillar("down")   # refresh 'down' so 'up' is evicted next
    db.caterpillar("right")  # evicts 'up'
    assert set(db._caterpillar_cache) == {"down", "right"}
    db.caterpillar("up")     # miss again after eviction
    assert db.caterpillar_cache_info().misses == 4


def test_caterpillar_cache_size_zero_disables_caching():
    db = TreeDatabase.from_term("a(b)", caterpillar_cache_size=0)
    db.caterpillar("down")
    db.caterpillar("down")
    info = db.caterpillar_cache_info()
    assert (info.hits, info.misses, info.currsize) == (0, 2, 0)


def test_caterpillar_cache_clear_resets_stats(db):
    db.caterpillar("down")
    db.caterpillar("down")
    db.caterpillar_cache_clear()
    assert db.caterpillar_cache_info() == (0, 0, 128, 0)


def test_caterpillar_cache_rejects_negative_size():
    with pytest.raises(ValueError):
        TreeDatabase.from_term("a", caterpillar_cache_size=-1)


def test_caterpillar_cache_independent_of_xpath_cache(db):
    db.caterpillar("down")
    assert db.cache_info().misses == 0
    db.xpath("catalog//item")
    assert db.caterpillar_cache_info().misses == 1


def test_run_automaton_engine_parameter(db):
    auto = even_leaves_automaton()
    assert db.run_automaton(auto, engine="fast") == db.run_automaton(
        auto, engine="reference"
    )
    with pytest.raises(ValueError):
        db.run_automaton(auto, engine="bogus")
