"""Active-domain FO over the store — the ξ/ψ language of Definition 3.1."""

import pytest

from repro.store import (
    Attr,
    Relation,
    StoreContext,
    StoreFormulaError,
    StoreSchema,
    TrueF,
    FalseF,
    Var,
    attributes_used,
    conj,
    constants,
    disj,
    eq,
    evaluate,
    evaluate_update,
    exists,
    forall,
    free_variables,
    implies,
    neq,
    rel,
    validate,
)
from repro.store.fo import Not
from repro.trees import BOTTOM

z, w = Var("z"), Var("w")


def make_ctx(**attrs):
    schema = StoreSchema([1, 2])
    store = schema.initial_store().set(1, Relation.unary([1, 2])).set(
        2, Relation(2, [(1, 10), (2, 20)])
    )
    return StoreContext(store, attrs or {"a": 10})


def test_atoms():
    ctx = make_ctx()
    assert evaluate(rel(1, 1), ctx)
    assert not evaluate(rel(1, 99), ctx)
    assert evaluate(rel(2, 1, 10), ctx)
    assert evaluate(eq(Attr("a"), 10), ctx)
    assert evaluate(neq(Attr("a"), 11), ctx)


def test_boolean_connectives():
    ctx = make_ctx()
    assert evaluate(conj(TrueF(), rel(1, 1)), ctx)
    assert not evaluate(conj(rel(1, 1), FalseF()), ctx)
    assert evaluate(disj(FalseF(), rel(1, 2)), ctx)
    assert evaluate(implies(FalseF(), FalseF()), ctx)
    assert evaluate(Not(rel(1, 99)), ctx)
    assert evaluate(conj(), ctx)        # empty conjunction is true
    assert not evaluate(disj(), ctx)    # empty disjunction is false


def test_quantifiers_active_domain():
    ctx = make_ctx()
    # ∃z X1(z) ∧ ∃w X2(z → pairs)…
    assert evaluate(exists(z, rel(1, z)), ctx)
    assert evaluate(forall(z, implies(rel(1, z), exists(w, rel(2, z, w)))), ctx)
    # the active domain contains 10 (attr) and 20 (store) but not 99
    assert evaluate(exists(z, eq(z, 20)), ctx)
    assert not evaluate(exists(z, eq(z, Attr("a"))), make_ctx(a=BOTTOM))


def test_constants_extend_active_domain():
    schema = StoreSchema([1])
    ctx = StoreContext(schema.initial_store(), {})
    # empty store, no attrs: the constant in the formula is the domain
    assert evaluate(exists(z, eq(z, 42)), ctx)
    assert not evaluate(exists(z, neq(z, 42)), ctx)


def test_extra_constants():
    schema = StoreSchema([1])
    ctx = StoreContext(schema.initial_store(), {}, frozenset({7}))
    assert evaluate(exists(z, eq(z, Attr("x"))), StoreContext(
        schema.initial_store(), {"x": 7}, frozenset()
    ))
    assert evaluate(forall(z, eq(z, 7)), ctx)


def test_bottom_attr_semantics():
    ctx = make_ctx(a=BOTTOM, b=BOTTOM)
    # relations never contain ⊥
    assert not evaluate(rel(1, Attr("a")), ctx)
    # ⊥ = ⊥ holds; ⊥ = d fails
    assert evaluate(eq(Attr("a"), Attr("b")), ctx)
    assert not evaluate(eq(Attr("a"), 10), ctx)


def test_guard_must_be_sentence():
    with pytest.raises(StoreFormulaError):
        evaluate(rel(1, z), make_ctx())


def test_validate_arity():
    schema = StoreSchema([1, 2])
    with pytest.raises(StoreFormulaError):
        validate(rel(1, 1, 2), schema)
    with pytest.raises(ValueError):  # StoreError: unknown register
        validate(rel(3, 1), schema)
    validate(rel(2, 1, 2), schema)  # ok


def test_free_variables_and_constants():
    f = exists(z, conj(rel(1, z), eq(w, 5), eq(Attr("a"), "x")))
    assert free_variables(f) == frozenset({w})
    assert constants(f) == frozenset({5, "x"})
    assert attributes_used(f) == frozenset({"a"})


def test_evaluate_update_basic():
    ctx = make_ctx()
    # {z : X1(z) ∨ z = @a}
    out = evaluate_update(disj(rel(1, z), eq(z, Attr("a"))), [z], ctx)
    assert out.unary_values() == frozenset({1, 2, 10})


def test_evaluate_update_binary():
    ctx = make_ctx()
    out = evaluate_update(rel(2, z, w), [w, z], ctx)  # swapped columns
    assert out.rows == frozenset({(10, 1), (20, 2)})


def test_update_rejects_stray_variables():
    ctx = make_ctx()
    with pytest.raises(StoreFormulaError):
        evaluate_update(conj(rel(1, z), rel(1, w)), [z], ctx)


def test_update_rejects_duplicate_columns():
    ctx = make_ctx()
    with pytest.raises(StoreFormulaError):
        evaluate_update(rel(2, z, z), [z, z], ctx)


def test_unknown_attribute_raises():
    ctx = make_ctx()
    with pytest.raises(StoreFormulaError):
        evaluate(eq(Attr("missing"), 1), ctx)


def test_formula_reprs_render():
    f = forall(z, implies(rel(1, z), exists(w, eq(z, w))))
    text = repr(f)
    assert "∀" in text and "∃" in text and "X1" in text
