"""2DFA → tw compilation: the §3 inclusion, executable."""

import itertools

import pytest

from repro.automata import TWClass, classify
from repro.automata.stringcompile import accepts_word, compile_two_way
from repro.automata.strings import (
    multiple_of_automaton,
    palindrome_automaton,
    run_two_way,
)


def test_multiple_of_three_compiles():
    dfa = multiple_of_automaton(3)
    compiled = compile_two_way(dfa)
    for n in range(9):
        word = ["a"] * n
        assert accepts_word(compiled, dfa, word) == run_two_way(dfa, word).accepted


def test_first_equals_last_compiles():
    dfa = palindrome_automaton(["a", "b"])
    compiled = compile_two_way(dfa)
    for length in range(1, 5):
        for word in itertools.product("ab", repeat=length):
            want = run_two_way(dfa, list(word)).accepted
            got = accepts_word(compiled, dfa, list(word))
            assert got == want, word


def test_two_way_movement_survives_compilation():
    """The palindrome automaton genuinely reverses direction; the
    compiled walker must too (reject mismatching ends)."""
    dfa = palindrome_automaton(["a", "b"])
    compiled = compile_two_way(dfa)
    assert accepts_word(compiled, dfa, list("abba"))
    assert not accepts_word(compiled, dfa, list("abb"))


def test_empty_word_falls_back_to_dfa():
    dfa = multiple_of_automaton(2)
    compiled = compile_two_way(dfa)
    assert accepts_word(compiled, dfa, [])  # 0 is even


def test_compiled_automaton_is_plain_tw():
    compiled = compile_two_way(multiple_of_automaton(2))
    assert classify(compiled) is TWClass.TW


def test_compiled_state_count_linear():
    dfa = multiple_of_automaton(5)
    compiled = compile_two_way(dfa)
    # ≤ 3 tw states per 2DFA state (word/▷/◁) plus the final
    assert len(compiled.states) <= 3 * len(dfa.states) + 1
