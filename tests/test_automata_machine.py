"""Static validation of tw^{r,l} automata (Definition 3.1's tuple)."""

import pytest

from repro.automata import (
    AutomatonBuilder,
    AutomatonError,
    Atp,
    DOWN,
    LHS,
    Move,
    Rule,
    STAY,
    TWAutomaton,
    Update,
)
from repro.logic.exists_star import children_selector
from repro.store import StoreSchema, TrueF, Var, eq, rel

z = Var("z")


def minimal(rules=(), arities=(1,), initial=()):
    return TWAutomaton(
        states=frozenset({"q0", "qF"} | {r.lhs.state for r in rules}
                         | {r.rhs.state for r in rules}),
        initial_state="q0",
        final_state="qF",
        schema=StoreSchema(list(arities)),
        rules=tuple(rules),
        initial_assignment=tuple(initial),
    )


def test_minimal_automaton_builds():
    a = minimal()
    assert a.schema.count == 1
    assert not a.has_lookahead() and not a.has_updates()


def test_initial_state_must_exist():
    with pytest.raises(AutomatonError):
        TWAutomaton(frozenset({"qF"}), "q0", "qF", StoreSchema([1]), ())


def test_no_rule_from_final_state():
    rule = Rule(LHS("qF"), Move("q0", STAY))
    with pytest.raises(AutomatonError):
        minimal([rule])


def test_guard_must_be_sentence():
    rule = Rule(LHS("q0", guard=rel(1, z)), Move("qF", STAY))
    with pytest.raises(AutomatonError):
        minimal([rule])


def test_update_arity_checked():
    bad = Rule(LHS("q0"), Update("qF", eq(z, 1), (z,), register=1))
    minimal([bad], arities=(1,))  # fine for a unary register
    with pytest.raises(AutomatonError):
        minimal([bad], arities=(2,))


def test_update_stray_variables_rejected():
    w = Var("w")
    bad = Rule(LHS("q0"), Update("qF", eq(w, 1), (z,), register=1))
    with pytest.raises(AutomatonError):
        minimal([bad])


def test_atp_register_arity_must_match_register_one():
    ok = Rule(LHS("q0"), Atp("qF", children_selector(), "q0", register=2))
    minimal([ok], arities=(1, 1))
    with pytest.raises(AutomatonError):
        minimal([ok], arities=(1, 2))


def test_atp_unknown_substate():
    bad = Rule(LHS("q0"), Atp("qF", children_selector(), "nowhere", 1))
    with pytest.raises(AutomatonError):
        TWAutomaton(
            frozenset({"q0", "qF"}), "q0", "qF", StoreSchema([1]), (bad,)
        )


def test_initial_assignment_length_checked():
    with pytest.raises(AutomatonError):
        minimal(arities=(1, 1), initial=(5,))


def test_program_constants_collects_everything():
    rule1 = Rule(LHS("q0", guard=eq(1, 1)), Move("q1", STAY))
    rule2 = Rule(LHS("q1"), Update("qF", eq(z, "c"), (z,), 1))
    a = minimal([rule1, rule2], initial=(7,))
    assert a.program_constants() == frozenset({1, "c", 7})


def test_size_counts_components():
    a = minimal(initial=(5,))
    base = a.size()
    b = minimal([Rule(LHS("q0"), Move("qF", DOWN))], initial=(5,))
    assert b.size() > base - 1  # extra guard node counted


def test_rules_for():
    r1 = Rule(LHS("q0"), Move("q1", STAY))
    r2 = Rule(LHS("q1"), Move("qF", STAY))
    a = minimal([r1, r2])
    assert a.rules_for("q0") == (r1,)
    assert a.rules_for("qF") == ()


def test_builder_infers_states():
    b = AutomatonBuilder("t", register_arities=[1])
    b.move("s0", "s1", STAY)
    b.atp("s1", "s2", children_selector(), substate="rep", register=1)
    b.move("rep", "qF", STAY)
    a = b.build(initial="s0", final="qF")
    assert {"s0", "s1", "s2", "rep", "qF"} <= set(a.states)


def test_direction_validation():
    with pytest.raises(ValueError):
        Move("q", "sideways")
