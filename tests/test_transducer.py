"""Tree-walking transducer tests (the §8 output extension)."""

import pytest

from tests.conftest import tree_family

from repro.logic.exists_star import children_selector, parent_selector, self_selector
from repro.transducer import (
    COPY_LABEL,
    CopyAttr,
    TWTransducer,
    Template,
    TransducerError,
    apply_templates,
    catalog_report_transducer,
    flatten_leaves_transducer,
    identity_transducer,
    out,
    prune_spec,
    prune_transducer,
    run_transducer,
)
from repro.trees import BOTTOM, leaves, parse_term

FAMILY = tree_family(count=10, max_size=12)


# -- identity ------------------------------------------------------------------------


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_identity_copies_exactly(tree):
    assert run_transducer(identity_transducer(), tree) == tree


def test_identity_copies_attributes():
    t = parse_term('r[a=1](x[a="two"])')
    assert run_transducer(identity_transducer(), t) == t


# -- pruning --------------------------------------------------------------------------


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_prune_matches_spec(tree):
    if tree.label(()) == "δ":
        pytest.skip("cannot prune the root")
    got = run_transducer(prune_transducer("δ"), tree)
    assert got == prune_spec(tree, "δ")


def test_prune_drops_whole_subtrees():
    t = parse_term("a(b(δ(x, y), c), δ(z))")
    got = run_transducer(prune_transducer("δ", attributes=()), t)
    assert got == parse_term("a(b(c))")


# -- flattening ----------------------------------------------------------------------------


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_flatten_lists_all_leaves(tree):
    got = run_transducer(flatten_leaves_transducer(), tree)
    assert got.label(()) == "leaves"
    got_leaves = [
        (got.label(u), got.val("a", u)) for u in got.children(())
    ]
    want = [(tree.label(u), tree.val("a", u)) for u in leaves(tree)]
    assert got_leaves == want


def test_flatten_single_node_tree():
    t = parse_term("x[a=9]")
    got = run_transducer(flatten_leaves_transducer(), t)
    assert got.size == 2
    assert got.val("a", (0,)) == 9


# -- the catalog report ------------------------------------------------------------------------


def test_catalog_report():
    doc = parse_term(
        'catalog(dept[name="db"](item[price=1, cur="EUR"],'
        '                        item[price=2, cur="EUR"]),'
        '        dept[name="ai"](item[price=3, cur="USD"]))'
    )
    report = run_transducer(catalog_report_transducer(), doc)
    assert report.label(()) == "report"
    assert report.degree(()) == 2
    assert report.val("name", (0,)) == "db"
    assert report.degree((0,)) == 2
    assert report.val("cur", (1, 0)) == "USD"
    assert report.val("price", (0, 1)) == 2


def test_catalog_report_strict_on_foreign_documents():
    with pytest.raises(TransducerError):
        run_transducer(catalog_report_transducer(), parse_term("html(body)"))


# -- model mechanics ------------------------------------------------------------------------------


def test_missing_template_empty_mode():
    t = TWTransducer(templates=(), initial="start")
    with pytest.raises(TransducerError):
        run_transducer(t, parse_term("a"))  # zero roots, no wrap
    wrapped = run_transducer(t, parse_term("a"), wrap_root="empty")
    assert wrapped == parse_term("empty")


def test_missing_template_error_mode():
    t = TWTransducer(templates=(), initial="start", missing_template="error")
    with pytest.raises(TransducerError):
        run_transducer(t, parse_term("a"))


def test_first_match_wins():
    specific = Template("s", (out("special"),), label="a")
    generic = Template("s", (out("general"),))
    t = TWTransducer(templates=(specific, generic), initial="s")
    assert run_transducer(t, parse_term("a")).label(()) == "special"
    assert run_transducer(t, parse_term("b")).label(()) == "general"


def test_infinite_recursion_detected():
    looping = Template(
        "s", (out("n", {}, apply_templates(self_selector(), "s")),)
    )
    t = TWTransducer(templates=(looping,), initial="s")
    with pytest.raises(TransducerError):
        run_transducer(t, parse_term("a"))


def test_walking_upwards_is_allowed():
    # apply-templates may walk up: child renders its parent's label
    t = TWTransducer(
        templates=(
            Template(
                "start",
                (out("wrap", {}, apply_templates(children_selector(), "kid")),),
            ),
            Template(
                "kid",
                (out(COPY_LABEL, {}, apply_templates(parent_selector(), "tag")),),
            ),
            Template("tag", (out(COPY_LABEL),)),
        ),
        initial="start",
    )
    got = run_transducer(t, parse_term("p(x, y)"))
    assert got == parse_term("wrap(x(p), y(p))")


def test_output_budget():
    # output doubles per level: exponential in the input depth
    wide = Template(
        "s",
        (out("n", {}, apply_templates(children_selector(), "s"),
             apply_templates(children_selector(), "s")),),
    )
    t = TWTransducer(templates=(wide,), initial="s")
    from repro.trees import chain_tree

    with pytest.raises(TransducerError):
        run_transducer(t, chain_tree(40), fuel=500)


def test_bottom_attributes_not_copied():
    t = parse_term("r(x[a=1], y)")  # y has a = ⊥
    got = run_transducer(identity_transducer(), t)
    assert got.val("a", (1,)) is BOTTOM


def test_states_enumeration():
    trans = catalog_report_transducer()
    assert set(trans.states()) == {"start", "dept", "item"}


def test_xpath_string_selectors_work():
    t = TWTransducer(
        templates=(
            Template(
                "start",
                (out("picked", {}, apply_templates(".//b", "b")),),
            ),
            Template("b", (out("hit", {"v": CopyAttr("a")}),)),
        ),
        initial="start",
    )
    doc = parse_term("a(b[a=1], c(b[a=2]))")
    got = run_transducer(t, doc)
    assert [got.val("v", u) for u in got.children(())] == [1, 2]
