"""Hypersets, encodings, L^m, counting (Section 4)."""

import random

import pytest

from repro.hypersets import (
    EncodingError,
    Hyperset,
    HypersetError,
    Tower,
    all_hypersets,
    count_hypersets,
    crossover,
    decode,
    delta_bound,
    dialogue_bound,
    encode,
    exp_tower,
    hyperset_tower,
    in_lm,
    is_marker,
    lm_word,
    random_hyperset,
    split_encoding,
)
from repro.trees.strings import HASH


# -- hypersets -----------------------------------------------------------------------


def test_level_one():
    h = Hyperset.of_values([1, "a", 1])
    assert h.level == 1 and len(h) == 2
    assert h.values() == frozenset({1, "a"})


def test_nesting():
    inner = Hyperset.of_values(["x"])
    outer = Hyperset.of_sets([inner])
    assert outer.level == 2
    assert outer.values() == frozenset({"x"})


def test_level_mismatch_rejected():
    lvl1 = Hyperset.of_values([1])
    lvl2 = Hyperset.of_sets([lvl1])
    with pytest.raises(HypersetError):
        Hyperset(2, frozenset({lvl2}))
    with pytest.raises(HypersetError):
        Hyperset(1, frozenset({lvl1}))


def test_empty_needs_explicit_level():
    with pytest.raises(HypersetError):
        Hyperset.of_sets([])
    empty = Hyperset(3, frozenset())
    assert empty.level == 3 and len(empty) == 0


def test_all_hypersets_counts():
    assert len(all_hypersets(1, ["a", "b"])) == 4
    assert len(all_hypersets(2, ["a"])) == 4  # 2^(2^1)
    assert len(all_hypersets(2, ["a", "b"])) == 16


def test_random_hyperset_level():
    rng = random.Random(1)
    h = random_hyperset(3, ["a", "b"], rng)
    assert h.level == 3


# -- encodings ------------------------------------------------------------------------


def test_encode_level1():
    assert encode(Hyperset.of_values(["a", "b"])) == [1, "a", "b"]
    assert encode(Hyperset.of_values([])) == [1]


def test_encode_level2():
    h = Hyperset.of_sets([Hyperset.of_values(["x"]), Hyperset.of_values([])])
    # canonical order is by repr; both segments appear exactly once
    assert encode(h) in ([2, 1, 2, 1, "x"], [2, 1, "x", 2, 1])
    assert decode(encode(h), 2) == h


def test_roundtrip_exhaustive():
    for level in (1, 2):
        for h in all_hypersets(level, ["a", "b"]):
            assert decode(encode(h), level) == h


def test_roundtrip_random_level3():
    rng = random.Random(7)
    for _ in range(25):
        h = random_hyperset(3, ["a", "b"], rng)
        assert decode(encode(h), 3) == h


def test_decode_tolerates_reorderings_and_duplicates():
    # {a,b} as "1 b a" and {{a}} as "2 1a 2 1a"
    assert decode([1, "b", "a"], 1) == Hyperset.of_values(["a", "b"])
    h = decode([2, 1, "a", 2, 1, "a"], 2)
    assert h == Hyperset.of_sets([Hyperset.of_values(["a"])])


def test_markers_excluded_from_domain():
    with pytest.raises(EncodingError):
        encode(Hyperset.of_values([1, "a"]))  # 1 is the level-1 marker
    assert is_marker(2, 3) and not is_marker(4, 3) and not is_marker("2", 3)


def test_decode_errors():
    with pytest.raises(EncodingError):
        decode(["a"], 1)       # missing marker
    with pytest.raises(EncodingError):
        decode([], 1)          # empty level-1
    with pytest.raises(EncodingError):
        decode([2, 2], 2)      # marker 2 followed by no level-1 encoding
    with pytest.raises(EncodingError):
        decode([1, "a", HASH], 1)  # hash inside


def test_empty_string_is_empty_hyperset_at_level2():
    assert decode([], 2) == Hyperset(2, frozenset())


# -- L^m ----------------------------------------------------------------------------------


def test_lm_word_and_membership():
    f = Hyperset.of_sets([Hyperset.of_values(["a"])])
    g = Hyperset.of_sets([Hyperset.of_values(["a"]), Hyperset.of_values(["a"])])
    word = lm_word(f, g)
    assert in_lm(word, 2)  # duplicate elements collapse
    g2 = Hyperset.of_sets([Hyperset.of_values(["b"])])
    assert not in_lm(lm_word(f, g2), 2)


def test_lm_rejects_malformed():
    assert not in_lm([1, "a"], 1)                 # no hash
    assert not in_lm([1, "a", HASH, "a"], 1)      # g missing its marker
    assert not in_lm([HASH, 1, "a"], 1)           # f empty at level 1


def test_lm_level_mismatch():
    f = Hyperset.of_values(["a"])
    g = Hyperset.of_sets([Hyperset.of_values(["a"])])
    with pytest.raises(HypersetError):
        lm_word(f, g)


def test_split_encoding():
    f, g = split_encoding([1, "a", HASH, 1, "b"])
    assert f == [1, "a"] and g == [1, "b"]
    with pytest.raises(EncodingError):
        split_encoding([1, "a"])


# -- counting -------------------------------------------------------------------------------


def test_exp_tower():
    assert exp_tower(0, 5) == 5
    assert exp_tower(1, 3) == 8
    assert exp_tower(2, 2) == 16
    with pytest.raises(ValueError):
        exp_tower(-1, 2)


def test_count_matches_enumeration():
    assert count_hypersets(1, 2) == len(all_hypersets(1, ["a", "b"]))
    assert count_hypersets(2, 2) == len(all_hypersets(2, ["a", "b"]))


def test_tower_comparisons():
    assert Tower.of(100) < Tower(1, 10)
    assert Tower(2, 4) < Tower(3, 4)
    assert Tower(3, 4) < Tower(3, 5)
    assert not (Tower(3, 5) < Tower(3, 5))
    # normalisation: exp_0(2^20) has height >= 1 in normal form
    assert Tower.of(2.0**20).normalized().height == 1


def test_tower_log_exp_inverse():
    t = Tower(3, 7.5)
    assert t.log2().exp2().normalized() == t.normalized()


def test_dialogue_bound_dominates_delta():
    assert delta_bound(4, 8) < dialogue_bound(4, 8)


def test_crossover_exists_and_is_stable():
    report = crossover(n=4, d=8, max_m=10)
    assert report.crossover_m is not None
    # once the hypersets win they keep winning (towers grow with m)
    winning = [win for _m, _h, _d, win in report.rows]
    first = winning.index(True)
    assert all(winning[first:])
    # the paper's safe bound: by m = 7 at the latest for reasonable p
    assert report.crossover_m <= 7
