"""Unit tests for :mod:`repro.engine.fo` — the bottom-up relational FO
evaluator, including the non-prenex shapes the FO(∃*) suites never
build (∀ under ¬, → under ∃, quantifiers mid-formula)."""

import pytest

from tests.conftest import tree_family
from repro.engine import fo as fast_fo
from repro.logic import tree_fo
from repro.logic.tree_fo import (
    Desc,
    Edge,
    Exists,
    Forall,
    Label,
    Leaf,
    NodeEq,
    Not,
    NVar,
    Root,
    SibLess,
    Succ,
    TreeFormulaError,
    ValConst,
    ValEq,
    conj,
    disj,
    exists,
    forall,
    implies,
)
from repro.logic.parser import parse_formula
from repro.trees import parse_term

X, Y, Z = NVar("x"), NVar("y"), NVar("z")

#: Hand-built formulas covering every connective/quantifier path, in
#: particular shapes outside FO(∃*): ∀ in the middle, → under
#: quantifiers, ¬ over quantifiers, vacuous binding.
FORMULAS = [
    # sentences
    forall(X, implies(Leaf(X), exists(Y, Desc(Y, X)))),
    exists(X, forall(Y, implies(Edge(X, Y), Label("σ", Y)))),
    Not(exists(X, conj(Root(X), Leaf(X)))),
    forall([X, Y], implies(conj(Leaf(X), Leaf(Y)), ValEq("a", X, "a", Y))),
    exists(X, conj(Label("δ", X), Not(forall(Y, implies(Edge(X, Y), Leaf(Y)))))),
    forall(X, disj(Root(X), exists(Y, Edge(Y, X)))),
    # vacuous quantification (Dom(t) is never empty)
    forall(X, exists(Y, Root(Y))),
    exists(X, tree_fo.TrueF()),
    # one free variable
    conj(Label("σ", X), exists(Y, conj(Edge(X, Y), Label("δ", Y)))),
    forall(Y, implies(Desc(X, Y), ValEq("a", X, "a", Y))),
    Not(exists(Y, Succ(X, Y))),
    implies(Leaf(X), ValConst("a", X, 1)),
    # two free variables
    conj(Desc(X, Y), Not(Leaf(Y))),
    implies(SibLess(X, Y), exists(Z, conj(Edge(Z, X), Edge(Z, Y)))),
    disj(NodeEq(X, Y), Desc(X, Y), Desc(Y, X)),
    forall(Z, implies(Desc(X, Z), Not(SibLess(Z, Y)))),
    # repeated-variable atoms
    conj(Edge(X, X), Label("σ", X)),
    disj(NodeEq(X, X), Leaf(X)),
    exists(X, Desc(X, X)),
    exists(X, ValEq("a", X, "a", X)),
    exists(X, Succ(X, X)),
    exists(X, SibLess(X, X)),
]


def _order(formula):
    return sorted(tree_fo.free_variables(formula), key=lambda v: v.name)


@pytest.mark.parametrize("formula", FORMULAS, ids=lambda f: repr(f)[:60])
def test_relations_match_reference_on_family(formula):
    for tree in tree_family(count=8, max_size=10):
        order = _order(formula)
        assert fast_fo.satisfying_assignments(
            formula, tree, order
        ) == tree_fo.satisfying_assignments(formula, tree, order)


def test_evaluate_matches_reference_pointwise(sigma_delta_tree):
    tree = sigma_delta_tree
    formula = forall(Y, implies(Desc(X, Y), ValEq("a", X, "a", Y)))
    for u in tree.nodes:
        env = {X: u}
        assert fast_fo.evaluate(formula, tree, env) == tree_fo.evaluate(
            formula, tree, env
        )


def test_evaluate_requires_all_free_variables(sigma_delta_tree):
    with pytest.raises(TreeFormulaError):
        fast_fo.evaluate(Desc(X, Y), sigma_delta_tree, {X: ()})


def test_evaluate_rejects_foreign_nodes(sigma_delta_tree):
    with pytest.raises(ValueError):
        fast_fo.evaluate(Leaf(X), sigma_delta_tree, {X: (9, 9, 9)})


def test_satisfying_assignments_checks_variable_order(sigma_delta_tree):
    with pytest.raises(TreeFormulaError):
        fast_fo.satisfying_assignments(Desc(X, Y), sigma_delta_tree, [X])


def test_unknown_attribute_raises_like_reference(sigma_delta_tree):
    formula = exists(X, ValConst("missing", X, 1))
    with pytest.raises(ValueError):
        fast_fo.satisfying_assignments(formula, sigma_delta_tree, [])


def test_bottom_equals_bottom_in_valeq():
    # ⊥ = ⊥ is true in the reference semantics; the engine's
    # value-grouped join must keep the ⊥ group.
    tree = parse_term("σ(δ, δ)")
    tree = tree.with_attribute("a", {(0,): 1})
    formula = conj(ValEq("a", X, "a", Y), Not(NodeEq(X, Y)))
    order = _order(formula)
    assert fast_fo.satisfying_assignments(
        formula, tree, order
    ) == tree_fo.satisfying_assignments(formula, tree, order)
    # (), (1,) both carry ⊥ and must pair up.
    assert ((), (1,)) in fast_fo.satisfying_assignments(formula, tree, order)


def test_select_matches_reference_convention(sigma_delta_tree):
    tree = sigma_delta_tree
    # y free: ordinary selection in document order.
    formula = conj(Desc(X, Y), Label("σ", Y))
    assert fast_fo.select(formula, tree, ()) == tuple(
        v for v in tree.nodes if tree.descendant((), v) and tree.label(v) == "σ"
    )
    # y not free and satisfied: every node.
    assert fast_fo.select(Root(X), tree, ()) == tree.nodes
    # y not free and falsified: nothing.
    assert fast_fo.select(Leaf(X), tree, ()) == ()
    # extra free variables are rejected.
    with pytest.raises(TreeFormulaError):
        fast_fo.select(Desc(Z, Y), tree, ())


def test_relation_of_decodes_node_addresses(sigma_delta_tree):
    variables, rows = fast_fo.relation_of(
        Edge(X, Y), sigma_delta_tree
    )
    assert set(variables) == {X, Y}
    k = variables.index(X)
    for row in rows:
        assert sigma_delta_tree.edge(row[k], row[1 - k])
    assert len(rows) == sigma_delta_tree.size - 1


def test_parsed_formula_agrees(sigma_delta_tree):
    sentence = parse_formula(
        "forall x (O_δ(x) -> exists y (E(x, y) & val_a(y) = 3))"
    )
    assert fast_fo.evaluate(sentence, sigma_delta_tree) == tree_fo.evaluate(
        sentence, sigma_delta_tree
    )


def test_miniscoping_handles_mixed_scopes():
    # ∃y (P(x) ∧ Q(y)): the x-conjunct must be pulled out, not joined
    # into the y-projection.
    tree = parse_term("σ(δ(σ), σ)")
    formula = exists(Y, conj(Label("σ", X), Label("δ", Y)))
    order = _order(formula)
    assert fast_fo.satisfying_assignments(
        formula, tree, order
    ) == tree_fo.satisfying_assignments(formula, tree, order)
    # ∀y (P(x) ∨ Q(y)) — the dual pull-out.
    formula = forall(Y, disj(Label("σ", X), Leaf(Y)))
    order = _order(formula)
    assert fast_fo.satisfying_assignments(
        formula, tree, order
    ) == tree_fo.satisfying_assignments(formula, tree, order)
