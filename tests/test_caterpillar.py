"""Caterpillar expressions ([7]): parsing, walking, relations."""

import pytest

from repro.caterpillar import (
    CaterpillarSyntaxError,
    Epsilon,
    LabelTest,
    Move,
    Star,
    compile_caterpillar,
    matches,
    parse_caterpillar,
    relation,
    walk,
)
from repro.caterpillar import Test as CatTest
from repro.trees import leaves, parse_term, random_tree
from repro.xpath import parse_xpath, select


@pytest.fixture
def doc():
    return parse_term("a(b(c, d), e(f))")


# -- parsing ----------------------------------------------------------------------


def test_parse_atoms():
    assert parse_caterpillar("up") == Move("up")
    assert parse_caterpillar("isLeaf") == CatTest("isLeaf")
    assert parse_caterpillar("<dept>") == LabelTest("dept")
    assert parse_caterpillar("eps") == Epsilon()


def test_parse_postfix():
    assert isinstance(parse_caterpillar("down*"), Star)
    plus_expr = parse_caterpillar("down+")
    assert repr(plus_expr) == "down down*"
    opt = parse_caterpillar("down?")
    assert "ε" in repr(opt)


def test_parse_precedence():
    # sequencing binds tighter than alternation
    expr = parse_caterpillar("up | down right")
    text = repr(expr)
    assert "up" in text and "down right" in text


@pytest.mark.parametrize("bad", ["", "side", "(up", "<a", "up )", "*", "| up"])
def test_parse_errors(bad):
    with pytest.raises(CaterpillarSyntaxError):
        parse_caterpillar(bad)


# -- walking -----------------------------------------------------------------------


def test_walk_moves(doc):
    assert walk(parse_caterpillar("down"), doc, ()) == ((0,),)
    assert walk(parse_caterpillar("down right"), doc, ()) == ((1,),)
    assert walk(parse_caterpillar("up"), doc, (0, 1)) == ((0,),)
    assert walk(parse_caterpillar("left"), doc, (0, 1)) == ((0, 0),)
    assert walk(parse_caterpillar("up"), doc, ()) == ()


def test_walk_tests(doc):
    assert walk(parse_caterpillar("isRoot"), doc, ()) == ((),)
    assert walk(parse_caterpillar("isRoot"), doc, (0,)) == ()
    assert walk(parse_caterpillar("isLeaf"), doc, (0, 0)) == ((0, 0),)
    assert walk(parse_caterpillar("<b>"), doc, (0,)) == ((0,),)
    assert walk(parse_caterpillar("<z>"), doc, (0,)) == ()


def test_walk_to_root_from_anywhere(doc):
    expr = parse_caterpillar("up* isRoot")
    for u in doc.nodes:
        assert walk(expr, doc, u) == ((),)


def test_walk_all_leaves(doc):
    expr = parse_caterpillar("(down | right)* isLeaf")
    assert walk(expr, doc, ()) == leaves(doc)


def test_walk_last_child(doc):
    expr = parse_caterpillar("down right* isLast")
    assert walk(expr, doc, ()) == ((1,),)
    assert walk(expr, doc, (0,)) == ((0, 1),)


def test_star_includes_epsilon(doc):
    assert () in set(walk(parse_caterpillar("up*"), doc, ()))
    assert walk(parse_caterpillar("eps"), doc, (0,)) == ((0,),)


def test_walk_agrees_with_xpath_descendants():
    """(down (right)*)+ reaches exactly the proper descendants."""
    cat = parse_caterpillar("(down right*)+")
    for seed in range(6):
        t = random_tree(10, alphabet=("a", "b"), seed=seed)
        xp = parse_xpath(".//*")
        for u in t.nodes:
            got = set(walk(cat, t, u))
            want = {v for v in t.nodes if t.descendant(u, v)}
            assert got == want, (seed, u)


def test_relation_and_matches(doc):
    rel = relation(parse_caterpillar("down"), doc)
    assert ((), (0,)) in rel
    assert ((0,), (0, 0)) in rel
    assert (((0, 0), (0,))) not in rel
    assert matches(parse_caterpillar("down down isLeaf"), doc)
    assert not matches(parse_caterpillar("down down down"), doc)


def test_nfa_is_small():
    nfa = compile_caterpillar(parse_caterpillar("(down | right)* isLeaf"))
    assert nfa.state_count < 20


def test_caterpillar_expresses_even_spine():
    """(down down)* isLeaf from the root: the leftmost spine has even
    length — caterpillars count modulo constants, like all walkers."""
    expr = parse_caterpillar("(down down)* isLeaf")
    even_chain = parse_term("a(a(a))")     # spine of 3 nodes: 2 moves
    odd_chain = parse_term("a(a)")
    assert matches(expr, even_chain)
    assert not matches(expr, odd_chain)
