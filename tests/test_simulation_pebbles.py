"""Pebble machine and pebble arithmetic (Theorem 7.1(1) machinery)."""

import pytest

from repro.simulation.ids import (
    has_unique_ids,
    id_of,
    node_with_id,
    require_unique_ids,
    with_ids,
    IdError,
)
from repro.simulation.pebbles import PebbleArithmetic, PebbleError, PebbleMachine
from repro.trees import chain_tree, full_tree, inorder, random_tree


# -- IDs ---------------------------------------------------------------------------


def test_with_ids_unique():
    t = with_ids(random_tree(15, seed=0))
    assert has_unique_ids(t)
    require_unique_ids(t)  # must not raise


def test_plain_tree_has_no_ids():
    t = random_tree(5, seed=0)
    assert not has_unique_ids(t)
    with pytest.raises(IdError):
        require_unique_ids(t)


def test_id_lookup_roundtrip():
    t = with_ids(random_tree(9, seed=1))
    for u in t.nodes:
        assert node_with_id(t, id_of(t, u)) == u
    with pytest.raises(IdError):
        node_with_id(t, "nope")


# -- in-order navigation ----------------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_inorder_succ_pred_match_reference(seed):
    t = random_tree(1 + seed * 2, seed=seed)
    order = list(inorder(t))
    m = PebbleMachine(t)
    for i, u in enumerate(order):
        m.position = u
        moved = m.inorder_succ()
        if i + 1 < len(order):
            assert moved and m.position == order[i + 1]
        else:
            assert not moved and m.position == u
        m.position = u
        moved = m.inorder_pred()
        if i > 0:
            assert moved and m.position == order[i - 1]
        else:
            assert not moved and m.position == u


def test_pebble_place_and_compare():
    t = chain_tree(4)
    m = PebbleMachine(t)
    m.place("p")
    assert m.here("p")
    m.down()
    assert not m.here("p")
    m.place("q")
    assert not m.same("p", "q")
    m.up()
    assert m.same("p", "p")


def test_unplaced_pebble_raises():
    m = PebbleMachine(chain_tree(2))
    with pytest.raises(PebbleError):
        m.here("ghost")


def test_goto_charges_path_length():
    t = full_tree(3, 2)
    m = PebbleMachine(t)
    m.position = (0, 0, 0)
    m.place("deep")
    m.position = (1, 1, 1)
    before = m.steps
    m.goto("deep")
    assert m.position == (0, 0, 0)
    assert m.steps > before


# -- arithmetic ----------------------------------------------------------------------------


@pytest.fixture(params=[chain_tree(13), full_tree(2, 3), random_tree(11, seed=4)],
                ids=["chain13", "full-2-3", "random11"])
def arith(request):
    m = PebbleMachine(request.param)
    return PebbleArithmetic(m)


def test_zero_and_is_zero(arith):
    arith.zero("p")
    assert arith.value_of("p") == 0
    assert arith.is_zero("p")
    arith.succ("p")
    assert not arith.is_zero("p")


def test_succ_pred_cover_range(arith):
    n = arith.m.tree.size
    arith.zero("p")
    for expected in range(1, n):
        assert arith.succ("p")
        assert arith.value_of("p") == expected
    assert not arith.succ("p")  # overflow
    for expected in range(n - 2, -1, -1):
        assert arith.pred("p")
        assert arith.value_of("p") == expected
    assert not arith.pred("p")  # underflow


def test_halve_all_values(arith):
    n = arith.m.tree.size
    for j in range(n):
        arith.set_value("p", j)
        parity = arith.halve("p")
        assert (arith.value_of("p"), parity) == (j // 2, j % 2), j


def test_parity_preserves_value(arith):
    arith.set_value("p", 5)
    assert arith.parity("p") == 1
    assert arith.value_of("p") == 5


def test_add_subtract(arith):
    n = arith.m.tree.size
    arith.set_value("a", 3)
    arith.set_value("b", 4)
    assert arith.add("a", "b")
    assert arith.value_of("a") == 7
    assert arith.value_of("b") == 4  # preserved
    assert arith.subtract("a", "b")
    assert arith.value_of("a") == 3
    arith.set_value("a", n - 1)
    arith.set_value("b", 1)
    assert not arith.add("a", "b")  # overflow reported
    arith.set_value("a", 0)
    assert not arith.subtract("a", "b")  # underflow reported


def test_power_of_two(arith):
    n = arith.m.tree.size
    for i in range(4):
        if 2**i >= n:
            break
        arith.set_value("i", i)
        assert arith.power_of_two("i", "r")
        assert arith.value_of("r") == 2**i


def test_bit_extraction(arith):
    n = arith.m.tree.size
    j = min(11, n - 1)
    arith.set_value("n", j)
    for i in range(4):
        if i >= n:
            break
        arith.set_value("i", i)
        assert arith.bit("n", "i") == (j >> i) & 1
        assert arith.value_of("n") == j  # preserved


def test_add_power_of_two(arith):
    n = arith.m.tree.size
    if n < 12:
        pytest.skip("needs at least 12 nodes")
    arith.set_value("t", 9)
    arith.set_value("i", 1)
    assert arith.add_power_of_two("t", "i", +1)
    assert arith.value_of("t") == 11
    assert arith.add_power_of_two("t", "i", -1)
    assert arith.value_of("t") == 9


def test_set_value_bounds(arith):
    with pytest.raises(PebbleError):
        arith.set_value("p", arith.m.tree.size)
