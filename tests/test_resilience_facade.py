"""The facade's ``engine="resilient"`` mode, the resilience log, the
exception taxonomy, and the parse-failure/LRU regression."""

import pytest

from repro.automata.examples import all_leaves_same_twrl
from repro.automata.runner import ExecutionError, FuelExhausted
from repro.caterpillar.parser import CaterpillarSyntaxError
from repro.logic.parser import FormulaSyntaxError
from repro.machines.xtm import XTMError, XTMFuelExhausted
from repro.queries import TreeDatabase
from repro.queries.facade import ENGINES
from repro.resilience import (
    EngineError,
    Fault,
    FaultInjector,
    InjectedFault,
    ParseError,
    ReproError,
    ResourceExhausted,
    broken_internals,
)
from repro.trees.parser import TermSyntaxError
from repro.trees.xmlio import XmlSyntaxError
from repro.xpath.parser import XPathSyntaxError

TERM = (
    'catalog(dept[name="db"](item[price=30, cur="EUR"], '
    'item[price=2, cur="EUR"]), dept(item[cur="USD"]))'
)


@pytest.fixture
def db():
    return TreeDatabase.from_term(TERM)


# -- taxonomy ----------------------------------------------------------------------


def test_parser_errors_are_parse_errors():
    for cls in (
        XPathSyntaxError,
        CaterpillarSyntaxError,
        FormulaSyntaxError,
        TermSyntaxError,
        XmlSyntaxError,
    ):
        assert issubclass(cls, ParseError)
        assert issubclass(cls, ReproError)
        assert issubclass(cls, ValueError)  # pre-taxonomy callers


def test_fuel_exhaustion_is_unified():
    # runner fuel: still an ExecutionError, now also ResourceExhausted.
    exc = FuelExhausted("step budget 9 exhausted (likely divergence)",
                        steps=10, limit=9)
    assert isinstance(exc, ExecutionError)
    assert isinstance(exc, ResourceExhausted)
    assert (exc.steps, exc.limit) == (10, 9)
    # xTM fuel: still an XTMError (a ValueError), same structured fields,
    # same historical message.
    exc = XTMFuelExhausted("fuel 5 exhausted", steps=6, limit=5)
    assert isinstance(exc, XTMError)
    assert isinstance(exc, ResourceExhausted)
    assert str(exc) == "fuel 5 exhausted"
    assert (exc.steps, exc.limit) == (6, 5)


def test_injected_fault_is_engine_error():
    assert issubclass(InjectedFault, EngineError)
    assert issubclass(EngineError, ReproError)


# -- the resilient engine ----------------------------------------------------------


def test_resilient_is_a_known_engine(db):
    assert "resilient" in ENGINES
    with pytest.raises(ValueError):
        db.xpath("catalog", engine="turbo")


def test_resilient_agrees_on_the_happy_path(db):
    assert db.xpath("catalog//item", engine="resilient") == \
        db.xpath("catalog//item", engine="reference")
    assert db.ask("exists x O_item(x)", engine="resilient") is True
    automaton = all_leaves_same_twrl("cur")
    assert db.run_automaton(automaton, engine="resilient") == \
        db.run_automaton(automaton, engine="reference")
    info = db.resilience_info()
    assert info["fast_successes"] == info["calls"] == 3
    assert info["fallbacks"] == info["failures"] == 0
    assert info["last_error"] is None


def test_injected_fault_triggers_fallback_with_identical_answer(db):
    expected = db.caterpillar("(down | right)* isLeaf", engine="reference")
    db._fault_injector = FaultInjector(Fault(at_checkpoint=1, kind="error"))
    try:
        got = db.caterpillar("(down | right)* isLeaf", engine="resilient")
    finally:
        db._fault_injector = None
    assert got == expected
    info = db.resilience_info()
    assert info["fallbacks"] == 1
    assert "InjectedFault" in info["last_error"]
    assert info["per_operation"]["caterpillar"]["fallbacks"] == 1


def test_injected_stall_triggers_fallback(db):
    expected = db.xpath("//item", engine="reference")
    db._fault_injector = FaultInjector(Fault(at_checkpoint=1, kind="stall"))
    try:
        got = db.xpath("//item", engine="resilient")
    finally:
        db._fault_injector = None
    assert got == expected
    assert db.resilience_info()["fallbacks"] == 1


def test_broken_internals_fallback(db):
    # A fast engine dying before its first checkpoint still falls back.
    from repro.engine import fo as fast_fo
    from repro.logic.parser import parse_sentence

    sentence = parse_sentence("forall x (O_item(x) -> leaf(x))")
    expected = db.holds(sentence, engine="reference")
    with broken_internals(fast_fo, "evaluate"):
        assert db.holds(sentence, engine="resilient") == expected
    assert db.resilience_info()["fallbacks"] == 1


def test_parse_errors_never_fall_back(db):
    with pytest.raises(XPathSyntaxError):
        db.xpath("//(", engine="resilient")
    with pytest.raises(CaterpillarSyntaxError):
        db.caterpillar("down (", engine="resilient")
    info = db.resilience_info()
    assert info["calls"] == 0  # nothing recorded: the caller erred


def test_resilience_clear(db):
    db.xpath("catalog", engine="resilient")
    assert db.resilience_info()["calls"] == 1
    db.resilience_clear()
    assert db.resilience_info()["calls"] == 0


# -- LRU poison regression ----------------------------------------------------------


def test_failed_xpath_parse_leaves_cache_untouched(db):
    db.xpath("catalog//item")  # one genuine miss
    before = db.cache_info()
    for _ in range(3):
        with pytest.raises(XPathSyntaxError):
            db.xpath("//(")
    assert db.cache_info() == before
    # The good expression is still cached: a hit, not a re-parse.
    db.xpath("catalog//item")
    assert db.cache_info().hits == before.hits + 1


def test_failed_caterpillar_parse_leaves_cache_untouched(db):
    db.caterpillar("up* isRoot")
    before = db.caterpillar_cache_info()
    for _ in range(3):
        with pytest.raises(CaterpillarSyntaxError):
            db.caterpillar("down (")
    assert db.caterpillar_cache_info() == before
    db.caterpillar("up* isRoot")
    assert db.caterpillar_cache_info().hits == before.hits + 1
