"""Property-based tests (hypothesis) on core data structures and
invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.hypersets import decode, encode
from repro.hypersets.hyperset import Hyperset
from repro.logic.types import StringStructure, type_summary
from repro.store import Relation, StoreSchema
from repro.trees import (
    Tree,
    delim,
    format_term,
    from_xml,
    inorder,
    parse_term,
    postorder,
    preorder,
    string_tree,
    to_xml,
    tree_string,
    undelim,
)
from repro.trees.node import NodeId


# -- strategies --------------------------------------------------------------------

labels = st.sampled_from(["a", "b", "σ", "δ", "x1"])
values = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.text(alphabet="abcxyz ", min_size=0, max_size=6),
)


@st.composite
def trees(draw, max_nodes=12):
    """Random attributed trees via sequential attachment."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    label_list = draw(st.lists(labels, min_size=n, max_size=n))
    attr_values = draw(st.lists(values, min_size=n, max_size=n))
    nodes = [()]
    tree_labels = {(): label_list[0]}
    child_count = {(): 0}
    for i in range(1, n):
        parent = nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]
        node = parent + (child_count[parent],)
        child_count[parent] += 1
        child_count[node] = 0
        nodes.append(node)
        tree_labels[node] = label_list[i]
    attrs = {"a": dict(zip(nodes, attr_values))}
    return Tree(tree_labels, attrs, ["a"])


data_strings = st.lists(
    st.one_of(st.integers(min_value=3, max_value=9),
              st.sampled_from(["u", "v"])),
    min_size=1, max_size=7,
)


@st.composite
def hypersets(draw, level=2):
    if level == 1:
        vals = draw(st.lists(st.sampled_from(["p", "q", "r"]), max_size=3))
        return Hyperset.of_values(vals)
    members = draw(
        st.lists(hypersets(level=level - 1), max_size=3)
    )
    return Hyperset(level, frozenset(members))


# -- tree invariants --------------------------------------------------------------------


@given(trees())
@settings(max_examples=60, deadline=None)
def test_term_roundtrip(t):
    assert parse_term(format_term(t), attributes=["a"]) == t


@given(trees())
@settings(max_examples=60, deadline=None)
def test_xml_roundtrip(t):
    assert from_xml(to_xml(t), attributes=["a"]) == t


@given(trees())
@settings(max_examples=60, deadline=None)
def test_delim_roundtrip(t):
    assert undelim(delim(t)) == t


@given(trees())
@settings(max_examples=60, deadline=None)
def test_traversals_are_permutations(t):
    reference = sorted(t.nodes)
    assert sorted(preorder(t)) == reference
    assert sorted(postorder(t)) == reference
    assert sorted(inorder(t)) == reference


@given(trees())
@settings(max_examples=60, deadline=None)
def test_navigation_inverses(t):
    for u in t.nodes:
        for child in t.children(u):
            assert t.parent(child) == u
        right = t.right_sibling(u)
        if right is not None:
            assert t.left_sibling(right) == u


@given(trees())
@settings(max_examples=40, deadline=None)
def test_descendant_is_strict_partial_order(t):
    for u in t.nodes:
        assert not t.descendant(u, u)
        for v in t.nodes:
            if t.descendant(u, v):
                assert not t.descendant(v, u)


# -- strings ---------------------------------------------------------------------------


@given(data_strings)
@settings(max_examples=60, deadline=None)
def test_string_tree_roundtrip(values_):
    assert tree_string(string_tree(values_)) == values_


@given(data_strings)
@settings(max_examples=30, deadline=None)
def test_type_summary_reflexive(values_):
    s = StringStructure(tuple(values_))
    assert type_summary(s, (), 2) == type_summary(s, (), 2)


@given(data_strings, data_strings)
@settings(max_examples=30, deadline=None)
def test_type_equivalence_symmetric(a, b):
    sa, sb = StringStructure(tuple(a)), StringStructure(tuple(b))
    left = type_summary(sa, (), 2) == type_summary(sb, (), 2)
    right = type_summary(sb, (), 2) == type_summary(sa, (), 2)
    assert left == right


# -- relations ----------------------------------------------------------------------------

rows = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=8
)


@given(rows, rows)
@settings(max_examples=60, deadline=None)
def test_relation_union_commutes(a, b):
    ra, rb = Relation(2, a), Relation(2, b)
    assert ra.union(rb) == rb.union(ra)


@given(rows, rows)
@settings(max_examples=60, deadline=None)
def test_relation_difference_laws(a, b):
    ra, rb = Relation(2, a), Relation(2, b)
    assert ra.difference(rb).intersection(rb) == Relation(2, [])
    assert ra.difference(rb).union(ra.intersection(rb)) == ra


@given(rows)
@settings(max_examples=60, deadline=None)
def test_relation_projection_columns(a):
    r = Relation(2, a)
    swapped = r.project([1, 0]).project([1, 0])
    assert swapped == r


@given(rows)
@settings(max_examples=40, deadline=None)
def test_store_set_get(a):
    schema = StoreSchema([2, 1])
    store = schema.initial_store()
    r = Relation(2, a)
    assert store.set(1, r).get(1) == r
    assert store.set(1, r).get(2) == store.get(2)


# -- hypersets --------------------------------------------------------------------------------


@given(hypersets(level=1))
@settings(max_examples=60, deadline=None)
def test_hyperset_encode_decode_level1(h):
    assert decode(encode(h), 1) == h


@given(hypersets(level=2))
@settings(max_examples=60, deadline=None)
def test_hyperset_encode_decode_level2(h):
    assert decode(encode(h), 2) == h


@given(hypersets(level=3))
@settings(max_examples=40, deadline=None)
def test_hyperset_encode_decode_level3(h):
    assert decode(encode(h), 3) == h
