"""Normal-form transformation tests (evaluation-preserving)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from tests.test_properties import trees

from repro.logic import evaluate, parse_formula
from repro.logic import tree_fo as T
from repro.logic.normalform import (
    expressible_in_exists_star,
    is_prenex,
    negation_normal_form,
    prefix_of,
    prenex_normal_form,
    rename_apart,
)
from repro.trees import parse_term

x, y, z = T.NVar("x"), T.NVar("y"), T.NVar("z")

FORMULAS = [
    "forall x (O_a(x) -> exists y E(x, y))",
    "~exists x (leaf(x) & O_b(x))",
    "exists x ~forall y (E(x, y) -> val_a(y) = 1)",
    "forall x (root(x) <-> ~exists y E(y, x))",
    "exists x (O_a(x) & ~(O_b(x) | leaf(x)))",
    "forall x exists y (x << y | x = y)",
    "~(true -> false)",
    "exists x (val_a(x) = 1) & forall y (leaf(y) -> val_a(y) = 2)",
]


def no_implies_and_atomic_negation(formula):
    for sub in T.subformulas(formula):
        if isinstance(sub, T.Implies):
            return False
        if isinstance(sub, T.Not) and not T.is_atom(sub.inner):
            return False
    return True


@pytest.mark.parametrize("text", FORMULAS)
def test_nnf_shape(text):
    nnf = negation_normal_form(parse_formula(text))
    assert no_implies_and_atomic_negation(nnf)


@pytest.mark.parametrize("text", FORMULAS)
def test_pnf_shape(text):
    pnf = prenex_normal_form(parse_formula(text))
    assert is_prenex(pnf)


@given(trees(), st.sampled_from(FORMULAS))
@settings(max_examples=60, deadline=None)
def test_transformations_preserve_truth(t, text):
    original = parse_formula(text)
    for transformed in (
        negation_normal_form(original),
        rename_apart(original),
        prenex_normal_form(original),
    ):
        assert evaluate(transformed, t) == evaluate(original, t), text


def test_rename_apart_removes_shadowing():
    shadowed = T.Exists(x, T.And((T.Label("a", x),
                                  T.Exists(x, T.Label("b", x)))))
    renamed = rename_apart(shadowed)
    bound = [v for _k, v in _all_quantified(renamed)]
    assert len(bound) == len(set(bound))


def _all_quantified(formula):
    for sub in T.subformulas(formula):
        if isinstance(sub, (T.Exists, T.Forall)):
            yield ("q", sub.var)


def test_rename_apart_keeps_free_variables():
    formula = T.Exists(y, T.Edge(x, y))
    renamed = rename_apart(formula)
    assert T.free_variables(renamed) == frozenset({x})


def test_prefix_of():
    pnf = prenex_normal_form(
        parse_formula("forall x exists y (E(x, y))")
    )
    kinds = [k for k, _v in prefix_of(pnf)]
    assert kinds == ["forall", "exists"]


def test_negation_swaps_quantifiers():
    pnf = prenex_normal_form(parse_formula("~exists x leaf(x)"))
    kinds = [k for k, _v in prefix_of(pnf)]
    assert kinds == ["forall"]


def test_expressible_in_exists_star():
    assert expressible_in_exists_star(
        parse_formula("exists x y (E(x, y) & O_a(x))")
    )
    # ¬∀ collapses to ∃¬: still existential
    assert expressible_in_exists_star(
        parse_formula("~forall x O_a(x)")
    )
    assert not expressible_in_exists_star(
        parse_formula("forall x O_a(x)")
    )


def test_pnf_of_fragment_formulas_reusable_as_selectors():
    from repro.logic.exists_star import ExistsStarQuery

    formula = parse_formula("~forall z (~E(x, z) | ~(z = y))")  # ≡ E(x,y)-ish
    pnf = prenex_normal_form(formula)
    query = ExistsStarQuery(pnf, x, y)
    t = parse_term("a(b, c)")
    assert query.select(t, ()) == ((0,), (1,))
