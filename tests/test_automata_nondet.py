"""Nondeterministic TWA tests (the open-question model)."""

import pytest

from tests.conftest import tree_family

from repro.automata.nondet import (
    NTWA,
    NTWAError,
    NTWRule,
    at_least_two_leaves_spec,
    at_least_two_leaves_with_label,
    guess_leaf_with_label,
    ntwa_accepts,
    reachable_configurations,
)
from repro.trees import all_trees, parse_term, random_tree

FAMILY = tree_family(count=12, max_size=12, attributes=())


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_guess_leaf(tree):
    want = any(
        tree.is_leaf(u) and tree.label(u) == "δ" for u in tree.nodes
    )
    assert ntwa_accepts(guess_leaf_with_label("δ"), tree) == want


@pytest.mark.parametrize("tree", FAMILY, ids=lambda t: f"n{t.size}")
def test_two_leaves(tree):
    automaton = at_least_two_leaves_with_label("δ")
    assert ntwa_accepts(automaton, tree) == at_least_two_leaves_spec("δ")(tree)


def test_two_leaves_exhaustive():
    automaton = at_least_two_leaves_with_label("δ")
    spec = at_least_two_leaves_spec("δ")
    for tree in all_trees(4, ("σ", "δ")):
        assert ntwa_accepts(automaton, tree) == spec(tree), tree


def test_two_leaves_fixed():
    automaton = at_least_two_leaves_with_label("δ")
    assert ntwa_accepts(automaton, parse_term("σ(δ, δ)"))
    assert ntwa_accepts(automaton, parse_term("σ(σ(δ), δ)"))
    assert ntwa_accepts(automaton, parse_term("σ(δ, σ(δ))"))
    assert not ntwa_accepts(automaton, parse_term("σ(δ)"))
    assert not ntwa_accepts(automaton, parse_term("δ"))
    # an internal δ does not count: leaves only
    assert not ntwa_accepts(automaton, parse_term("σ(δ(σ), δ(σ))"))


def test_configuration_graph_is_linear():
    automaton = guess_leaf_with_label("δ")
    for n in (5, 10, 20):
        tree = random_tree(n, alphabet=("σ", "δ"), seed=n)
        assert reachable_configurations(automaton, tree) <= n * len(
            automaton.states
        )


def test_acceptance_from_inner_start():
    tree = parse_term("σ(σ(δ), σ)")
    automaton = guess_leaf_with_label("δ")
    assert ntwa_accepts(automaton, tree, start=(0,))
    assert not ntwa_accepts(automaton, tree, start=(1,))


def test_dead_automaton_rejects():
    automaton = NTWA(
        states=frozenset({"q", "f"}),
        initial="q",
        finals=frozenset({"f"}),
        rules=(),
    )
    assert not ntwa_accepts(automaton, parse_term("a"))


def test_initial_final_accepts_immediately():
    automaton = NTWA(
        states=frozenset({"q"}),
        initial="q",
        finals=frozenset({"q"}),
        rules=(),
    )
    assert ntwa_accepts(automaton, parse_term("a"))


def test_validation():
    with pytest.raises(NTWAError):
        NTWA(frozenset({"q"}), "missing", frozenset(), ())
    with pytest.raises(NTWAError):
        NTWRule("q", "p", "sideways")
    with pytest.raises(NTWAError):
        NTWA(frozenset({"q"}), "q", frozenset(),
             (NTWRule("q", "ghost"),))
