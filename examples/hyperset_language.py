#!/usr/bin/env python3
"""The hyperset language L^m (Section 4) hands-on.

Shows the tower structure of hypersets, the paper's string encodings,
the generated FO sentences of Lemma 4.2 for m = 1, 2, 3, and how fast
exp_m(|D|) explodes compared to everything a protocol can say.

Run:  python examples/hyperset_language.py
"""

import itertools
import random

from repro.hypersets import (
    Hyperset,
    all_hypersets,
    count_hypersets,
    decode,
    encode,
    in_lm,
    lm_formula,
    random_hyperset,
)
from repro.logic import evaluate
from repro.trees.strings import HASH, string_tree


def main() -> None:
    print("=== building hypersets ===")
    a_b = Hyperset.of_values(["a", "b"])
    nested = Hyperset.of_sets([a_b, Hyperset.of_values(["a"])])
    deep = Hyperset.of_sets([nested])
    for h in (a_b, nested, deep):
        word = encode(h)
        assert decode(word, h.level) == h
        print(f"  level {h.level}: {h!r}")
        print(f"    encodes as {word}")

    print()
    print("=== how many are there?  exp_m(|D|) ===")
    for d in (2, 3):
        for m in (1, 2):
            exact = len(all_hypersets(m, list("ab" if d == 2 else "abc")))
            formula = count_hypersets(m, d)
            assert exact == formula
            print(f"  m={m}, |D|={d}: {exact} hypersets (= exp_{m}({d}))")
    print(f"  m=3, |D|=3: {count_hypersets(3, 3)} — already astronomical")

    print()
    print("=== the FO sentence of Lemma 4.2, validated ===")
    for m, sigma in [(1, (1, "a", "b", HASH)), (2, (1, 2, "a", HASH))]:
        sentence = lm_formula(m)
        checked = mismatches = 0
        for length in range(1, 6):
            for word in itertools.product(sigma, repeat=length):
                if word.count(HASH) != 1:
                    continue
                checked += 1
                if in_lm(list(word), m) != evaluate(sentence, string_tree(list(word))):
                    mismatches += 1
        print(f"  m={m}: FO sentence vs decoder on {checked} strings "
              f"-> {mismatches} mismatches")

    print()
    print("=== random deep equality checks (m = 3) ===")
    rng = random.Random(0)
    hits = 0
    for _ in range(10):
        f = random_hyperset(3, ["a", "b"], rng)
        g = random_hyperset(3, ["a", "b"], rng)
        word = encode(f) + [HASH] + encode(g)
        verdict = in_lm(word, 3)
        hits += verdict == (f == g)
    print(f"  decoder-vs-equality agreement: {hits}/10")


if __name__ == "__main__":
    main()
