#!/usr/bin/env python3
"""Quickstart: the public API in five minutes.

Builds an attributed tree (the paper's data model for XML), queries it
with XPath and first-order logic, runs tree-walking automata from each
Definition 5.1 class, and shows the Section 7 evaluators.

Run:  python examples/quickstart.py
"""

from repro import TreeDatabase
from repro.automata import classify
from repro.automata.examples import (
    all_leaves_same_twrl,
    even_leaves_automaton,
    example_32,
    spine_constant_automaton,
)
from repro.logic import tree_fo as T
from repro.simulation import evaluate_memo


def main() -> None:
    # 1. A document: term syntax is `label[attr=value](children)`.
    db = TreeDatabase.from_term(
        'catalog(dept[name="db"](item[price=30, cur="EUR"],'
        '                        item[price=2,  cur="EUR"]),'
        '        dept[name="ai"](item[price=5,  cur="USD"]))'
    )
    print("document:", db)
    print(db.to_xml())

    # 2. XPath (the paper's fragment) and its FO(∃*) abstraction.
    print("items:", db.xpath("catalog//item"))
    print("depts with a cheap item:",
          db.xpath("catalog/dept[item]"))
    query = db.xpath_as_fo("catalog//item")
    print("compiled FO(∃*):", query)
    assert query.select(db.tree, ()) == db.xpath("catalog//item")

    # 3. First-order logic over τ_{Σ,A}.
    x, y = T.NVar("x"), T.NVar("y")
    two_currencies = T.exists(
        [x, y], T.Not(T.ValEq("cur", x, "cur", y))
    )
    print("uses two currencies?", db.holds(two_currencies))

    # 4. Tree-walking automata, one per class.
    for automaton in (
        even_leaves_automaton(),          # tw
        spine_constant_automaton("cur"),  # tw^l (look-ahead, single values)
        all_leaves_same_twrl("cur"),      # tw^{r,l} (atp + relations)
    ):
        verdict = db.run_automaton(automaton)
        print(f"{automaton.name:24} [{classify(automaton).value:8}] -> {verdict}")

    # 5. The paper's Example 3.2 runs on the *delimited* tree.
    doc = TreeDatabase.from_term(
        "σ(δ(σ[a=1], σ[a=1]), δ(σ[a=2]))"
    )
    print("Example 3.2 accepts:", doc.run_automaton(example_32(), delimited=True))

    # 6. The Theorem 7.1(2) evaluator agrees with the direct runner.
    memo = evaluate_memo(all_leaves_same_twrl("cur"), db.tree)
    print(f"memoised evaluation: accepted={memo.accepted}, "
          f"distinct subcomputations={memo.stats.distinct_starts}")


if __name__ == "__main__":
    main()
