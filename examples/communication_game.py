#!/usr/bin/env python3
"""Section 4 live: the communication protocol and the counting argument.

Plays the Lemma 4.5 two-party protocol for tw^{r,l} programs on split
strings ``f#g`` — party I holds f, party II holds g, and everything the
parties know about each other's half travels through the message
alphabet Δ (N-types, atp-requests, replies, configurations).  Then
reproduces the Lemma 4.6 counting crossover that makes the whole
construction a *lower bound*: for m large enough there are more
m-hypersets than dialogues, so some tw^{r,l} must confuse two of them —
Theorem 4.1, tw^{r,l} is not relationally complete.

Run:  python examples/communication_game.py
"""

from repro.hypersets import Hyperset, crossover, encode, in_lm, lm_formula
from repro.logic import evaluate
from repro.protocol import run_protocol
from repro.protocol.programs import atp_all_same, nested_constant_suffixes
from repro.trees.strings import HASH, string_tree


def play(program, f, g) -> None:
    result = run_protocol(program, f, g)
    print(f"  {program.name} on {f}#{g}: "
          f"{'ACCEPT' if result.accepted else 'REJECT'} "
          f"after {result.rounds} rounds")
    for sender, message in result.dialogue:
        print(f"    {sender:>2} ── {type(message).__name__:14} ──>")


def main() -> None:
    print("=== the Lemma 4.5 protocol, message by message ===")
    play(atp_all_same(), ["a", "a"], ["a"])
    play(atp_all_same(), ["a"], ["b"])
    play(nested_constant_suffixes(), ["a"], ["a", "a"])

    print()
    print("=== L^m is FO-definable (Lemma 4.2) ... ===")
    f = Hyperset.of_sets([Hyperset.of_values(["a"])])
    g_same = Hyperset.of_sets([Hyperset.of_values(["a"]),
                               Hyperset.of_values(["a"])])
    g_diff = Hyperset.of_sets([Hyperset.of_values(["b"])])
    sentence = lm_formula(2)
    for g in (g_same, g_diff):
        word = encode(f) + [HASH] + encode(g)
        by_decoder = in_lm(word, 2)
        by_fo = evaluate(sentence, string_tree(word))
        assert by_decoder == by_fo
        print(f"  {word} ∈ L²? {by_decoder}  (decoder and FO sentence agree)")

    print()
    print("=== ... but beats every protocol for m large (Lemma 4.6) ===")
    report = crossover(n=4, d=8, max_m=9)
    for m, hypersets, dialogues, win in report.rows:
        winner = "HYPERSETS (collision forced)" if win else "dialogues"
        print(f"  m={m}: #hypersets={hypersets!r:14} vs "
              f"#dialogues≤{dialogues!r:14} -> {winner}")
    print(f"  crossover at m = {report.crossover_m} "
          f"(the paper's safe bound: m > 6)")


if __name__ == "__main__":
    main()
