#!/usr/bin/env python3
"""An XMark-style auction site queried through every layer.

Generates the era-typical XML benchmark document (regions/items,
people, open auctions with bids), then answers the same kinds of
questions through the paper's formalisms:

* XPath (§2.3) and its FO(∃*) compilation for navigation;
* FO over τ_{Σ,A} for reference-chasing joins;
* a pebble tree automaton ([17]) for a data join;
* a caterpillar expression ([7]) for a walk;
* a tree-walking transducer (§8 extension) producing a report.

Run:  python examples/auction_site.py
"""

from repro import TreeDatabase
from repro.pebbleautomata import exists_equal_pair, run_pebble_automaton
from repro.transducer import (
    CopyAttr,
    TWTransducer,
    Template,
    apply_templates,
    out,
    run_transducer,
)
from repro.trees import auction_document, render_tree


def main() -> None:
    site = auction_document(people=5, items=6, bids_per_item=3, seed=42)
    db = TreeDatabase(site)
    print(render_tree(site, max_depth=2))
    print()

    # XPath navigation, cross-checked against its FO(∃*) compilation.
    bids = db.xpath("site//bid")
    assert bids == db.xpath_as_fo("site//bid").select(site, ())
    print(f"bids: {len(bids)}")

    # FO joins in text syntax: auctions reference existing items.
    assert db.ask(
        "forall x (O_auction(x) -> exists y (O_item(y) "
        "& val_itemref(x) = val_id(y)))"
    )
    print("referential integrity (auction.itemref -> item.id): OK")

    # Are two bids by the same person on the same auction?  The pebble
    # data join answers without logic: iterate a pebble over bids.
    same_bidder_twice = run_pebble_automaton(
        exists_equal_pair("personref"), site
    )
    print(f"some person bid twice anywhere: {same_bidder_twice.accepted} "
          f"({same_bidder_twice.steps} pebble steps)")

    # Caterpillar walk: from the root to the last bid of the first
    # auction — pure navigation, [7]-style.
    last_bid = db.caterpillar(
        "down right right down down right* isLast"
    )
    print(f"last bid of the first auction: {last_bid}")

    # Transducer: per-auction summary report.
    report = build_report_transducer()
    summary = run_transducer(report, site)
    print()
    print(render_tree(summary, max_depth=2))


def build_report_transducer() -> TWTransducer:
    bid_line = out("bid", {"by": CopyAttr("personref"),
                           "amount": CopyAttr("amount")})
    auction_line = out(
        "auction-summary",
        {"item": CopyAttr("itemref")},
        apply_templates("auction/bid", "bid"),
    )
    report = out(
        "auction-report", {},
        apply_templates("site/open_auctions/auction", "auction"),
    )
    return TWTransducer(
        templates=(
            Template("start", (report,), label="site"),
            Template("auction", (auction_line,), label="auction"),
            Template("bid", (bid_line,), label="bid"),
        ),
        initial="start",
        name="auction-report",
        missing_template="error",
    )


if __name__ == "__main__":
    main()
