#!/usr/bin/env python3
"""The Theorem 7.1 constructions, live.

(1) LOGSPACE^X ⊆ tw  — run a binary-counter xTM with its tape held
    entirely in *pebbles* (node numbers in the in-order numbering);
(2) tw^l ⊆ PTIME^X   — memoised configuration-graph evaluation, with
    the polynomial configuration bound printed;
(3) PSPACE^X ⊆ tw^r  — compile a linear-space xTM into an actual tw^r
    automaton whose store holds the tape as a relation, and run it;
(7.2) A = ∅          — eliminate the registers of a label-only tw^r.

Run:  python examples/complexity_simulations.py
"""

from repro.automata import accepts, run
from repro.automata.examples import all_leaves_same_twrl, spine_constant_automaton
from repro.machines import run_xtm
from repro.machines.programs import even_nodes_binary_xtm, unary_nodes_xtm
from repro.simulation import (
    compile_pspace_xtm_to_twr,
    evaluate_memo,
    simulate_logspace_xtm,
    twl_configuration_bound,
    with_ids,
)
from repro.trees import chain_tree, random_tree


def theorem_711() -> None:
    print("=== Theorem 7.1(1): a logspace xTM run on pebbles alone ===")
    machine = even_nodes_binary_xtm()
    for n in (5, 9, 14):
        tree = random_tree(n, seed=n)
        reference = run_xtm(machine, tree)
        pebbled = simulate_logspace_xtm(machine, tree)
        assert pebbled.accepted == reference.accepted
        print(
            f"  |t|={n:3}: verdict={pebbled.accepted!s:5} "
            f"xTM steps={reference.steps:4} tape cells={reference.space:2} "
            f"-> walker moves={pebbled.walker_steps:7} (tape never materialised)"
        )


def theorem_712() -> None:
    print("=== Theorem 7.1(2): tw^l evaluated in polynomially many configurations ===")
    automaton = spine_constant_automaton()
    for n in (6, 12, 18):
        tree = random_tree(n, attributes=("a",), value_pool=(1,), seed=n)
        result = evaluate_memo(automaton, tree)
        bound = twl_configuration_bound(automaton, tree)
        print(
            f"  |t|={n:3}: accepted={result.accepted!s:5} "
            f"steps={result.stats.steps:5} distinct subcomputations="
            f"{result.stats.distinct_starts:3}  (bound {bound})"
        )


def theorem_713() -> None:
    print("=== Theorem 7.1(3): a PSPACE xTM compiled into a tw^r ===")
    machine = unary_nodes_xtm()  # linear space: one tape cell per node
    compiled = compile_pspace_xtm_to_twr(machine)
    print(f"  compiled automaton: {compiled}")
    for n in (3, 5, 6):
        tree = random_tree(n, seed=n)
        reference = run_xtm(machine, tree)
        got = run(compiled, with_ids(tree), fuel=5_000_000)
        assert got.accepted == reference.accepted
        print(
            f"  |t|={n}: verdicts agree ({got.accepted}); tw^r took "
            f"{got.steps} store steps for {reference.steps} xTM steps"
        )


def proposition_72() -> None:
    print("=== Proposition 7.2: registers fold into states when A = ∅ ===")
    from repro.simulation import eliminate_registers, store_content_count
    from repro.automata.examples import delta_leaves_mod3_twr as delta_leaves_mod3

    twr = delta_leaves_mod3()
    tw = eliminate_registers(twr)
    print(f"  {twr!r}  (≤ {store_content_count(twr)} store contents)")
    print(f"  -> {tw!r} with no registers used")
    for seed in (1, 2, 3):
        tree = random_tree(9, alphabet=("σ", "δ"), seed=seed)
        assert accepts(twr, tree) == accepts(tw, tree)
    print("  verdicts agree on sampled trees")


def main() -> None:
    theorem_711()
    theorem_712()
    theorem_713()
    proposition_72()


if __name__ == "__main__":
    main()
