#!/usr/bin/env python3
"""Scenario: validating XML catalogs with tree-walking automata.

The paper's motivation is XSLT — a tree-walking transducer with
registers and look-ahead.  This example plays the *validation* part of
that story: a business rule ("every department prices all of its items
in one currency") checked three ways on generated documents:

1. the paper's Example 3.2 automaton (tw^{r,l}, runs on delim(t));
2. an FO sentence over τ_{Σ,A};
3. a regular-language check that is *not* FO-definable (an even number
   of items per catalog), via a hedge automaton and its look-ahead
   walker — walking buys counting, logic alone does not.

Run:  python examples/xml_validation.py
"""

from repro.automata import accepts
from repro.automata.examples import example_32, example_32_fo_spec
from repro.logic import evaluate
from repro.mso import leaf_count_mod_hedge, run_extended, walker_from_hedge
from repro.trees import catalog_document, delim, to_xml


def to_sigma_delta(doc):
    """Map catalog/dept/item onto the Example 3.2 alphabet {σ, δ}: the
    δ-nodes (departments) are the ones whose leaf-descendants must share
    their a-attribute (the currency)."""
    relabelled = doc.relabel({"catalog": "σ", "dept": "δ", "item": "σ"})
    return relabelled.with_attribute("a", dict(doc.attr_table("cur")))


def validate(doc) -> dict:
    t = to_sigma_delta(doc)
    by_automaton = accepts(example_32(), delim(t))
    by_logic = evaluate(example_32_fo_spec(), t)
    assert by_automaton == by_logic, "Example 3.2 must match its FO spec"
    return {"currency-uniform": by_automaton}


def main() -> None:
    good = catalog_document(departments=3, items_per_department=4, seed=7)
    bad = catalog_document(
        departments=3, items_per_department=4,
        uniform_departments=False, seed=7,
    )

    print("=== a compliant catalog ===")
    print(to_xml(good))
    print("validation:", validate(good))

    print("=== a non-compliant catalog (one item re-priced) ===")
    print("validation:", validate(bad))
    assert validate(good)["currency-uniform"]
    assert not validate(bad)["currency-uniform"]

    # A second business rule: items are stocked in pairs (even count).
    # This is regular but NOT first-order definable — the reason the
    # paper compares walking against logic in the first place.
    alphabet = ("catalog", "dept", "item")
    pairs_rule = leaf_count_mod_hedge(alphabet, "item", 2, [0])
    walker = walker_from_hedge(pairs_rule)
    for name, doc in [("good", good), ("odd-sized", catalog_document(3, 3, seed=1))]:
        by_hedge = pairs_rule.accepts(doc)
        by_walker = run_extended(walker, doc)
        assert by_hedge == by_walker
        print(f"{name}: items stocked in pairs -> {by_hedge} "
              f"(hedge automaton and look-ahead walker agree)")


if __name__ == "__main__":
    main()
