"""E6 — Theorem 6.2: xTMs correspond to ordinary TMs on enc(t).

Claim: every xTM class equals the corresponding TM class on encodings,
with a natural time/space correspondence.

Measured: (a) verdict agreement between the direct xTM run and the same
rule set interpreted over the flat encoding; (b) the navigation
overhead (characters scanned per direct step) stays below |enc(t)| —
the polynomial factor the correspondence tolerates; (c) a genuinely
paired program (node parity as xTM vs '('-parity as a classical TM)
recognises the same tree language.
"""

import pytest

from benchmarks.conftest import print_table

from repro.machines import compare_on, encode_tree, paren_parity_tm, run_tm
from repro.machines.programs import even_nodes_spec, even_nodes_xtm
from repro.trees import chain_tree, full_tree, random_tree


def family():
    return [random_tree(n, alphabet=("a", "b"), attributes=("x",),
                        value_pool=(1, 2), seed=n) for n in (3, 6, 9, 12, 16, 20)]


def test_e6_direct_vs_encoded(benchmark):
    machine = even_nodes_xtm()
    trees = family()

    def sweep():
        return [compare_on(machine, t) for t in trees]

    reports = benchmark.pedantic(sweep, rounds=2, iterations=1)
    rows = []
    for report in reports:
        assert report.verdicts_agree
        assert report.overhead <= report.encoding_length + 1
        rows.append(
            (
                report.size,
                report.encoding_length,
                report.direct.steps,
                report.encoded.char_steps,
                f"{report.overhead:.1f}",
            )
        )
    print_table(
        "E6: direct xTM vs encoded interpretation",
        ["|t|", "|enc|", "steps", "chars scanned", "chars/step"],
        rows,
    )


def test_e6_overhead_growth_is_polynomial():
    machine = even_nodes_xtm()
    overheads = []
    for n in (8, 16, 32):
        report = compare_on(machine, chain_tree(n))
        overheads.append((n, report.overhead))
    print_table("E6: overhead vs n (chains)", ["n", "chars/step"], overheads)
    # ratio grows at most linearly in |enc| ~ n
    assert overheads[-1][1] / max(overheads[0][1], 1) < 32


def test_e6_paired_programs(benchmark):
    trees = family() + [full_tree(2, 3), chain_tree(7)]

    def sweep():
        hits = 0
        for tree in trees:
            alphabet = sorted(set("();,01") | set("".join(tree.alphabet)))
            tm = paren_parity_tm("(", alphabet=alphabet)
            tm_verdict = run_tm(tm, encode_tree(tree)).accepted
            hits += tm_verdict == even_nodes_spec(tree)
        return hits

    hits = benchmark(sweep)
    assert hits == len(trees)
    print(f"\nE6: TM-on-enc(t) ≡ xTM-on-t for all {hits} instances")


def test_e6_tm_time_linear_in_encoding():
    rows = []
    for n in (8, 16, 32, 64):
        tree = chain_tree(n)
        enc = encode_tree(tree)
        tm = paren_parity_tm("(", alphabet=sorted(set(enc)))
        result = run_tm(tm, enc)
        rows.append((n, len(enc), result.steps))
        assert result.steps <= len(enc) + 2
    print_table("E6: one-sweep TM time", ["n", "|enc|", "TM steps"], rows)
