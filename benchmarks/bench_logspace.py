"""E7 — Theorem 7.1(1): tw captures LOGSPACE^X.

Claims & measurements:
* ⊇: the pebble walker runs a logspace xTM without ever materialising
  the tape (verdict equivalence over a sweep); the walker's move count
  grows polynomially (the expressiveness theorem does not promise
  better, and the measured degree makes the cost of the paper's
  construction concrete);
* ⊆: a tw's run touches at most |Q|·|t|·(|adom|+1)^k configurations —
  logarithmically many bits.
"""

import math

import pytest

from benchmarks.conftest import print_table

from repro.automata.examples import root_value_at_some_leaf, spine_constant_automaton
from repro.machines import run_xtm
from repro.machines.programs import even_nodes_binary_xtm
from repro.simulation import check_tw_in_logspace, simulate_logspace_xtm
from repro.trees import chain_tree, random_tree


def test_e7_pebble_verdicts(benchmark):
    machine = even_nodes_binary_xtm()
    trees = [random_tree(n, seed=n) for n in (3, 5, 8, 11, 14)]

    def sweep():
        return [
            (t.size, simulate_logspace_xtm(machine, t).accepted,
             run_xtm(machine, t).accepted)
            for t in trees
        ]

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    for size, pebbled, direct in rows:
        assert pebbled == direct
    print_table(
        "E7: pebble simulation ≡ direct xTM",
        ["|t|", "pebbles", "direct"],
        rows,
    )


def test_e7_walker_cost_profile():
    machine = even_nodes_binary_xtm()
    rows = []
    for n in (4, 8, 16, 24):
        tree = chain_tree(n)
        sim = simulate_logspace_xtm(machine, tree)
        direct = run_xtm(machine, tree)
        rows.append((n, direct.steps, direct.space, sim.walker_steps))
    print_table(
        "E7: cost of the tape-as-number construction",
        ["n", "xTM steps", "tape cells", "walker moves"],
        rows,
    )
    # polynomial (roughly cubic from the repeated halvings), not exponential
    n0, s0 = rows[0][0], rows[0][3]
    n1, s1 = rows[-1][0], rows[-1][3]
    degree = math.log(s1 / s0) / math.log(n1 / n0)
    print(f"  observed walker-move degree ≈ {degree:.2f}")
    assert degree < 5.0


def test_e7_tw_configuration_bound(benchmark):
    trees = [random_tree(n, attributes=("a",), value_pool=(1, 2), seed=n)
             for n in (4, 8, 12, 16)]

    def sweep():
        out = []
        for tree in trees:
            for automaton in (root_value_at_some_leaf(), spine_constant_automaton()):
                c = check_tw_in_logspace(automaton, tree)
                out.append((automaton.name, tree.size, c.configurations_used, c.bound))
        return out

    rows = benchmark(sweep)
    for name, size, used, bound in rows:
        assert used <= bound
    print_table(
        "E7: tw runs fit the logspace configuration bound",
        ["automaton", "|t|", "configs used", "bound"],
        rows,
    )
