"""E3 — Lemma 4.3(2): the number of ≡_N classes is bounded.

Claim: #(≡_N classes) ≤ exp₃(p(N + |D|)) for a polynomial p.

Measured: the *realized* number of classes over exhaustive string
families, growing with N and |D| but staying (absurdly far) below the
tower bound; plus the cost of computing type summaries — the protocol's
initialisation step.
"""

import itertools

import pytest

from benchmarks.conftest import print_table

from repro.hypersets import Tower, lemma_43_type_bound
from repro.logic.types import StringStructure, count_realized_classes, type_summary


def all_strings(domain, length):
    return [
        StringStructure(tuple(w))
        for w in itertools.product(domain, repeat=length)
    ]


def test_e3_realized_vs_bound(benchmark):
    rows = []

    def sweep():
        out = []
        for d_size, k in [(2, 1), (2, 2), (3, 1), (3, 2)]:
            domain = list(range(1, d_size + 1))
            family = []
            for length in range(1, 5):
                family.extend(all_strings(domain, length))
            out.append((d_size, k, count_realized_classes(family, k), len(family)))
        return out

    results = benchmark(sweep)
    for d_size, k, realized, family_size in results:
        bound = lemma_43_type_bound(k, d_size)
        rows.append((d_size, k, family_size, realized, repr(bound)))
        # the bound is a tower of height 3 — realized counts are tiny
        assert Tower.of(realized) < bound
    print_table(
        "E3: realized ≡_k classes vs the exp₃ bound",
        ["|D|", "k", "#strings", "realized", "bound"],
        rows,
    )


def test_e3_classes_grow_with_k():
    domain = [1, 2]
    family = []
    for length in range(1, 7):
        family.extend(all_strings(domain, length))
    counts = [count_realized_classes(family, k) for k in (0, 1, 2)]
    print(f"\nE3: classes by k on {len(family)} strings: {counts}")
    assert counts[0] <= counts[1] <= counts[2]
    # one variable cannot order the interior: strictly coarser than
    # string identity on this family (e.g. 1 2 1 1 2 2 ≡₁ 1 2 1 2 1 2… )
    assert counts[1] < len(family)
    assert counts[2] <= len(family)


def test_e3_summary_cost(benchmark):
    s = StringStructure(tuple([1, 2, 3] * 4))
    benchmark(lambda: type_summary(s, (0,), 3))


def test_e3_summary_cost_scales_with_k():
    import time

    s = StringStructure(tuple([1, 2] * 5))
    times = []
    for k in (1, 2, 3):
        t0 = time.perf_counter()
        type_summary(s, (), k)
        times.append(time.perf_counter() - t0)
    print(f"\nE3: summary cost k=1..3 (n=10): "
          f"{[f'{t * 1e3:.2f}ms' for t in times]} — O(n^k) as designed")
    assert times[2] > times[1]
