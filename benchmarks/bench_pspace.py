"""E9 — Theorem 7.1(3): tw^r captures PSPACE^X.

Claims & measurements:
* ⊆: the Brent chain evaluation of a tw^r holds only O(1)
  configurations (measured store rows stay polynomial in |t| while the
  verdicts match the direct runner);
* ⊇: the tape-as-relation compiler turns a linear-space xTM into a
  genuine tw^r whose verdicts agree with the reference machine; the
  compiled store (the "tape relation") grows linearly with the tape.
"""

import pytest

from benchmarks.conftest import print_table

from repro.automata import accepts, run
from repro.automata.examples import all_values_same_twr
from repro.machines import run_xtm
from repro.machines.programs import even_nodes_spec, unary_nodes_xtm
from repro.simulation import compile_pspace_xtm_to_twr, evaluate_twr_chain, with_ids
from repro.trees import random_tree


def test_e9_chain_evaluation(benchmark):
    automaton = all_values_same_twr()
    trees = [random_tree(n, attributes=("a",), value_pool=(1, 2, 3), seed=n)
             for n in (6, 12, 18, 24)]

    def sweep():
        return [
            (t.size, evaluate_twr_chain(automaton, t), accepts(automaton, t))
            for t in trees
        ]

    results = benchmark(sweep)
    rows = []
    for size, chain, direct in results:
        assert chain.accepted == direct
        rows.append((size, chain.accepted, chain.steps, chain.max_store_rows))
        # PSPACE discipline: the held state is one store, ≤ |adom| rows here
        assert chain.max_store_rows <= 3
    print_table(
        "E9: Brent chain evaluation of tw^r",
        ["|t|", "verdict", "steps", "max store rows"],
        rows,
    )


def test_e9_compiled_xtm(benchmark):
    machine = unary_nodes_xtm()
    compiled = compile_pspace_xtm_to_twr(machine)
    trees = [random_tree(n, seed=n) for n in (2, 3, 4, 5, 6)]

    def sweep():
        return [
            (t.size,
             run(compiled, with_ids(t), fuel=5_000_000),
             run_xtm(machine, t).accepted)
            for t in trees
        ]

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    rows = []
    for size, got, want in results:
        assert got.accepted == want == even_nodes_spec(
            [t for t in trees if t.size == size][0]
        )
        rows.append((size, got.accepted, got.steps))
    print_table(
        "E9: xTM → tw^r tape-as-relation compilation",
        ["|t|", "verdict", "tw^r steps"],
        rows,
    )
    # the compiled run is a constant factor over the xTM (chained stages)
    assert rows[-1][2] <= 40 * trees[-1].size


def test_e9_compiled_store_growth():
    machine = unary_nodes_xtm()
    compiled = compile_pspace_xtm_to_twr(machine)
    rows = []
    for n in (2, 4, 6):
        tree = with_ids(random_tree(n, seed=n))
        chain = evaluate_twr_chain(compiled, tree, fuel=5_000_000)
        rows.append((n, chain.max_store_rows))
        # tape relation + successor relation are linear in n
        assert chain.max_store_rows <= 4 * n + 8
    print_table(
        "E9: compiled store size (tape as a relation)",
        ["|t|", "max store rows"],
        rows,
    )
