"""E1 — Example 3.2: the paper's worked tw^{r,l} automaton.

Claim (paper, Section 3): the six-rule automaton accepts exactly the
trees where every δ-node's leaf-descendants share their a-attribute.

Measured: verdict agreement with the FO specification over an instance
sweep (exhaustive small + random larger), and the run cost of the
automaton vs. direct FO model checking — the automaton scales far
better because FO model checking is O(n^quantifier-depth).
"""

import pytest

from benchmarks.conftest import print_table

from repro.automata import run
from repro.automata.examples import example_32, example_32_fo_spec, example_32_spec
from repro.logic import evaluate
from repro.trees import all_trees, delim, random_tree


def instance(n, seed=0, uniform=True):
    pool = (1,) if uniform else (1, 2, 3)
    return random_tree(n, alphabet=("σ", "δ"), attributes=("a",),
                       value_pool=pool, seed=seed)


def test_e1_agreement_sweep(benchmark):
    automaton = example_32()
    trees = [instance(n, seed=n, uniform=(n % 2 == 0)) for n in range(2, 26, 3)]
    delimited = [delim(t) for t in trees]

    def verdicts():
        return [run(automaton, d).accepted for d in delimited]

    got = benchmark(verdicts)
    rows = []
    for tree, verdict in zip(trees, got):
        want = example_32_spec(tree)
        rows.append((tree.size, verdict, want, "ok" if verdict == want else "BUG"))
        assert verdict == want
    print_table("E1: Example 3.2 vs spec", ["|t|", "automaton", "spec", ""], rows)


def test_e1_exhaustive_small():
    automaton = example_32()
    count = 0
    for shape in all_trees(4, ("σ", "δ")):
        tree = shape.with_attribute(
            "a", {u: (1 if sum(u) % 2 == 0 else 2) for u in shape.nodes}
        )
        assert run(automaton, delim(tree)).accepted == example_32_spec(tree)
        count += 1
    print(f"\nE1: exhaustive over {count} labelled 4-node trees — all agree")


def test_e1_automaton_vs_fo_cost(benchmark):
    """The automaton beats naive FO model checking as n grows."""
    import time

    tree = instance(16, seed=5)
    d = delim(tree)
    automaton = example_32()
    sentence = example_32_fo_spec()

    benchmark(lambda: run(automaton, d).accepted)

    t0 = time.perf_counter()
    by_fo = evaluate(sentence, tree)
    fo_seconds = time.perf_counter() - t0
    assert by_fo == run(automaton, d).accepted
    print(f"\nE1: naive FO model checking on |t|=16 took {fo_seconds * 1e3:.1f} ms")
