"""E8 — Theorem 7.1(2): tw^l captures PTIME^X.

Claims & measurements:
* the memoised configuration-graph evaluation agrees with the direct
  runner;
* the number of distinct subcomputation starts stays within the
  polynomial bound |Q|·|t|·(|adom|+1)^k, and the observed growth of the
  evaluation work over |t| fits a low polynomial degree;
* alternating branching (the ALOGSPACE = PTIME mechanics) explores
  polynomially many configurations on bounded-degree inputs.
"""

import math

import pytest

from benchmarks.conftest import print_table

from repro.automata import accepts
from repro.automata.examples import spine_constant_automaton
from repro.machines import exists_leaf_value_alt, run_alternating
from repro.simulation import evaluate_memo, twl_configuration_bound
from repro.trees import chain_tree, random_tree


def spine_tree(n, seed):
    return random_tree(n, attributes=("a",), value_pool=(1,), seed=seed)


def test_e8_memo_agrees(benchmark):
    automaton = spine_constant_automaton()
    trees = [spine_tree(n, n) for n in (5, 10, 15, 20, 30)]

    def sweep():
        return [
            (t.size, evaluate_memo(automaton, t).accepted, accepts(automaton, t))
            for t in trees
        ]

    rows = benchmark(sweep)
    for _size, memo, direct in rows:
        assert memo == direct
    print_table("E8: memoised ≡ direct (tw^l)", ["|t|", "memo", "direct"], rows)


def test_e8_polynomial_configuration_growth():
    automaton = spine_constant_automaton()
    rows = []
    for n in (8, 16, 32, 64):
        tree = chain_tree(n, attributes=("a",))
        tree = tree.with_attribute("a", {u: 1 for u in tree.nodes})
        result = evaluate_memo(automaton, tree)
        bound = twl_configuration_bound(automaton, tree)
        rows.append((n, result.stats.steps, result.stats.distinct_starts, bound))
        assert result.stats.distinct_starts <= bound
    print_table(
        "E8: tw^l evaluation work vs the PTIME bound",
        ["|t|", "steps", "distinct starts", "bound"],
        rows,
    )
    n0, s0 = rows[0][0], max(rows[0][1], 1)
    n1, s1 = rows[-1][0], rows[-1][1]
    degree = math.log(s1 / s0) / math.log(n1 / n0)
    print(f"  observed work degree ≈ {degree:.2f} (polynomial)")
    assert degree < 3.0


def test_e8_alternating_pebble_simulation():
    """The converse leg: an alternating logspace xTM (binary depth
    counter, ∀-branching) evaluated with its tape on pebbles — the
    tw^l-style subcomputation evaluation of the proof."""
    from repro.machines import (
        all_leaves_even_depth_alt,
        all_leaves_even_depth_spec,
        run_alternating,
    )
    from repro.simulation import simulate_alternating_logspace

    alt = all_leaves_even_depth_alt()
    rows = []
    for n in (4, 7, 10, 13):
        tree = random_tree(n, seed=n)
        want = all_leaves_even_depth_spec(tree)
        fixpoint = run_alternating(alt, tree)
        pebbled = simulate_alternating_logspace(alt, tree)
        assert fixpoint.accepted == pebbled.accepted == want
        rows.append((n, pebbled.accepted, pebbled.evaluations,
                     pebbled.walker_steps))
    print_table(
        "E8: alternating xTM on pebbles (∀-branching + tape)",
        ["|t|", "verdict", "evaluations", "walker moves"],
        rows,
    )


def test_e8_alternation_configs_polynomial(benchmark):
    alt = exists_leaf_value_alt("a", 1)
    trees = [random_tree(n, attributes=("a",), value_pool=(1, 2),
                         max_children=3, seed=n) for n in (6, 12, 18, 24)]

    def sweep():
        return [(t.size, run_alternating(alt, t).configurations) for t in trees]

    rows = benchmark(sweep)
    print_table(
        "E8: alternating xTM reachable configurations",
        ["|t|", "configurations"],
        rows,
    )
    n0, c0 = rows[0]
    n1, c1 = rows[-1]
    degree = math.log(c1 / c0) / math.log(n1 / n0)
    print(f"  observed configuration degree ≈ {degree:.2f}")
    assert degree < 2.5
