"""E5 — Lemma 4.6 / Theorem 4.1: the counting crossover.

Claim: for m > 6 (and |D| large enough) there are more m-hypersets
(exp_m(|D|)) than protocol dialogues (< (|Δ|+1)^(2|Δ|) with
|Δ| ≤ exp₃(p(N + |D|))), so some two hypersets share a dialogue —
tw^{r,l} cannot compute L^m: it is not relationally complete.

Measured: the who-wins table over m for several (N, |D|) pairs — the
crossover always lands at m ≤ 7, never moves later as programs grow,
and exact small-parameter counts match the tower formulas.
"""

import pytest

from benchmarks.conftest import print_table

from repro.hypersets import (
    all_hypersets,
    count_hypersets,
    crossover,
    dialogue_bound,
    hyperset_tower,
)


def test_e5_crossover_table(benchmark):
    report = benchmark(lambda: crossover(n=4, d=8, max_m=10))
    rows = [
        (m, repr(h), repr(d), "hypersets" if win else "dialogues")
        for m, h, d, win in report.rows
    ]
    print_table(
        "E5: who wins — exp_m(|D|) vs dialogue bound (N=4, |D|=8)",
        ["m", "#hypersets", "#dialogues ≤", "winner"],
        rows,
    )
    assert report.crossover_m is not None and report.crossover_m <= 7


def test_e5_crossover_stable_in_program_size():
    rows = []
    for n in (4, 16, 64, 256):
        report = crossover(n=n, d=8, max_m=12)
        rows.append((n, report.crossover_m))
        assert report.crossover_m is not None
        assert report.crossover_m <= 8
    print_table(
        "E5: crossover m vs program size N (|D|=8)",
        ["N", "first m where hypersets win"],
        rows,
    )
    # growing the program never helps by more than a constant number of levels
    assert rows[-1][1] - rows[0][1] <= 2


def test_e5_crossover_stable_in_domain():
    rows = []
    for d in (4, 8, 32, 128):
        report = crossover(n=4, d=d, max_m=12)
        rows.append((d, report.crossover_m))
    print_table(
        "E5: crossover m vs |D| (N=4)",
        ["|D|", "first m where hypersets win"],
        rows,
    )
    assert all(m is not None and m <= 8 for _d, m in rows)


def test_e5_exact_counts_match_towers():
    for d, domain in [(2, ["a", "b"]), (3, ["a", "b", "c"])]:
        for m in (1, 2):
            assert count_hypersets(m, d) == len(all_hypersets(m, domain))
    print("\nE5: exact enumeration matches exp_m(d) for all small cases")


def test_e5_monotonicity():
    # once the hypersets win they win forever (towers grow in m)
    report = crossover(n=8, d=16, max_m=12)
    winning = [win for _m, _h, _d, win in report.rows]
    first = winning.index(True)
    assert all(winning[first:])
    # and each level dominates the previous
    assert hyperset_tower(6, 16) < hyperset_tower(7, 16)
    assert dialogue_bound(8, 16) < hyperset_tower(8, 16)
