"""E13 — the related-model extensions: caterpillars, transducers,
pebble automata, 2DFA compilation.

These are not paper theorems but the paper-adjacent systems its
introduction and conclusion point at ([7], [17], §8); the bench pins
their cross-model agreements and costs:

* caterpillar ``(down right*)+`` ≡ the descendant axis (XPath / FO(∃*));
* the identity transducer round-trips documents; throughput measured;
* the pebble data-join ≡ the FO join sentence;
* compiled 2DFAs ≡ their two-way runs.
"""

import itertools

import pytest

from benchmarks.conftest import print_table

from repro.automata.stringcompile import accepts_word, compile_two_way
from repro.automata.strings import multiple_of_automaton, run_two_way
from repro.caterpillar import parse_caterpillar, walk
from repro.logic import evaluate, parse_formula
from repro.pebbleautomata import (
    exists_equal_pair,
    exists_equal_pair_spec,
    run_pebble_automaton,
)
from repro.transducer import identity_transducer, run_transducer
from repro.trees import random_tree
from repro.xpath import parse_xpath, select


def test_e13_caterpillar_vs_xpath(benchmark):
    cat = parse_caterpillar("(down right*)+")
    xp = parse_xpath(".//*")
    docs = [random_tree(n, alphabet=("a", "b"), seed=n) for n in (6, 12, 18)]

    def sweep():
        agreements = 0
        for doc in docs:
            for u in doc.nodes:
                agreements += set(walk(cat, doc, u)) == set(select(xp, doc, u))
        return agreements

    agreed = benchmark(sweep)
    assert agreed == sum(d.size for d in docs)
    print(f"\nE13: caterpillar ≡ descendant axis on {agreed} contexts")


def test_e13_transducer_throughput(benchmark):
    transducer = identity_transducer()
    doc = random_tree(40, attributes=("a",), value_pool=(1, 2), seed=0)
    result = benchmark(lambda: run_transducer(transducer, doc))
    assert result == doc
    print(f"\nE13: identity transduction of a {doc.size}-node document")


def test_e13_pebble_join_vs_fo(benchmark):
    sentence = parse_formula("exists x y (~x = y & val_a(x) = val_a(y))")
    docs = [random_tree(n, attributes=("a",), value_pool=(1, 2, 3, 4, 5),
                        seed=n) for n in (5, 8, 11)]

    def sweep():
        rows = []
        for doc in docs:
            result = run_pebble_automaton(exists_equal_pair(), doc)
            rows.append((doc.size, result.accepted, result.steps,
                         evaluate(sentence, doc)))
        return rows

    rows = benchmark(sweep)
    for size, by_pebble, _steps, by_fo in rows:
        assert by_pebble == by_fo
    print_table(
        "E13: pebble data-join ≡ FO join",
        ["|t|", "pebble", "steps", "FO"],
        rows,
    )


def test_e13_pebble_steps_quadraticish():
    steps = []
    for n in (6, 12, 24):
        from repro.trees import chain_tree

        doc = chain_tree(n, attributes=("a",))
        doc = doc.with_attribute("a", {u: i for i, u in enumerate(doc.nodes)})
        result = run_pebble_automaton(exists_equal_pair(), doc, fuel=2_000_000)
        assert not result.accepted  # all values distinct
        steps.append((n, result.steps))
    print_table("E13: pebble join cost (all-distinct worst case)",
                ["n", "steps"], steps)
    # one sweep per candidate: quadratic-ish growth, not exponential
    assert steps[-1][1] < 80 * steps[0][1]


def test_e13_compiled_2dfa(benchmark):
    dfa = multiple_of_automaton(3)
    compiled = compile_two_way(dfa)

    def sweep():
        agreements = 0
        for n in range(10):
            word = ["a"] * n
            agreements += (
                accepts_word(compiled, dfa, word)
                == run_two_way(dfa, word).accepted
            )
        return agreements

    agreed = benchmark(sweep)
    assert agreed == 10
    print(f"\nE13: compiled 2DFA ≡ two-way run on {agreed} words")


def test_e13_nondeterminism_is_free_to_evaluate():
    """Deterministic vs nondeterministic TWA: NTWA acceptance is BFS
    over |t|·|Q| configurations — guessing costs nothing at evaluation
    time (the hardness is expressive, per Bojańczyk–Colcombet)."""
    from repro.automata.nondet import (
        at_least_two_leaves_spec,
        at_least_two_leaves_with_label,
        ntwa_accepts,
        reachable_configurations,
    )

    automaton = at_least_two_leaves_with_label("b")
    rows = []
    for n in (6, 12, 24, 48):
        tree = random_tree(n, alphabet=("a", "b"), seed=n)
        verdict = ntwa_accepts(automaton, tree)
        assert verdict == at_least_two_leaves_spec("b")(tree)
        configs = reachable_configurations(automaton, tree)
        assert configs <= n * 5
        rows.append((n, verdict, configs))
    print_table("E13: NTWA evaluation stays linear",
                ["|t|", "verdict", "configs"], rows)
