"""E11 — §2.3: XPath ⊑ FO(∃*).

Claim: the fragment compiles into binary FO(∃*) queries.

Measured: evaluator/compilation agreement over a query × document
sweep; the relative cost of the direct evaluator vs. evaluating the
compiled formula (the formula route pays the generic model-checking
price — the abstraction is about *expressiveness*, and the shape shows
why engines do not evaluate XPath through logic).
"""

import time

import pytest

from benchmarks.conftest import print_table

from repro.xpath import compile_xpath, parse_xpath, select
from repro.trees import random_tree

QUERIES = [
    "a//b",
    "a/b[c]",
    "a//b[.//c][d]",
    "*[a][b]",
    "a/b//c|a//d",
    "//c",
]


def documents():
    return [
        random_tree(n, alphabet=("a", "b", "c", "d"), seed=n)
        for n in (8, 16, 24)
    ]


def test_e11_agreement(benchmark):
    docs = documents()
    compiled = {q: compile_xpath(parse_xpath(q)) for q in QUERIES}

    def sweep():
        agreements = 0
        for q in QUERIES:
            expr = parse_xpath(q)
            for doc in docs:
                for ctx in doc.nodes:
                    agreements += (
                        select(expr, doc, ctx) == compiled[q].select(doc, ctx)
                    )
        return agreements

    agreed = benchmark.pedantic(sweep, rounds=2, iterations=1)
    total = len(QUERIES) * sum(d.size for d in docs)
    assert agreed == total
    print(f"\nE11: evaluator ≡ compiled FO(∃*) on {total} (query, context) pairs")


def test_e11_relative_cost():
    doc = random_tree(30, alphabet=("a", "b", "c", "d"), seed=1)
    rows = []
    for q in QUERIES:
        expr = parse_xpath(q)
        query = compile_xpath(expr)
        t0 = time.perf_counter()
        for _ in range(20):
            select(expr, doc, ())
        direct = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(20):
            query.select(doc, ())
        via_fo = time.perf_counter() - t0
        rows.append((q, f"{direct * 50:.2f}ms", f"{via_fo * 50:.2f}ms",
                     f"{via_fo / max(direct, 1e-9):.0f}x"))
    print_table(
        "E11: direct evaluation vs compiled-FO evaluation (|t|=30)",
        ["query", "direct", "via FO(∃*)", "slowdown"],
        rows,
    )


def test_e11_eval_cost(benchmark):
    doc = random_tree(40, alphabet=("a", "b", "c", "d"), seed=2)
    expr = parse_xpath("a//b[.//c][d]")
    benchmark(lambda: select(expr, doc, ()))
