"""E15 — the indexed, set-at-a-time engine vs. the reference evaluators.

Claim: compiling FO subformulas to relations over a preorder-interval
index (and XPath descendant steps to big-int range merges) removes the
n^k assignment walk that every reference evaluator in this repo pays.

Measured: agreement over a formula/expression × document sweep, and
the speedup rows behind EXPERIMENTS.md E15.  The committed full-size
trajectory lives in BENCH_engine.json (``make bench`` regenerates a
quick version; ``python -m repro.bench`` the full one).
"""

import time

from benchmarks.conftest import print_table

from repro import bench
from repro.engine import fo as fast_fo
from repro.engine import xpath as fast_xpath
from repro.logic import tree_fo
from repro.logic.parser import parse_formula
from repro.xpath.evaluator import select as reference_xpath_select
from repro.xpath.parser import parse_xpath


def documents(sizes=(12, 24, 48)):
    return [bench._document(n, seed=n) for n in sizes]


def test_e15_agreement(benchmark):
    docs = documents()
    formulas = {
        name: parse_formula(text)
        for name, text in bench.FO_FORMULAS.items()
    }
    expressions = [parse_xpath(text) for text in bench.XPATH_EXPRESSIONS]

    def sweep():
        agreements = 0
        for doc in docs:
            for formula in formulas.values():
                order = sorted(
                    tree_fo.free_variables(formula), key=lambda v: v.name
                )
                agreements += fast_fo.satisfying_assignments(
                    formula, doc, order
                ) == tree_fo.satisfying_assignments(formula, doc, order)
            for expr in expressions:
                agreements += fast_xpath.select(expr, doc) == \
                    reference_xpath_select(expr, doc, ())
        return agreements

    agreed = benchmark.pedantic(sweep, rounds=2, iterations=1)
    total = len(docs) * (len(formulas) + len(expressions))
    assert agreed == total
    print(f"\nE15: engine ≡ reference on {total} (query, document) pairs")


def test_e15_fo_speedup_rows():
    doc = bench._document(64, seed=64)
    rows = []
    for name, text in bench.FO_FORMULAS.items():
        formula = parse_formula(text)
        order = sorted(tree_fo.free_variables(formula), key=lambda v: v.name)
        t0 = time.perf_counter()
        reference = tree_fo.satisfying_assignments(formula, doc, order)
        ref_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            engine = fast_fo.satisfying_assignments(formula, doc, order)
        eng_s = (time.perf_counter() - t0) / 5
        assert engine == reference
        rows.append(
            (name, f"{ref_s * 1000:.2f}ms", f"{eng_s * 1000:.3f}ms",
             f"{ref_s / eng_s:.0f}x")
        )
    print_table(
        "E15: FO satisfying assignments, reference vs engine (|t|=64)",
        ["formula", "reference", "engine", "speedup"],
        rows,
    )


def test_e15_xpath_speedup_rows():
    doc = bench._document(400, seed=400)
    rows = []
    for text in bench.XPATH_EXPRESSIONS:
        expr = parse_xpath(text)
        t0 = time.perf_counter()
        for _ in range(10):
            reference = reference_xpath_select(expr, doc, ())
        ref_s = (time.perf_counter() - t0) / 10
        t0 = time.perf_counter()
        for _ in range(10):
            engine = fast_xpath.select(expr, doc)
        eng_s = (time.perf_counter() - t0) / 10
        assert engine == reference
        rows.append(
            (text, f"{ref_s * 1000:.3f}ms", f"{eng_s * 1000:.3f}ms",
             f"{ref_s / eng_s:.1f}x")
        )
    print_table(
        "E15: XPath from the root, reference vs engine (|t|=400)",
        ["expression", "reference", "engine", "speedup"],
        rows,
    )
