"""E2 — Lemma 4.2: L^m is FO-definable.

Claim: for each fixed m there is an FO sentence defining L^m.

Measured: the generated sentence agrees with the decoder on an
exhaustive sweep (m = 1, 2), the sentence's size growth in m, and the
cost of FO model checking vs. direct decoding — decoding wins by
orders of magnitude, which is exactly why the *definability* (not the
efficiency) is the point of the lemma.
"""

import itertools

import pytest

from benchmarks.conftest import print_table

from repro.hypersets import in_lm, lm_formula
from repro.logic import evaluate
from repro.logic.tree_fo import subformulas
from repro.trees.strings import HASH, string_tree


def split_words(sigma, max_len):
    for length in range(1, max_len + 1):
        for word in itertools.product(sigma, repeat=length):
            if word.count(HASH) == 1:
                yield list(word)


def test_e2_m1_agreement(benchmark):
    sentence = lm_formula(1)
    words = list(split_words((1, "a", "b", HASH), 5))

    def sweep():
        return sum(
            evaluate(sentence, string_tree(w)) == in_lm(w, 1) for w in words
        )

    agreed = benchmark(sweep)
    assert agreed == len(words)
    print(f"\nE2: m=1 — FO sentence ≡ decoder on all {len(words)} strings")


def test_e2_m2_agreement():
    sentence = lm_formula(2)
    words = list(split_words((1, 2, "a", HASH), 6))
    agreed = sum(
        evaluate(sentence, string_tree(w)) == in_lm(w, 2) for w in words
    )
    assert agreed == len(words)
    print(f"\nE2: m=2 — FO sentence ≡ decoder on all {len(words)} strings")


def test_e2_formula_growth(benchmark):
    sizes = benchmark(
        lambda: [sum(1 for _ in subformulas(lm_formula(m))) for m in (1, 2, 3, 4)]
    )
    rows = [(m, size) for m, size in zip((1, 2, 3, 4), sizes)]
    print_table("E2: |lm_formula(m)| grows ~4^m", ["m", "AST nodes"], rows)
    assert sizes[0] < sizes[1] < sizes[2] < sizes[3]
    # the unfolding is exponential but each sentence is finite: FO per fixed m
    assert sizes[3] < 40_000


def test_e2_decoder_vs_fo_cost(benchmark):
    word = [2, 1, "a", 2, 1, "a", HASH, 2, 1, "a"]
    tree = string_tree(word)
    sentence = lm_formula(2)
    benchmark(lambda: evaluate(sentence, tree))
    import time

    t0 = time.perf_counter()
    for _ in range(1000):
        in_lm(word, 2)
    decoder_us = (time.perf_counter() - t0) * 1e3
    print(f"\nE2: decoder does 1000 checks in {decoder_us:.1f} ms "
          f"(FO model checking is the slow, definability-only route)")
