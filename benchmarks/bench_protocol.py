"""E4 — Lemma 4.5: the protocol simulates tw^{r,l} on split strings.

Claim: for every tw^{r,l} program of size N there is an N-protocol
computing the same verdicts, with dialogues bounded by the dedup
argument (each request at most once, each configuration crossing at
most once per direction).

Measured: verdict agreement across programs × instances; dialogue
length as the string grows (stays flat or linear — far below the
generic 2|Δ| bound); message-kind mix per program.
"""

from collections import Counter

import pytest

from benchmarks.conftest import print_table

from repro.protocol import protocol_agrees_with_run, run_protocol
from repro.protocol.programs import (
    atp_all_same,
    nested_constant_suffixes,
    root_value_reappears,
    walking_all_same,
    walking_reporters,
)

PROGRAMS = [
    walking_all_same(),
    atp_all_same(),
    nested_constant_suffixes(),
    root_value_reappears(),
    walking_reporters(),
]


def instances():
    out = []
    for fl in (1, 2, 3):
        for gl in (1, 2):
            out.append((["a", "b", "a"][:fl], ["b", "a"][:gl]))
            out.append((["a"] * fl, ["a"] * gl))
    return out


def test_e4_agreement(benchmark):
    cases = instances()

    def sweep():
        agreements = 0
        for program in PROGRAMS:
            for f, g in cases:
                direct, proto, _res = protocol_agrees_with_run(program, f, g)
                agreements += direct == proto
        return agreements

    agreed = benchmark.pedantic(sweep, rounds=2, iterations=1)
    total = len(PROGRAMS) * len(cases)
    assert agreed == total
    print(f"\nE4: protocol ≡ direct run on {total} program×instance pairs")


def test_e4_dialogue_length_by_size():
    rows = []
    program = nested_constant_suffixes()
    for n in (1, 2, 3, 4, 5):
        f = ["a"] * n
        g = ["a"] * n
        result = run_protocol(program, f, g)
        rows.append((2 * n + 1, result.rounds, result.accepted))
    print_table(
        "E4: dialogue rounds vs string length (nested program)",
        ["|f#g|", "rounds", "verdict"],
        rows,
    )
    # dedup keeps the dialogue linear-ish, nowhere near 2|Δ|
    assert rows[-1][1] <= 40


def test_e4_message_mix():
    rows = []
    for program in PROGRAMS:
        result = run_protocol(program, ["a", "b"], ["b", "a"])
        mix = Counter(result.message_kinds())
        rows.append(
            (
                program.name,
                result.rounds,
                mix.get("ConfigMessage", 0),
                mix.get("AtpRequest", 0),
                mix.get("Reply", 0),
            )
        )
    print_table(
        "E4: message mix on f=ab, g=ba",
        ["program", "rounds", "configs", "atp-reqs", "replies"],
        rows,
    )
    # every Δ component is exercised by some program
    total_atp = sum(r[3] for r in rows)
    total_cfg = sum(r[2] for r in rows)
    assert total_atp > 0 and total_cfg > 0


def test_e4_protocol_cost(benchmark):
    program = atp_all_same()
    benchmark(lambda: run_protocol(program, ["a", "b", "a"], ["b", "a"]))


def test_e4_delta_accounting():
    """Definition 4.4's |Δ| inventory for a concrete program, vs the
    handful of messages a real dialogue uses — the dedup argument is
    what keeps rounds short, not the alphabet size."""
    from repro.protocol import (
        dialogue_vs_bound,
        estimate_delta,
        observed_message_counts,
    )

    program = nested_constant_suffixes()
    estimate = estimate_delta(program, d_size=3)
    print_table("E4: the Δ inventory (|D| = 3)", ["component", "bound"],
                estimate.rows())
    result = run_protocol(program, ["a", "b"], ["b", "a"])
    observed = observed_message_counts(result)
    print_table(
        "E4: distinct messages actually sent",
        ["kind", "count"],
        sorted(observed.items()),
    )
    rounds, bound = dialogue_vs_bound(program, result, d_size=3)
    print(f"  rounds: {rounds} ≪ 2|Δ| = {bound!r}")
    from repro.hypersets.counting import Tower

    assert Tower.of(float(rounds)) < bound
    # distinct messages ≤ dialogue length (= rounds + the 2 type messages)
    assert sum(observed.values()) <= result.rounds + 2

