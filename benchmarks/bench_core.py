"""E12 — model-cost microbenchmarks and the look-ahead/storage ablation.

DESIGN.md calls out two design choices to ablate:

* **look-ahead vs storage**: the same property ("every node carries the
  same a-value") as a tw^r walking program (storage, O(n) steps, one
  FO update per node) vs a tw^{r,l} one-shot (a single atp whose
  subcomputations fan out) — who wins, and by how much, as n grows;
* **memoisation**: repeated subcomputations collapse under the
  Theorem 7.1(2) evaluator.

Plus raw costs of the primitive layers: FO evaluation, automaton
stepping, store updates, tree navigation.
"""

import time

import pytest

from benchmarks.conftest import print_table

from repro.automata import accepts, run
from repro.automata.examples import (
    all_leaves_same_twrl,
    all_values_same_twr,
    even_leaves_automaton,
)
from repro.logic import tree_fo as T
from repro.logic import evaluate
from repro.simulation import evaluate_memo
from repro.store import Relation, StoreContext, StoreSchema, Var, evaluate_update, rel
from repro.store.fo import disj, eq, Attr
from repro.trees import full_tree, random_tree

z = Var("z")


def test_e12_ablation_storage_vs_lookahead():
    rows = []
    for n in (6, 12, 18, 24):
        tree = random_tree(n, attributes=("a",), value_pool=(1,), seed=n)
        twr = all_values_same_twr()
        twrl = all_leaves_same_twrl()
        t0 = time.perf_counter()
        storage_result = run(twr, tree)
        storage_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        lookahead_result = run(twrl, tree)
        lookahead_time = time.perf_counter() - t0
        rows.append(
            (
                n,
                storage_result.steps,
                f"{storage_time * 1e3:.1f}ms",
                lookahead_result.steps,
                f"{lookahead_time * 1e3:.1f}ms",
            )
        )
    print_table(
        "E12: storage walk (tw^r) vs one-shot look-ahead (tw^{r,l})",
        ["|t|", "tw^r steps", "tw^r time", "tw^{r,l} steps", "tw^{r,l} time"],
        rows,
    )
    # the walking program pays ~3 steps per node; the atp pays ~3 per leaf
    assert rows[-1][1] > rows[-1][3]


def test_e12_memoisation_ablation():
    """Re-entrant subcomputations (every position checks every later
    position) are where the Theorem 7.1(2) memo pays: the reporter at
    each position is shared across all the checkers that select it."""
    from repro.protocol.programs import nested_constant_suffixes
    from repro.trees import split_string_tree

    tree = split_string_tree(["a"] * 6, ["a"] * 5)
    automaton = nested_constant_suffixes()
    plain = run(automaton, tree)
    memo = evaluate_memo(automaton, tree)
    assert plain.accepted == memo.accepted
    print(
        f"\nE12: plain runner {plain.steps} steps vs memoised "
        f"{memo.stats.steps} steps, {memo.stats.cache_hits} cache hits on "
        f"{memo.stats.distinct_starts} distinct subcomputations"
    )
    assert memo.stats.cache_hits > 0
    assert memo.stats.steps < plain.steps


def test_e12_fo_evaluation_cost(benchmark):
    tree = random_tree(25, attributes=("a",), value_pool=(1, 2), seed=0)
    x, y = T.NVar("x"), T.NVar("y")
    sentence = T.forall(
        x, T.exists(y, T.disj(T.NodeEq(x, y), T.ValEq("a", x, "a", y)))
    )
    benchmark(lambda: evaluate(sentence, tree))


def test_e12_automaton_stepping_cost(benchmark):
    tree = full_tree(3, 3)
    automaton = even_leaves_automaton()
    result = benchmark(lambda: run(automaton, tree))
    assert result.steps >= tree.size


def test_e12_store_update_cost(benchmark):
    schema = StoreSchema([1])
    store = schema.initial_store().set(1, Relation.unary(range(10)))
    ctx = StoreContext(store, {"a": 99})
    formula = disj(rel(1, z), eq(z, Attr("a")))
    out = benchmark(lambda: evaluate_update(formula, [z], ctx))
    assert len(out) == 11


def test_e12_navigation_cost(benchmark):
    tree = full_tree(4, 3)

    def walk_everywhere():
        total = 0
        for u in tree.nodes:
            total += len(tree.children(u))
            tree.parent(u)
            tree.is_leaf(u)
        return total

    total = benchmark(walk_everywhere)
    assert total == tree.size - 1
