"""Shared helpers for the experiment benchmarks.

Every experiment Ei of DESIGN.md has one module here.  Each module

* times its central computation with pytest-benchmark, and
* prints the experiment's result rows (the numbers recorded in
  EXPERIMENTS.md) — run with ``-s`` to see them inline.
"""

from typing import Iterable, Sequence

import pytest


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one experiment's rows (captured by pytest unless -s)."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    print(f"\n── {title} " + "─" * max(0, 66 - len(title)))
    print("  " + "  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + "  ".join(c.ljust(w) for c, w in zip(row, widths)))
