"""E10 — Proposition 7.2: A = ∅ collapses, and look-ahead reaches MSO.

Claims & measurements:
* tw^r = tw when A = ∅: register elimination produces an equivalent
  register-free automaton; the state blow-up equals the number of
  reachable store contents (finite, measured);
* tw^l ⊇ MSO (the [4] direction): the look-ahead walker compiled from a
  hedge automaton accepts exactly the regular language, including a
  non-FO-definable one (mod-2 leaf counting).
"""

import pytest

from benchmarks.conftest import print_table

from repro.automata import accepts
from repro.automata.examples import delta_leaves_mod3_spec, delta_leaves_mod3_twr
from repro.mso import leaf_count_mod_hedge, run_extended, walker_from_hedge
from repro.simulation import eliminate_registers, store_content_count
from repro.trees import all_trees, random_tree

ALPHA = ("σ", "δ")


def test_e10_elimination_equivalence(benchmark):
    twr = delta_leaves_mod3_twr()
    tw = benchmark(lambda: eliminate_registers(twr))
    family = all_trees(4, ALPHA)
    for tree in family:
        assert accepts(tw, tree) == accepts(twr, tree) == delta_leaves_mod3_spec(tree)
    rows = [
        ("tw^r", len(twr.states), len(twr.rules), "3 constants in a register"),
        ("tw", len(tw.states), len(tw.rules), "registers folded into states"),
    ]
    print_table(
        f"E10: register elimination (exhaustive over {len(family)} trees)",
        ["class", "|Q|", "rules", "storage"],
        rows,
    )
    assert len(tw.states) <= len(twr.states) * store_content_count(twr)


def test_e10_blowup_is_reachable_contents():
    twr = delta_leaves_mod3_twr()
    tw = eliminate_registers(twr)
    bound = len(twr.states) * store_content_count(twr)
    print(f"\nE10: |Q'| = {len(tw.states)} ≤ |Q|·#contents = {bound}; "
          f"only the 3 reachable singletons appear, not all 8 subsets")
    assert len(tw.states) <= len(twr.states) * 3 + 2


def test_e10_lookahead_walker_regular(benchmark):
    hedge = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    walker = walker_from_hedge(hedge)
    trees = [random_tree(n, alphabet=ALPHA, seed=n) for n in (4, 8, 12, 16)]

    def sweep():
        return [(t.size, run_extended(walker, t), hedge.accepts(t)) for t in trees]

    rows = benchmark.pedantic(sweep, rounds=2, iterations=1)
    for _size, by_walker, by_hedge in rows:
        assert by_walker == by_hedge
    print_table(
        "E10: look-ahead walker ≡ hedge automaton (mod-2 leaves, not FO)",
        ["|t|", "walker", "hedge"],
        rows,
    )


def test_e10_walker_size_is_input_independent():
    hedge = leaf_count_mod_hedge(ALPHA, "δ", 2, [0])
    walker = walker_from_hedge(hedge)
    states = len({r.state for r in walker.rules})
    print(f"\nE10: compiled walker has {states} states "
          f"(O(|Q_H|²·|Σ|·|DFA|), independent of the input)")
    assert states < 200
