"""Relational storage over D (Definition 3.1's X̄, ξ, ψ machinery).

* :class:`Relation` — immutable finite relations over D with a full
  relational-algebra surface;
* :class:`StoreSchema` / :class:`RegisterStore` — the registers
  X_1 … X_k and the assignments τ;
* :mod:`repro.store.fo` — active-domain FO over the store: the guard
  (ξ) and update (ψ) language of tree-walking automata.
"""

from .relation import Relation, RelationError, Row
from .database import RegisterStore, StoreError, StoreSchema
from .parser import StoreSyntaxError, parse_guard, parse_store_formula
from .fo import (
    And,
    Attr,
    Const,
    Eq,
    Exists,
    FalseF,
    Forall,
    Implies,
    Not,
    Or,
    Rel,
    StoreContext,
    StoreFormula,
    StoreFormulaError,
    TrueF,
    Var,
    attributes_used,
    conj,
    constants,
    disj,
    eq,
    evaluate,
    evaluate_update,
    exists,
    forall,
    free_variables,
    implies,
    neq,
    rel,
    validate,
)

__all__ = [
    "Relation",
    "RelationError",
    "Row",
    "RegisterStore",
    "StoreError",
    "StoreSchema",
    "StoreSyntaxError",
    "parse_guard",
    "parse_store_formula",
    "And",
    "Attr",
    "Const",
    "Eq",
    "Exists",
    "FalseF",
    "Forall",
    "Implies",
    "Not",
    "Or",
    "Rel",
    "StoreContext",
    "StoreFormula",
    "StoreFormulaError",
    "TrueF",
    "Var",
    "attributes_used",
    "conj",
    "constants",
    "disj",
    "eq",
    "evaluate",
    "evaluate_update",
    "exists",
    "forall",
    "free_variables",
    "implies",
    "neq",
    "rel",
    "validate",
]
