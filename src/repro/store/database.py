"""Register stores: the relational storage τ of Definition 3.1.

A :class:`RegisterStore` interprets the relation names ``X_1 … X_k``
(each of a fixed arity) by finite relations over D.  Stores are
immutable; updating a register produces a new store.  The *initial
register assignment* τ₀ of the paper maps each register to a value in
``D ∪ {⊥}``; we realise ``d ∈ D`` as the unary singleton ``{d}``
(arity permitting) and ``⊥`` as the empty relation, matching
Example 3.2's ``τ₀(1) = ∅``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

from ..trees.values import BOTTOM, DataValue, MaybeValue
from .relation import Relation, RelationError


class StoreError(ValueError):
    """Raised on register-index or schema violations."""


class StoreSchema:
    """The relational schema X̄ = X_1, …, X_k with fixed arities."""

    __slots__ = ("_arities",)

    def __init__(self, arities: Sequence[int]) -> None:
        if any(a < 1 for a in arities):
            raise StoreError("all register arities must be >= 1")
        self._arities: Tuple[int, ...] = tuple(arities)

    @property
    def arities(self) -> Tuple[int, ...]:
        return self._arities

    @property
    def count(self) -> int:
        return len(self._arities)

    def arity(self, register: int) -> int:
        """Arity of register ``register`` (1-based, as in the paper)."""
        self.check_register(register)
        return self._arities[register - 1]

    def check_register(self, register: int) -> int:
        if not 1 <= register <= len(self._arities):
            raise StoreError(
                f"register {register} out of range 1..{len(self._arities)}"
            )
        return register

    def initial_store(
        self, assignment: Optional[Sequence[Union[DataValue, object]]] = None
    ) -> "RegisterStore":
        """Build τ₀.  ``assignment`` lists, per register, a D-value (unary
        singleton), ``BOTTOM``/``None`` (empty relation), or a ready
        :class:`Relation`."""
        relations = []
        assignment = list(assignment or [BOTTOM] * len(self._arities))
        if len(assignment) != len(self._arities):
            raise StoreError(
                f"initial assignment has {len(assignment)} entries for "
                f"{len(self._arities)} registers"
            )
        for arity, init in zip(self._arities, assignment):
            if init is BOTTOM or init is None:
                relations.append(Relation.empty(arity))
            elif isinstance(init, Relation):
                if init.arity != arity:
                    raise StoreError(
                        f"initial relation arity {init.arity} != declared {arity}"
                    )
                relations.append(init)
            else:
                if arity != 1:
                    raise StoreError(
                        "a scalar initial value needs a unary register"
                    )
                relations.append(Relation.singleton(init))  # type: ignore[arg-type]
        return RegisterStore(self, relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StoreSchema):
            return NotImplemented
        return self._arities == other._arities

    def __hash__(self) -> int:
        return hash(self._arities)

    def __repr__(self) -> str:
        return f"StoreSchema{self._arities!r}"


class RegisterStore:
    """An immutable assignment of relations to the schema's registers."""

    __slots__ = ("_schema", "_relations")

    def __init__(self, schema: StoreSchema, relations: Sequence[Relation]) -> None:
        if len(relations) != schema.count:
            raise StoreError(
                f"{len(relations)} relations for {schema.count} registers"
            )
        for i, (rel, arity) in enumerate(zip(relations, schema.arities), start=1):
            if rel.arity != arity:
                raise StoreError(
                    f"register {i}: relation arity {rel.arity} != declared {arity}"
                )
        self._schema = schema
        self._relations: Tuple[Relation, ...] = tuple(relations)

    @property
    def schema(self) -> StoreSchema:
        return self._schema

    def get(self, register: int) -> Relation:
        """Contents of register ``register`` (1-based)."""
        self._schema.check_register(register)
        return self._relations[register - 1]

    def set(self, register: int, relation: Relation) -> "RegisterStore":
        """A new store with register ``register`` replaced."""
        self._schema.check_register(register)
        if relation.arity != self._schema.arity(register):
            raise StoreError(
                f"register {register} has arity {self._schema.arity(register)}, "
                f"got relation of arity {relation.arity}"
            )
        relations = list(self._relations)
        relations[register - 1] = relation
        return RegisterStore(self._schema, relations)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations)

    def active_domain(self) -> frozenset:
        """All D-values occurring anywhere in the store."""
        out = set()
        for rel in self._relations:
            out |= rel.values()
        return frozenset(out)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterStore):
            return NotImplemented
        return self._schema == other._schema and self._relations == other._relations

    def __hash__(self) -> int:
        return hash((self._schema, self._relations))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"X{i}={rel!r}" for i, rel in enumerate(self._relations, start=1)
        )
        return f"RegisterStore({inner})"
