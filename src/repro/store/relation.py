"""Finite relations over the data domain D.

The relational storage of Definition 3.1 interprets each relation name
``X_i`` (of a fixed arity) by a finite relation over D.  Relations are
immutable and hashable — automaton configurations embed them, and the
executor's cycle detection hashes configurations.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Sequence, Tuple

from ..trees.values import DataValue, is_data_value

Row = Tuple[DataValue, ...]


class RelationError(ValueError):
    """Raised on arity mismatches or non-D values in relations."""


class Relation:
    """An immutable finite relation of fixed arity over D."""

    __slots__ = ("_arity", "_rows")

    def __init__(self, arity: int, rows: Iterable[Sequence[DataValue]] = ()) -> None:
        if arity < 1:
            raise RelationError(f"arity must be >= 1, got {arity}")
        self._arity = arity
        frozen = set()
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise RelationError(
                    f"row {row!r} has arity {len(row)}, expected {arity}"
                )
            for value in row:
                if not is_data_value(value):
                    raise RelationError(f"non-D value in relation: {value!r}")
            frozen.add(row)
        self._rows: FrozenSet[Row] = frozenset(frozen)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def empty(cls, arity: int) -> "Relation":
        return cls(arity, ())

    @classmethod
    def singleton(cls, *values: DataValue) -> "Relation":
        if not values:
            raise RelationError("a singleton needs at least one value")
        return cls(len(values), (tuple(values),))

    @classmethod
    def unary(cls, values: Iterable[DataValue]) -> "Relation":
        return cls(1, ((v,) for v in values))

    # -- inspection -------------------------------------------------------------

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def rows(self) -> FrozenSet[Row]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self._rows, key=repr))

    def __contains__(self, row: Sequence[DataValue]) -> bool:
        return tuple(row) in self._rows

    def values(self) -> FrozenSet[DataValue]:
        """All D-values occurring in some row (the relation's active domain)."""
        return frozenset(v for row in self._rows for v in row)

    def unary_values(self) -> FrozenSet[DataValue]:
        """For unary relations: the set of member values."""
        if self._arity != 1:
            raise RelationError(f"unary_values on arity-{self._arity} relation")
        return frozenset(row[0] for row in self._rows)

    def single_value(self) -> DataValue:
        """For a unary singleton: its one value (tw^l registers)."""
        if self._arity != 1 or len(self._rows) != 1:
            raise RelationError(
                f"single_value needs a unary singleton, got arity "
                f"{self._arity} with {len(self._rows)} rows"
            )
        return next(iter(self._rows))[0]

    # -- algebra ---------------------------------------------------------------

    def _require_same_schema(self, other: "Relation") -> None:
        if self._arity != other._arity:
            raise RelationError(
                f"arity mismatch: {self._arity} vs {other._arity}"
            )

    def union(self, other: "Relation") -> "Relation":
        self._require_same_schema(other)
        return Relation(self._arity, self._rows | other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        self._require_same_schema(other)
        return Relation(self._arity, self._rows & other._rows)

    def difference(self, other: "Relation") -> "Relation":
        self._require_same_schema(other)
        return Relation(self._arity, self._rows - other._rows)

    def project(self, columns: Sequence[int]) -> "Relation":
        """π: keep (and reorder) the given 0-based columns."""
        for c in columns:
            if not 0 <= c < self._arity:
                raise RelationError(f"column {c} out of range for arity {self._arity}")
        if not columns:
            raise RelationError("projection needs at least one column")
        return Relation(
            len(columns),
            (tuple(row[c] for c in columns) for row in self._rows),
        )

    def select_eq(self, column: int, value: DataValue) -> "Relation":
        """σ: rows whose ``column`` equals ``value``."""
        if not 0 <= column < self._arity:
            raise RelationError(f"column {column} out of range")
        return Relation(
            self._arity, (row for row in self._rows if row[column] == value)
        )

    def select_eq_cols(self, left: int, right: int) -> "Relation":
        """σ: rows whose two columns are equal."""
        for c in (left, right):
            if not 0 <= c < self._arity:
                raise RelationError(f"column {c} out of range")
        return Relation(
            self._arity, (row for row in self._rows if row[left] == row[right])
        )

    def product(self, other: "Relation") -> "Relation":
        """× : cartesian product."""
        return Relation(
            self._arity + other._arity,
            (a + b for a in self._rows for b in other._rows),
        )

    def join(self, other: "Relation", pairs: Sequence[Tuple[int, int]]) -> "Relation":
        """⋈ : equijoin on (self-column, other-column) pairs; result keeps
        all columns of both operands (self's first)."""
        from collections import defaultdict

        key_self = [a for a, _ in pairs]
        key_other = [b for _, b in pairs]
        index = defaultdict(list)
        for row in other._rows:
            index[tuple(row[c] for c in key_other)].append(row)
        out = []
        for row in self._rows:
            for match in index.get(tuple(row[c] for c in key_self), ()):
                out.append(row + match)
        return Relation(self._arity + other._arity, out)

    # -- equality / hashing -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._arity == other._arity and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._arity, self._rows))

    def __repr__(self) -> str:
        rows = sorted(self._rows, key=repr)
        if len(rows) > 6:
            shown = ", ".join(repr(r) for r in rows[:6]) + ", …"
        else:
            shown = ", ".join(repr(r) for r in rows)
        return f"Relation/{self._arity}{{{shown}}}"
