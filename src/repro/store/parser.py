"""Text syntax for the store logic (guards ξ and updates ψ).

Mirrors :mod:`repro.logic.parser`, but over the Definition 3.1 store
vocabulary: relation atoms ``X1(z)``, ``X2(z, w)``; term equality with
variables, ``@attr`` attribute constants and literal constants::

    exists z X1(z)
    forall z w (X1(z) & X1(w) -> z = w)          -- "X1 is a singleton"
    X1(@a)                                        -- current a-value stored
    z = "EUR" | z = 30

Grammar: the same connective level structure as the FO parser
(``forall/exists``, ``<->``, ``->``, ``|``, ``&``, ``~``, parens).
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..trees.values import DataValue
from . import fo as F
from .fo import StoreFormula, StoreFormulaError, Var


class StoreSyntaxError(StoreFormulaError):
    """Raised on malformed store-formula text."""

    def __init__(self, message: str, text: str, pos: int) -> None:
        super().__init__(f"{message} at {pos}: ...{text[pos:pos + 25]!r}")
        self.pos = pos


_KEYWORDS = {"forall", "exists", "true", "false", "∀", "∃"}


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text):
            if self.text[self.pos].isspace():
                self.pos += 1
            elif self.text.startswith("--", self.pos):
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end < 0 else end + 1
            else:
                break

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take(self, literal: str) -> bool:
        self.skip_ws()
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.take(literal):
            raise StoreSyntaxError(f"expected {literal!r}", self.text, self.pos)

    def error(self, message: str) -> StoreSyntaxError:
        return StoreSyntaxError(message, self.text, self.pos)

    def word(self) -> Optional[str]:
        self.skip_ws()
        start = self.pos
        if self.pos < len(self.text) and self.text[self.pos] in "∀∃":
            self.pos += 1
            return self.text[start : self.pos]
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        return self.text[start : self.pos] if self.pos > start else None


def _parse_term(sc: _Scanner) -> F.Term:
    sc.skip_ws()
    ch = sc.peek()
    if ch == "@":
        sc.take("@")
        name = sc.word()
        if not name:
            raise sc.error("expected an attribute name after '@'")
        return F.Attr(name)
    if ch in ('"', "'"):
        quote = ch
        sc.take(quote)
        out: List[str] = []
        while True:
            if sc.pos >= len(sc.text):
                raise sc.error("unterminated string constant")
            c = sc.text[sc.pos]
            sc.pos += 1
            if c == quote:
                return F.Const("".join(out))
            if c == "\\":
                out.append(sc.text[sc.pos])
                sc.pos += 1
            else:
                out.append(c)
    if ch == "-" or ch.isdigit():
        start = sc.pos
        if ch == "-":
            sc.pos += 1
        while sc.pos < len(sc.text) and sc.text[sc.pos].isdigit():
            sc.pos += 1
        return F.Const(int(sc.text[start : sc.pos]))
    name = sc.word()
    if name is None or name in _KEYWORDS:
        raise sc.error("expected a term (variable, @attr, or constant)")
    return Var(name)


class _Parser:
    def __init__(self, text: str) -> None:
        self.sc = _Scanner(text)

    def formula(self) -> StoreFormula:
        quantified = self._try_quantified()
        if quantified is not None:
            return quantified
        return self.iff()

    def _try_quantified(self) -> Optional[StoreFormula]:
        self.sc.skip_ws()
        saved = self.sc.pos
        word = self.sc.word()
        if word not in ("forall", "exists", "∀", "∃"):
            self.sc.pos = saved
            return None
        kind = "forall" if word in ("forall", "∀") else "exists"
        variables: List[Var] = []
        positions: List[int] = []
        while True:
            self.sc.skip_ws()
            saved_var = self.sc.pos
            name = self.sc.word()
            if (
                name is None
                or name in _KEYWORDS
                or self.sc.peek() == "("
            ):
                self.sc.pos = saved_var
                break
            variables.append(Var(name))
            positions.append(self.sc.pos)
        if not variables:
            raise self.sc.error(f"{kind} needs at least one variable")
        build = F.forall if kind == "forall" else F.exists
        last_error: Optional[StoreSyntaxError] = None
        for count in range(len(variables), 0, -1):
            self.sc.pos = positions[count - 1]
            try:
                body = self.formula()
            except StoreSyntaxError as error:
                last_error = error
                continue
            return build(variables[:count], body)
        assert last_error is not None
        raise last_error

    def iff(self) -> StoreFormula:
        left = self.implies()
        while self.sc.take("<->"):
            right = self.implies()
            left = F.conj(F.implies(left, right), F.implies(right, left))
        return left

    def implies(self) -> StoreFormula:
        left = self.or_()
        if self.sc.take("->") or self.sc.take("→"):
            return F.implies(left, self.implies())
        return left

    def or_(self) -> StoreFormula:
        parts = [self.and_()]
        while self.sc.take("|") or self.sc.take("∨"):
            parts.append(self.and_())
        return F.disj(*parts)

    def and_(self) -> StoreFormula:
        parts = [self.unary()]
        while self.sc.take("&") or self.sc.take("∧"):
            parts.append(self.unary())
        return F.conj(*parts)

    def unary(self) -> StoreFormula:
        if self.sc.take("~") or self.sc.take("¬"):
            return F.Not(self.unary())
        quantified = self._try_quantified()
        if quantified is not None:
            return quantified
        self.sc.skip_ws()
        if self.sc.peek() == "(":
            self.sc.expect("(")
            inner = self.formula()
            self.sc.expect(")")
            return inner
        return self.atom()

    def atom(self) -> StoreFormula:
        self.sc.skip_ws()
        saved = self.sc.pos
        word = self.sc.word()
        if word == "true":
            return F.TrueF()
        if word == "false":
            return F.FalseF()
        if word and word.startswith("X") and word[1:].isdigit():
            self.sc.skip_ws()
            if self.sc.peek() == "(":
                self.sc.expect("(")
                terms = [_parse_term(self.sc)]
                while self.sc.take(","):
                    terms.append(_parse_term(self.sc))
                self.sc.expect(")")
                return F.Rel(int(word[1:]), tuple(terms))
        # a term equality
        self.sc.pos = saved
        left = _parse_term(self.sc)
        if self.sc.take("!="):
            return F.Not(F.Eq(left, _parse_term(self.sc)))
        self.sc.expect("=")
        return F.Eq(left, _parse_term(self.sc))


def parse_store_formula(text: str) -> StoreFormula:
    """Parse store-logic text into a :class:`StoreFormula`."""
    parser = _Parser(text)
    formula = parser.formula()
    parser.sc.skip_ws()
    if parser.sc.pos != len(parser.sc.text):
        raise parser.sc.error("trailing input")
    return formula


def parse_guard(text: str) -> StoreFormula:
    """Parse and require a sentence (rule guards ξ are sentences)."""
    formula = parse_store_formula(text)
    free = F.free_variables(formula)
    if free:
        raise StoreFormulaError(
            f"a guard must be a sentence; free: "
            f"{sorted(v.name for v in free)}"
        )
    return formula
