"""Active-domain FO over the relational store (Definition 3.1).

Guards ξ and updates ψ of a tw^{r,l} automaton are FO formulas over the
vocabulary ``X̄ ∪ {a : a ∈ A} ∪ {d : d ∈ D}`` where each attribute name
and each data value is a *constant*.  The logic sees only the store and
the attribute values of the current node — no tree structure — and all
quantification ranges over the **active domain**: values in the store,
the current node's attribute values, and the constants mentioned by the
formula (plus any extra program constants supplied by the caller).

This is FO as relational calculus; :func:`evaluate` model-checks a
sentence, :func:`evaluate_update` materialises the relation
``{(z̄) : ψ(z̄)}`` that a rule writes into a register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..trees.values import BOTTOM, DataValue, MaybeValue, is_data_value
from .database import RegisterStore, StoreSchema, StoreError
from .relation import Relation


class StoreFormulaError(ValueError):
    """Raised on ill-formed store formulas (bad arity, unbound vars, …)."""


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A first-order variable ranging over the active domain."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A data constant d ∈ D."""

    value: DataValue

    def __post_init__(self) -> None:
        if not is_data_value(self.value):
            raise StoreFormulaError(f"constant must be in D: {self.value!r}")

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Attr:
    """An attribute constant: the current node's value of attribute ``name``.

    May denote ⊥ on delimiter nodes; atoms involving a ⊥-valued Attr are
    false except ``Eq(Attr, Attr)`` between two ⊥-valued attributes.
    """

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


Term = Union[Var, Const, Attr]


def _as_term(value: Union[Term, DataValue, str]) -> Term:
    """Coerce a raw Python value into a term (strings stay raw constants;
    to build a variable or attribute use Var/Attr explicitly)."""
    if isinstance(value, (Var, Const, Attr)):
        return value
    if is_data_value(value):
        return Const(value)  # type: ignore[arg-type]
    raise StoreFormulaError(f"cannot interpret {value!r} as a term")


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrueF:
    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF:
    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Rel:
    """``X_register(t₁, …, tₙ)`` — membership in a store relation."""

    register: int
    terms: Tuple[Term, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"X{self.register}({inner})"


@dataclass(frozen=True)
class Eq:
    """``t₁ = t₂``."""

    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"


@dataclass(frozen=True)
class Not:
    inner: "StoreFormula"

    def __repr__(self) -> str:
        return f"¬({self.inner!r})"


@dataclass(frozen=True)
class And:
    parts: Tuple["StoreFormula", ...]

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or:
    parts: Tuple["StoreFormula", ...]

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Implies:
    premise: "StoreFormula"
    conclusion: "StoreFormula"

    def __repr__(self) -> str:
        return f"({self.premise!r} → {self.conclusion!r})"


@dataclass(frozen=True)
class Exists:
    var: Var
    inner: "StoreFormula"

    def __repr__(self) -> str:
        return f"∃{self.var!r} {self.inner!r}"


@dataclass(frozen=True)
class Forall:
    var: Var
    inner: "StoreFormula"

    def __repr__(self) -> str:
        return f"∀{self.var!r} {self.inner!r}"


StoreFormula = Union[TrueF, FalseF, Rel, Eq, Not, And, Or, Implies, Exists, Forall]


# -- constructor helpers (the DSL used throughout the automaton library) ------


def rel(register: int, *terms: Union[Term, DataValue]) -> Rel:
    return Rel(register, tuple(_as_term(t) for t in terms))


def eq(left: Union[Term, DataValue], right: Union[Term, DataValue]) -> Eq:
    return Eq(_as_term(left), _as_term(right))


def neq(left: Union[Term, DataValue], right: Union[Term, DataValue]) -> Not:
    return Not(eq(left, right))


def conj(*parts: StoreFormula) -> StoreFormula:
    parts = tuple(parts)
    if not parts:
        return TrueF()
    if len(parts) == 1:
        return parts[0]
    return And(parts)


def disj(*parts: StoreFormula) -> StoreFormula:
    parts = tuple(parts)
    if not parts:
        return FalseF()
    if len(parts) == 1:
        return parts[0]
    return Or(parts)


def implies(premise: StoreFormula, conclusion: StoreFormula) -> Implies:
    return Implies(premise, conclusion)


def exists(variables: Union[Var, Sequence[Var]], inner: StoreFormula) -> StoreFormula:
    if isinstance(variables, Var):
        variables = [variables]
    out = inner
    for var in reversed(list(variables)):
        out = Exists(var, out)
    return out


def forall(variables: Union[Var, Sequence[Var]], inner: StoreFormula) -> StoreFormula:
    if isinstance(variables, Var):
        variables = [variables]
    out = inner
    for var in reversed(list(variables)):
        out = Forall(var, out)
    return out


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------


def free_variables(formula: StoreFormula) -> FrozenSet[Var]:
    """The free variables of ``formula``."""
    if isinstance(formula, (TrueF, FalseF)):
        return frozenset()
    if isinstance(formula, Rel):
        return frozenset(t for t in formula.terms if isinstance(t, Var))
    if isinstance(formula, Eq):
        return frozenset(t for t in (formula.left, formula.right) if isinstance(t, Var))
    if isinstance(formula, Not):
        return free_variables(formula.inner)
    if isinstance(formula, And) or isinstance(formula, Or):
        out: FrozenSet[Var] = frozenset()
        for part in formula.parts:
            out |= free_variables(part)
        return out
    if isinstance(formula, Implies):
        return free_variables(formula.premise) | free_variables(formula.conclusion)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.inner) - {formula.var}
    raise StoreFormulaError(f"unknown formula node {formula!r}")


def constants(formula: StoreFormula) -> FrozenSet[DataValue]:
    """All data constants mentioned by ``formula``."""
    if isinstance(formula, (TrueF, FalseF)):
        return frozenset()
    if isinstance(formula, Rel):
        return frozenset(t.value for t in formula.terms if isinstance(t, Const))
    if isinstance(formula, Eq):
        return frozenset(
            t.value for t in (formula.left, formula.right) if isinstance(t, Const)
        )
    if isinstance(formula, Not):
        return constants(formula.inner)
    if isinstance(formula, (And, Or)):
        out: FrozenSet[DataValue] = frozenset()
        for part in formula.parts:
            out |= constants(part)
        return out
    if isinstance(formula, Implies):
        return constants(formula.premise) | constants(formula.conclusion)
    if isinstance(formula, (Exists, Forall)):
        return constants(formula.inner)
    raise StoreFormulaError(f"unknown formula node {formula!r}")


def attributes_used(formula: StoreFormula) -> FrozenSet[str]:
    """All attribute constants mentioned by ``formula``."""
    if isinstance(formula, (TrueF, FalseF)):
        return frozenset()
    if isinstance(formula, Rel):
        return frozenset(t.name for t in formula.terms if isinstance(t, Attr))
    if isinstance(formula, Eq):
        return frozenset(
            t.name for t in (formula.left, formula.right) if isinstance(t, Attr)
        )
    if isinstance(formula, Not):
        return attributes_used(formula.inner)
    if isinstance(formula, (And, Or)):
        out: FrozenSet[str] = frozenset()
        for part in formula.parts:
            out |= attributes_used(part)
        return out
    if isinstance(formula, Implies):
        return attributes_used(formula.premise) | attributes_used(formula.conclusion)
    if isinstance(formula, (Exists, Forall)):
        return attributes_used(formula.inner)
    raise StoreFormulaError(f"unknown formula node {formula!r}")


def validate(formula: StoreFormula, schema: StoreSchema) -> None:
    """Check register indices and arities against ``schema``."""
    if isinstance(formula, Rel):
        schema.check_register(formula.register)
        expected = schema.arity(formula.register)
        if len(formula.terms) != expected:
            raise StoreFormulaError(
                f"X{formula.register} has arity {expected}, used with "
                f"{len(formula.terms)} terms"
            )
        return
    if isinstance(formula, (TrueF, FalseF, Eq)):
        return
    if isinstance(formula, Not):
        validate(formula.inner, schema)
        return
    if isinstance(formula, (And, Or)):
        for part in formula.parts:
            validate(part, schema)
        return
    if isinstance(formula, Implies):
        validate(formula.premise, schema)
        validate(formula.conclusion, schema)
        return
    if isinstance(formula, (Exists, Forall)):
        validate(formula.inner, schema)
        return
    raise StoreFormulaError(f"unknown formula node {formula!r}")


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StoreContext:
    """Everything a guard/update can see: the store, the current node's
    attribute values, and extra program constants for the active domain."""

    store: RegisterStore
    attr_values: Mapping[str, MaybeValue] = field(default_factory=dict)
    extra_constants: FrozenSet[DataValue] = frozenset()

    def active_domain(self, formula: StoreFormula) -> FrozenSet[DataValue]:
        domain = set(self.store.active_domain())
        for value in self.attr_values.values():
            if value is not BOTTOM:
                domain.add(value)
        domain |= constants(formula)
        domain |= self.extra_constants
        return frozenset(domain)


def _term_value(term: Term, env: Dict[Var, DataValue], ctx: StoreContext) -> MaybeValue:
    if isinstance(term, Var):
        try:
            return env[term]
        except KeyError:
            raise StoreFormulaError(f"unbound variable {term!r}") from None
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Attr):
        try:
            return ctx.attr_values[term.name]
        except KeyError:
            raise StoreFormulaError(
                f"attribute constant @{term.name} has no value at the "
                f"current node (A = {sorted(ctx.attr_values)})"
            ) from None
    raise StoreFormulaError(f"unknown term {term!r}")


def _eval(
    formula: StoreFormula,
    env: Dict[Var, DataValue],
    ctx: StoreContext,
    domain: FrozenSet[DataValue],
) -> bool:
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, Rel):
        row = tuple(_term_value(t, env, ctx) for t in formula.terms)
        if any(v is BOTTOM for v in row):
            return False  # relations never contain ⊥
        return row in ctx.store.get(formula.register)
    if isinstance(formula, Eq):
        return _term_value(formula.left, env, ctx) == _term_value(
            formula.right, env, ctx
        )
    if isinstance(formula, Not):
        return not _eval(formula.inner, env, ctx, domain)
    if isinstance(formula, And):
        return all(_eval(p, env, ctx, domain) for p in formula.parts)
    if isinstance(formula, Or):
        return any(_eval(p, env, ctx, domain) for p in formula.parts)
    if isinstance(formula, Implies):
        return (not _eval(formula.premise, env, ctx, domain)) or _eval(
            formula.conclusion, env, ctx, domain
        )
    if isinstance(formula, Exists):
        for value in domain:
            env[formula.var] = value
            if _eval(formula.inner, env, ctx, domain):
                del env[formula.var]
                return True
        env.pop(formula.var, None)
        return False
    if isinstance(formula, Forall):
        for value in domain:
            env[formula.var] = value
            if not _eval(formula.inner, env, ctx, domain):
                del env[formula.var]
                return False
        env.pop(formula.var, None)
        return True
    raise StoreFormulaError(f"unknown formula node {formula!r}")


def evaluate(formula: StoreFormula, ctx: StoreContext) -> bool:
    """Model-check a *sentence* against the store context."""
    unbound = free_variables(formula)
    if unbound:
        raise StoreFormulaError(
            f"guard must be a sentence; free variables {sorted(v.name for v in unbound)}"
        )
    validate(formula, ctx.store.schema)
    return _eval(formula, {}, ctx, ctx.active_domain(formula))


def evaluate_update(
    formula: StoreFormula,
    variables: Sequence[Var],
    ctx: StoreContext,
) -> Relation:
    """Materialise ``{(z̄) ∈ adom^m : ψ(z̄)}`` for an update ψ(z₁, …, zₘ).

    ``variables`` fixes the output column order (the register's columns).
    """
    validate(formula, ctx.store.schema)
    unbound = free_variables(formula) - set(variables)
    if unbound:
        raise StoreFormulaError(
            f"update has free variables {sorted(v.name for v in unbound)} "
            f"outside the declared tuple {[v.name for v in variables]}"
        )
    if len(set(variables)) != len(variables):
        raise StoreFormulaError("update tuple variables must be distinct")
    domain = ctx.active_domain(formula)
    rows = []

    def assign(index: int, env: Dict[Var, DataValue]) -> None:
        if index == len(variables):
            if _eval(formula, env, ctx, domain):
                rows.append(tuple(env[v] for v in variables))
            return
        for value in domain:
            env[variables[index]] = value
            assign(index + 1, env)
        env.pop(variables[index], None)

    assign(0, {})
    return Relation(max(len(variables), 1), rows) if variables else Relation(1, rows)
