"""The resilient call: fast engine under a budget, reference fallback.

``engine="resilient"`` on the facade routes through
:func:`resilient_call`.  The contract:

* the **fast** engine runs first, under a *fast-only budget slice* —
  half the caller's remaining budget, or a generous default fuel when
  the caller gave none — with any ambient fault injector armed;
* if the fast engine raises an :class:`EngineError` (including injected
  faults), exhausts its slice, or blows up with an unexpected internal
  exception, the incident is recorded on the database's
  :class:`~repro.resilience.log.ResilienceLog` and the **reference**
  engine answers instead, under whatever remains of the caller's budget
  and with fault injection disarmed;
* caller errors — :class:`ParseError` and ``ValueError`` input
  validation — propagate without fallback: the reference engine would
  reject the same input, so retrying it only doubles the latency of a
  caller mistake;
* if the *caller's* budget is exhausted (not just the fast slice), the
  :class:`ResourceExhausted` propagates: resilience degrades gracefully
  inside the budget, it does not overrule it.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, TypeVar

from .budget import Budget, ExecutionContext, activate
from .errors import ParseError, ResourceExhausted
from .log import ResilienceLog

__all__ = ["resilient_call", "DEFAULT_FAST_STEPS", "FAST_SLICE"]

T = TypeVar("T")

#: Fast-slice fuel when the caller supplied no budget: high enough that
#: no sane query ever trips it, low enough that a diverging fast engine
#: is caught in well under a second of big-int work.
DEFAULT_FAST_STEPS = 5_000_000

#: Fraction of the caller's remaining budget the fast engine may spend
#: before the executor cuts it off and banks the rest for the fallback.
FAST_SLICE = 0.5


def _fast_slice(budget: Optional[Budget]) -> Budget:
    if budget is None:
        return Budget(steps=DEFAULT_FAST_STEPS)
    return budget.slice(FAST_SLICE)


def resilient_call(
    operation: str,
    fast: Callable[[], T],
    reference: Callable[[], T],
    budget: Optional[Budget],
    log: ResilienceLog,
    faults=None,
) -> T:
    """Run ``fast`` under a budget slice; fall back to ``reference``.

    ``faults`` is the fault injector to arm during the fast attempt
    (``None`` outside fault campaigns).  Returns whichever engine's
    answer survives; see the module docstring for the full contract.
    """
    slice_budget = _fast_slice(budget)
    try:
        with activate(ExecutionContext(slice_budget, faults=faults)):
            value = fast()
    except (ParseError, ValueError):
        # A caller error: both engines would refuse it identically.
        raise
    except Exception as exc:  # EngineError, ResourceExhausted, or a bug
        if budget is not None:
            # Bill the fast attempt to the caller's budget; if that
            # alone exhausts it, the caller's limit wins over fallback.
            budget.checkpoint(slice_budget.steps)
        return _fallback(operation, reference, budget, log, exc)
    if budget is not None:
        # Bill the slice's spend without re-checking: the work already
        # happened inside limits derived from this budget, and a correct
        # answer in hand beats an edge-case raise.
        budget.steps += slice_budget.steps
    log.record_fast_success(operation)
    return value


def _fallback(
    operation: str,
    reference: Callable[[], T],
    budget: Optional[Budget],
    log: ResilienceLog,
    cause: BaseException,
) -> T:
    started = time.perf_counter()
    try:
        # ``faults=None``: injection never reaches the reference engine,
        # and a context is installed even without a budget so an outer
        # (armed) context cannot leak in.
        with activate(ExecutionContext(budget, faults=None)):
            value = reference()
    except ResourceExhausted:
        # The caller's own budget ran out mid-fallback: propagate, but
        # record that the fast engine had already failed.
        log.record_failure(operation, cause)
        raise
    except Exception as exc:
        log.record_failure(operation, exc)
        raise
    log.record_fallback(operation, cause, time.perf_counter() - started)
    return value
