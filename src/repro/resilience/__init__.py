"""Query-execution guardrails: budgets, cancellation, engine fallback
and fault injection.

The paper's query fragments hide NP-hard worst cases (Gottlob–Koch–
Schulz, *Conjunctive Queries over Trees*), and the fast engines of
:mod:`repro.engine` are exactly the code the differential oracle exists
to distrust.  This package makes every facade query survivable:

* :mod:`~repro.resilience.errors` — the exception taxonomy
  (``ReproError`` → ``ParseError`` / ``ResourceExhausted`` /
  ``EngineError`` / ``EngineDisagreement``);
* :mod:`~repro.resilience.budget` — cooperative :class:`Budget` limits
  (deadline, step fuel, result cap, depth, formula size) checked from
  every engine hot loop via an ambient :class:`ExecutionContext`;
* :mod:`~repro.resilience.executor` — ``engine="resilient"``: the fast
  engine under a budget slice, reference fallback on engine error or
  slice exhaustion;
* :mod:`~repro.resilience.log` — per-database incident accounting,
  surfaced as ``TreeDatabase.resilience_info()``;
* :mod:`~repro.resilience.faults` — deterministic fault injection and
  the seeded campaign harness behind ``python -m repro.resilience`` and
  ``make fault``.
"""

from .budget import (  # noqa: F401
    Budget,
    ExecutionContext,
    activate,
    checkpoint,
    current_context,
)
from .errors import (  # noqa: F401
    EngineDisagreement,
    EngineError,
    InjectedFault,
    InjectedStall,
    ParseError,
    ReproError,
    ResourceExhausted,
)
from .executor import DEFAULT_FAST_STEPS, FAST_SLICE, resilient_call  # noqa: F401
from .faults import (  # noqa: F401
    CampaignCase,
    CampaignReport,
    Fault,
    FaultInjector,
    broken_internals,
    run_campaign,
)
from .log import Incident, OperationStats, ResilienceLog  # noqa: F401

__all__ = [
    "ReproError",
    "ParseError",
    "ResourceExhausted",
    "EngineError",
    "EngineDisagreement",
    "InjectedFault",
    "InjectedStall",
    "Budget",
    "ExecutionContext",
    "activate",
    "current_context",
    "checkpoint",
    "resilient_call",
    "DEFAULT_FAST_STEPS",
    "FAST_SLICE",
    "ResilienceLog",
    "Incident",
    "OperationStats",
    "Fault",
    "FaultInjector",
    "broken_internals",
    "CampaignCase",
    "CampaignReport",
    "run_campaign",
]
