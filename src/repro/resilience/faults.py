"""Deterministic fault injection for the resilient executor.

The budget checkpoints threaded through every engine hot loop double as
injection points: a :class:`FaultInjector` armed on the *fast* slice of
a resilient call counts checkpoints and, at the Nth one of a seeded
schedule, raises either an :class:`InjectedFault` (a simulated engine
bug) or an :class:`InjectedStall` (a simulated hang, surfacing exactly
as budget exhaustion would).  Because the schedule is a pure function
of the campaign seed, every failure is replayable bit-for-bit.

:func:`run_campaign` is the harness: for each seeded case it generates
a document and a query, computes the reference answer, re-runs the
query with ``engine="resilient"`` under an injected fault, and demands
(1) no uncaught exception, (2) the answer came via fallback, and
(3) the answer is byte-identical to the reference's.  A disagreement is
reported as a structured :class:`~repro.resilience.errors.EngineDisagreement`
record, mirroring the differential oracle's verdicts.

For faults *outside* the checkpoint fabric there is
:func:`broken_internals`: a monkeypatch-style context manager that wraps
a module attribute so its Nth call raises — used by the test suite to
prove fallback also survives engines that die before their first
checkpoint.

``python -m repro.resilience`` runs a campaign from the command line;
``make fault`` pins the seeded 200-case CI campaign.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from .errors import EngineDisagreement, InjectedFault, InjectedStall

__all__ = [
    "Fault",
    "FaultInjector",
    "broken_internals",
    "CampaignCase",
    "CampaignReport",
    "run_campaign",
]


@dataclass(frozen=True)
class Fault:
    """One scheduled failure: blow up at the ``at_checkpoint``-th
    checkpoint, as a bug (``"error"``), a hang (``"stall"``), or a
    whole-process death (``"crash"``).

    ``"crash"`` calls ``os._exit`` — it exists to kill a *worker
    process* mid-chunk so the parent-side retry/degrade machinery can
    be exercised deterministically.  Never arm it on an in-process
    evaluation: the process it kills is yours."""

    at_checkpoint: int
    kind: str = "error"

    def __post_init__(self) -> None:
        if self.kind not in ("error", "stall", "crash"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_checkpoint < 1:
            raise ValueError("at_checkpoint is 1-based and must be >= 1")


class FaultInjector:
    """Counts checkpoints; fires its fault at the scheduled one.

    With ``fault=None`` it only counts — the campaign uses a counting
    pass to learn how many checkpoints a query executes, then schedules
    the real fault uniformly inside that range.
    """

    __slots__ = ("fault", "count", "fired")

    def __init__(self, fault: Optional[Fault] = None) -> None:
        self.fault = fault
        self.count = 0
        self.fired = 0

    def checkpoint(self) -> None:
        self.count += 1
        fault = self.fault
        if fault is not None and self.count == fault.at_checkpoint:
            self.fired += 1
            if fault.kind == "crash":
                import os

                os._exit(23)  # a worker process dying mid-chunk
            if fault.kind == "error":
                raise InjectedFault(
                    f"injected engine fault at checkpoint {fault.at_checkpoint}"
                )
            raise InjectedStall(
                f"injected stall at checkpoint {fault.at_checkpoint}",
                resource="deadline",
                steps=self.count,
                limit=fault.at_checkpoint,
            )


@contextmanager
def broken_internals(
    obj: object, name: str, *, calls_before_failure: int = 0
) -> Iterator[None]:
    """Monkeypatch-wrap ``obj.name`` so it raises an
    :class:`InjectedFault` after ``calls_before_failure`` successful
    calls — the blunt instrument for faults the checkpoint fabric cannot
    reach (an engine dying on entry, a compiler bug).  Restores the
    original on exit, exception or not."""
    original = getattr(obj, name)
    state = {"calls": 0}

    def wrapper(*args, **kwargs):
        state["calls"] += 1
        if state["calls"] > calls_before_failure:
            raise InjectedFault(
                f"injected fault in {name} (call {state['calls']})"
            )
        return original(*args, **kwargs)

    setattr(obj, name, wrapper)
    try:
        yield
    finally:
        setattr(obj, name, original)


# ---------------------------------------------------------------------------
# The campaign harness
# ---------------------------------------------------------------------------


@dataclass
class CampaignCase:
    """One injected-fault trial and its verdict."""

    index: int
    operation: str
    query: str
    tree: str
    fault: Optional[Fault]
    checkpoints: int  #: checkpoints the un-faulted fast run executed
    fell_back: bool
    agreed: bool
    error: Optional[str] = None  #: uncaught exception, if any


@dataclass
class CampaignReport:
    """Aggregate of one fault campaign."""

    seed: int
    cases: List[CampaignCase] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return sum(1 for c in self.cases if c.fault is not None)

    @property
    def fallbacks(self) -> int:
        return sum(1 for c in self.cases if c.fell_back)

    @property
    def disagreements(self) -> List[CampaignCase]:
        return [c for c in self.cases if not c.agreed]

    @property
    def uncaught(self) -> List[CampaignCase]:
        return [c for c in self.cases if c.error is not None]

    @property
    def ok(self) -> bool:
        return not self.disagreements and not self.uncaught

    def summary_lines(self) -> List[str]:
        lines = [
            f"fault campaign: seed={self.seed} cases={len(self.cases)} "
            f"injected={self.injected} fallbacks={self.fallbacks} "
            f"disagreements={len(self.disagreements)} "
            f"uncaught={len(self.uncaught)}"
        ]
        for case in self.cases:
            if case.agreed and case.error is None:
                continue
            lines.append(
                f"  case {case.index} [{case.operation}] {case.query!r} on "
                f"{case.tree!r} fault={case.fault}: "
                + (case.error or "answers disagree")
            )
        return lines


#: The facade operations a campaign exercises, round-robin.
_OPERATIONS = ("xpath", "holds", "caterpillar", "caterpillar_relation", "run_automaton")


def _generate(operation: str, rng: random.Random, max_size: int):
    """A (tree, query-text/payload, reference-thunk-args) for one case.
    Reuses the oracle's seeded generators so campaign inputs match the
    differential corpus' distribution."""
    from ..oracle import generators as gen

    tree = gen.random_attributed_tree(rng, max_size)
    if operation == "xpath":
        # random_xpath guarantees a repr → parse_xpath round trip.
        query = repr(gen.random_xpath(rng))
        return tree, query
    if operation == "holds":
        from ..logic.parser import format_formula

        query = format_formula(gen.random_fo_sentence(rng))
        return tree, query
    if operation in ("caterpillar", "caterpillar_relation"):
        from ..caterpillar.parser import format_caterpillar

        query = format_caterpillar(gen.random_caterpillar(rng))
        return tree, query
    specimen = gen.random_automaton_specimen(rng)
    return tree, specimen


def _run(db, operation: str, query, engine: str):
    """Dispatch one facade call; returns a canonically comparable value."""
    if operation == "xpath":
        return db.xpath(query, engine=engine)
    if operation == "holds":
        return db.ask(query, engine=engine)
    if operation == "caterpillar":
        return db.caterpillar(query, engine=engine)
    if operation == "caterpillar_relation":
        return tuple(sorted(db.caterpillar_relation(query, engine=engine)))
    # run_automaton: the specimen knows whether it needs delim(t)
    automaton, delimited = query.build()
    return db.run_automaton(automaton, delimited=delimited, engine=engine)


def _describe_query(operation: str, query) -> str:
    if operation == "run_automaton":
        return f"automaton:{query.template}"
    return str(query)


def run_campaign(
    seed: int,
    cases: int = 200,
    max_size: int = 8,
    operations: Sequence[str] = _OPERATIONS,
    on_case: Optional[Callable[[CampaignCase], None]] = None,
) -> CampaignReport:
    """Run a seeded fault campaign; see the module docstring.

    Each case: generate → reference answer → count the fast engine's
    checkpoints → inject a fault at a uniformly chosen checkpoint →
    assert fallback answered with the reference's exact answer.
    """
    from ..queries import TreeDatabase

    rng = random.Random(seed)
    report = CampaignReport(seed=seed)
    for i in range(cases):
        operation = operations[i % len(operations)]
        tree, query = _generate(operation, rng, max_size)
        db = TreeDatabase(tree)
        case = CampaignCase(
            index=i,
            operation=operation,
            query=_describe_query(operation, query),
            tree=db.to_term(),
            fault=None,
            checkpoints=0,
            fell_back=False,
            agreed=False,
        )
        try:
            expected = _run(db, operation, query, engine="reference")
            # Counting pass: how many checkpoints does the fast slice run?
            counter = FaultInjector()
            db._fault_injector = counter
            try:
                _run(db, operation, query, engine="resilient")
            finally:
                db._fault_injector = None
            case.checkpoints = counter.count
            if counter.count:
                kind = "error" if rng.random() < 0.5 else "stall"
                case.fault = Fault(rng.randint(1, counter.count), kind)
                injector = FaultInjector(case.fault)
                db._fault_injector = injector
                try:
                    answer = _run(db, operation, query, engine="resilient")
                finally:
                    db._fault_injector = None
                info = db.resilience_info()
                case.fell_back = info["fallbacks"] > 0 and injector.fired > 0
            else:
                # Query too small to checkpoint: still a (fault-free)
                # resilient run, counted but not injected.
                answer = _run(db, operation, query, engine="resilient")
            case.agreed = answer == expected
            if not case.agreed:
                case.error = str(
                    EngineDisagreement(
                        f"fallback answer differs from reference on case {i}",
                        left=answer,
                        right=expected,
                    )
                )
                case.error = f"EngineDisagreement: {case.error}"
        except Exception as exc:  # an uncaught escape IS the campaign failure
            case.error = f"{type(exc).__name__}: {exc}"
        report.cases.append(case)
        if on_case is not None:
            on_case(case)
    return report
