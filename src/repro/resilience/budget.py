"""Cooperative execution budgets.

A :class:`Budget` bounds one query evaluation along five axes — a
wall-clock deadline, a step/node-visit fuel, a result-cardinality cap,
a recursion-depth limit and a formula-size limit.  It is *cooperative*:
the engine hot loops (``repro.engine.fo/xpath/walk``, the automaton
runner, and the reference evaluators) call :func:`checkpoint` as they
work, and the active budget raises a structured
:class:`~repro.resilience.errors.ResourceExhausted` the moment a limit
trips — never a wrong answer, never a partial one.

Budgets are threaded *ambiently* through an :class:`ExecutionContext`
held in a :class:`contextvars.ContextVar`, so the dozens of existing
engine entry points did not have to grow a ``budget=`` parameter each:
the facade (or the resilient executor) activates a context around the
call, and every checkpoint inside — however deep — sees it.  When no
context is active a checkpoint is a single ``ContextVar.get`` returning
``None``, which keeps the un-budgeted happy path within noise of the
pre-budget code (the ``make bench-check`` floor guards this).

The same checkpoints double as the fault-injection points of
:mod:`repro.resilience.faults`: an armed context consults its injector
first, so a seeded campaign can deterministically blow up "the Nth
unit of work" inside any engine.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from .errors import ResourceExhausted

__all__ = [
    "Budget",
    "ExecutionContext",
    "activate",
    "current_context",
    "checkpoint",
]


class Budget:
    """Limits for one evaluation, with running counters.

    All limits are optional; ``Budget()`` is unlimited (but still
    counts steps, which the resilient executor uses for accounting).

    ``seconds`` is converted to a monotonic deadline at construction
    time, so build the budget right before using it.
    """

    __slots__ = (
        "step_limit",
        "deadline",
        "max_results",
        "max_depth",
        "max_formula_size",
        "steps",
    )

    def __init__(
        self,
        *,
        steps: Optional[int] = None,
        seconds: Optional[float] = None,
        max_results: Optional[int] = None,
        max_depth: Optional[int] = None,
        max_formula_size: Optional[int] = None,
    ) -> None:
        if steps is not None and steps < 0:
            raise ValueError("steps must be >= 0")
        if seconds is not None and seconds < 0:
            raise ValueError("seconds must be >= 0")
        self.step_limit = steps
        self.deadline = None if seconds is None else time.monotonic() + seconds
        self.max_results = max_results
        self.max_depth = max_depth
        self.max_formula_size = max_formula_size
        self.steps = 0

    # -- the hot-path check -------------------------------------------------

    def checkpoint(self, cost: int = 1) -> None:
        """Charge ``cost`` units of work; raise when a limit trips.

        ``cost`` may be large — engines charge the *predicted* size of a
        materialisation up front, so a join that would build n^k rows is
        refused before the first row exists.
        """
        self.steps += cost
        if self.step_limit is not None and self.steps > self.step_limit:
            raise ResourceExhausted(
                f"step budget {self.step_limit} exhausted",
                resource="steps",
                steps=self.steps,
                limit=self.step_limit,
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise ResourceExhausted(
                "deadline exceeded",
                resource="deadline",
                steps=self.steps,
                limit=self.deadline,
            )

    # -- coarse, call-site checks ------------------------------------------

    def check_results(self, count: int) -> None:
        """Refuse a result set larger than the cardinality cap."""
        if self.max_results is not None and count > self.max_results:
            raise ResourceExhausted(
                f"result cardinality {count} exceeds cap {self.max_results}",
                resource="results",
                steps=count,
                limit=self.max_results,
            )

    def check_depth(self, depth: int) -> None:
        """Refuse recursion (e.g. nested ``atp`` subcomputations) deeper
        than the limit."""
        if self.max_depth is not None and depth > self.max_depth:
            raise ResourceExhausted(
                f"recursion depth {depth} exceeds limit {self.max_depth}",
                resource="depth",
                steps=depth,
                limit=self.max_depth,
            )

    def check_formula_size(self, size: int) -> None:
        """Refuse a formula/expression with more than the allowed number
        of subterms — the cheapest defence against adversarial inputs,
        applied before any evaluation starts."""
        if self.max_formula_size is not None and size > self.max_formula_size:
            raise ResourceExhausted(
                f"formula size {size} exceeds limit {self.max_formula_size}",
                resource="formula-size",
                steps=size,
                limit=self.max_formula_size,
            )

    # -- derived budgets ----------------------------------------------------

    def remaining_steps(self) -> Optional[int]:
        if self.step_limit is None:
            return None
        return max(self.step_limit - self.steps, 0)

    def slice(self, fraction: float) -> "Budget":
        """A child budget holding ``fraction`` of the remaining steps and
        wall-clock, with the other limits inherited.  The resilient
        executor gives the fast engine such a slice, keeping the rest in
        reserve for the reference fallback."""
        child = Budget(
            max_results=self.max_results,
            max_depth=self.max_depth,
            max_formula_size=self.max_formula_size,
        )
        remaining = self.remaining_steps()
        if remaining is not None:
            child.step_limit = max(int(remaining * fraction), 1)
        if self.deadline is not None:
            now = time.monotonic()
            child.deadline = now + max(self.deadline - now, 0.0) * fraction
        return child

    def __repr__(self) -> str:
        limits = []
        if self.step_limit is not None:
            limits.append(f"steps={self.step_limit}")
        if self.deadline is not None:
            limits.append("deadline=set")
        if self.max_results is not None:
            limits.append(f"max_results={self.max_results}")
        if self.max_depth is not None:
            limits.append(f"max_depth={self.max_depth}")
        if self.max_formula_size is not None:
            limits.append(f"max_formula_size={self.max_formula_size}")
        return f"Budget({', '.join(limits) or 'unlimited'}; spent={self.steps})"


class ExecutionContext:
    """What the checkpoints see: an optional budget and an optional
    fault injector (armed only on the fast slice of a resilient call)."""

    __slots__ = ("budget", "faults")

    def __init__(self, budget: Optional[Budget] = None, faults=None) -> None:
        self.budget = budget
        self.faults = faults

    def checkpoint(self, cost: int = 1) -> None:
        if self.faults is not None:
            self.faults.checkpoint()
        if self.budget is not None:
            self.budget.checkpoint(cost)


#: The ambient context.  ``None`` means "no budget, no faults": the
#: checkpoint degenerates to one ContextVar read.
_ACTIVE: "ContextVar[Optional[ExecutionContext]]" = ContextVar(
    "repro_execution_context", default=None
)


def current_context() -> Optional[ExecutionContext]:
    """The active :class:`ExecutionContext`, if any.  Hot loops fetch it
    once per call and skip checkpoints entirely when it is ``None``."""
    return _ACTIVE.get()


@contextmanager
def activate(context: Optional[ExecutionContext]) -> Iterator[Optional[ExecutionContext]]:
    """Install ``context`` as the ambient execution context.

    Contexts nest; the innermost wins (the resilient executor relies on
    this to give the fast slice its own budget under a caller's outer
    one).  ``activate(None)`` explicitly *clears* the ambient context —
    the fallback path uses that to shield the reference engine from a
    fault injector armed further out.
    """
    token = _ACTIVE.set(context)
    try:
        yield context
    finally:
        _ACTIVE.reset(token)


def checkpoint(cost: int = 1) -> None:
    """Module-level convenience for cold call sites: charge the ambient
    context if one is active."""
    context = _ACTIVE.get()
    if context is not None:
        context.checkpoint(cost)
