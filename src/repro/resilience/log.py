"""Per-database incident accounting for resilient execution.

Every :class:`~repro.queries.facade.TreeDatabase` owns one
:class:`ResilienceLog`.  The resilient executor records what happened
to each call — fast success, fallback (with the triggering error and
the fallback's latency), or hard failure — and
``TreeDatabase.resilience_info()`` exposes the aggregate, so a service
operator can see at a glance whether the fast engines are degrading on
live traffic.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

__all__ = ["Incident", "OperationStats", "ResilienceLog"]

#: How many recent incidents each log retains verbatim.
INCIDENT_HISTORY = 32


@dataclass(frozen=True)
class Incident:
    """One fallback (or hard failure) event."""

    operation: str  #: facade method name, e.g. ``"xpath"``
    kind: str  #: ``"engine-error"`` | ``"resource-exhausted"`` | ``"failure"``
    error: str  #: ``"ExcType: message"`` of the triggering exception
    fallback_seconds: float  #: reference-engine latency (0.0 for failures)


@dataclass
class OperationStats:
    """Counters for one facade operation."""

    calls: int = 0
    fast_successes: int = 0
    fallbacks: int = 0
    failures: int = 0


class ResilienceLog:
    """Counts, last error and fallback latency of resilient calls.

    Recording and snapshotting hold an internal lock: the query service
    shares one log across concurrent sessions, and ``snapshot()`` must
    never observe a half-applied record (counters bumped but incident
    not yet appended)."""

    __slots__ = ("per_operation", "incidents", "fallback_seconds", "_lock")

    def __init__(self) -> None:
        self.per_operation: Dict[str, OperationStats] = {}
        self.incidents: Deque[Incident] = deque(maxlen=INCIDENT_HISTORY)
        self.fallback_seconds = 0.0
        self._lock = threading.RLock()

    def _stats(self, operation: str) -> OperationStats:
        stats = self.per_operation.get(operation)
        if stats is None:
            stats = self.per_operation[operation] = OperationStats()
        return stats

    def record_fast_success(self, operation: str) -> None:
        with self._lock:
            stats = self._stats(operation)
            stats.calls += 1
            stats.fast_successes += 1

    def record_fallback(
        self, operation: str, error: BaseException, fallback_seconds: float
    ) -> None:
        from .errors import ResourceExhausted

        kind = (
            "resource-exhausted"
            if isinstance(error, ResourceExhausted)
            else "engine-error"
        )
        incident = Incident(
            operation,
            kind,
            f"{type(error).__name__}: {error}",
            fallback_seconds,
        )
        with self._lock:
            stats = self._stats(operation)
            stats.calls += 1
            stats.fallbacks += 1
            self.fallback_seconds += fallback_seconds
            self.incidents.append(incident)

    def record_failure(self, operation: str, error: BaseException) -> None:
        incident = Incident(
            operation, "failure", f"{type(error).__name__}: {error}", 0.0
        )
        with self._lock:
            stats = self._stats(operation)
            stats.calls += 1
            stats.failures += 1
            self.incidents.append(incident)

    @property
    def last_incident(self) -> Optional[Incident]:
        return self.incidents[-1] if self.incidents else None

    def snapshot(self) -> Dict:
        """A JSON-able summary (what ``resilience_info()`` returns)."""
        with self._lock:
            totals = OperationStats()
            for stats in self.per_operation.values():
                totals.calls += stats.calls
                totals.fast_successes += stats.fast_successes
                totals.fallbacks += stats.fallbacks
                totals.failures += stats.failures
            last = self.last_incident
            return {
                "calls": totals.calls,
                "fast_successes": totals.fast_successes,
                "fallbacks": totals.fallbacks,
                "failures": totals.failures,
                "fallback_seconds": self.fallback_seconds,
                "last_error": None if last is None else last.error,
                "per_operation": {
                    name: {
                        "calls": s.calls,
                        "fast_successes": s.fast_successes,
                        "fallbacks": s.fallbacks,
                        "failures": s.failures,
                    }
                    for name, s in sorted(self.per_operation.items())
                },
            }

    def clear(self) -> None:
        with self._lock:
            self.per_operation.clear()
            self.incidents.clear()
            self.fallback_seconds = 0.0

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"ResilienceLog(calls={snap['calls']}, "
            f"fallbacks={snap['fallbacks']}, failures={snap['failures']})"
        )
