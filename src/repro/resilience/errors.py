"""The repository-wide exception taxonomy.

Before this module existed, engines raised a mix of bare
``RuntimeError``/``ValueError`` subclasses with nothing machine-readable
on them; a caller could not tell "your query is malformed" apart from
"the engine ran out of budget" apart from "the engine is buggy" without
string-matching messages.  The taxonomy gives every failure a place:

``ReproError``
    The root.  Everything the package raises deliberately derives from
    it, so ``except ReproError`` is the catch-all for *expected* failure
    modes (as opposed to genuine bugs, which raise whatever they raise).

``ParseError``
    The input text was malformed (XPath, caterpillar, FO, term or XML
    syntax).  Also a :class:`ValueError`, so pre-taxonomy callers that
    caught ``ValueError`` keep working.  Parse errors are *caller*
    errors: the resilient executor never falls back on them, because the
    reference engine would reject the same text.

``ResourceExhausted``
    A budget ran out — wall-clock deadline, step/node-visit fuel,
    result-cardinality cap, or a recursion/formula-size limit.  Carries
    ``resource`` (which limit), ``steps`` (how much was spent) and
    ``limit`` (the bound) as structured fields; ``str(exc)`` keeps the
    historical message of whichever ``fuel`` guard it replaced.  Also a
    :class:`RuntimeError` for pre-taxonomy compatibility.

``EngineError``
    An evaluation engine failed for a reason that is *not* the caller's
    fault and *not* a budget: an internal invariant broke, or a fault
    was injected by the test harness (:class:`InjectedFault`).  The
    resilient executor treats these as "this engine is untrustworthy on
    this input" and falls back to the reference evaluator.

``EngineDisagreement``
    Two engines returned different answers for the same query — the
    differential oracle's finding, promoted to an exception so fault
    campaigns and ``verify`` modes can raise it with both answers
    attached.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "ParseError",
    "ResourceExhausted",
    "EngineError",
    "EngineDisagreement",
    "InjectedFault",
    "InjectedStall",
]


class ReproError(Exception):
    """Root of every deliberate failure the package raises."""


class ParseError(ReproError, ValueError):
    """Malformed query/document text (never triggers engine fallback)."""


class ResourceExhausted(ReproError, RuntimeError):
    """A budget ran out before the computation settled.

    ``resource`` names the exhausted limit (``"steps"``, ``"deadline"``,
    ``"results"``, ``"depth"`` or ``"formula-size"``); ``steps`` is the
    amount spent when the limit tripped and ``limit`` the bound itself
    (either may be ``None`` when the guard did not track it).
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str = "steps",
        steps: Optional[int] = None,
        limit: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.resource = resource
        self.steps = steps
        self.limit = limit

    def __reduce__(self):
        # Keyword-only fields survive pickling across worker processes
        # (the default exception reduce would drop them, and the query
        # service routes on ``resource`` to tell a deadline expiry from
        # a step-quota trip).
        return (
            _rebuild_resource_exhausted,
            (type(self), str(self), self.resource, self.steps, self.limit),
        )


def _rebuild_resource_exhausted(cls, message, resource, steps, limit):
    return cls(message, resource=resource, steps=steps, limit=limit)


class EngineError(ReproError, RuntimeError):
    """An evaluation engine failed internally (not a caller error, not a
    budget) — the resilient executor's cue to fall back."""


class EngineDisagreement(ReproError, RuntimeError):
    """Two engines answered the same query differently.

    ``left``/``right`` carry the two answers (as comparable summaries).
    """

    def __init__(self, message: str, *, left: object = None, right: object = None) -> None:
        super().__init__(message)
        self.left = left
        self.right = right


class InjectedFault(EngineError):
    """A deterministic failure injected by :mod:`repro.resilience.faults`."""


class InjectedStall(ResourceExhausted):
    """An injected stall: the harness simulating a fast engine that
    hangs until its budget slice expires."""
