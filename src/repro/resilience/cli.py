"""Command line of the fault-injection harness.

Run the CI campaign (200 seeded cases, every facade operation)::

    python -m repro.resilience --seed 0 --cases 200

Bigger documents, one operation only, verbose per-case progress::

    python -m repro.resilience --seed 7 --cases 50 --max-size 14 \\
        --operations xpath holds --verbose

Exit status is 0 iff every injected fault was absorbed: no uncaught
exception, and every fallback answer byte-identical to the reference
engine's.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .faults import _OPERATIONS, run_campaign


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Seeded fault-injection campaigns over the resilient "
        "query executor.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for the whole campaign (default 0)")
    parser.add_argument("--cases", type=int, default=200,
                        help="number of generated cases (default 200)")
    parser.add_argument("--max-size", type=int, default=8,
                        help="max nodes per generated tree (default 8)")
    parser.add_argument("--operations", nargs="+", metavar="OP",
                        choices=list(_OPERATIONS), default=None,
                        help=f"restrict to these facade operations "
                             f"(default: all of {', '.join(_OPERATIONS)})")
    parser.add_argument("--verbose", action="store_true",
                        help="print each case as it runs")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    def narrate(case) -> None:
        status = "error" if case.error else (
            "fallback" if case.fell_back else "clean"
        )
        print(f"  case {case.index:>4} [{case.operation}] "
              f"fault={case.fault} -> {status}")

    report = run_campaign(
        seed=args.seed,
        cases=args.cases,
        max_size=args.max_size,
        operations=tuple(args.operations) if args.operations else _OPERATIONS,
        on_case=narrate if args.verbose else None,
    )
    for line in report.summary_lines():
        print(line)
    if not report.ok:
        print("FAULT CAMPAIGN FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
