"""``python -m repro.resilience`` — seeded fault-injection campaigns."""

import sys

from .cli import main

sys.exit(main())
