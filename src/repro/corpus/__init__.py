"""Set-at-a-time query execution over corpora of trees.

The paper's data-complexity results are statements about one fixed
query and arbitrarily many (or arbitrarily large) instances.  This
package is that reading made into an engine: a :class:`TreeCorpus`
holds many indexed trees, a batch of :class:`CorpusQuery` texts
compiles once through the process-wide shared plan cache, and
:func:`run_batch` sweeps the (tree × query) grid chunk by chunk —
serially or fanned out over a process pool — with per-chunk
reference-engine degradation on faults (the PR-4 resilience contract
lifted to batches).

Corpora can also live on disk: a :class:`CorpusStore` is a directory
of append-only segment files ingested by streaming (bounded memory),
queried through the same batch executor with mmap-lazy shard loading
in the workers, and editable in place with incremental index repair
(:mod:`repro.corpus.store`).  Sealed segments carry generation-tied
``.rpridx`` index sidecars (:class:`Sidecar`), so vectorized-eligible
windows assemble their stacked shards straight from serialized index
bytes — no tree unpickling, no per-tree index rebuild.

>>> from repro.corpus import TreeCorpus, xpath_query
>>> corpus = TreeCorpus.from_terms(["σ(δ, σ)", "δ(σ(δ))"])
>>> result = corpus.run([xpath_query("//δ")])
>>> [len(nodes) for nodes in result.for_query(0)]
[1, 1]
"""

from .corpus import TreeCorpus
from .executor import BatchResult, ChunkReport, run_batch
from .query import (
    KINDS,
    CorpusQuery,
    ask_query,
    caterpillar_query,
    caterpillar_relation_query,
    select_query,
    xpath_query,
)
from .segment import (
    Segment,
    SegmentWriter,
    Sidecar,
    recover_segment,
    sidecar_path,
    write_sidecar,
)
from .store import (
    CorpusStore,
    StoreCorruptError,
    StoreError,
    StoreLockedError,
    StoreMissingError,
    StoreVersionError,
)

__all__ = [
    "BatchResult",
    "ChunkReport",
    "CorpusQuery",
    "CorpusStore",
    "KINDS",
    "Segment",
    "SegmentWriter",
    "Sidecar",
    "StoreCorruptError",
    "StoreError",
    "StoreLockedError",
    "StoreMissingError",
    "StoreVersionError",
    "TreeCorpus",
    "ask_query",
    "caterpillar_query",
    "caterpillar_relation_query",
    "recover_segment",
    "run_batch",
    "select_query",
    "sidecar_path",
    "write_sidecar",
    "xpath_query",
]
