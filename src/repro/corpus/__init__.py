"""Set-at-a-time query execution over corpora of trees.

The paper's data-complexity results are statements about one fixed
query and arbitrarily many (or arbitrarily large) instances.  This
package is that reading made into an engine: a :class:`TreeCorpus`
holds many indexed trees, a batch of :class:`CorpusQuery` texts
compiles once through the process-wide shared plan cache, and
:func:`run_batch` sweeps the (tree × query) grid chunk by chunk —
serially or fanned out over a process pool — with per-chunk
reference-engine degradation on faults (the PR-4 resilience contract
lifted to batches).

>>> from repro.corpus import TreeCorpus, xpath_query
>>> corpus = TreeCorpus.from_terms(["σ(δ, σ)", "δ(σ(δ))"])
>>> result = corpus.run([xpath_query("//δ")])
>>> [len(nodes) for nodes in result.for_query(0)]
[1, 1]
"""

from .corpus import TreeCorpus
from .executor import BatchResult, ChunkReport, run_batch
from .query import (
    KINDS,
    CorpusQuery,
    ask_query,
    caterpillar_query,
    caterpillar_relation_query,
    select_query,
    xpath_query,
)

__all__ = [
    "BatchResult",
    "ChunkReport",
    "CorpusQuery",
    "KINDS",
    "TreeCorpus",
    "ask_query",
    "caterpillar_query",
    "caterpillar_relation_query",
    "run_batch",
    "select_query",
    "xpath_query",
]
