"""The chunked batch executor: many trees × many queries, one pass.

The execution model is *tree-outer, query-inner* over contiguous chunks
of the corpus:

* every query text is compiled **once** up front through the shared
  plan cache (:mod:`repro.engine.plans`) — this also rejects malformed
  queries with a :class:`~repro.resilience.errors.ParseError` before
  any fan-out, since the reference engine would refuse the same text;
* each chunk evaluates its trees in order, building (or adopting) each
  tree's :class:`~repro.engine.index.TreeIndex` once and running every
  query against it — never once per (query, tree) cell;
* with ``workers > 0`` chunks are fanned out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Workers inherit
  the already-compiled plans when the platform forks; otherwise each
  worker compiles each plan once into its own process-wide cache and
  keeps it warm across every chunk it serves.  Results are reassembled
  by chunk index, so the output ordering is identical to the serial
  path — and to a loop of single-tree calls, which the
  ``corpus/sequential`` oracle pair fuzzes.

Resilience (the PR-4 contract, lifted to chunks): the fast attempt of a
chunk runs under an optional per-chunk :class:`~repro.resilience.Budget`
and fault injector.  An engine fault or budget exhaustion inside a
chunk degrades *that chunk* to the reference evaluators — the batch
never fails, and never reorders.  Parse errors propagate: they are the
caller's, and no fallback could answer them.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..engine import fo as fast_fo
from ..engine import walk as engine_walk
from ..engine import xpath as fast_xpath
from ..engine.index import (
    IndexFormatError,
    PackedIndex,
    TreeIndex,
    adopt_index,
    index_for,
)
from ..engine.ir import StackedShard, evaluate_shard
from ..engine.planner import Plan, default_planner
from ..engine.plans import (
    compile_caterpillar_plan,
    compile_ir_plan,
    compile_select_plan,
    compile_sentence_plan,
    compile_walk_plan,
    compile_xpath_plan,
)
from ..engine.stats import CorpusStatistics, corpus_statistics
from ..logic import tree_fo
from ..resilience.budget import Budget, ExecutionContext, activate
from ..resilience.errors import EngineError, ParseError, ResourceExhausted
from ..resilience.faults import Fault, FaultInjector
from ..trees.tree import Tree
from .query import CorpusQuery

__all__ = ["ChunkReport", "BatchResult", "run_batch", "plan_queries"]

#: Engines a batch can run on.  ``"fast"`` is the indexed set-at-a-time
#: path with per-chunk reference degradation; ``"reference"`` runs the
#: node-at-a-time evaluators directly (the oracle's other half);
#: ``"vectorized"`` runs each chunk's root-context queries as ONE
#: shared-IR plan over the whole chunk at once — every tree packed into
#: its own lane of one wide integer (:mod:`repro.engine.ir`), with
#: per-tree fallback for queries outside the IR fragment; ``"auto"``
#: lets the cost-based planner pick per query from the corpus's
#: aggregate statistics (:mod:`repro.engine.planner`), upgrading
#: fast picks to the vectorized pass when the batch is big enough to
#: amortise the shard stacking.
ENGINES = ("fast", "reference", "auto", "vectorized")


@dataclass(frozen=True)
class ChunkReport:
    """What happened to one chunk: which trees it covered, which engine
    produced its answers, and whether (and why) it degraded.

    ``steps`` is the budget fuel the chunk's successful attempt spent
    (0 when it ran without a budget) — the query service reconciles
    per-session quotas against it.  ``retries`` counts worker-death
    resubmissions that preceded the answer."""

    index: int
    start: int
    stop: int
    engine: str
    fell_back: bool
    error: Optional[str]
    seconds: float
    steps: int = 0
    retries: int = 0


@dataclass(frozen=True)
class BatchResult:
    """The answers of one batch, in deterministic (tree, query) order.

    ``rows[t][q]`` is the canonical result of query ``q`` on tree ``t``
    — element-wise identical to a loop of single-tree calls, whatever
    the chunking or worker count."""

    queries: Tuple[CorpusQuery, ...]
    rows: Tuple[Tuple[object, ...], ...]
    chunks: Tuple[ChunkReport, ...]
    workers: int
    #: Per-query planner decisions — populated only by ``engine="auto"``
    #: batches, aligned with ``queries``.
    plans: Optional[Tuple[Plan, ...]] = None

    @property
    def tree_count(self) -> int:
        return len(self.rows)

    @property
    def fell_back(self) -> bool:
        """Did any chunk degrade to the reference engine?"""
        return any(chunk.fell_back for chunk in self.chunks)

    def cell(self, tree_index: int, query_index: int) -> object:
        return self.rows[tree_index][query_index]

    def for_query(self, query_index: int) -> Tuple[object, ...]:
        """One query's answers across every tree, in corpus order."""
        return tuple(row[query_index] for row in self.rows)

    def __repr__(self) -> str:
        return (
            f"BatchResult({self.tree_count} trees x "
            f"{len(self.queries)} queries, {len(self.chunks)} chunks, "
            f"workers={self.workers})"
        )


# ---------------------------------------------------------------------------
# one cell
# ---------------------------------------------------------------------------


def compile_query(query: CorpusQuery) -> object:
    """Force-compile one query's plan (shared cache); raises
    :class:`ParseError` on malformed text."""
    if query.kind == "xpath":
        return compile_xpath_plan(query.text)
    if query.kind == "ask":
        return compile_sentence_plan(query.text)
    if query.kind == "select":
        return compile_select_plan(query.text)
    if query.kind == "caterpillar":
        return compile_caterpillar_plan(query.text)
    return compile_walk_plan(query.text)[0]


def _planner_parsed(query: CorpusQuery) -> Optional[object]:
    """The parsed object the planner's cost model wants for ``query``
    (``None`` for the walk kinds — it compiles those itself)."""
    if query.kind == "xpath":
        return compile_xpath_plan(query.text)
    if query.kind == "ask":
        return compile_sentence_plan(query.text)
    if query.kind == "select":
        return compile_select_plan(query.text).formula
    return None


def plan_queries(
    queries: Sequence[CorpusQuery], stats: CorpusStatistics
) -> Tuple[Plan, ...]:
    """One planner decision per query against aggregate corpus
    statistics — the whole batch's ``engine="auto"`` resolution."""
    planner = default_planner()
    return tuple(
        planner.plan_for_stats(
            query.kind, query.text, stats, parsed=_planner_parsed(query)
        )
        for query in queries
    )


def evaluate_cell(query: CorpusQuery, tree: Tree, engine: str = "fast"):
    """One (query, tree) cell, canonicalised: node tuples in document
    order, plain bools, or sorted pair tuples — byte-comparable across
    engines and picklable across processes."""
    if engine == "auto":
        plan = default_planner().plan_for_tree(
            query.kind, query.text, tree, parsed=_planner_parsed(query)
        )
        return evaluate_cell(query, tree, plan.engine)
    if engine == "vectorized":
        engine = "fast"  # one cell has no shard to stack across
    if engine == "fast":
        if query.kind == "xpath":
            return fast_xpath.select(
                compile_xpath_plan(query.text), tree, query.context
            )
        if query.kind == "ask":
            return fast_fo.evaluate(compile_sentence_plan(query.text), tree)
        if query.kind == "select":
            plan = compile_select_plan(query.text)
            return fast_fo.select(
                plan.formula, tree, query.context, plan.x, plan.y
            )
        if query.kind == "caterpillar":
            expr, _ = compile_walk_plan(query.text)
            return engine_walk.walk(expr, tree, query.context)
        expr, _ = compile_walk_plan(query.text)
        return tuple(sorted(engine_walk.relation(expr, tree)))
    from ..caterpillar import nfa as reference_walk
    from ..xpath.evaluator import select as reference_xpath_select

    if query.kind == "xpath":
        return reference_xpath_select(
            compile_xpath_plan(query.text), tree, query.context
        )
    if query.kind == "ask":
        return tree_fo.evaluate(compile_sentence_plan(query.text), tree)
    if query.kind == "select":
        return compile_select_plan(query.text).select(tree, query.context)
    if query.kind == "caterpillar":
        return reference_walk.walk(
            compile_caterpillar_plan(query.text), tree, query.context
        )
    return tuple(
        sorted(reference_walk.relation(
            compile_caterpillar_plan(query.text), tree
        ))
    )


# ---------------------------------------------------------------------------
# chunks
# ---------------------------------------------------------------------------

#: One chunk's work order: everything a worker needs, all picklable.
#: ``indexes`` rides along only on the in-process path (pre-built
#: pinned indexes adopted tree by tree); workers rebuild from trees.
#: ``token`` identifies an immutable corpus so persistent workers can
#: keep the chunk's trees and indexes warm across batches; once a
#: routed worker holds a chunk, later batches ship ``trees=None``.
#: ``shard`` is the disk-store alternative to shipping trees at all:
#: ``(segment path, generation, lo, hi, sidecar)`` names a contiguous
#: record range of one segment file, and the worker memory-maps the
#: segment and unpickles exactly that byte range itself.  ``sidecar``
#: — ``(sidecar path, generation tag)`` or ``None`` — additionally
#: names the segment's index sidecar: a vectorized-eligible chunk then
#: assembles its :class:`~repro.engine.ir.StackedShard` lanes straight
#: from the sidecar's serialized-index bytes (:class:`PackedIndex`) and
#: never unpickles a tree or builds a :class:`TreeIndex` at all — the
#: zero-rebuild path.
_ChunkPayload = Tuple[
    int,                    # chunk index
    int,                    # corpus position of the first tree
    int,                    # corpus position past the last tree
    Optional[Tuple[Tree, ...]],  # the chunk's trees (None: shard/warm state)
    Tuple[CorpusQuery, ...],
    Union[str, Tuple[str, ...]],  # engine (or per-query engines, auto)
    Optional[int],          # per-chunk fast budget (steps)
    Optional[Fault],        # injected fault, if the harness armed one
    Optional[Tuple[TreeIndex, ...]],
    Optional[str],          # corpus token, or None for one-shot batches
    Optional[Tuple],        # disk shard (5-tuple above), or None
    Optional[float],        # per-chunk wall-clock budget (seconds)
    str,                    # on_exhausted: "degrade" | "raise"
]

#: Worker-side warm state: (token, start, stop) → (trees, indexes).
#: A persistent pool's worker fills this on its first batch over a
#: corpus and then skips tree shipping, revalidation and index
#: rebuilds on every later batch.  Only the latest token is retained,
#: so the cache is bounded by one corpus's chunks.
_WORKER_TREES: Dict[Tuple[str, int, int], Tuple] = {}

#: Returned by a worker asked to run a chunk from warm state it does
#: not have (e.g. the worker process was restarted).  The parent then
#: re-runs the chunk itself from the full payload.
_CACHE_MISS = "__corpus_chunk_cache_miss__"

#: Worker-side open segments: (path, generation) → Segment.  A routed
#: worker serving shard chunks maps each segment file once per store
#: generation; a bumped generation (any store mutation) retires the
#: stale mapping on first sight.
_WORKER_SEGMENTS: Dict[Tuple[str, int], object] = {}


def _shard_trees(shard: Tuple) -> Tuple[Tree, ...]:
    """Materialize one shard: mmap its segment (cached per generation)
    and unpickle only records ``[lo, hi)`` — the store fan-out path
    where the parent ships byte coordinates instead of trees."""
    from .segment import Segment

    path, generation, lo, hi = shard[:4]
    key = (path, generation)
    segment = _WORKER_SEGMENTS.get(key)
    if segment is None:
        for stale in [k for k in _WORKER_SEGMENTS if k[0] == path]:
            _WORKER_SEGMENTS.pop(stale).close()
        while len(_WORKER_SEGMENTS) >= 64:  # mmaps are cheap, not free
            _WORKER_SEGMENTS.pop(next(iter(_WORKER_SEGMENTS))).close()
        segment = _WORKER_SEGMENTS[key] = Segment(path)
    return segment.trees(lo, hi)


#: Worker-side open index sidecars: (sidecar path, generation tag) →
#: Sidecar | None.  ``None`` caches a validation failure, so a corrupt
#: or stale sidecar costs one open attempt per generation, not one per
#: chunk.  Evicted together with its :data:`_WORKER_LANES` entries —
#: packed lanes hold zero-copy views into the sidecar's mmap and must
#: never outlive it.
_WORKER_SIDECARS: Dict[Tuple[str, int], object] = {}

#: Worker-side packed lanes: (sidecar path, tag, lo, hi) → tuple of
#: :class:`PackedIndex` — one chunk's StackedShard inputs, parsed once
#: from the sidecar bytes and reused every batch until the generation
#: moves.
_WORKER_LANES: Dict[Tuple[str, int, int, int], Tuple] = {}


def _evict_sidecar(key: Tuple[str, int]) -> None:
    for lane_key in [k for k in _WORKER_LANES if k[:2] == key]:
        _WORKER_LANES.pop(lane_key)
    sidecar = _WORKER_SIDECARS.pop(key, None)
    if sidecar is not None:
        try:
            sidecar.close()
        except BufferError:  # a straggler lane still views the mmap;
            pass             # the view's release will close it instead


def _packed_plans(
    queries: Sequence[CorpusQuery], engine: Union[str, Tuple[str, ...]]
) -> Optional[Tuple]:
    """Every query's IR plan iff the *whole* chunk can run packed —
    each query vectorized and inside the IR fragment; else ``None``."""
    engines = engine if isinstance(engine, tuple) else (engine,) * len(queries)
    plans = []
    for query, chosen in zip(queries, engines):
        if chosen != "vectorized":
            return None
        plan = _ir_batch_plan(query)
        if plan is None:
            return None
        plans.append(plan)
    return tuple(plans)


def _shard_lanes(
    shard: Tuple,
    queries: Sequence[CorpusQuery],
    engine: Union[str, Tuple[str, ...]],
) -> Optional[Tuple]:
    """The chunk's :class:`PackedIndex` lanes, assembled straight from
    the shard's sidecar bytes — or ``None`` whenever the chunk cannot
    run packed (no/invalid sidecar, a query outside the vectorized IR
    fragment), in which case the caller materializes trees as before."""
    if len(shard) < 5 or shard[4] is None:
        return None
    if _packed_plans(queries, engine) is None:
        return None
    from .segment import Sidecar, StoreError

    lo, hi = shard[2], shard[3]
    spath, tag = shard[4]
    lane_key = (spath, tag, lo, hi)
    lanes = _WORKER_LANES.get(lane_key)
    if lanes is not None:
        return lanes
    side_key = (spath, tag)
    if side_key in _WORKER_SIDECARS:
        sidecar = _WORKER_SIDECARS[side_key]
    else:
        for stale in [
            k for k in _WORKER_SIDECARS if k[0] == spath and k != side_key
        ]:
            _evict_sidecar(stale)
        while len(_WORKER_SIDECARS) >= 64:
            _evict_sidecar(next(iter(_WORKER_SIDECARS)))
        sidecar = None
        try:
            candidate = Sidecar(spath)
            if candidate.generation == tag and candidate.count >= hi:
                sidecar = candidate
            else:
                candidate.close()
        except (OSError, StoreError):
            sidecar = None
        _WORKER_SIDECARS[side_key] = sidecar
    if sidecar is None:
        return None
    try:
        lanes = tuple(PackedIndex(sidecar.blob(i)) for i in range(lo, hi))
    except (StoreError, IndexFormatError, ValueError, IndexError):
        return None  # corrupt blob: fall back to rebuilding from records
    _WORKER_LANES[lane_key] = lanes
    return lanes


def _evaluate_packed(lanes: Tuple, queries: Sequence[CorpusQuery],
                     engine: Union[str, Tuple[str, ...]]):
    """One chunk's cells evaluated entirely from packed lanes: every
    query's IR plan interpreted once over one :class:`StackedShard` of
    :class:`PackedIndex` lanes — no tree objects, no TreeIndex builds."""
    plans = _packed_plans(queries, engine)
    shard = StackedShard(lanes)
    columns = []
    for plan in plans:
        split = shard.split(evaluate_shard(plan, shard))
        if plan.mode == "boolean":
            columns.append([bool(lane) for lane in split])
        else:
            columns.append([
                idx.to_nodes(lane) for idx, lane in zip(lanes, split)
            ])
    return tuple(
        tuple(column[i] for column in columns) for i in range(len(lanes))
    )


def _warm_chunk(
    token: Optional[str],
    start: int,
    stop: int,
    trees: Tuple[Tree, ...],
) -> Tuple[Tuple[Tree, ...], Optional[Tuple[TreeIndex, ...]]]:
    """Swap freshly unpickled chunk trees for this worker's warm copies
    (building them on first sight).  Without a token, no caching."""
    if token is None:
        return trees, None
    key = (token, start, stop)
    cached = _WORKER_TREES.get(key)
    if cached is not None and len(cached[0]) == len(trees):
        return cached
    if any(existing[0] != token for existing in _WORKER_TREES):
        _WORKER_TREES.clear()  # a new corpus: retire the old one's state
    indexes = tuple(index_for(tree) for tree in trees)
    _WORKER_TREES[key] = (trees, indexes)
    return trees, indexes


def _ir_batch_plan(query: CorpusQuery):
    """The query's shared-IR plan for the stacked shard pass, or
    ``None`` when it cannot ride it: non-root contexts, the all-pairs
    relation kind, or a formula outside the IR fragment."""
    if query.context != () or query.kind == "caterpillar-relation":
        return None
    return compile_ir_plan(query.kind, query.text)


def _evaluate_rows(
    trees: Sequence[Tree],
    queries: Sequence[CorpusQuery],
    engine: Union[str, Tuple[str, ...]],
    indexes: Optional[Sequence[TreeIndex]],
) -> Tuple[Tuple[object, ...], ...]:
    """One chunk's cells: a stacked shard pass for the vectorized
    queries, then the tree-outer, query-inner sweep for the rest.

    ``engine`` is one name for the whole sweep, or (on the ``auto``
    path) one planner-chosen name per query.  Each ``"vectorized"``
    query lowers to one IR plan evaluated *once* across every tree of
    the chunk (each tree in its own bit lane); queries the IR cannot
    express quietly take the per-tree fast path instead."""
    for query in queries:
        compile_query(query)
    engines = list(
        engine if isinstance(engine, tuple) else (engine,) * len(queries)
    )
    stacked: Dict[int, object] = {}
    for position, (query, chosen) in enumerate(zip(queries, engines)):
        if chosen != "vectorized":
            continue
        plan = _ir_batch_plan(query)
        if plan is None:
            engines[position] = "fast"  # outside the fragment: per-tree
        else:
            stacked[position] = plan
    columns: Dict[int, List[object]] = {}
    if stacked and trees:
        tree_indexes = (
            tuple(indexes)
            if indexes is not None
            else tuple(index_for(tree) for tree in trees)
        )
        shard = StackedShard(tree_indexes)
        for position, plan in stacked.items():
            lanes = shard.split(evaluate_shard(plan, shard))
            if plan.mode == "boolean":
                columns[position] = [bool(lane) for lane in lanes]
            else:
                columns[position] = [
                    idx.to_nodes(lane)
                    for idx, lane in zip(tree_indexes, lanes)
                ]
    rows = []
    for position, tree in enumerate(trees):
        if indexes is not None:
            adopt_index(tree, indexes[position])
        row = []
        for query_index, (query, chosen) in enumerate(zip(queries, engines)):
            column = columns.get(query_index)
            if column is not None:
                row.append(column[position])
            else:
                row.append(evaluate_cell(query, tree, chosen))
        rows.append(tuple(row))
    return tuple(rows)


def _run_chunk(payload: _ChunkPayload):
    """Evaluate one chunk; degrade to the reference engine on faults.

    Runs in a worker process under ``workers > 0`` — everything it
    touches (plan cache, index cache) is that worker's own warm state.
    """
    (index, start, stop, trees, queries, engine,
     budget_steps, fault, indexes, token, shard,
     budget_seconds, on_exhausted) = payload
    started = time.perf_counter()
    lanes = None
    if trees is None:
        cached = _WORKER_TREES.get((token, start, stop))
        if cached is not None:
            trees, indexes = cached
        elif shard is not None:
            # A store chunk.  When the whole chunk is vectorized and
            # the segment's index sidecar is valid, its StackedShard
            # lanes assemble straight from the sidecar bytes — no
            # unpickling, no index builds.  Otherwise this worker loads
            # its own shard from the segment file and warms it under
            # the store token.
            lanes = _shard_lanes(shard, queries, engine)
            if lanes is None:
                trees, indexes = _warm_chunk(
                    token, start, stop, _shard_trees(shard)
                )
        else:  # e.g. a fresh worker after a pool restart
            return index, _CACHE_MISS, None
    elif indexes is None:
        trees, indexes = _warm_chunk(token, start, stop, trees)
    if engine == "reference":
        # Reference chunks have no engine to degrade to, so budgets
        # only make sense when exhaustion is the caller's verdict
        # (``on_exhausted="raise"`` — the query service's deadline
        # path).  In degrade mode the reference run is the recovery
        # itself and must be allowed to finish.
        budget = (
            Budget(steps=budget_steps, seconds=budget_seconds)
            if on_exhausted == "raise"
            and (budget_steps is not None or budget_seconds is not None)
            else None
        )
        if budget is not None:
            with activate(ExecutionContext(budget, None)):
                rows = _evaluate_rows(trees, queries, "reference", indexes)
        else:
            rows = _evaluate_rows(trees, queries, "reference", indexes)
        report = ChunkReport(
            index, start, stop, "reference", False, None,
            time.perf_counter() - started,
            steps=budget.steps if budget is not None else 0,
        )
        return index, rows, report
    attempt = engine  # "fast", "vectorized", or the auto per-query mix
    attempted_name = "auto" if isinstance(engine, tuple) else engine
    injector = FaultInjector(fault) if fault is not None else None
    budget = (
        Budget(steps=budget_steps, seconds=budget_seconds)
        if budget_steps is not None or budget_seconds is not None
        else None
    )
    try:
        if injector is not None or budget is not None:
            with activate(ExecutionContext(budget, injector)):
                rows = (
                    _evaluate_packed(lanes, queries, engine)
                    if lanes is not None
                    else _evaluate_rows(trees, queries, attempt, indexes)
                )
        elif lanes is not None:
            rows = _evaluate_packed(lanes, queries, engine)
        else:
            rows = _evaluate_rows(trees, queries, attempt, indexes)
        report = ChunkReport(
            index, start, stop, attempted_name, False, None,
            time.perf_counter() - started,
            steps=budget.steps if budget is not None else 0,
        )
    except ParseError:
        raise  # the caller's error: the reference engine would refuse too
    except ResourceExhausted as exc:
        if on_exhausted == "raise":
            # The query service's contract: an expired deadline or a
            # spent quota is the *caller's* verdict to deliver, not a
            # licence to keep burning the reference engine on it.
            raise
        if trees is None:  # the packed attempt: degrade needs real trees
            trees, indexes = _warm_chunk(
                token, start, stop, _shard_trees(shard)
            )
        rows = _evaluate_rows(trees, queries, "reference", indexes)
        report = ChunkReport(
            index, start, stop, "reference", True,
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - started,
            steps=budget.steps if budget is not None else 0,
        )
    except EngineError as exc:
        # The PR-4 contract at chunk granularity: an engine fault costs
        # this chunk its fast path, never the batch its answers or
        # their order.
        if trees is None:
            trees, indexes = _warm_chunk(
                token, start, stop, _shard_trees(shard)
            )
        rows = _evaluate_rows(trees, queries, "reference", indexes)
        report = ChunkReport(
            index, start, stop, "reference", True,
            f"{type(exc).__name__}: {exc}",
            time.perf_counter() - started,
            steps=budget.steps if budget is not None else 0,
        )
    return index, rows, report


def _chunk_bounds(
    count: int, chunk_size: Optional[int], workers: int
) -> Tuple[Tuple[int, int], ...]:
    """Contiguous ``[start, stop)`` chunk intervals covering ``count``
    trees.  The default size aims at ~4 chunks per worker (or ~4 chunks
    total when serial) so one slow chunk cannot straggle the pool."""
    if count == 0:
        return ()
    if chunk_size is None:
        lanes = 4 * max(1, workers)
        chunk_size = max(1, -(-count // lanes))
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return tuple(
        (start, min(start + chunk_size, count))
        for start in range(0, count, chunk_size)
    )


def run_batch(
    trees: Sequence[Tree],
    queries: Sequence[CorpusQuery],
    workers: int = 0,
    chunk_size: Optional[int] = None,
    engine: str = "fast",
    budget_steps: Optional[int] = None,
    faults: Optional[Dict[int, Fault]] = None,
    pool: Optional[
        Union[ProcessPoolExecutor, Sequence[ProcessPoolExecutor]]
    ] = None,
    indexes: Optional[Sequence[TreeIndex]] = None,
    token: Optional[str] = None,
    stats: Optional[CorpusStatistics] = None,
    bounds: Optional[Sequence[Tuple[int, int]]] = None,
    shard_for=None,
    budget_seconds: Optional[float] = None,
    on_exhausted: str = "degrade",
    route: int = 0,
    worker_retries: int = 0,
    retry_backoff: float = 0.05,
    replace_pool=None,
) -> BatchResult:
    """Evaluate every query against every tree, set-at-a-time.

    ``workers=0`` runs serially in-process (the fallback path — always
    available, bit-identical to the fan-out).  ``faults`` maps chunk
    index → :class:`~repro.resilience.faults.Fault` for the injection
    harness; ``budget_steps`` bounds each chunk's fast attempt.
    ``pool`` reuses caller-owned executors (warm workers) instead of
    spawning fresh ones per call — either one pool or a sequence of
    single-worker pools (as :class:`~repro.corpus.TreeCorpus` keeps);
    with a sequence, chunk *i* always routes to pool ``i % len(pool)``,
    so a chunk revisits the same worker batch after batch.  ``indexes``
    supplies pre-built pinned indexes, used on the in-process path
    only.  ``token`` (supplied by ``TreeCorpus``) marks the tree
    sequence as immutable so routed workers may keep per-chunk trees
    and indexes warm across batches — warm chunks ship ``trees=None``
    and fall back to a parent-side run if the worker lost its state;
    leave it ``None`` for ad-hoc calls.

    ``engine="auto"`` resolves each query to its planner-chosen engine
    against the corpus statistics (``stats`` when supplied — as
    :meth:`~repro.corpus.TreeCorpus.statistics` caches — else computed
    here), records the decisions on ``BatchResult.plans``, and runs the
    batch with that per-query mix; the per-chunk degrade contract is
    unchanged.

    ``bounds`` overrides the automatic chunking with explicit
    ``[start, stop)`` intervals (as :class:`~repro.corpus.CorpusStore`
    passes, segment-aligned).  ``shard_for`` — a callable mapping a
    chunk's bounds to a ``(segment path, generation, lo, hi, sidecar)``
    shard — makes every chunk mmap-lazy, serial or fanned out: chunks
    ship *no trees at all* and each worker (or the parent, serially)
    loads only its own shard's byte range; ``trees`` may then be any
    lazy sequence (it is never materialized here).  When ``sidecar``
    names a valid index sidecar and the chunk is wholly vectorized, the
    chunk skips tree and index materialization entirely
    (:func:`_shard_lanes`).

    The service-facing knobs: ``budget_seconds`` adds a wall-clock
    deadline to each chunk's budget (cancelling work cooperatively at
    the engine checkpoints); ``on_exhausted="raise"`` propagates a
    :class:`ResourceExhausted` to the caller instead of degrading the
    chunk — the query service maps it to a DEADLINE/RESOURCE error for
    that one query.  ``route`` rotates chunk→pool assignment (chunk
    ``i`` goes to pool ``(i + route) % len(pool)``), so a server
    spreading single-chunk batches over shared routed pools does not
    pile every query on pool 0.  ``worker_retries`` resubmits a chunk
    whose worker *process* died up to that many times, with exponential
    ``retry_backoff`` sleeps, on a fresh single-worker pool obtained
    from ``replace_pool(slot)`` (or a throwaway one); only after the
    attempts are spent does the chunk degrade to an in-parent reference
    run, as before.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if on_exhausted not in ("degrade", "raise"):
        raise ValueError(
            f"on_exhausted must be 'degrade' or 'raise', not {on_exhausted!r}"
        )
    if shard_for is None:
        trees = tuple(trees)
    queries = tuple(queries)
    for query in queries:
        compile_query(query)  # fail fast, warm the (inheritable) plans
    plans: Optional[Tuple[Plan, ...]] = None
    chunk_engine: Union[str, Tuple[str, ...]] = engine
    if engine == "auto":
        if stats is None:
            stats = corpus_statistics(trees)
        plans = plan_queries(queries, stats)
        # The planner priced fast vs reference per query; the stacked
        # shard pass does the same bitset work as the fast path but
        # interprets each plan once per chunk instead of once per tree,
        # so a fast pick upgrades to "vectorized" whenever a chunk can
        # hold more than one tree (and the query fits the IR).
        chunk_engine = tuple(
            "vectorized"
            if (
                plan.engine == "fast"
                and len(trees) > 1
                and _ir_batch_plan(query) is not None
            )
            else plan.engine
            for query, plan in zip(queries, plans)
        )
    faults = dict(faults or {})
    if bounds is None:
        bounds = _chunk_bounds(len(trees), chunk_size, workers)
    else:
        bounds = tuple(bounds)
    payloads: List[_ChunkPayload] = []
    for chunk_index, (start, stop) in enumerate(bounds):
        chunk_indexes = None
        if indexes is not None and workers == 0:
            chunk_indexes = tuple(indexes[start:stop])
        shard = None
        chunk_trees: Optional[Tuple[Tree, ...]]
        if shard_for is not None:
            # Store chunks ship byte coordinates, never pickles — and
            # the serial path takes the same shard (and packed sidecar)
            # route in-process, so zero-rebuild does not need a pool.
            shard = shard_for(start, stop)
            chunk_trees = None
        else:
            chunk_trees = tuple(trees[start:stop])
        payloads.append((
            chunk_index, start, stop, chunk_trees, queries,
            chunk_engine, budget_steps, faults.get(chunk_index),
            chunk_indexes, token, shard, budget_seconds, on_exhausted,
        ))

    results: Dict[int, Tuple] = {}
    reports: Dict[int, ChunkReport] = {}
    if workers == 0 or len(payloads) == 0:
        for payload in payloads:
            chunk_index, rows, report = _run_chunk(payload)
            results[chunk_index] = rows
            reports[chunk_index] = report
    else:
        owned = None
        if pool is None:
            owned = pools = _make_pools(workers)
        elif isinstance(pool, ProcessPoolExecutor):
            pools = (pool,)
        else:
            pools = tuple(pool)
        try:
            futures = []
            for payload in payloads:
                target = pools[(payload[0] + route) % len(pools)]
                futures.append(target.submit(_run_chunk, _wire(target, payload)))
            for payload, future in zip(payloads, futures):
                chunk_index, start, stop = payload[0], payload[1], payload[2]
                slot = (chunk_index + route) % len(pools)
                try:
                    chunk_index, rows, report = future.result()
                    if rows == _CACHE_MISS:
                        # The routed worker lost its warm state (e.g. a
                        # restarted process): run the full chunk here
                        # and let the next batch re-ship the trees.
                        _shipped(pools[slot]).discard((token, start, stop))
                        chunk_index, rows, report = _run_chunk(payload)
                except (ParseError, ValueError):
                    raise
                except ResourceExhausted:
                    # Only reaches here under on_exhausted="raise":
                    # degrade-mode workers absorb exhaustion into a
                    # reference rerun themselves.
                    raise
                except Exception as exc:  # a broken pool, a dead worker
                    recovered = _retry_chunk(
                        payload, worker_retries, retry_backoff,
                        replace_pool, slot, on_exhausted,
                    )
                    if recovered is not None:
                        chunk_index, rows, report = recovered
                    else:
                        # Last-resort degradation: answer the chunk
                        # here, on the engine no fault has ever
                        # indicted.
                        fallback_trees = payload[3]
                        if fallback_trees is None and payload[10] is not None:
                            fallback_trees = _shard_trees(payload[10])
                        rows = _evaluate_rows(
                            fallback_trees, payload[4], "reference", None
                        )
                        report = ChunkReport(
                            chunk_index, start, stop, "reference", True,
                            f"worker failed: {type(exc).__name__}: {exc}",
                            0.0, retries=worker_retries,
                        )
                results[chunk_index] = rows
                reports[chunk_index] = report
        finally:
            if owned is not None:
                for spare in owned:
                    spare.shutdown()

    ordered_rows = []
    for chunk_index in range(len(payloads)):
        ordered_rows.extend(results[chunk_index])
    return BatchResult(
        queries=queries,
        rows=tuple(ordered_rows),
        chunks=tuple(reports[i] for i in range(len(payloads))),
        workers=workers,
        plans=plans,
    )


def _retry_chunk(
    payload: _ChunkPayload,
    attempts: int,
    backoff: float,
    replace_pool,
    slot: int,
    on_exhausted: str,
):
    """Bounded resubmission of a chunk whose worker died.

    Each attempt sleeps ``backoff * 2**attempt`` then reruns the *full*
    payload (a fresh worker holds no warm state) on a replacement pool:
    ``replace_pool(slot)`` lets the pool's owner heal its routed slot in
    place — later batches then route to the healed worker — while a
    ``None`` owner gets a throwaway single-worker pool per attempt.
    Returns the ``(index, rows, report)`` triple with the retry count
    stamped on the report, or ``None`` when every attempt died too.
    """
    for attempt in range(attempts):
        time.sleep(backoff * (2 ** attempt))
        fresh = replace_pool(slot) if replace_pool is not None else None
        throwaway = None
        if fresh is None:
            throwaway = fresh = _make_pools(1)[0]
        try:
            index, rows, report = fresh.submit(_run_chunk, payload).result()
            if rows == _CACHE_MISS:  # pragma: no cover - full payload sent
                continue
            if report is not None:
                report = ChunkReport(
                    report.index, report.start, report.stop, report.engine,
                    report.fell_back, report.error, report.seconds,
                    steps=report.steps, retries=attempt + 1,
                )
            return index, rows, report
        except (ParseError, ValueError):
            raise
        except ResourceExhausted:
            if on_exhausted == "raise":
                raise
            continue  # pragma: no cover - degrade mode absorbs these
        except Exception:
            continue  # this worker died as well: back off harder
        finally:
            if throwaway is not None:
                throwaway.shutdown(wait=False)
    return None


def _shipped(pool: ProcessPoolExecutor) -> set:
    """The (token, start, stop) chunks this pool's worker already holds."""
    cache = getattr(pool, "_corpus_shipped", None)
    if cache is None:
        cache = pool._corpus_shipped = set()
    return cache


def _wire(pool: ProcessPoolExecutor, payload: _ChunkPayload) -> _ChunkPayload:
    """The payload as actually sent: once a routed worker has a chunk's
    trees warm, later batches ship ``trees=None`` instead of re-pickling
    the chunk — the single biggest per-batch cost at high tree counts."""
    (chunk_index, start, stop, trees, queries, engine,
     budget_steps, fault, indexes, token, shard,
     budget_seconds, on_exhausted) = payload
    if token is None or indexes is not None or trees is None:
        return payload  # shard chunks already ship no trees
    shipped = _shipped(pool)
    key = (token, start, stop)
    if key in shipped:
        trees = None
    else:
        shipped.add(key)
    return (chunk_index, start, stop, trees, queries, engine,
            budget_steps, fault, indexes, token, shard,
            budget_seconds, on_exhausted)


def _make_pools(workers: int) -> Tuple[ProcessPoolExecutor, ...]:
    """``workers`` single-worker pools, forked when the platform allows
    it — forked workers inherit the parent's warm plan and index caches
    for free, and one-pool-per-worker routing keeps each chunk pinned
    to the same worker across batches."""
    import multiprocessing

    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    return tuple(
        ProcessPoolExecutor(max_workers=1, mp_context=context)
        for _ in range(workers)
    )
