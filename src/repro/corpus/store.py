"""``CorpusStore`` — a corpus that lives on disk, queried in place.

The store is a directory: a ``store.json`` manifest plus numbered
segment files (:mod:`repro.corpus.segment`).  Everything the paper's
"fixed query, huge data" reading needs at scale follows from three
properties:

* **streaming ingest** — :meth:`CorpusStore.ingest` consumes any tree
  iterator (e.g. :func:`repro.trees.iter_xml_stream` over a multi-
  gigabyte dump) and writes records straight through, so peak memory
  is bounded by one document plus one segment's footer rows, never by
  the corpus;
* **mmap-lazy shards** — queries route contiguous shards of a segment
  to workers that open the segment memory-mapped and unpickle only
  their shard's byte range; the parent ships byte coordinates, not
  pickles, and warm workers keyed by ``(token, shard)`` skip even
  that;
* **incremental repair** — :meth:`replace` with an edit site patches
  the damaged tree's cached :class:`~repro.engine.index.TreeIndex`
  through :func:`~repro.engine.index.repair_index` (a subtree splice,
  ~an order of magnitude cheaper than a rebuild) and bumps the store
  generation, which retires every worker's warm state and every
  statistics-keyed cached plan for the old corpus.

Statistics aggregate from per-segment footer summaries — opening and
planning over a million-tree store reads kilobytes of manifest, not
the records.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..engine.index import (
    TreeIndex,
    adopt_index,
    index_for,
    repair_index,
    serialize_index,
)
from ..engine.stats import CorpusStatistics, _fingerprint
from ..trees.tree import Tree
from .executor import BatchResult, _make_pools, run_batch
from .query import CorpusQuery
from .segment import (
    Segment,
    SegmentWriter,
    Sidecar,
    StoreCorruptError,
    StoreError,
    StoreLockedError,
    StoreMissingError,
    StoreVersionError,
    recover_segment,
    sidecar_path,
    write_sidecar,
)

__all__ = [
    "CorpusStore",
    "StoreError",
    "StoreCorruptError",
    "StoreLockedError",
    "StoreMissingError",
    "StoreVersionError",
]

MANIFEST = "store.json"
LOCKFILE = "store.lock"
FORMAT = "repro-corpus-store"
FORMAT_VERSION = 1

#: Trees per segment.  Small enough that a segment rewrite (replace)
#: and a shard load stay cheap, big enough that a 100k-tree store is a
#: few dozen files, not thousands.
DEFAULT_SEGMENT_SIZE = 2048

#: How many segments' trees the store keeps materialized for serial
#: queries and point reads.  Bounds parent-side memory at roughly
#: ``_LOADED_SEGMENTS * segment_size`` trees however big the store is.
_LOADED_SEGMENTS = 8


def _segment_name(segment_id: int) -> str:
    return f"seg-{segment_id:05d}.seg"


def _sidecars_enabled(requested: bool) -> bool:
    """``REPRO_STORE_SIDECARS=0`` force-disables index sidecars for the
    whole process — the oracle's answer-path-equivalence switch."""
    env = os.environ.get("REPRO_STORE_SIDECARS", "").strip().lower()
    if env in ("0", "false", "no", "off"):
        return False
    return requested


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid still running (best-effort)?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - someone else's pid
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return True
    return True


def _acquire_writer_lock(path: str) -> str:
    """Take the store's advisory single-writer lock (a ``store.lock``
    file holding the owner's pid), stealing a stale lock whose owner
    died.  Raises :class:`StoreLockedError` when a *live* process holds
    it — the fail-fast alternative to two writers racing the manifest."""
    lock_path = os.path.join(path, LOCKFILE)
    me = os.getpid()
    for _ in range(2):  # second pass: retry after removing a stale lock
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                with open(lock_path, "r", encoding="utf-8") as handle:
                    holder = int(handle.read().strip() or "0")
            except (OSError, ValueError):
                holder = 0
            if holder == me:
                return lock_path  # re-entrant within one process
            if holder and _pid_alive(holder):
                raise StoreLockedError(
                    f"corpus store at {path} is locked for writing by "
                    f"pid {holder} ({lock_path}); open it readonly or "
                    f"wait for the writer to finish"
                )
            try:  # the owner is gone: the lock is stale, steal it
                os.unlink(lock_path)
            except FileNotFoundError:
                pass
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(f"{me}\n")
        return lock_path
    raise StoreLockedError(  # pragma: no cover - lost a create race twice
        f"could not acquire the writer lock at {lock_path}"
    )


def _release_writer_lock(lock_path: Optional[str]) -> None:
    """Drop the lock if this process still owns it."""
    if lock_path is None:
        return
    try:
        with open(lock_path, "r", encoding="utf-8") as handle:
            holder = int(handle.read().strip() or "0")
    except (OSError, ValueError):
        return
    if holder == os.getpid():
        try:
            os.unlink(lock_path)
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _aggregate(rows: Sequence[list]) -> Dict[str, object]:
    """Segment-level statistics summary from footer rows — everything
    :meth:`CorpusStore.statistics` needs without reopening the segment."""
    labels: Dict[str, int] = {}
    for row in rows:
        for name, count in row[3]:
            labels[name] = labels.get(name, 0) + count
    return {
        "trees": len(rows),
        "nodes": sum(row[0] for row in rows),
        "max_n": max((row[0] for row in rows), default=0),
        "sum_height": sum(row[1] for row in rows),
        "sum_leaves": sum(row[2] for row in rows),
        "sum_fanout": sum(row[5] for row in rows),
        "sum_subtree": sum(row[6] for row in rows),
        "labels": dict(sorted(labels.items())),
        "chain": _fingerprint("|".join(row[7] for row in rows)),
    }


class CorpusStore:
    """A disk-backed, sharded corpus with the :class:`TreeCorpus` query
    surface.  Use :meth:`create` / :meth:`open`, not the constructor."""

    def __init__(self, path: str, manifest: Dict[str, object]):
        self.path = path
        self._manifest = manifest
        self._segments: Dict[int, Segment] = {}       # seg index -> reader
        self._loaded: "OrderedDict[int, Tuple[Tree, ...]]" = OrderedDict()
        self._stats: Optional[CorpusStatistics] = None
        self._stats_generation = -1
        self._use_sidecars = True
        # segment index -> (generation checked, (sidecar path, tag) | None)
        self._sidecar_ok: Dict[int, Tuple[int, Optional[Tuple[str, int]]]] = {}
        self._pools: Dict[int, Tuple[ProcessPoolExecutor, ...]] = {}
        self._pool_lock = threading.Lock()
        self._lock_path: Optional[str] = None  # held writer lock, if any
        digest = hashlib.sha1(
            os.path.abspath(path).encode("utf-8")
        ).hexdigest()[:12]
        self._identity = f"store-{digest}"

    # -- lifecycle ----------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        sidecars: bool = True,
    ) -> "CorpusStore":
        """Initialise an empty store at ``path`` (created if missing;
        must not already hold a store).  ``sidecars=False`` (or
        ``REPRO_STORE_SIDECARS=0`` in the environment) turns off index
        sidecar maintenance for this handle."""
        if segment_size < 1:
            raise ValueError("segment_size must be >= 1")
        os.makedirs(path, exist_ok=True)
        manifest_path = os.path.join(path, MANIFEST)
        if os.path.exists(manifest_path):
            raise StoreError(f"a corpus store already exists at {path}")
        manifest = {
            "format": FORMAT,
            "version": FORMAT_VERSION,
            "generation": 0,
            "segment_size": segment_size,
            "segments": [],
            "tree_count": 0,
            "node_count": 0,
        }
        store = cls(path, manifest)
        store._use_sidecars = _sidecars_enabled(sidecars)
        store._lock_path = _acquire_writer_lock(path)
        store._save_manifest()
        return store

    @classmethod
    def open(
        cls, path: str, readonly: bool = False, sidecars: bool = True
    ) -> "CorpusStore":
        """Open an existing store.

        Unless ``readonly``, takes the advisory single-writer lock
        (``store.lock``): a second process opening the same store for
        writing gets a :class:`StoreLockedError` immediately instead of
        silently racing the manifest; a lock left by a dead process is
        stolen.  Read-only opens never lock (and refuse mutation).

        Raises :class:`StoreMissingError` when ``path`` holds no store,
        :class:`StoreVersionError` on a format written by a different
        version, :class:`StoreCorruptError` on an unreadable manifest —
        never a raw ``OSError`` for these cases."""
        manifest_path = os.path.join(path, MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError as exc:
            raise StoreMissingError(
                f"no corpus store at {path} (missing {MANIFEST})"
            ) from exc
        except ValueError as exc:
            raise StoreCorruptError(
                f"unreadable store manifest at {manifest_path}"
            ) from exc
        if manifest.get("format") != FORMAT:
            raise StoreMissingError(
                f"{manifest_path} is not a corpus store manifest"
            )
        if manifest.get("version") != FORMAT_VERSION:
            raise StoreVersionError(
                f"store at {path} is format v{manifest.get('version')}; "
                f"this build reads v{FORMAT_VERSION}"
            )
        store = cls(path, manifest)
        store._readonly = readonly
        store._use_sidecars = _sidecars_enabled(sidecars)
        if not readonly:
            store._lock_path = _acquire_writer_lock(path)
        return store

    @property
    def readonly(self) -> bool:
        return getattr(self, "_readonly", False)

    def _writable(self) -> None:
        if self.readonly:
            raise StoreError(
                f"store at {self.path} was opened readonly; "
                f"reopen it without readonly=True to write"
            )

    def close(self) -> None:
        """Release mmaps, loaded trees, worker pools and the writer
        lock."""
        for segment in self._segments.values():
            segment.close()
        self._segments.clear()
        self._loaded.clear()
        pools, self._pools = self._pools, {}
        for routed in pools.values():
            for pool in routed:
                pool.shutdown()
        _release_writer_lock(self._lock_path)
        self._lock_path = None

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- manifest -----------------------------------------------------

    def _save_manifest(self) -> None:
        """Atomic manifest update: write-aside then rename, so a crash
        leaves either the old or the new manifest, never a torn one."""
        final = os.path.join(self.path, MANIFEST)
        aside = final + ".tmp"
        with open(aside, "w", encoding="utf-8") as handle:
            json.dump(self._manifest, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(aside, final)

    @property
    def generation(self) -> int:
        return self._manifest["generation"]

    @property
    def segment_size(self) -> int:
        return self._manifest["segment_size"]

    @property
    def tree_count(self) -> int:
        return self._manifest["tree_count"]

    @property
    def node_count(self) -> int:
        return self._manifest["node_count"]

    def __len__(self) -> int:
        return self.tree_count

    @property
    def token(self) -> str:
        """The batch-executor corpus token.  Embeds the generation, so
        any mutation retires every worker's warm shard state and every
        cache keyed against the old corpus."""
        return f"{self._identity}-g{self.generation}"

    def __repr__(self) -> str:
        return (
            f"CorpusStore({self.path!r}, {self.tree_count} trees, "
            f"{len(self._manifest['segments'])} segments, "
            f"generation {self.generation})"
        )

    # -- writing ------------------------------------------------------

    def _bump(self) -> None:
        self._manifest["generation"] += 1
        totals = self._manifest["segments"]
        self._manifest["tree_count"] = sum(s["trees"] for s in totals)
        self._manifest["node_count"] = sum(s["nodes"] for s in totals)
        self._save_manifest()

    def _record_seal(
        self,
        segment_id: int,
        footer: Dict[str, object],
        known: bool,
        sidecar_gen: Optional[int] = None,
    ) -> None:
        segments: List[Dict[str, object]] = self._manifest["segments"]
        name = (
            segments[[s["id"] for s in segments].index(segment_id)]["name"]
            if known
            else _segment_name(segment_id)
        )
        entry = {
            "name": name,
            "id": segment_id,
            "trees": footer["trees"],
            "nodes": footer["nodes"],
            "summary": _aggregate(footer["stats"]),
        }
        if sidecar_gen is not None:
            entry["sidecar_gen"] = sidecar_gen
        if known:
            segments[[s["id"] for s in segments].index(segment_id)] = entry
        else:
            segments.append(entry)

    def ingest(self, trees: Iterable[Tree]) -> int:
        """Append every tree of an iterator; returns how many.

        Streaming: trees are pickled and written as they arrive,
        segments seal (and enter the manifest) every ``segment_size``
        trees, and nothing already consumed stays referenced — feed it
        :func:`repro.trees.iter_xml_stream` and peak memory tracks the
        largest single document, not the corpus."""
        self._writable()
        segments: List[Dict[str, object]] = self._manifest["segments"]
        writer: Optional[SegmentWriter] = None
        resumed = False
        appended = 0
        blobs: List[bytes] = []

        def seal(writer: SegmentWriter, resumed: bool) -> None:
            # The sidecar lands (tagged with the post-ingest generation)
            # before the manifest does: a crash in between reads as a
            # generation mismatch and a rebuild, never as stale indexes.
            footer = writer.seal()
            tag: Optional[int] = None
            if self._use_sidecars:
                tag = self.generation + 1
                write_sidecar(
                    sidecar_path(writer.path), writer.segment_id, tag, blobs
                )
            self._record_seal(
                writer.segment_id, footer, resumed, sidecar_gen=tag
            )

        try:
            for tree in trees:
                if not isinstance(tree, Tree):
                    raise TypeError(
                        f"ingest expects Tree instances, got "
                        f"{type(tree).__name__}"
                    )
                if writer is None:
                    if (
                        segments
                        and segments[-1]["trees"] < self.segment_size
                    ):
                        last = segments[-1]
                        blobs = (
                            self._segment_blobs(len(segments) - 1)
                            if self._use_sidecars else []
                        )
                        self._evict_segment(len(segments) - 1)
                        writer = SegmentWriter.resume(
                            os.path.join(self.path, last["name"]), last["id"]
                        )
                        resumed = True
                    else:
                        segment_id = (
                            segments[-1]["id"] + 1 if segments else 0
                        )
                        writer = SegmentWriter(
                            os.path.join(
                                self.path, _segment_name(segment_id)
                            ),
                            segment_id,
                        )
                        resumed = False
                        blobs = []
                writer.append(tree)
                if self._use_sidecars:
                    blobs.append(serialize_index(index_for(tree)))
                appended += 1
                if writer.tree_count >= self.segment_size:
                    seal(writer, resumed)
                    writer = None
            if writer is not None:
                seal(writer, resumed)
                writer = None
        finally:
            if writer is not None:
                writer.abort()  # error mid-stream: drop the torn segment
        if appended:
            self._bump()
        return appended

    def append(self, tree: Tree) -> int:
        """Append one tree; returns its corpus position."""
        position = self.tree_count
        self.ingest((tree,))
        return position

    def replace(
        self, position: int, tree: Tree, site: Optional[tuple] = None
    ) -> None:
        """Replace the tree at ``position``; rewrites its segment.

        With ``site`` (the root node of the edited subtree, as produced
        by :meth:`Tree.replace_subtree`), the old tree's cached index is
        spliced into the new tree's through
        :func:`~repro.engine.index.repair_index` instead of being
        rebuilt — the incremental path the ``store`` bench gates at
        ≥5x a fresh build.  Either way the store generation bumps, so
        stale worker caches and plans can never answer for the old
        corpus."""
        self._writable()
        segment_index, local = self._locate(position)
        entry = self._manifest["segments"][segment_index]
        old_tree = self.tree(position)
        if site is not None:
            repaired = repair_index(index_for(old_tree), tree, site)
            adopt_index(tree, repaired)
        segment_path = os.path.join(self.path, entry["name"])
        segment = self._segment(segment_index)
        # Splice the sidecar, not just the segment: unchanged records
        # keep their blobs byte-for-byte, the edited record gets the
        # repaired (or rebuilt) index serialized fresh.
        old_blobs = (
            self._valid_sidecar_blobs(segment_index)
            if self._use_sidecars else None
        )
        rewrite_path = segment_path + ".rewrite"
        writer = SegmentWriter(rewrite_path, entry["id"])
        try:
            for i in range(segment.tree_count):
                writer.append(tree if i == local else segment.tree(i))
            footer = writer.seal()
        except BaseException:
            writer.abort()
            raise
        self._evict_segment(segment_index)
        # Retire the old sidecar *before* the segment bytes move: no
        # crash window leaves a valid-looking sidecar describing bytes
        # that are no longer there.
        side_path = sidecar_path(segment_path)
        try:
            os.unlink(side_path)
        except OSError:
            pass
        os.replace(rewrite_path, segment_path)
        next_gen = self.generation + 1
        self._record_seal(
            entry["id"], footer, True,
            sidecar_gen=next_gen if self._use_sidecars else None,
        )
        # Keep the edited segment warm: point reads and serial batches
        # right after an edit are the repair path's whole point.
        fresh = self._load_segment(segment_index)
        patched = fresh[:local] + (tree,) + fresh[local + 1:]
        self._loaded[segment_index] = patched
        if self._use_sidecars:
            if old_blobs is not None:
                old_blobs[local] = serialize_index(index_for(tree))
                new_blobs = old_blobs
            else:
                new_blobs = [serialize_index(index_for(t)) for t in patched]
            write_sidecar(side_path, entry["id"], next_gen, new_blobs)
        self._bump()

    # -- reading ------------------------------------------------------

    def _locate(self, position: int) -> Tuple[int, int]:
        if not 0 <= position < self.tree_count:
            raise IndexError(position)
        offset = 0
        for segment_index, entry in enumerate(self._manifest["segments"]):
            if position < offset + entry["trees"]:
                return segment_index, position - offset
            offset += entry["trees"]
        raise IndexError(position)  # pragma: no cover - manifest counts

    def _segment_start(self, segment_index: int) -> int:
        return sum(
            entry["trees"]
            for entry in self._manifest["segments"][:segment_index]
        )

    def _segment(self, segment_index: int) -> Segment:
        segment = self._segments.get(segment_index)
        if segment is None:
            entry = self._manifest["segments"][segment_index]
            segment = Segment(os.path.join(self.path, entry["name"]))
            self._segments[segment_index] = segment
        return segment

    def _evict_segment(self, segment_index: int) -> None:
        segment = self._segments.pop(segment_index, None)
        if segment is not None:
            segment.close()
        self._loaded.pop(segment_index, None)

    def _load_segment(self, segment_index: int) -> Tuple[Tree, ...]:
        """This segment's trees, via a bounded LRU of materialized
        segments — the serial query path's warm state."""
        cached = self._loaded.get(segment_index)
        if cached is not None:
            self._loaded.move_to_end(segment_index)
            return cached
        trees = self._segment(segment_index).trees()
        self._loaded[segment_index] = trees
        while len(self._loaded) > _LOADED_SEGMENTS:
            self._loaded.popitem(last=False)
        return trees

    # -- index sidecars -----------------------------------------------

    def _sidecar_file(self, segment_index: int) -> str:
        entry = self._manifest["segments"][segment_index]
        return sidecar_path(os.path.join(self.path, entry["name"]))

    def _valid_sidecar_blobs(
        self, segment_index: int
    ) -> Optional[List[bytes]]:
        """Every blob of a segment's sidecar, or ``None`` when the
        sidecar is missing, corrupt, or tagged for a different version
        of the segment's bytes."""
        entry = self._manifest["segments"][segment_index]
        tag = entry.get("sidecar_gen")
        if tag is None:
            return None
        try:
            with Sidecar(self._sidecar_file(segment_index)) as sidecar:
                if (
                    sidecar.segment_id == entry["id"]
                    and sidecar.generation == tag
                    and sidecar.count == entry["trees"]
                ):
                    return sidecar.blobs()
        except (OSError, StoreError):
            pass
        return None

    def _segment_blobs(self, segment_index: int) -> List[bytes]:
        """Every index blob of a segment — from its sidecar when the
        generation tag matches, else rebuilt from the records."""
        existing = self._valid_sidecar_blobs(segment_index)
        if existing is not None:
            return existing
        segment = self._segment(segment_index)
        return [
            serialize_index(TreeIndex(segment.tree(i)))
            for i in range(segment.tree_count)
        ]

    def _rebuild_sidecar(
        self, segment_index: int
    ) -> Optional[Tuple[str, int]]:
        """Rebuild a missing/corrupt sidecar from the segment's records
        and retag the manifest entry — no generation bump, the corpus
        bytes did not change."""
        entry = self._manifest["segments"][segment_index]
        segment = self._segment(segment_index)
        blobs = [
            serialize_index(TreeIndex(segment.tree(i)))
            for i in range(segment.tree_count)
        ]
        path = self._sidecar_file(segment_index)
        tag = self.generation
        write_sidecar(path, entry["id"], tag, blobs)
        entry["sidecar_gen"] = tag
        self._save_manifest()
        return (path, tag)

    def _sidecar_spec(
        self, segment_index: int
    ) -> Optional[Tuple[str, int]]:
        """The ``(sidecar path, generation tag)`` workers should mmap
        for this segment, or ``None`` to rebuild indexes from records.

        Validated once per (segment, generation); a writable store
        lazily rebuilds an invalid sidecar here, a readonly one falls
        back per chunk."""
        if not self._use_sidecars:
            return None
        cached = self._sidecar_ok.get(segment_index)
        if cached is not None and cached[0] == self.generation:
            return cached[1]
        entry = self._manifest["segments"][segment_index]
        tag = entry.get("sidecar_gen")
        spec: Optional[Tuple[str, int]] = None
        if tag is not None:
            try:
                with Sidecar(self._sidecar_file(segment_index)) as sidecar:
                    if (
                        sidecar.segment_id == entry["id"]
                        and sidecar.generation == tag
                        and sidecar.count == entry["trees"]
                    ):
                        spec = (sidecar.path, tag)
            except (OSError, StoreError):
                spec = None
        if spec is None and not self.readonly:
            spec = self._rebuild_sidecar(segment_index)
        self._sidecar_ok[segment_index] = (self.generation, spec)
        return spec

    def tree(self, position: int) -> Tree:
        """The tree at ``position`` (loads its segment, LRU-cached)."""
        segment_index, local = self._locate(position)
        return self._load_segment(segment_index)[local]

    def trees(self, start: int = 0, stop: Optional[int] = None) -> Iterator[Tree]:
        """Iterate trees ``[start, stop)`` without holding extra
        segments — a full scan touches each segment once."""
        stop = self.tree_count if stop is None else min(stop, self.tree_count)
        position = start
        while position < stop:
            segment_index, local = self._locate(position)
            entry = self._manifest["segments"][segment_index]
            hi = min(entry["trees"], local + (stop - position))
            segment = self._segment(segment_index)
            for i in range(local, hi):
                yield segment.tree(i)
            position += hi - local

    def statistics(self) -> CorpusStatistics:
        """Aggregate corpus statistics from the manifest's per-segment
        summaries — no record is read, whatever the store size.  Cached
        per generation; any mutation changes the fingerprint, which
        invalidates statistics-keyed plan caches."""
        if self._stats is not None and self._stats_generation == self.generation:
            return self._stats
        summaries = [
            entry["summary"] for entry in self._manifest["segments"]
        ]
        count = sum(s["trees"] for s in summaries)
        total = sum(s["nodes"] for s in summaries)
        labels: Dict[str, int] = {}
        for summary in summaries:
            for name, c in summary["labels"].items():
                labels[name] = labels.get(name, 0) + c
        chain = "|".join(s["chain"] for s in summaries)
        self._stats = CorpusStatistics(
            tree_count=count,
            total_nodes=total,
            n=total / count if count else 0.0,
            max_n=max((s["max_n"] for s in summaries), default=0),
            height=sum(s["sum_height"] for s in summaries) / count
            if count else 0.0,
            leaf_count=sum(s["sum_leaves"] for s in summaries) / count
            if count else 0.0,
            label_counts=tuple(sorted(labels.items())),
            avg_fanout=sum(s["sum_fanout"] for s in summaries) / count
            if count else 0.0,
            avg_subtree=sum(s["sum_subtree"] for s in summaries) / count
            if count else 0.0,
            fingerprint=_fingerprint(f"{chain}#g{self.generation}"),
        )
        self._stats_generation = self.generation
        return self._stats

    def recover(self) -> int:
        """Reseal every torn segment in place (dropping torn tail
        records), refresh the manifest, and return how many segments
        needed repair.  The counterpart of a crash mid-ingest."""
        self._writable()
        repaired = 0
        for segment_index, entry in enumerate(self._manifest["segments"]):
            segment_path = os.path.join(self.path, entry["name"])
            try:
                self._segment(segment_index)
            except StoreCorruptError:
                self._evict_segment(segment_index)
                # The sidecar goes first: once the segment is resealed
                # with records dropped, a surviving sidecar would look
                # valid while describing the pre-crash bytes.  Dropping
                # it forces a lazy rebuild instead.
                try:
                    os.unlink(sidecar_path(segment_path))
                except OSError:
                    pass
                footer = recover_segment(segment_path)
                self._record_seal(entry["id"], footer, True)
                repaired += 1
        if repaired:
            self._bump()
        return repaired

    def compact(self) -> int:
        """Repack the store so every segment but the last holds exactly
        ``segment_size`` trees; returns how many segments the compacted
        store has (0 when it was already compact).

        Under-full segments accumulate when :meth:`recover` drops torn
        records mid-store; compaction rewrites the records (copied
        byte-for-byte, no pickle round-trip) and their sidecar blobs
        into freshly named segments, commits them with one atomic
        manifest replace under a generation bump, then unlinks the old
        files — a crash at any point leaves either the old store or the
        new one, plus at worst some unreferenced garbage files."""
        self._writable()
        segments: List[Dict[str, object]] = self._manifest["segments"]
        if not segments or all(
            entry["trees"] == self.segment_size for entry in segments[:-1]
        ):
            return 0
        next_gen = self.generation + 1
        old_files = [os.path.join(self.path, e["name"]) for e in segments]
        new_entries: List[Dict[str, object]] = []
        writer: Optional[SegmentWriter] = None
        blobs: List[bytes] = []
        new_id = 0

        def seal(writer: SegmentWriter) -> None:
            footer = writer.seal()
            entry = {
                "name": os.path.basename(writer.path),
                "id": writer.segment_id,
                "trees": footer["trees"],
                "nodes": footer["nodes"],
                "summary": _aggregate(footer["stats"]),
            }
            if self._use_sidecars:
                entry["sidecar_gen"] = next_gen
                write_sidecar(
                    sidecar_path(writer.path),
                    writer.segment_id, next_gen, blobs,
                )
            new_entries.append(entry)

        try:
            for segment_index in range(len(segments)):
                segment = self._segment(segment_index)
                src_blobs = (
                    self._valid_sidecar_blobs(segment_index)
                    if self._use_sidecars else None
                )
                for i in range(segment.tree_count):
                    if writer is None:
                        name = f"seg-{new_id:05d}-g{next_gen}.seg"
                        writer = SegmentWriter(
                            os.path.join(self.path, name), new_id
                        )
                        new_id += 1
                        blobs = []
                    writer.append_raw(
                        segment.record_payload(i), segment.stats_row(i)
                    )
                    if self._use_sidecars:
                        blobs.append(
                            src_blobs[i] if src_blobs is not None
                            else serialize_index(TreeIndex(segment.tree(i)))
                        )
                    if writer.tree_count >= self.segment_size:
                        seal(writer)
                        writer = None
            if writer is not None:
                seal(writer)
                writer = None
        except BaseException:
            if writer is not None:
                writer.abort()
            for entry in new_entries:  # drop the aborted repack's files
                fresh = os.path.join(self.path, entry["name"])
                for victim in (fresh, sidecar_path(fresh)):
                    try:
                        os.unlink(victim)
                    except OSError:
                        pass
            raise
        for segment_index in range(len(segments)):
            self._evict_segment(segment_index)
        self._sidecar_ok.clear()
        self._manifest["segments"] = new_entries
        self._bump()  # the commit point: one atomic manifest replace
        for old in old_files:
            for victim in (old, sidecar_path(old)):
                try:
                    os.unlink(victim)
                except OSError:
                    pass
        return len(new_entries)

    # -- querying -----------------------------------------------------

    def _chunk_bounds(
        self,
        start: int,
        stop: int,
        chunk_size: Optional[int],
        workers: int,
    ) -> Tuple[Tuple[int, int], ...]:
        """Segment-aligned chunk intervals covering ``[start, stop)`` —
        a chunk never spans segments, so each maps to one shard (one
        contiguous byte range of one file)."""
        if chunk_size is None:
            lanes = 4 * max(1, workers)
            span = max(1, stop - start)
            chunk_size = max(1, -(-span // lanes))
        bounds: List[Tuple[int, int]] = []
        position = start
        while position < stop:
            segment_index, local = self._locate(position)
            entry = self._manifest["segments"][segment_index]
            segment_stop = position - local + entry["trees"]
            chunk_stop = min(position + chunk_size, segment_stop, stop)
            bounds.append((position, chunk_stop))
            position = chunk_stop
        return tuple(bounds)

    def _shard_for(
        self, start: int, stop: int
    ) -> Tuple[str, int, int, int, Optional[Tuple[str, int]]]:
        segment_index, local = self._locate(start)
        entry = self._manifest["segments"][segment_index]
        return (
            os.path.join(self.path, entry["name"]),
            self.generation,
            local,
            local + (stop - start),
            self._sidecar_spec(segment_index),
        )

    def run(
        self,
        queries: Sequence[CorpusQuery],
        workers: int = 0,
        chunk_size: Optional[int] = None,
        engine: str = "fast",
        start: int = 0,
        stop: Optional[int] = None,
        budget_steps: Optional[int] = None,
        faults=None,
        budget_seconds: Optional[float] = None,
        on_exhausted: str = "degrade",
        route: int = 0,
        worker_retries: int = 0,
        retry_backoff: float = 0.05,
    ) -> BatchResult:
        """Evaluate a query batch over trees ``[start, stop)`` of the
        store (default: all of it).

        Serial runs materialize one segment at a time through the LRU;
        worker runs ship shard coordinates — each routed worker mmaps
        the segment and unpickles only its shard, keeping trees and
        indexes warm under the store token until the generation moves.
        The service knobs (``budget_seconds``, ``on_exhausted``,
        ``route``, ``worker_retries``) pass through to
        :func:`~repro.corpus.executor.run_batch`, with dead routed
        workers healed in place like :class:`TreeCorpus` does.
        """
        stop = self.tree_count if stop is None else min(stop, self.tree_count)
        if start < 0 or start > stop:
            raise ValueError(f"bad tree range [{start}, {stop})")
        pool = None
        if workers > 0:
            with self._pool_lock:
                pool = self._pools.get(workers)
                if pool is None:
                    pool = self._pools[workers] = _make_pools(workers)
        # Bounds stay store-global: chunk warm-state keys are
        # (token, start, stop), and two different windows must never
        # alias the same key to different trees.
        return run_batch(
            _StoreView(self, 0, stop),
            queries,
            workers=workers,
            chunk_size=chunk_size,
            engine=engine,
            budget_steps=budget_steps,
            faults=faults,
            pool=pool,
            token=self.token,
            stats=self.statistics() if engine == "auto" else None,
            bounds=self._chunk_bounds(start, stop, chunk_size, workers),
            shard_for=self._shard_for,
            budget_seconds=budget_seconds,
            on_exhausted=on_exhausted,
            route=route,
            worker_retries=worker_retries,
            retry_backoff=retry_backoff,
            replace_pool=(
                (lambda slot: self._heal_pool(workers, slot))
                if workers > 0 else None
            ),
        )

    def _heal_pool(self, workers: int, slot: int) -> ProcessPoolExecutor:
        """Replace routed pool ``slot`` (its worker died) with a fresh
        single-worker pool, in place."""
        with self._pool_lock:
            routed = list(self._pools.get(workers) or _make_pools(workers))
            try:
                routed[slot].shutdown(wait=False)
            except Exception:
                pass
            routed[slot] = _make_pools(1)[0]
            self._pools[workers] = tuple(routed)
            return routed[slot]


class _StoreView(Sequence):
    """A window ``[start, stop)`` of a store as a lazy tree sequence.

    ``run_batch`` only ever takes ``len()`` and contiguous slices of
    it; slices materialize through the store's bounded segment LRU, so
    the view never holds the corpus."""

    def __init__(self, store: CorpusStore, start: int, stop: int):
        self._store = store
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, item):
        if isinstance(item, slice):
            lo, hi, step = item.indices(len(self))
            if step != 1:
                raise ValueError("store views slice contiguously")
            return tuple(
                self._store.tree(self._start + i) for i in range(lo, hi)
            )
        if item < 0:
            item += len(self)
        if not 0 <= item < len(self):
            raise IndexError(item)
        return self._store.tree(self._start + item)
