"""``TreeCorpus`` — many indexed trees, queried set-at-a-time.

The corpus is the "fixed query, many instances" reading of the paper's
complexity results made operational: the expensive per-tree work
(validation, :class:`~repro.engine.index.TreeIndex` construction) is
done once at :meth:`prepare` time, and every batch after that pays only
per-query evaluation.  Plans are shared process-wide, so a query text
compiles once no matter how many batches mention it.

A corpus also owns its worker pools.  ``run(queries, workers=4)``
lazily creates (and then reuses) a 4-worker pool, so worker processes
keep their plan and index caches warm across successive batches — the
"warm" rows of ``BENCH_corpus.json``.  Close the corpus (or use it as
a context manager) to shut the pools down.
"""

from __future__ import annotations

import itertools
import os
import random
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..engine.index import TreeIndex, index_for
from ..engine.stats import CorpusStatistics, corpus_statistics
from ..trees.generators import random_tree
from ..trees.parser import parse_term
from ..trees.tree import Tree
from .executor import BatchResult, _make_pools, run_batch
from .query import CorpusQuery

__all__ = ["TreeCorpus"]

#: Distinguishes corpora within (and across) processes, so a worker's
#: warm per-chunk state is never mistaken for another corpus's.
_TOKENS = itertools.count()


class TreeCorpus:
    """An immutable collection of trees with pinned indexes and
    persistent worker pools."""

    def __init__(self, trees: Iterable[Tree]):
        self._trees: Tuple[Tree, ...] = tuple(trees)
        self._indexes: Optional[Tuple[TreeIndex, ...]] = None
        self._stats: Optional[CorpusStatistics] = None
        self._pools: Dict[int, Tuple[ProcessPoolExecutor, ...]] = {}
        self._token = f"corpus-{os.getpid()}-{next(_TOKENS)}"

    # -- construction -------------------------------------------------

    @classmethod
    def from_terms(cls, texts: Iterable[str]) -> "TreeCorpus":
        """Parse each term text (``σ(δ, σ(δ))`` syntax) into a tree."""
        return cls(parse_term(text) for text in texts)

    @classmethod
    def random(
        cls,
        count: int,
        max_size: int = 32,
        seed: int = 0,
        alphabet: Sequence[str] = ("σ", "δ"),
        max_children: int = 4,
    ) -> "TreeCorpus":
        """``count`` random trees with sizes cycling up to ``max_size``,
        deterministically derived from ``seed``."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        rng = random.Random(seed)
        trees = [
            random_tree(
                size=1 + (i * 7) % max_size,
                alphabet=alphabet,
                max_children=max_children,
                seed=rng,
            )
            for i in range(count)
        ]
        return cls(trees)

    # -- inspection ---------------------------------------------------

    @property
    def trees(self) -> Tuple[Tree, ...]:
        return self._trees

    def __len__(self) -> int:
        return len(self._trees)

    def __getitem__(self, position: int) -> Tree:
        return self._trees[position]

    def __iter__(self):
        return iter(self._trees)

    def total_nodes(self) -> int:
        return sum(tree.size for tree in self._trees)

    def statistics(self) -> CorpusStatistics:
        """Aggregate statistics over the corpus (computed once — the
        tree sequence is immutable, so the fingerprint is stable)."""
        if self._stats is None:
            self._stats = corpus_statistics(self._trees)
        return self._stats

    def __repr__(self) -> str:
        state = "prepared" if self._indexes is not None else "unprepared"
        return (
            f"TreeCorpus({len(self._trees)} trees, "
            f"{self.total_nodes()} nodes, {state})"
        )

    # -- indexing -----------------------------------------------------

    def prepare(self) -> "TreeCorpus":
        """Build and pin every tree's index now (idempotent).

        Pinning keeps a strong reference per tree, so batch runs can
        re-seat each index into the global LRU as they reach its tree
        instead of rebuilding — the corpus is immune to cache-capacity
        thrash however many trees it holds.
        """
        if self._indexes is None:
            self._indexes = tuple(index_for(tree) for tree in self._trees)
        return self

    # -- execution ----------------------------------------------------

    def run(
        self,
        queries: Sequence[CorpusQuery],
        workers: int = 0,
        chunk_size: Optional[int] = None,
        engine: str = "fast",
        budget_steps: Optional[int] = None,
        faults=None,
    ) -> BatchResult:
        """Evaluate a query batch over every tree in the corpus.

        Serial runs reuse the pinned indexes directly; worker runs
        reuse this corpus's persistent routed pools for ``workers``,
        creating them on first use — so each chunk revisits a worker
        that already holds its trees and indexes warm.
        """
        self.prepare()
        pool = None
        if workers > 0:
            pool = self._pools.get(workers)
            if pool is None:
                pool = self._pools[workers] = _make_pools(workers)
        return run_batch(
            self._trees,
            queries,
            workers=workers,
            chunk_size=chunk_size,
            engine=engine,
            budget_steps=budget_steps,
            faults=faults,
            pool=pool,
            indexes=self._indexes,
            token=self._token,
            stats=self.statistics() if engine == "auto" else None,
        )

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Shut down every pool this corpus created."""
        pools, self._pools = self._pools, {}
        for routed in pools.values():
            for pool in routed:
                pool.shutdown()

    def __enter__(self) -> "TreeCorpus":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
