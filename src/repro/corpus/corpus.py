"""``TreeCorpus`` — many indexed trees, queried set-at-a-time.

The corpus is the "fixed query, many instances" reading of the paper's
complexity results made operational: the expensive per-tree work
(validation, :class:`~repro.engine.index.TreeIndex` construction) is
done once at :meth:`prepare` time, and every batch after that pays only
per-query evaluation.  Plans are shared process-wide, so a query text
compiles once no matter how many batches mention it.

A corpus also owns its worker pools.  ``run(queries, workers=4)``
lazily creates (and then reuses) a 4-worker pool, so worker processes
keep their plan and index caches warm across successive batches — the
"warm" rows of ``BENCH_corpus.json``.  Close the corpus (or use it as
a context manager) to shut the pools down.
"""

from __future__ import annotations

import itertools
import os
import random
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..engine.index import TreeIndex, index_for
from ..engine.stats import CorpusStatistics, corpus_statistics
from ..trees.generators import random_tree
from ..trees.parser import parse_term
from ..trees.tree import Tree
from .executor import BatchResult, _make_pools, run_batch
from .query import CorpusQuery

__all__ = ["TreeCorpus"]

#: Distinguishes corpora within (and across) processes, so a worker's
#: warm per-chunk state is never mistaken for another corpus's.
_TOKENS = itertools.count()


class TreeCorpus:
    """An immutable collection of trees with pinned indexes and
    persistent worker pools."""

    def __init__(self, trees: Iterable[Tree]):
        self._trees: Tuple[Tree, ...] = tuple(trees)
        self._indexes: Optional[Tuple[TreeIndex, ...]] = None
        self._stats: Optional[CorpusStatistics] = None
        self._pools: Dict[int, Tuple[ProcessPoolExecutor, ...]] = {}
        #: Guards pool creation/healing — the query service runs many
        #: batches over one corpus from concurrent threads.
        self._pool_lock = threading.Lock()
        self._token = f"corpus-{os.getpid()}-{next(_TOKENS)}"

    # -- construction -------------------------------------------------

    @classmethod
    def from_terms(cls, texts: Iterable[str]) -> "TreeCorpus":
        """Parse each term text (``σ(δ, σ(δ))`` syntax) into a tree."""
        return cls(parse_term(text) for text in texts)

    @classmethod
    def random(
        cls,
        count: int,
        max_size: int = 32,
        seed: int = 0,
        alphabet: Sequence[str] = ("σ", "δ"),
        max_children: int = 4,
    ) -> "TreeCorpus":
        """``count`` random trees with sizes cycling up to ``max_size``,
        deterministically derived from ``seed``."""
        if count < 0:
            raise ValueError("count must be >= 0")
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        rng = random.Random(seed)
        trees = [
            random_tree(
                size=1 + (i * 7) % max_size,
                alphabet=alphabet,
                max_children=max_children,
                seed=rng,
            )
            for i in range(count)
        ]
        return cls(trees)

    # -- inspection ---------------------------------------------------

    @property
    def trees(self) -> Tuple[Tree, ...]:
        return self._trees

    @property
    def token(self) -> str:
        """This corpus's warm-state/cache key: unique per instance
        and — the corpus being immutable — valid for its whole life."""
        return self._token

    def __len__(self) -> int:
        return len(self._trees)

    def __getitem__(self, position: int) -> Tree:
        return self._trees[position]

    def __iter__(self):
        return iter(self._trees)

    def total_nodes(self) -> int:
        return sum(tree.size for tree in self._trees)

    def statistics(self) -> CorpusStatistics:
        """Aggregate statistics over the corpus (computed once — the
        tree sequence is immutable, so the fingerprint is stable)."""
        if self._stats is None:
            self._stats = corpus_statistics(self._trees)
        return self._stats

    def __repr__(self) -> str:
        state = "prepared" if self._indexes is not None else "unprepared"
        return (
            f"TreeCorpus({len(self._trees)} trees, "
            f"{self.total_nodes()} nodes, {state})"
        )

    # -- indexing -----------------------------------------------------

    def prepare(self) -> "TreeCorpus":
        """Build and pin every tree's index now (idempotent).

        Pinning keeps a strong reference per tree, so batch runs can
        re-seat each index into the global LRU as they reach its tree
        instead of rebuilding — the corpus is immune to cache-capacity
        thrash however many trees it holds.
        """
        if self._indexes is None:
            self._indexes = tuple(index_for(tree) for tree in self._trees)
        return self

    # -- execution ----------------------------------------------------

    def run(
        self,
        queries: Sequence[CorpusQuery],
        workers: int = 0,
        chunk_size: Optional[int] = None,
        engine: str = "fast",
        budget_steps: Optional[int] = None,
        faults=None,
        start: int = 0,
        stop: Optional[int] = None,
        budget_seconds: Optional[float] = None,
        on_exhausted: str = "degrade",
        route: int = 0,
        worker_retries: int = 0,
        retry_backoff: float = 0.05,
    ) -> BatchResult:
        """Evaluate a query batch over trees ``[start, stop)`` of the
        corpus (default: all of it).

        Serial runs reuse the pinned indexes directly; worker runs
        reuse this corpus's persistent routed pools for ``workers``,
        creating them on first use — so each chunk revisits a worker
        that already holds its trees and indexes warm.  The service
        knobs (``budget_seconds``, ``on_exhausted``, ``route``,
        ``worker_retries``) pass straight through to
        :func:`~repro.corpus.executor.run_batch`; a worker that dies is
        healed in place, so this corpus's later batches route to a live
        replacement.
        """
        self.prepare()
        count = len(self._trees)
        stop = count if stop is None else min(stop, count)
        if start < 0 or start > stop:
            raise ValueError(f"bad tree range [{start}, {stop})")
        pool = None
        if workers > 0:
            with self._pool_lock:
                pool = self._pools.get(workers)
                if pool is None:
                    pool = self._pools[workers] = _make_pools(workers)
        bounds = None
        if start != 0 or stop != count:
            # Window bounds stay corpus-global: warm-state keys are
            # (token, start, stop) and must never alias across windows.
            if chunk_size is None:
                lanes = 4 * max(1, workers)
                chunk_size = max(1, -(-(stop - start) // lanes))
            bounds = tuple(
                (lo, min(lo + chunk_size, stop))
                for lo in range(start, stop, chunk_size)
            )
        return run_batch(
            self._trees,
            queries,
            workers=workers,
            chunk_size=chunk_size,
            engine=engine,
            budget_steps=budget_steps,
            faults=faults,
            pool=pool,
            indexes=self._indexes,
            token=self._token,
            stats=self.statistics() if engine == "auto" else None,
            bounds=bounds,
            budget_seconds=budget_seconds,
            on_exhausted=on_exhausted,
            route=route,
            worker_retries=worker_retries,
            retry_backoff=retry_backoff,
            replace_pool=(
                (lambda slot: self._heal_pool(workers, slot))
                if workers > 0 else None
            ),
        )

    def _heal_pool(self, workers: int, slot: int) -> ProcessPoolExecutor:
        """Replace routed pool ``slot`` (its worker died) with a fresh
        single-worker pool, in place — later batches route straight to
        the replacement."""
        with self._pool_lock:
            routed = list(self._pools.get(workers) or _make_pools(workers))
            try:
                routed[slot].shutdown(wait=False)
            except Exception:
                pass
            routed[slot] = _make_pools(1)[0]
            self._pools[workers] = tuple(routed)
            return routed[slot]

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Shut down every pool this corpus created."""
        pools, self._pools = self._pools, {}
        for routed in pools.values():
            for pool in routed:
                pool.shutdown()

    def __enter__(self) -> "TreeCorpus":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
