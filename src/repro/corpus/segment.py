"""Append-only segment files — the corpus store's unit of disk layout.

A segment holds a contiguous run of serialized trees::

    [ MAGIC "RPROSEG1" | version u32 | segment id u32 ]      16-byte header
    [ length u32 | pickled Tree ] …                          records
    [ footer JSON (utf-8) ]
    [ footer length u32 | TRAILER "RPROFTR1" ]               12-byte trailer

The footer carries everything a reader needs without touching the
records: per-record offsets, per-tree statistics rows (size, height,
leaves, label counts, …) and their segment-level aggregate.  A sealed
segment is therefore self-describing: :class:`Segment` opens it
memory-mapped, answers count/statistics questions from the footer
alone, and unpickles individual trees lazily — a
:func:`~repro.corpus.executor.run_batch` worker routed shard ``[lo,
hi)`` touches only those records' byte ranges.

Records are written straight through (no buffering of the whole
segment), so ingest memory stays bounded by one tree plus the pending
footer rows.  A crash before :meth:`SegmentWriter.seal` leaves a
headerful of complete records and possibly one torn tail record;
:func:`recover_segment` rescans the record stream, drops the torn
tail, and seals what survived.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import struct
from typing import Dict, Iterator, List, Optional, Tuple

from ..engine.stats import TreeStatistics
from ..resilience.errors import ReproError
from ..trees.tree import Tree

__all__ = [
    "Segment",
    "SegmentWriter",
    "Sidecar",
    "StoreError",
    "StoreCorruptError",
    "StoreLockedError",
    "StoreMissingError",
    "StoreVersionError",
    "recover_segment",
    "sidecar_path",
    "write_sidecar",
]

MAGIC = b"RPROSEG1"
TRAILER = b"RPROFTR1"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sII")   # magic, format version, segment id
_RECORD = struct.Struct("<I")      # record length prefix
_TRAILER = struct.Struct("<I8s")   # footer length, trailer magic

#: Index sidecar file bits (``seg-NNNNN.rpridx`` next to each sealed
#: ``seg-NNNNN.seg``): one serialized TreeIndex blob per record, plus
#: the generation tag that ties the sidecar to one version of the
#: segment's bytes.
SIDECAR_MAGIC = b"RPRIDX01"
SIDECAR_TRAILER = b"RPRIDXTR"
SIDECAR_VERSION = 1
SIDECAR_SUFFIX = ".rpridx"

_SIDECAR_HEADER = struct.Struct("<8sIIQI")  # magic, version, seg id, gen, count
_OFFSET = struct.Struct("<Q")


class StoreError(ReproError):
    """Anything wrong with an on-disk corpus store.

    Raised instead of a raw ``OSError``/``ValueError`` so callers (and
    the ``repro corpus`` CLI) can catch one type for every store
    failure mode; the subclasses say which contract broke."""


class StoreMissingError(StoreError):
    """The path is not a corpus store (or a segment file is gone)."""


class StoreVersionError(StoreError):
    """The store was written by an incompatible format version."""


class StoreCorruptError(StoreError):
    """The bytes are there but do not parse back (torn write, bad
    magic, truncated footer).  ``recover_segment`` may salvage the
    complete prefix of records."""


class StoreLockedError(StoreError):
    """Another live process holds the store's single-writer lock.
    Opening read-only (``CorpusStore.open(path, readonly=True)``) is
    always allowed; a second writer fails fast instead of silently
    racing the manifest."""


def _stats_row(stats: TreeStatistics) -> list:
    """One tree's statistics as a compact JSON row (field order fixed —
    this is part of the segment format)."""
    return [
        stats.n,
        stats.height,
        stats.leaf_count,
        [list(item) for item in stats.label_counts],
        [list(item) for item in stats.attr_counts],
        stats.avg_fanout,
        stats.avg_subtree,
        stats.fingerprint,
    ]


def _row_stats(row: list) -> TreeStatistics:
    n, height, leaves, labels, attrs, fanout, subtree, fingerprint = row
    return TreeStatistics(
        n=n,
        height=height,
        leaf_count=leaves,
        label_counts=tuple((name, count) for name, count in labels),
        attr_counts=tuple((name, count) for name, count in attrs),
        avg_fanout=fanout,
        avg_subtree=subtree,
        fingerprint=fingerprint,
    )


class SegmentWriter:
    """Streams records into a segment file and seals it with a footer.

    The writer appends; it never seeks back into the record region, so
    a power cut mid-\\ :meth:`append` can tear at most the final
    record.  Call :meth:`seal` to write the footer and make the file a
    valid :class:`Segment`; :meth:`abort` discards it."""

    def __init__(self, path: str, segment_id: int):
        self.path = path
        self.segment_id = segment_id
        self._offsets: List[int] = []
        self._rows: List[list] = []
        self._handle = open(path, "wb")
        self._handle.write(_HEADER.pack(MAGIC, FORMAT_VERSION, segment_id))
        self._position = _HEADER.size
        self._sealed = False

    @classmethod
    def resume(cls, path: str, segment_id: int) -> "SegmentWriter":
        """Reopen a sealed segment for further appends.

        The footer and trailer are truncated away (they are rewritten
        by the next :meth:`seal`) and the existing records stay
        byte-for-byte where they were — the append-only contract."""
        existing = Segment(path)
        try:
            if existing.segment_id != segment_id:
                raise StoreCorruptError(
                    f"segment id mismatch in {path}: "
                    f"{existing.segment_id} != {segment_id}"
                )
            offsets = list(existing._offsets)
            rows = [list(row) for row in existing._rows]
            record_end = existing._record_end
        finally:
            existing.close()
        writer = cls.__new__(cls)
        writer.path = path
        writer.segment_id = segment_id
        writer._offsets = offsets
        writer._rows = rows
        writer._handle = open(path, "r+b")
        writer._handle.truncate(record_end)
        writer._handle.seek(record_end)
        writer._position = record_end
        writer._sealed = False
        return writer

    @property
    def tree_count(self) -> int:
        return len(self._offsets)

    @property
    def node_count(self) -> int:
        return sum(row[0] for row in self._rows)

    def append(self, tree: Tree) -> int:
        """Write one tree; returns its record position in this segment."""
        if self._sealed:
            raise StoreError("segment already sealed")
        payload = pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL)
        self._offsets.append(self._position)
        self._rows.append(_stats_row(TreeStatistics.from_tree(tree)))
        self._handle.write(_RECORD.pack(len(payload)))
        self._handle.write(payload)
        self._position += _RECORD.size + len(payload)
        return len(self._offsets) - 1

    def append_raw(self, payload: bytes, row: list) -> int:
        """Copy one already-pickled record (with its statistics row)
        byte-for-byte — the compaction path, which repacks segments
        without paying a pickle/unpickle round per tree."""
        if self._sealed:
            raise StoreError("segment already sealed")
        self._offsets.append(self._position)
        self._rows.append(list(row))
        self._handle.write(_RECORD.pack(len(payload)))
        self._handle.write(payload)
        self._position += _RECORD.size + len(payload)
        return len(self._offsets) - 1

    def seal(self) -> Dict[str, object]:
        """Write footer + trailer and close; returns the footer dict
        (what the store manifest records about this segment)."""
        if self._sealed:
            raise StoreError("segment already sealed")
        footer = {
            "segment": self.segment_id,
            "trees": len(self._offsets),
            "nodes": self.node_count,
            "record_end": self._position,
            "offsets": self._offsets,
            "stats": self._rows,
        }
        blob = json.dumps(footer, separators=(",", ":")).encode("utf-8")
        self._handle.write(blob)
        self._handle.write(_TRAILER.pack(len(blob), TRAILER))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._sealed = True
        return footer

    def abort(self) -> None:
        """Close and delete the partial segment."""
        if not self._sealed:
            self._handle.close()
            self._sealed = True
            try:
                os.unlink(self.path)
            except OSError:
                pass


class Segment:
    """A sealed segment, opened memory-mapped and read lazily.

    Construction reads only header, trailer and footer; record bytes
    are faulted in by the OS as :meth:`tree` / :meth:`trees` touch
    them.  On platforms (or empty files) where ``mmap`` fails, the
    whole file is read once as a fallback — same API, no laziness."""

    def __init__(self, path: str):
        try:
            self._file = open(path, "rb")
        except FileNotFoundError as exc:
            raise StoreMissingError(f"no such segment: {path}") from exc
        self.path = path
        try:
            self._view = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError):
            self._file.seek(0)
            self._view = self._file.read()
        data = self._view
        if len(data) < _HEADER.size + _TRAILER.size:
            raise StoreCorruptError(f"segment too short: {path}")
        magic, version, segment_id = _HEADER.unpack_from(data, 0)
        if magic != MAGIC:
            raise StoreCorruptError(f"bad segment magic in {path}")
        if version != FORMAT_VERSION:
            raise StoreVersionError(
                f"segment {path} is format v{version}; "
                f"this build reads v{FORMAT_VERSION}"
            )
        self.segment_id = segment_id
        footer_len, trailer = _TRAILER.unpack_from(
            data, len(data) - _TRAILER.size
        )
        if trailer != TRAILER:
            raise StoreCorruptError(
                f"segment {path} has no trailer (torn write? "
                f"recover_segment() can salvage the complete records)"
            )
        footer_start = len(data) - _TRAILER.size - footer_len
        if footer_start < _HEADER.size:
            raise StoreCorruptError(f"segment {path}: bad footer length")
        try:
            footer = json.loads(bytes(data[footer_start:len(data) - _TRAILER.size]))
        except ValueError as exc:
            raise StoreCorruptError(
                f"segment {path}: unreadable footer"
            ) from exc
        self._offsets: List[int] = footer["offsets"]
        self._rows: List[list] = footer["stats"]
        self._record_end: int = footer["record_end"]
        self.tree_count: int = footer["trees"]
        self.node_count: int = footer["nodes"]
        if self.tree_count != len(self._offsets):
            raise StoreCorruptError(f"segment {path}: offset table mismatch")

    def __len__(self) -> int:
        return self.tree_count

    def tree(self, position: int) -> Tree:
        """Unpickle record ``position`` (touches only its byte range)."""
        if not 0 <= position < self.tree_count:
            raise IndexError(position)
        start = self._offsets[position]
        (length,) = _RECORD.unpack_from(self._view, start)
        begin = start + _RECORD.size
        payload = bytes(self._view[begin:begin + length])
        try:
            tree = pickle.loads(payload)
        except Exception as exc:
            raise StoreCorruptError(
                f"segment {self.path}: record {position} does not "
                f"unpickle ({type(exc).__name__})"
            ) from exc
        if not isinstance(tree, Tree):
            raise StoreCorruptError(
                f"segment {self.path}: record {position} is not a Tree"
            )
        return tree

    def trees(self, lo: int = 0, hi: Optional[int] = None) -> Tuple[Tree, ...]:
        """Records ``[lo, hi)`` materialized — one shard's worth."""
        if hi is None:
            hi = self.tree_count
        return tuple(self.tree(i) for i in range(lo, hi))

    def record_payload(self, position: int) -> bytes:
        """Record ``position``'s pickled bytes, unvalidated — paired
        with :meth:`SegmentWriter.append_raw` for copying compaction."""
        if not 0 <= position < self.tree_count:
            raise IndexError(position)
        start = self._offsets[position]
        (length,) = _RECORD.unpack_from(self._view, start)
        begin = start + _RECORD.size
        return bytes(self._view[begin:begin + length])

    def stats_row(self, position: int) -> list:
        """Record ``position``'s raw statistics footer row."""
        return self._rows[position]

    def statistics_rows(self) -> Tuple[TreeStatistics, ...]:
        """Per-tree statistics from the footer — no record is read."""
        return tuple(_row_stats(row) for row in self._rows)

    def close(self) -> None:
        if isinstance(self._view, mmap.mmap):
            self._view.close()
        self._file.close()

    def __enter__(self) -> "Segment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Segment({os.path.basename(self.path)}, id={self.segment_id}, "
            f"{self.tree_count} trees, {self.node_count} nodes)"
        )


def _scan_records(data, limit: int) -> Iterator[Tuple[int, Tree]]:
    """Yield (offset, tree) for every *complete, unpicklable* record
    prefix of the record region; stops silently at the first torn or
    unreadable record — recovery semantics."""
    position = _HEADER.size
    while position + _RECORD.size <= limit:
        (length,) = _RECORD.unpack_from(data, position)
        begin = position + _RECORD.size
        if begin + length > limit:
            return  # torn tail: the length prefix outruns the file
        try:
            tree = pickle.loads(bytes(data[begin:begin + length]))
        except Exception:
            return
        if not isinstance(tree, Tree):
            return
        yield position, tree
        position = begin + length


def recover_segment(path: str) -> Dict[str, object]:
    """Rebuild a sealed segment from whatever complete records survive
    in ``path`` (an unsealed or torn segment file).

    Scans the record stream from the header, keeps every record that
    still unpickles, drops the torn tail, and rewrites the file sealed.
    Returns the new footer.  Raises :class:`StoreCorruptError` if even
    the header is gone."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError as exc:
        raise StoreMissingError(f"no such segment: {path}") from exc
    if len(data) < _HEADER.size:
        raise StoreCorruptError(f"segment {path}: header is torn")
    magic, version, segment_id = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise StoreCorruptError(f"bad segment magic in {path}")
    if version != FORMAT_VERSION:
        raise StoreVersionError(
            f"segment {path} is format v{version}; "
            f"this build reads v{FORMAT_VERSION}"
        )
    # If a trailer parses, trust the footer's record_end (the tail
    # beyond it is footer bytes, not records); otherwise scan to EOF.
    limit = len(data)
    if len(data) >= _HEADER.size + _TRAILER.size:
        footer_len, trailer = _TRAILER.unpack_from(
            data, len(data) - _TRAILER.size
        )
        if trailer == TRAILER:
            footer_start = len(data) - _TRAILER.size - footer_len
            if footer_start >= _HEADER.size:
                try:
                    footer = json.loads(
                        data[footer_start:len(data) - _TRAILER.size]
                    )
                    limit = footer["record_end"]
                except (ValueError, KeyError):
                    limit = footer_start
    recovered = os.path.join(
        os.path.dirname(path) or ".", f".{os.path.basename(path)}.recover"
    )
    writer = SegmentWriter(recovered, segment_id)
    try:
        for _, tree in _scan_records(data, limit):
            writer.append(tree)
        footer = writer.seal()
    except BaseException:
        writer.abort()
        raise
    os.replace(recovered, path)
    return footer


# ---------------------------------------------------------------------------
# index sidecars
# ---------------------------------------------------------------------------
#
# ``seg-NNNNN.rpridx`` next to each sealed ``seg-NNNNN.seg``::
#
#     [ SIDECAR_MAGIC | version u32 | segment id u32
#       | generation u64 | count u32 ]                      28-byte header
#     [ (count + 1) u64 blob offsets ]                      offset table
#     [ serialize_index blobs, concatenated ]
#     [ SIDECAR_TRAILER ]                                   8-byte trailer
#
# Offsets are relative to the end of the offset table, so ``blob(i)``
# is two table reads and one slice of the mmap — a worker loading a
# shard's indexes touches exactly those blobs' byte ranges.  The
# generation tag ties the sidecar to one version of the segment's
# bytes: the store records the matching tag in its manifest when it
# (re)seals the segment, and a mismatch — a sidecar that survived a
# segment rewrite, or vice versa — reads as *missing*, never as stale
# answers.


def sidecar_path(segment_file: str) -> str:
    """The index sidecar path for a segment file path."""
    base, _ = os.path.splitext(segment_file)
    return base + SIDECAR_SUFFIX


def write_sidecar(
    path: str, segment_id: int, generation: int, blobs: List[bytes]
) -> None:
    """Write an index sidecar atomically (write-aside then rename), so
    a crash leaves either the old sidecar or the new one, never a torn
    file masquerading as valid."""
    aside = os.path.join(
        os.path.dirname(path) or ".", f".{os.path.basename(path)}.tmp"
    )
    with open(aside, "wb") as handle:
        handle.write(_SIDECAR_HEADER.pack(
            SIDECAR_MAGIC, SIDECAR_VERSION, segment_id, generation, len(blobs)
        ))
        position = 0
        for blob in blobs:
            handle.write(_OFFSET.pack(position))
            position += len(blob)
        handle.write(_OFFSET.pack(position))
        for blob in blobs:
            handle.write(blob)
        handle.write(SIDECAR_TRAILER)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(aside, path)


class Sidecar:
    """A sealed index sidecar, opened memory-mapped and read lazily.

    Construction validates header, trailer and the offset table's
    bounds; blob bytes are faulted in as :meth:`blob` touches them.
    Raises the store error taxonomy on anything wrong — a torn or
    corrupt sidecar is a :class:`StoreCorruptError` the store turns
    into a rebuild, never a crash."""

    def __init__(self, path: str):
        try:
            self._file = open(path, "rb")
        except FileNotFoundError as exc:
            raise StoreMissingError(f"no such sidecar: {path}") from exc
        self.path = path
        try:
            self._view = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError):
            self._file.seek(0)
            self._view = self._file.read()
        data = self._view
        if len(data) < _SIDECAR_HEADER.size + len(SIDECAR_TRAILER):
            raise StoreCorruptError(f"sidecar too short: {path}")
        magic, version, segment_id, generation, count = (
            _SIDECAR_HEADER.unpack_from(data, 0)
        )
        if magic != SIDECAR_MAGIC:
            raise StoreCorruptError(f"bad sidecar magic in {path}")
        if version != SIDECAR_VERSION:
            raise StoreVersionError(
                f"sidecar {path} is format v{version}; "
                f"this build reads v{SIDECAR_VERSION}"
            )
        if bytes(data[len(data) - len(SIDECAR_TRAILER):]) != SIDECAR_TRAILER:
            raise StoreCorruptError(
                f"sidecar {path} has no trailer (torn write?)"
            )
        self.segment_id = segment_id
        self.generation = generation
        self.count = count
        self._blob_base = _SIDECAR_HEADER.size + _OFFSET.size * (count + 1)
        blob_end = len(data) - len(SIDECAR_TRAILER)
        if self._blob_base > blob_end:
            raise StoreCorruptError(f"sidecar {path}: bad offset table")
        (total,) = _OFFSET.unpack_from(
            data, _SIDECAR_HEADER.size + _OFFSET.size * count
        )
        if self._blob_base + total != blob_end:
            raise StoreCorruptError(f"sidecar {path}: blob region mismatch")
        self._mem = memoryview(self._view)

    def __len__(self) -> int:
        return self.count

    def blob(self, position: int):
        """Blob ``position``'s bytes (a zero-copy view of the mmap)."""
        if not 0 <= position < self.count:
            raise IndexError(position)
        at = _SIDECAR_HEADER.size + _OFFSET.size * position
        (start,) = _OFFSET.unpack_from(self._view, at)
        (end,) = _OFFSET.unpack_from(self._view, at + _OFFSET.size)
        if end < start:
            raise StoreCorruptError(
                f"sidecar {self.path}: offset table is not monotone"
            )
        return self._mem[self._blob_base + start:self._blob_base + end]

    def blobs(self, lo: int = 0, hi: Optional[int] = None) -> List[bytes]:
        """Blobs ``[lo, hi)`` as real byte strings (splice/copy paths)."""
        if hi is None:
            hi = self.count
        return [bytes(self.blob(i)) for i in range(lo, hi)]

    def close(self) -> None:
        self._mem.release()
        if isinstance(self._view, mmap.mmap):
            self._view.close()
        self._file.close()

    def __enter__(self) -> "Sidecar":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Sidecar({os.path.basename(self.path)}, "
            f"id={self.segment_id}, g{self.generation}, {self.count} blobs)"
        )
