"""``CorpusQuery`` — one query of a corpus batch, as text plus a kind.

Queries are deliberately *textual*: the corpus engine compiles each
text exactly once through the process-wide shared plan cache
(:mod:`repro.engine.plans`), and text payloads pickle to a few dozen
bytes when a batch fans out to worker processes.  The ``kind`` selects
the formalism and the result shape:

==========================  ==============================================
``"xpath"``                 §2.3 XPath fragment; result: node tuple in
                            document order
``"ask"``                   closed FO sentence; result: bool
``"select"``                binary FO(∃*) selector φ(x, y); result: node
                            tuple in document order
``"caterpillar"``           caterpillar walk from ``context``; result:
                            node tuple in document order
``"caterpillar-relation"``  the full denoted relation ⟦e⟧ ⊆ Dom(t)²;
                            result: sorted tuple of (source, target)
                            node pairs
==========================  ==============================================

All results are plain tuples/bools — picklable, hashable, and
byte-comparable across engines, which is what the corpus/sequential
oracle pair asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..trees.node import NodeId

__all__ = [
    "KINDS",
    "CorpusQuery",
    "xpath_query",
    "ask_query",
    "select_query",
    "caterpillar_query",
    "caterpillar_relation_query",
]

#: Recognised query kinds, in the order the docs list them.
KINDS: Tuple[str, ...] = (
    "xpath",
    "ask",
    "select",
    "caterpillar",
    "caterpillar-relation",
)


@dataclass(frozen=True)
class CorpusQuery:
    """One batched query: a ``kind``, its concrete text, and (for the
    node-selecting kinds) the per-tree context node to start from."""

    kind: str
    text: str
    context: NodeId = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; expected one of {KINDS}"
            )
        object.__setattr__(self, "context", tuple(self.context))

    def __repr__(self) -> str:
        suffix = f", context={list(self.context)}" if self.context else ""
        return f"CorpusQuery({self.kind!r}, {self.text!r}{suffix})"


def xpath_query(text: str, context: NodeId = ()) -> CorpusQuery:
    """An XPath batch query (§2.3 fragment)."""
    return CorpusQuery("xpath", text, context)


def ask_query(text: str) -> CorpusQuery:
    """A closed-FO-sentence batch query (boolean per tree)."""
    return CorpusQuery("ask", text)


def select_query(text: str, context: NodeId = ()) -> CorpusQuery:
    """A binary FO(∃*) selector batch query."""
    return CorpusQuery("select", text, context)


def caterpillar_query(text: str, context: NodeId = ()) -> CorpusQuery:
    """A caterpillar-walk batch query."""
    return CorpusQuery("caterpillar", text, context)


def caterpillar_relation_query(text: str) -> CorpusQuery:
    """A full caterpillar-relation batch query."""
    return CorpusQuery("caterpillar-relation", text)
