"""Pebbles and pebble arithmetic — the engine of Theorem 7.1(1).

With unique IDs, "a finite number of pebbles" is just a finite number
of ID-holding registers (Section 7).  :class:`PebbleMachine` is a
walker restricted to exactly the operations a TW automaton has:

* the five moves and the positional predicates;
* placing a pebble at the current node (store the ID);
* testing whether a pebble lies on the current node (compare IDs);
* returning to a pebble (a TW automaton finds it by exhaustive
  search; we walk the unique connecting path and charge its length —
  a lower bound on the search cost, adequate since Theorem 7.1 is an
  expressiveness statement, not a time bound).

On top of the primitives sit the in-order routines the proof sketch
uses: in-order first/last/successor/predecessor, and the arithmetic on
tape-contents-as-numbers — "node #j in the in-order of the tree
represents the number j" — with halving implemented by two pebbles
walking towards each other, parity falling out of the halving, and
±2^i built from doubling, exactly as the paper describes.

All operations count walker moves (``steps``) so experiments can show
the polynomial cost profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..trees.node import NodeId
from ..trees.tree import Tree


class PebbleError(RuntimeError):
    """Raised on unknown pebbles or arithmetic overflow past |t|-1."""


class PebbleMachine:
    """A TW-power walker with named pebbles on a fixed tree."""

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        self.position: NodeId = ()
        self.pebbles: Dict[str, NodeId] = {}
        self.steps = 0

    # -- primitive moves (each costs one step) -----------------------------------

    def _move_to(self, target: Optional[NodeId]) -> bool:
        self.steps += 1
        if target is None:
            return False
        self.position = target
        return True

    def up(self) -> bool:
        return self._move_to(self.tree.parent(self.position))

    def down(self) -> bool:
        return self._move_to(self.tree.first_child(self.position))

    def left(self) -> bool:
        return self._move_to(self.tree.left_sibling(self.position))

    def right(self) -> bool:
        return self._move_to(self.tree.right_sibling(self.position))

    # -- primitive predicates ------------------------------------------------------

    def is_root(self) -> bool:
        return self.tree.is_root(self.position)

    def is_leaf(self) -> bool:
        return self.tree.is_leaf(self.position)

    def is_first(self) -> bool:
        return self.tree.is_first_child(self.position)

    def is_last(self) -> bool:
        return self.tree.is_last_child(self.position)

    def label(self) -> str:
        return self.tree.label(self.position)

    def attr(self, name: str):
        return self.tree.val(name, self.position)

    def has_second_child(self) -> bool:
        return self.tree.degree(self.position) >= 2

    # -- pebbles (IDs in registers) ---------------------------------------------------

    def place(self, pebble: str) -> None:
        """Store the current node's ID in register ``pebble``."""
        self.pebbles[pebble] = self.position

    def here(self, pebble: str) -> bool:
        """Does ``pebble`` lie on the current node?  (ID comparison.)"""
        return self._node(pebble) == self.position

    def same(self, left: str, right: str) -> bool:
        """Do two pebbles coincide?  (ID comparison.)"""
        return self._node(left) == self._node(right)

    def goto(self, pebble: str) -> None:
        """Walk to ``pebble`` along the unique connecting path."""
        target = self._node(pebble)
        current = self.position
        cut = 0
        while cut < len(current) and cut < len(target) and current[cut] == target[cut]:
            cut += 1
        # up to the LCA, then down; sibling hops are charged one each.
        self.steps += (len(current) - cut) + self._descent_cost(target, cut)
        self.position = target

    def _descent_cost(self, target: NodeId, cut: int) -> int:
        cost = 0
        for depth in range(cut, len(target)):
            cost += 1 + target[depth]  # down + rightward hops
        return cost

    def _node(self, pebble: str) -> NodeId:
        try:
            return self.pebbles[pebble]
        except KeyError:
            raise PebbleError(f"pebble {pebble!r} was never placed") from None

    # -- in-order navigation (pure walker subroutines) ---------------------------------

    def descend_inorder_first(self) -> None:
        """To the in-order first node of the current subtree."""
        while self.down():
            pass
        # the failed final ``down`` cost one step, mirroring a real
        # walker's probe; position is already correct.

    def descend_inorder_last(self) -> None:
        """To the in-order last node of the current subtree."""
        while self.has_second_child():
            self.down()
            while self.right():
                pass

    def inorder_succ(self) -> bool:
        """Move to the in-order successor; False (position restored) at
        the in-order last node."""
        saved = self.position
        if self.has_second_child():
            self.down()
            self.right()
            self.descend_inorder_first()
            return True
        while True:
            if self.is_root():
                self.position = saved
                return False
            was_first = self.is_first()
            was_last = self.is_last()
            if was_first:
                self.up()
                return True
            if not was_last:
                self.right()
                self.descend_inorder_first()
                return True
            self.up()

    def inorder_pred(self) -> bool:
        """Move to the in-order predecessor; False at the in-order first."""
        saved = self.position
        if not self.is_leaf():
            self.down()
            self.descend_inorder_last()
            return True
        while True:
            if self.is_root():
                self.position = saved
                return False
            index_one = self.is_first()
            if index_one:
                # kid0's subtree precedes nothing inside this parent —
                # keep climbing.
                self.up()
                continue
            # c = kids[i], i >= 1: check whether i == 1 (left sibling is
            # the first child).
            self.left()
            if self.is_first():
                self.up()
                return True
            self.descend_inorder_last()
            return True


# ---------------------------------------------------------------------------
# Arithmetic on in-order indices (tape contents as numbers)
# ---------------------------------------------------------------------------


class PebbleArithmetic:
    """Numbers 0 … |t|−1 represented by pebbles via the in-order
    numbering; all routines reduce to walker moves and ID tests."""

    def __init__(self, machine: PebbleMachine) -> None:
        self.m = machine

    # -- constants & copies --------------------------------------------------------

    def zero(self, pebble: str) -> None:
        """pebble := 0 (the in-order first node)."""
        m = self.m
        while not m.is_root():
            m.up()
        m.descend_inorder_first()
        m.place(pebble)

    def copy(self, src: str, dst: str) -> None:
        self.m.goto(src)
        self.m.place(dst)

    def is_zero(self, pebble: str) -> bool:
        """pebble == 0, via a predecessor probe (position restored)."""
        self.m.goto(pebble)
        if self.m.inorder_pred():
            self.m.goto(pebble)
            return False
        return True

    def equal(self, left: str, right: str) -> bool:
        return self.m.same(left, right)

    # -- increments ------------------------------------------------------------------

    def succ(self, pebble: str) -> bool:
        """pebble := pebble + 1; False on overflow (pebble unchanged)."""
        self.m.goto(pebble)
        if not self.m.inorder_succ():
            return False
        self.m.place(pebble)
        return True

    def pred(self, pebble: str) -> bool:
        """pebble := pebble − 1; False at zero (pebble unchanged)."""
        self.m.goto(pebble)
        if not self.m.inorder_pred():
            return False
        self.m.place(pebble)
        return True

    # -- compound arithmetic ------------------------------------------------------------

    def add(self, target: str, amount: str, scratch: str = "§add") -> bool:
        """target := target + amount (amount preserved); False on overflow."""
        self.copy(amount, scratch)
        while not self.is_zero(scratch):
            if not self.succ(target):
                return False
            self.pred(scratch)
        return True

    def subtract(self, target: str, amount: str, scratch: str = "§sub") -> bool:
        """target := target − amount; False on underflow."""
        self.copy(amount, scratch)
        while not self.is_zero(scratch):
            if not self.pred(target):
                return False
            self.pred(scratch)
        return True

    def halve(self, pebble: str, low: str = "§low", high: str = "§high") -> int:
        """pebble := ⌊pebble / 2⌋; returns the parity bit.

        The paper's construction: one pebble starts at 0, one at j, and
        they walk towards each other one in-order step at a time; the
        meeting pattern gives ⌊j/2⌋ and j mod 2.
        """
        self.zero(low)
        self.copy(pebble, high)
        while True:
            if self.m.same(low, high):
                parity = 0
                break
            self.m.goto(low)
            self.m.inorder_succ()
            self.m.place(low)
            if self.m.same(low, high):
                parity = 1
                self.pred(low)
                break
            self.pred(high)
        self.copy(low, pebble)
        return parity

    def parity(self, pebble: str, scratch: str = "§par") -> int:
        """pebble mod 2 (pebble preserved)."""
        self.copy(pebble, scratch)
        return self.halve(scratch)

    def shift_right(self, pebble: str, count: str, scratch: str = "§shr") -> None:
        """pebble := pebble >> count (count preserved)."""
        self.copy(count, scratch)
        while not self.is_zero(scratch):
            self.halve(pebble)
            self.pred(scratch)

    def bit(self, number: str, index: str, scratch: str = "§bit") -> int:
        """Bit ``index`` of ``number`` (both preserved) — the proof's
        "check whether j divided by 2^(i−1) is even"."""
        self.copy(number, scratch)
        self.shift_right(scratch, index)
        return self.parity(scratch)

    def power_of_two(self, index: str, result: str, scratch: str = "§pow") -> bool:
        """result := 2^index (index preserved); False on overflow."""
        self.zero(result)
        if not self.succ(result):  # result = 1
            return False
        self.copy(index, scratch)
        while not self.is_zero(scratch):
            self.copy(result, "§dbl")
            if not self.add(result, "§dbl"):
                return False
            self.pred(scratch)
        return True

    def add_power_of_two(self, target: str, index: str, sign: int) -> bool:
        """target := target ± 2^index — the proof's tape-bit write."""
        if not self.power_of_two(index, "§p2"):
            return False
        if sign >= 0:
            return self.add(target, "§p2")
        return self.subtract(target, "§p2")

    # -- value extraction (test interface only) --------------------------------------------

    def value_of(self, pebble: str) -> int:
        """The in-order index the pebble denotes (test-only oracle)."""
        from ..trees.traversal import numbering

        return numbering(self.m.tree)[self.m._node(pebble)]

    def set_value(self, pebble: str, value: int) -> None:
        """Place the pebble on node #value (test-only oracle)."""
        from ..trees.traversal import inorder

        order = inorder(self.m.tree)
        if not 0 <= value < len(order):
            raise PebbleError(f"value {value} out of range 0..{len(order) - 1}")
        self.m.pebbles[pebble] = order[value]
