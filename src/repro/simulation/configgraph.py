"""Configuration-graph evaluation — Theorems 7.1(2) and 7.1(4).

The proof that tw^l ⊆ PTIME^X observes that a tw^l has only
polynomially many configurations: (node, state, k single-value
registers over adom ∪ {⊥}).  Evaluating with **memoised
subcomputations** then visits each configuration at most once, giving a
polynomial algorithm (the paper phrases it as inflationary construction
of the configuration graph; memoised top-down evaluation computes the
same least fixpoint lazily).

The same evaluator applied to a full tw^{r,l} is the Theorem 7.1(4)
EXPTIME algorithm: store contents now range over sets of relations, so
the configuration count is exponential — the bound functions below
expose both counts, and the E8 experiment fits the polynomial degree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..automata.machine import TWAutomaton
from ..automata.runner import (
    Configuration,
    ExecutionError,
    FuelExhausted,
    NondeterminismError,
)
from ..automata.rules import Atp, Move, Update, move as tree_move
from ..store.database import RegisterStore
from ..store.fo import StoreContext, evaluate as evaluate_guard, evaluate_update
from ..store.relation import Relation
from ..trees.node import NodeId
from ..trees.tree import Tree


@dataclass
class MemoStats:
    """Work accounting for one memoised evaluation."""

    distinct_starts: int = 0
    cache_hits: int = 0
    steps: int = 0


@dataclass
class MemoResult:
    accepted: bool
    stats: MemoStats


class _Reject(Exception):
    pass


_StartKey = Tuple[NodeId, str, RegisterStore]


class _MemoEvaluator:
    """Top-down evaluation with memoised subcomputation results.

    ``memo[key]`` is the returned first-register relation, or None for
    a rejecting subcomputation.  Keys on the active chain that recur
    are rejected (the runner's cycle convention)."""

    def __init__(self, automaton: TWAutomaton, tree: Tree, fuel: int) -> None:
        self.automaton = automaton
        self.tree = tree
        self.fuel = fuel
        self.constants = automaton.program_constants()
        self.memo: Dict[_StartKey, Optional[Relation]] = {}
        self.on_stack: Set[_StartKey] = set()
        self.stats = MemoStats()

    def evaluate(self) -> MemoResult:
        start = Configuration(
            (), self.automaton.initial_state, self.automaton.initial_store()
        )
        try:
            self._run(start)
        except _Reject:
            return MemoResult(False, self.stats)
        return MemoResult(True, self.stats)

    def _run(self, config: Configuration) -> Relation:
        """Run a computation chain to acceptance; returns register 1."""
        seen: Set[Configuration] = set()
        while True:
            if config.state == self.automaton.final_state:
                return config.store.get(1) if config.store.schema.count else None  # type: ignore[return-value]
            if config in seen:
                raise _Reject()
            seen.add(config)
            self.stats.steps += 1
            if self.stats.steps > self.fuel:
                raise FuelExhausted(f"memo evaluation exceeded {self.fuel} steps")
            rule = self._applicable(config)
            if rule is None:
                raise _Reject()
            rhs = rule.rhs
            if isinstance(rhs, Move):
                target = tree_move(self.tree, config.node, rhs.direction)
                if target is None:
                    raise _Reject()
                config = Configuration(target, rhs.state, config.store)
            elif isinstance(rhs, Update):
                ctx = self._context(config)
                relation = evaluate_update(rhs.formula, list(rhs.variables), ctx)
                config = Configuration(
                    config.node, rhs.state, config.store.set(rhs.register, relation)
                )
            elif isinstance(rhs, Atp):
                result = Relation.empty(self.automaton.schema.arity(1))
                for target in rhs.selector.select(self.tree, config.node):
                    sub = self._subresult((target, rhs.substate, config.store))
                    if sub is None:
                        raise _Reject()
                    result = result.union(sub)
                config = Configuration(
                    config.node, rhs.state, config.store.set(rhs.register, result)
                )
            else:  # pragma: no cover
                raise ExecutionError(f"unknown RHS {rhs!r}")

    def _subresult(self, key: _StartKey) -> Optional[Relation]:
        if key in self.memo:
            self.stats.cache_hits += 1
            return self.memo[key]
        if key in self.on_stack:
            # Recursive atp with an unchanged start: divergence.
            return None
        self.on_stack.add(key)
        self.stats.distinct_starts += 1
        try:
            relation = self._run(Configuration(*key))
        except _Reject:
            relation = None
        finally:
            self.on_stack.discard(key)
        self.memo[key] = relation
        return relation

    def _applicable(self, config: Configuration):
        label = self.tree.label(config.node)
        ctx = self._context(config)
        found = None
        for rule in self.automaton.rules_for(config.state):
            if rule.lhs.label is not None and rule.lhs.label != label:
                continue
            if not rule.lhs.position.matches(self.tree, config.node):
                continue
            if not evaluate_guard(rule.lhs.guard, ctx):
                continue
            if found is not None:
                raise NondeterminismError(
                    f"rules {found!r} and {rule!r} both apply at {config!r}"
                )
            found = rule
        return found

    def _context(self, config: Configuration) -> StoreContext:
        attrs = {a: self.tree.val(a, config.node) for a in self.tree.attributes}
        return StoreContext(config.store, attrs, self.constants)


def evaluate_memo(
    automaton: TWAutomaton, tree: Tree, fuel: int = 2_000_000
) -> MemoResult:
    """Memoised evaluation.  Must agree with the plain runner on every
    input (tested); for tw^l it is the paper's PTIME algorithm, for
    tw^{r,l} the EXPTIME one."""
    return _MemoEvaluator(automaton, tree, fuel).evaluate()


# ---------------------------------------------------------------------------
# Configuration-count bounds
# ---------------------------------------------------------------------------


def active_domain_size(automaton: TWAutomaton, tree: Tree) -> int:
    """|adom| = tree values ∪ program constants."""
    return len(tree.active_domain() | automaton.program_constants())


def twl_configuration_bound(automaton: TWAutomaton, tree: Tree) -> int:
    """|Q| · |t| · (|adom|+1)^k — polynomial in |t| for fixed k
    (Theorem 7.1(2))."""
    adom = active_domain_size(automaton, tree)
    return (
        len(automaton.states)
        * tree.size
        * (adom + 1) ** automaton.schema.count
    )


def twrl_configuration_bound(automaton: TWAutomaton, tree: Tree) -> int:
    """|Q| · |t| · Π_i 2^(|adom|^arity_i) — exponential (Theorem 7.1(4))."""
    adom = active_domain_size(automaton, tree)
    total = len(automaton.states) * tree.size
    for arity in automaton.schema.arities:
        total *= 2 ** (adom**arity)
    return total
