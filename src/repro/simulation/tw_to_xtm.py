"""Compiling tw automata into xTMs — Theorem 7.1(1), the ⊆ direction.

"Clearly, every TW can be simulated in LOGSPACE^X": a tw's
configuration is (node, state, k single-value registers), which an xTM
holds in its own control, head position and registers — no work tape at
all.  This compiler produces that xTM rule-for-rule, so the simulation
is 1:1 in steps (asserted by the tests), making the containment as
concrete as the pebble construction makes the converse.

Supported source fragment: tw (Definition 5.1's register-free walking
plus single-value registers) whose guards are boolean combinations the
xTM test language can express —

* ``X_i(@a)``            → ``RegEqAttr(i, a)``
* ``X_i(d)``             → ``RegEqConst(i, d)``
* ``@a = d`` / ``d = @a``→ ``AttrEqConst(a, d)``
* negations and conjunctions of the above (¬ maps to the tests'
  ``negate`` flag; conjunction to the test tuple)

and whose updates are the tw shapes ``z = @a`` (LoadAttr), ``z = d``
(SetConst) and ``false`` (ClearReg).  ``atp`` rules and wider guards
raise :class:`UnsupportedFeature` — they belong to tw^l/tw^r and their
own theorems.
"""

from __future__ import annotations

from typing import List, Tuple

from ..automata.machine import TWAutomaton
from ..automata.rules import Atp, Move, STAY, Update
from ..machines.xtm import (
    AttrEqConst,
    ClearReg,
    LoadAttr,
    NoAction,
    RegEqAttr,
    RegEqConst,
    RegisterTest,
    SetConst,
    TreeMove,
    XTM,
    XTMRule,
)
from ..store import fo as F


class UnsupportedFeature(ValueError):
    """The source automaton uses something outside the tw fragment the
    xTM test language covers."""


def _translate_atom(atom: F.StoreFormula, negate: bool) -> RegisterTest:
    if isinstance(atom, F.Rel):
        if len(atom.terms) != 1:
            raise UnsupportedFeature(
                f"only unary register atoms translate: {atom!r}"
            )
        term = atom.terms[0]
        if isinstance(term, F.Attr):
            return RegEqAttr(atom.register, term.name, negate=negate)
        if isinstance(term, F.Const):
            return RegEqConst(atom.register, term.value, negate=negate)
        raise UnsupportedFeature(f"variable in a guard atom: {atom!r}")
    if isinstance(atom, F.Eq):
        sides = (atom.left, atom.right)
        attrs = [t for t in sides if isinstance(t, F.Attr)]
        consts = [t for t in sides if isinstance(t, F.Const)]
        if len(attrs) == 1 and len(consts) == 1:
            return AttrEqConst(attrs[0].name, consts[0].value, negate=negate)
        raise UnsupportedFeature(
            f"only '@a = const' equalities translate: {atom!r}"
        )
    raise UnsupportedFeature(f"guard atom out of fragment: {atom!r}")


def _translate_guard(guard: F.StoreFormula) -> Tuple[RegisterTest, ...]:
    """Conjunction of (possibly negated) translatable atoms."""
    if isinstance(guard, F.TrueF):
        return ()
    if isinstance(guard, F.And):
        out: List[RegisterTest] = []
        for part in guard.parts:
            out.extend(_translate_guard(part))
        return tuple(out)
    if isinstance(guard, F.Not):
        inner = guard.inner
        if isinstance(inner, (F.Rel, F.Eq)):
            return (_translate_atom(inner, negate=True),)
        raise UnsupportedFeature(f"negation of a non-atom: {guard!r}")
    if isinstance(guard, (F.Rel, F.Eq)):
        return (_translate_atom(guard, negate=False),)
    raise UnsupportedFeature(
        f"guard outside the conjunctive fragment: {guard!r}"
    )


def _value_action(update: Update, formula: F.StoreFormula):
    """The action for a defining equality ``z = @a`` / ``z = d``."""
    z = update.variables[0]
    sides = (formula.left, formula.right)
    if z not in sides:
        raise UnsupportedFeature(f"update does not define {z!r}: {update!r}")
    other = sides[1] if sides[0] == z else sides[0]
    if isinstance(other, F.Attr):
        return LoadAttr(update.register, other.name)
    if isinstance(other, F.Const):
        return SetConst(update.register, other.value)
    raise UnsupportedFeature(f"update value out of fragment: {update!r}")


def _translate_update(update: Update) -> List[Tuple[Tuple[RegisterTest, ...], object]]:
    """Cases of (extra guard tests, register action).

    Handles the plain tw shapes (``z = @a``, ``z = d``, ``false``) and
    *guarded-case* updates — ``(ξ₁ ∧ z = v₁) ∨ … ∨ (ξₙ ∧ z = vₙ)`` with
    translatable case guards — by expanding each case into its own xTM
    rule (still single-valued: one case fires per configuration).
    """
    if len(update.variables) != 1:
        raise UnsupportedFeature(f"non-unary update: {update!r}")
    formula = update.formula
    if isinstance(formula, F.FalseF):
        return [((), ClearReg(update.register))]
    if isinstance(formula, F.Eq):
        return [((), _value_action(update, formula))]
    if isinstance(formula, F.Or):
        cases: List[Tuple[Tuple[RegisterTest, ...], object]] = []
        for part in formula.parts:
            if not isinstance(part, F.And):
                raise UnsupportedFeature(
                    f"case update needs (guard ∧ z = value) disjuncts: {update!r}"
                )
            z = update.variables[0]
            defining = [
                p for p in part.parts
                if isinstance(p, F.Eq) and z in (p.left, p.right)
            ]
            if len(defining) != 1:
                raise UnsupportedFeature(
                    f"each case must define z exactly once: {update!r}"
                )
            guard_parts = tuple(p for p in part.parts if p is not defining[0])
            tests = _translate_guard(F.conj(*guard_parts))
            cases.append((tests, _value_action(update, defining[0])))
        return cases
    raise UnsupportedFeature(
        f"update outside the tw single-value shapes: {update!r}"
    )


def compile_tw_to_xtm(automaton: TWAutomaton) -> XTM:
    """Build the step-for-step xTM simulating a tw automaton."""
    rules: List[XTMRule] = []
    for rule in automaton.rules:
        tests = _translate_guard(rule.lhs.guard)
        rhs = rule.rhs
        if isinstance(rhs, Move):
            cases = [((), NoAction() if rhs.direction == STAY
                      else TreeMove(rhs.direction))]
        elif isinstance(rhs, Update):
            cases = _translate_update(rhs)
        elif isinstance(rhs, Atp):
            raise UnsupportedFeature(
                "atp rules are tw^l/tw^{r,l}; this compiler covers tw"
            )
        else:  # pragma: no cover
            raise UnsupportedFeature(f"unknown RHS {rhs!r}")
        for extra_tests, action in cases:
            rules.append(
                XTMRule(
                    state=rule.lhs.state,
                    new_state=rhs.state,
                    label=rule.lhs.label,
                    position=rule.lhs.position,
                    tests=tests + extra_tests,
                    action=action,
                )
            )
    # Initial register values become a preamble of SetConst steps.
    preamble_state = automaton.initial_state
    preamble: List[XTMRule] = []
    extra_states: List[str] = []
    values = [
        value for value in automaton.initial_assignment
        if value is not None and not _is_bottom(value)
    ]
    if values:
        current = "xtm:init0"
        extra_states.append(current)
        preamble_state = current
        pending = [
            (index, value)
            for index, value in enumerate(automaton.initial_assignment, start=1)
            if value is not None and not _is_bottom(value)
        ]
        for count, (index, value) in enumerate(pending):
            is_last = count == len(pending) - 1
            target = (
                automaton.initial_state if is_last else f"xtm:init{count + 1}"
            )
            if not is_last:
                extra_states.append(target)
            preamble.append(
                XTMRule(current, target, action=SetConst(index, value))
            )
            current = target

    states = frozenset(set(automaton.states) | set(extra_states))
    return XTM(
        states=states,
        initial=preamble_state,
        accepting=frozenset({automaton.final_state}),
        registers=max(automaton.schema.count, 1),
        rules=tuple(preamble + rules),
        name=f"xtm[{automaton.name}]",
    )


def _is_bottom(value) -> bool:
    from ..trees.values import BOTTOM

    return value is BOTTOM
