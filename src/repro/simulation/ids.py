"""Unique node IDs (Section 7).

Section 7 assumes an attribute ``ID`` whose value is unique across the
tree, used "only for navigational purposes": storing an ID in a
register is placing a pebble on the node.  These helpers attach such an
attribute and verify uniqueness.
"""

from __future__ import annotations

from typing import Dict

from ..trees.node import NodeId
from ..trees.tree import Tree
from ..trees.values import BOTTOM

ID_ATTR = "ID"


class IdError(ValueError):
    """Raised when the uniqueness assumption fails."""


def with_ids(tree: Tree, attr: str = ID_ATTR, prefix: str = "n") -> Tree:
    """A copy of ``tree`` carrying a fresh unique-ID attribute.

    IDs are ``prefix + document-order index`` — any injective scheme
    works; the logic only ever compares them for equality.
    """
    table: Dict[NodeId, str] = {
        u: f"{prefix}{i}" for i, u in enumerate(tree.nodes)
    }
    return tree.with_attribute(attr, table)


def has_unique_ids(tree: Tree, attr: str = ID_ATTR) -> bool:
    """Check Section 7's assumption: λ_ID is injective and never ⊥."""
    if attr not in tree.attributes:
        return False
    seen = set()
    for u in tree.nodes:
        value = tree.val(attr, u)
        if value is BOTTOM or value in seen:
            return False
        seen.add(value)
    return True


def require_unique_ids(tree: Tree, attr: str = ID_ATTR) -> Tree:
    """Validate or raise."""
    if not has_unique_ids(tree, attr):
        raise IdError(
            f"tree lacks a unique {attr!r} attribute; call with_ids() first"
        )
    return tree


def id_of(tree: Tree, node: NodeId, attr: str = ID_ATTR):
    """The node's ID value."""
    return tree.val(attr, node)


def node_with_id(tree: Tree, value, attr: str = ID_ATTR) -> NodeId:
    """Inverse lookup (a walker realises this by exhaustive search)."""
    for u in tree.nodes:
        if tree.val(attr, u) == value:
            return u
    raise IdError(f"no node carries {attr}={value!r}")
