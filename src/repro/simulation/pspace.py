"""Theorem 7.1(3): tw^r captures PSPACE^X — both directions, executable.

**⊆.**  Without look-ahead the configuration graph of a deterministic
tw^r is a chain, so evaluation needs to remember only the *current*
configuration — polynomially many bits (a store over the active domain)
— even though the run may take exponentially many steps.
:func:`evaluate_twr_chain` implements this with Brent's cycle-finding
algorithm: O(1) stored configurations, no ``seen`` set, exactly the
space discipline the containment argument requires.

**⊇.**  :func:`compile_pspace_xtm_to_twr` translates an arbitrary xTM
into an actual tw^r automaton that encodes the work tape into the
relational store "in the standard way" (the paper cites the classic
FO-update encodings):

* an initialisation sweep walks the tree once, collecting the
  document-order successor relation on node IDs into a register
  (``X_succ += {(prev, @ID)}`` — expressible because updates see the
  current node's attributes);
* tape cells are *pairs* of IDs (n² cells, enough for any machine using
  ≤ |t|² cells; higher polynomials would use longer tuples), with
  lexicographic successor defined inside the FO updates;
* the tape is the relation ``X_tape(cell₁, cell₂, symbol)``, the head a
  singleton ``X_head(cell₁, cell₂)``, and each xTM step becomes a short
  chain of guarded FO updates mirroring read/write/move.

The compiled automaton runs on ``with_ids(t)`` and must agree with the
reference xTM verdict (the E9 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..automata.builder import AutomatonBuilder
from ..automata.machine import TWAutomaton
from ..automata.rules import (
    ANYWHERE,
    DOWN,
    LEFT,
    PositionTest,
    RIGHT,
    STAY,
    UP,
)
from ..automata.runner import Configuration, FuelExhausted, _applicable_rule
from ..automata.rules import Atp, Move, Update, move as walk
from ..machines.xtm import (
    AttrEqConst,
    BLANK,
    CopyReg,
    HEAD_LEFT,
    HEAD_RIGHT,
    LoadAttr,
    NoAction,
    RegEqAttr,
    RegEqConst,
    RegEqReg,
    SetConst,
    TreeMove,
    XTM,
    XTMRule,
)
from ..store import fo as F
from ..store.fo import Attr, StoreContext, Var, evaluate_update
from ..trees.tree import Tree
from .ids import ID_ATTR


# ---------------------------------------------------------------------------
# ⊆ : space-bounded chain evaluation of tw^r (Brent's algorithm)
# ---------------------------------------------------------------------------


@dataclass
class ChainResult:
    accepted: bool
    steps: int
    max_store_rows: int  # the space actually held, in relation rows
    reason: str


def _chain_step(
    automaton: TWAutomaton, tree: Tree, config: Configuration, constants
) -> Optional[Configuration]:
    """One deterministic step; None when stuck/off-tree.  tw^r only —
    an Atp rule is a usage error here."""
    rule = _applicable_rule(automaton, tree, config, constants)
    if rule is None:
        return None
    rhs = rule.rhs
    if isinstance(rhs, Move):
        target = walk(tree, config.node, rhs.direction)
        if target is None:
            return None
        return Configuration(target, rhs.state, config.store)
    if isinstance(rhs, Update):
        attrs = {a: tree.val(a, config.node) for a in tree.attributes}
        ctx = StoreContext(config.store, attrs, constants)
        relation = evaluate_update(rhs.formula, list(rhs.variables), ctx)
        return Configuration(
            config.node, rhs.state, config.store.set(rhs.register, relation)
        )
    if isinstance(rhs, Atp):
        raise ValueError("chain evaluation applies to tw^r (no atp rules)")
    raise ValueError(f"unknown RHS {rhs!r}")


def evaluate_twr_chain(
    automaton: TWAutomaton, tree: Tree, fuel: int = 5_000_000
) -> ChainResult:
    """Run a tw^r holding two configurations (Brent's tortoise & hare).

    Accept when the hare reaches the final state; reject on stuck or on
    cycle detection — all without a history set, the PSPACE^X
    discipline.
    """
    constants = automaton.program_constants()

    def store_rows(config: Configuration) -> int:
        return sum(len(rel) for rel in config.store)

    def is_final(config: Configuration) -> bool:
        return config.state == automaton.final_state

    start = Configuration((), automaton.initial_state, automaton.initial_store())
    max_rows = store_rows(start)
    steps = 0

    tortoise = start
    hare: Optional[Configuration] = start
    power = lam = 1
    while True:
        if hare is None:
            return ChainResult(False, steps, max_rows, "stuck")
        if is_final(hare):
            return ChainResult(True, steps, max_rows, "accepted")
        hare = _chain_step(automaton, tree, hare, constants)
        steps += 1
        if steps > fuel:
            raise FuelExhausted(f"chain fuel {fuel} exhausted")
        if hare is not None:
            max_rows = max(max_rows, store_rows(hare))
            if hare == tortoise:
                return ChainResult(False, steps, max_rows, "cycle")
        if power == lam:
            tortoise = hare if hare is not None else tortoise
            power *= 2
            lam = 0
        lam += 1


# ---------------------------------------------------------------------------
# ⊇ : compile an xTM into a tw^r with the tape in the store
# ---------------------------------------------------------------------------

# Fixed registers of the compiled automaton.
R_PREV = 1   # unary: last node visited by the init sweep
R_SUCC = 2   # binary: document-order successor on IDs
R_FIRST = 3  # unary: the root's ID (cell coordinate 0)
R_LAST = 4   # unary: the document-last node's ID
R_HEAD = 5   # binary: the head cell (hi, lo) — cell number hi·n + lo
R_TAPE = 6   # ternary: (hi, lo, symbol-code); absent row = blank
R_MACHINE0 = 7  # unary, one per xTM register

_AT_LEAF = PositionTest(leaf=True)
_AT_INNER = PositionTest(leaf=False)
_AT_ROOT = PositionTest(root=True)
_BACK_CONT = PositionTest(root=False, last=False)
_BACK_ASC = PositionTest(root=False, last=True)


def _symbol_codes(machine: XTM) -> Dict[str, int]:
    symbols = set()
    for rule in machine.rules:
        if rule.tape_symbol is not None and rule.tape_symbol != BLANK:
            symbols.add(rule.tape_symbol)
        if rule.tape_write is not None and rule.tape_write != BLANK:
            symbols.add(rule.tape_write)
    return {s: i for i, s in enumerate(sorted(symbols))}


def _succ2(x1: Var, x2: Var, y1: Var, y2: Var) -> F.StoreFormula:
    """Lexicographic successor on ID pairs: (x1,x2) + 1 = (y1,y2)."""
    same_block = F.conj(F.eq(x1, y1), F.rel(R_SUCC, x2, y2))
    wrap = F.conj(
        F.rel(R_SUCC, x1, y1),
        F.rel(R_LAST, x2),
        F.rel(R_FIRST, y2),
    )
    return F.disj(same_block, wrap)


def _guard_for(rule: XTMRule, codes: Dict[str, int]) -> F.StoreFormula:
    """The FO sentence over the store equivalent to the rule's tape and
    register conditions (label/position go on the tw LHS directly)."""
    p1, p2, v = Var("p1"), Var("p2"), Var("v")
    s = Var("s")
    parts: List[F.StoreFormula] = []
    if rule.tape_symbol is not None:
        if rule.tape_symbol == BLANK:
            parts.append(
                F.exists(
                    [p1, p2],
                    F.conj(
                        F.rel(R_HEAD, p1, p2),
                        F.Not(F.exists(s, F.rel(R_TAPE, p1, p2, s))),
                    ),
                )
            )
        else:
            parts.append(
                F.exists(
                    [p1, p2],
                    F.conj(
                        F.rel(R_HEAD, p1, p2),
                        F.rel(R_TAPE, p1, p2, codes[rule.tape_symbol]),
                    ),
                )
            )
    if rule.head_at_zero is not None:
        at_zero = F.exists(
            p1, F.conj(F.rel(R_FIRST, p1), F.rel(R_HEAD, p1, p1))
        )
        parts.append(at_zero if rule.head_at_zero else F.Not(at_zero))
    for test in rule.tests:
        if isinstance(test, RegEqAttr):
            atom: F.StoreFormula = F.rel(
                R_MACHINE0 + test.index - 1, Attr(test.attr)
            )
        elif isinstance(test, RegEqReg):
            left = R_MACHINE0 + test.left - 1
            right = R_MACHINE0 + test.right - 1
            both = F.exists(v, F.conj(F.rel(left, v), F.rel(right, v)))
            neither = F.conj(
                F.Not(F.exists(v, F.rel(left, v))),
                F.Not(F.exists(v, F.rel(right, v))),
            )
            atom = F.disj(both, neither)
        elif isinstance(test, RegEqConst):
            atom = F.rel(R_MACHINE0 + test.index - 1, test.value)
        elif isinstance(test, AttrEqConst):
            atom = F.eq(Attr(test.attr), test.value)
        else:  # pragma: no cover
            raise ValueError(f"unknown test {test!r}")
        parts.append(F.Not(atom) if test.negate else atom)
    return F.conj(*parts)


def compile_pspace_xtm_to_twr(machine: XTM, id_attr: str = ID_ATTR) -> TWAutomaton:
    """Build the tw^r simulating ``machine`` on ID-attributed trees.

    Limitations (documented, checked by the experiments): the machine
    may use at most |t|² tape cells; a head that walks past cell
    |t|²−1 strands the simulation in a stuck state (reject), whereas
    the reference xTM has unbounded tape — keep the sweep within range.
    """
    codes = _symbol_codes(machine)
    arities = [1, 2, 1, 1, 2, 3] + [1] * machine.registers
    b = AutomatonBuilder(f"twr[{machine.name}]", register_arities=arities)

    x, y, z = Var("x"), Var("y"), Var("z")
    x1, x2, y1, y2, s = Var("x1"), Var("x2"), Var("y1"), Var("y2"), Var("s")
    me = Attr(id_attr)

    # -- Phase A: initialisation sweep (document order) ------------------------
    b.update("i0", "i1", R_FIRST, F.eq(z, me), [z], position=_AT_ROOT)
    b.update("i1", "i2", R_PREV, F.eq(z, me), [z])
    b.move("i2", "ifin", STAY, position=PositionTest(root=True, leaf=True))
    b.move("i2", "ivisit", DOWN, position=PositionTest(root=True, leaf=False))
    # Arrival at a non-root node: record succ edge, update prev.
    b.update(
        "ivisit", "iv1", R_SUCC,
        F.disj(F.rel(R_SUCC, x, y), F.conj(F.rel(R_PREV, x), F.eq(y, me))),
        [x, y],
    )
    b.update("iv1", "iv2", R_PREV, F.eq(z, me), [z])
    b.move("iv2", "iback", STAY, position=_AT_LEAF)
    b.move("iv2", "ivisit", DOWN, position=_AT_INNER)
    b.move("iback", "ivisit", RIGHT, position=_BACK_CONT)
    b.move("iback", "iback", UP, position=_BACK_ASC)
    b.move("iback", "ifin", STAY, position=_AT_ROOT)
    # Finish: record the last node, place the head on cell (first, first).
    b.update("ifin", "if1", R_LAST, F.rel(R_PREV, z), [z])
    b.update(
        "if1", _q(machine.initial), R_HEAD,
        F.conj(F.rel(R_FIRST, x1), F.rel(R_FIRST, x2)),
        [x1, x2],
    )

    # -- Phase B: one chain of tw rules per xTM rule ---------------------------
    for index, rule in enumerate(machine.rules):
        guard = _guard_for(rule, codes)
        stages: List[Tuple[str, int, F.StoreFormula, List[Var]]] = []
        if rule.tape_write is not None:
            if rule.tape_write == BLANK:
                write = F.conj(
                    F.rel(R_TAPE, x1, x2, s),
                    F.Not(F.rel(R_HEAD, x1, x2)),
                )
            else:
                write = F.disj(
                    F.conj(
                        F.rel(R_TAPE, x1, x2, s),
                        F.Not(F.rel(R_HEAD, x1, x2)),
                    ),
                    F.conj(
                        F.rel(R_HEAD, x1, x2),
                        F.eq(s, codes[rule.tape_write]),
                    ),
                )
            stages.append(("w", R_TAPE, write, [x1, x2, s]))
        if rule.head_move == HEAD_RIGHT:
            head = F.exists(
                [x1, x2],
                F.conj(F.rel(R_HEAD, x1, x2), _succ2(x1, x2, y1, y2)),
            )
            stages.append(("h", R_HEAD, head, [y1, y2]))
        elif rule.head_move == HEAD_LEFT:
            head = F.exists(
                [x1, x2],
                F.conj(F.rel(R_HEAD, x1, x2), _succ2(y1, y2, x1, x2)),
            )
            stages.append(("h", R_HEAD, head, [y1, y2]))
        action = rule.action
        if isinstance(action, LoadAttr):
            stages.append(
                ("a", R_MACHINE0 + action.index - 1, F.eq(z, Attr(action.attr)), [z])
            )
        elif isinstance(action, SetConst):
            stages.append(
                ("a", R_MACHINE0 + action.index - 1, F.eq(z, action.value), [z])
            )
        elif isinstance(action, CopyReg):
            stages.append(
                ("a", R_MACHINE0 + action.dst - 1,
                 F.rel(R_MACHINE0 + action.src - 1, z), [z])
            )

        direction = (
            action.direction if isinstance(action, TreeMove) else STAY
        )
        target = _q(rule.new_state)

        current = _q(rule.state)
        first_stage = True
        for tag, register, formula, variables in stages:
            nxt = f"r{index}:{tag}"
            b.update(
                current, nxt, register, formula, variables,
                label=rule.label if first_stage else None,
                guard=guard if first_stage else None,
                position=rule.position if first_stage else ANYWHERE,
            )
            current, first_stage = nxt, False
        b.move(
            current, target, direction,
            label=rule.label if first_stage else None,
            guard=guard if first_stage else None,
            position=rule.position if first_stage else ANYWHERE,
        )

    # -- Phase C: accepting states -----------------------------------------------
    for state in machine.accepting:
        b.move(_q(state), "TWF", STAY)

    return b.build(initial="i0", final="TWF")


def _q(state: str) -> str:
    return f"q:{state}"
