"""Theorem 7.1(1): tw captures LOGSPACE^X — both directions, executable.

**⊇ (the hard direction).**  :func:`simulate_logspace_xtm` runs an
arbitrary xTM whose work tape stays within log-space *using only
tree-walking resources*: the control walks the tree as the xTM does,
and the tape is never materialised — its content is a single number
``j < |t|`` held as a pebble on node #j of the in-order numbering, with
the head position a second pebble, exactly the proof sketch.  Reading
the symbol under the head extracts a digit of j by pebble division;
writing adjusts j by ±d·b^i.  (The paper assumes a binary tape; we
generalise to the machine's full tape alphabet read as base-b digits,
which changes the constant in the log-bound and nothing else.)

**⊆ (the easy direction).**  A tw automaton's configuration is
(node, state, k register values) — ``log |t| + O(1)·log |adom|`` bits —
so an xTM simulates it in logspace.  :func:`tw_configuration_bound`
computes the bound and :func:`check_tw_in_logspace` verifies a run
never exceeds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..automata.machine import TWAutomaton
from ..automata.runner import run as run_tw
from ..machines.xtm import (
    BLANK,
    AttrEqConst,
    CopyReg,
    LoadAttr,
    RegEqAttr,
    RegEqConst,
    RegEqReg,
    SetConst,
    TreeMove,
    XTM,
    XTMError,
    XTMRule,
)
from ..automata.rules import DOWN, LEFT, RIGHT, STAY, UP
from ..trees.tree import Tree
from ..trees.values import BOTTOM, MaybeValue
from .pebbles import PebbleArithmetic, PebbleError, PebbleMachine


class SimulationOverflow(RuntimeError):
    """The tape number left 0..|t|−1: the machine was not log-bounded
    (base-adjusted) on this input."""


def tape_alphabet(machine: XTM) -> Tuple[str, ...]:
    """BLANK plus every symbol the machine can write or test, in a
    canonical order; the digit code of a symbol is its index."""
    symbols = {BLANK}
    for rule in machine.rules:
        if rule.tape_symbol is not None:
            symbols.add(rule.tape_symbol)
        if rule.tape_write is not None:
            symbols.add(rule.tape_write)
    return (BLANK,) + tuple(sorted(symbols - {BLANK}))


def _canonical_rules(machine: XTM, identify_blank_with: Optional[str]):
    """With blank identified with a digit symbol (the proof's "the tape
    initially contains 0"), rewrite BLANK mentions and drop rules that
    become duplicates of their non-blank twins."""
    if identify_blank_with is None:
        return machine.rules, tape_alphabet(machine)
    from dataclasses import replace

    symbols = tuple(s for s in tape_alphabet(machine) if s != BLANK)
    if identify_blank_with not in symbols:
        raise XTMError(
            f"blank-identification symbol {identify_blank_with!r} is not in "
            f"the tape alphabet {symbols}"
        )
    # Digit 0 must decode to the blank-equivalent symbol.
    symbols = (identify_blank_with,) + tuple(
        s for s in symbols if s != identify_blank_with
    )
    canon = []
    seen = set()
    for rule in machine.rules:
        rewritten = replace(
            rule,
            tape_symbol=(
                identify_blank_with
                if rule.tape_symbol == BLANK
                else rule.tape_symbol
            ),
            tape_write=(
                identify_blank_with if rule.tape_write == BLANK else rule.tape_write
            ),
        )
        if rewritten not in seen:
            seen.add(rewritten)
            canon.append(rewritten)
    return tuple(canon), symbols


class _PebbleTape:
    """The work tape as one pebble-number in base ``b`` (BLANK = digit 0)."""

    def __init__(self, arithmetic: PebbleArithmetic, base: int) -> None:
        if base < 2:
            base = 2
        self.a = arithmetic
        self.base = base
        self.a.zero("tape")
        self.a.zero("head")

    # -- base-b pebble arithmetic (finite-control digits) ----------------------

    def _divmod_const(self, pebble: str, quotient: str) -> int:
        """pebble preserved in ``quotient`` := pebble div base; returns
        pebble mod base.  Consumes a scratch copy, counting digits in
        the finite control."""
        self.a.copy(pebble, "§dm")
        self.a.zero(quotient)
        remainder = 0
        while not self.a.is_zero("§dm"):
            self.a.pred("§dm")
            remainder += 1
            if remainder == self.base:
                remainder = 0
                if not self.a.succ(quotient):
                    raise SimulationOverflow("quotient overflow")
        return remainder

    def _mult_const(self, pebble: str) -> None:
        """pebble := pebble · base."""
        self.a.copy(pebble, "§ml")
        for _ in range(self.base - 1):
            if not self.a.add(pebble, "§ml"):
                raise SimulationOverflow("tape value exceeded |t|-1")

    def _power_at_head(self, result: str) -> None:
        """result := base^head."""
        self.a.zero(result)
        if not self.a.succ(result):
            raise SimulationOverflow("tree too small for any tape")
        self.a.copy("head", "§pw")
        while not self.a.is_zero("§pw"):
            self._mult_const(result)
            self.a.pred("§pw")

    # -- the tape interface -------------------------------------------------------

    def read(self) -> int:
        """Digit under the head: (tape div base^head) mod base."""
        self.a.copy("tape", "§rd")
        self.a.copy("head", "§ct")
        while not self.a.is_zero("§ct"):
            self._divmod_const("§rd", "§rd2")
            self.a.copy("§rd2", "§rd")
            self.a.pred("§ct")
        return self._divmod_const("§rd", "§rd2")

    def write(self, old_digit: int, new_digit: int) -> None:
        """tape += (new − old) · base^head."""
        if old_digit == new_digit:
            return
        self._power_at_head("§p")
        magnitude = abs(new_digit - old_digit)
        for _ in range(magnitude):
            ok = (
                self.a.add("tape", "§p")
                if new_digit > old_digit
                else self.a.subtract("tape", "§p")
            )
            if not ok:
                raise SimulationOverflow("tape value exceeded |t|-1")

    def head_right(self) -> None:
        if not self.a.succ("head"):
            raise SimulationOverflow("head position exceeded |t|-1")

    def head_left(self) -> bool:
        return self.a.pred("head")


@dataclass
class PebbleSimResult:
    accepted: bool
    machine_steps: int
    walker_steps: int
    reason: str


def simulate_logspace_xtm(
    machine: XTM,
    tree: Tree,
    fuel: int = 200_000,
    identify_blank_with: Optional[str] = "0",
) -> PebbleSimResult:
    """Run ``machine`` on ``tree`` with the tape held in pebbles.

    The control position, registers, label/position tests and register
    tests are native tw capabilities; only the tape goes through
    :class:`_PebbleTape`.  Verdicts must equal :func:`run_xtm`'s
    (the E7 experiment).

    ``identify_blank_with`` reads untouched cells as that digit symbol
    (default "0", the proof's convention); pass ``None`` to keep blank
    as its own digit (costs a larger base).
    """
    walker = PebbleMachine(tree)
    arithmetic = PebbleArithmetic(walker)
    if identify_blank_with is not None and identify_blank_with not in tape_alphabet(
        machine
    ):
        identify_blank_with = None
    rules, symbols = _canonical_rules(machine, identify_blank_with)
    code = {s: i for i, s in enumerate(symbols)}
    tape = _PebbleTape(arithmetic, len(symbols))
    walker.position = ()
    walker.place("ctrl")

    state = machine.initial
    registers: List[MaybeValue] = [BOTTOM] * machine.registers
    steps = 0
    seen: Set[Tuple] = set()

    def tests_hold(rule: XTMRule) -> bool:
        for test in rule.tests:
            if isinstance(test, RegEqAttr):
                outcome = registers[test.index - 1] == walker.attr(test.attr)
            elif isinstance(test, RegEqReg):
                outcome = registers[test.left - 1] == registers[test.right - 1]
            elif isinstance(test, AttrEqConst):
                outcome = walker.attr(test.attr) == test.value
            else:
                outcome = registers[test.index - 1] == test.value
            if outcome == test.negate:
                return False
        return True

    def position_matches(position) -> bool:
        checks = (
            (position.root, walker.is_root),
            (position.leaf, walker.is_leaf),
            (position.first, walker.is_first),
            (position.last, walker.is_last),
        )
        return all(e is None or p() == e for e, p in checks)

    while True:
        if state in machine.accepting:
            return PebbleSimResult(True, steps, walker.steps, "accepted")

        walker.goto("ctrl")
        symbol_digit = tape.read()
        head_is_zero = arithmetic.is_zero("head")
        walker.goto("ctrl")
        symbol = symbols[symbol_digit]

        key = (
            walker.pebbles["ctrl"],
            state,
            tuple(registers),
            arithmetic.value_of("tape"),
            arithmetic.value_of("head"),
        )
        if key in seen:
            return PebbleSimResult(False, steps, walker.steps, "cycle")
        seen.add(key)
        steps += 1
        if steps > fuel:
            raise XTMError(f"fuel {fuel} exhausted")

        chosen: Optional[XTMRule] = None
        for rule in rules:
            if rule.state != state:
                continue
            if rule.label is not None and rule.label != walker.label():
                continue
            if rule.tape_symbol is not None and rule.tape_symbol != symbol:
                continue
            if rule.head_at_zero is not None and rule.head_at_zero != head_is_zero:
                continue
            if not position_matches(rule.position):
                continue
            if not tests_hold(rule):
                continue
            if chosen is not None:
                raise XTMError(f"nondeterministic: {chosen!r} / {rule!r}")
            chosen = rule
        if chosen is None:
            return PebbleSimResult(False, steps, walker.steps, "stuck")

        if chosen.tape_write is not None and chosen.tape_write != symbol:
            tape.write(symbol_digit, code[chosen.tape_write])
            walker.goto("ctrl")
        if chosen.head_move > 0:
            tape.head_right()
            walker.goto("ctrl")
        elif chosen.head_move < 0:
            if not tape.head_left():
                return PebbleSimResult(False, steps, walker.steps, "off tape")
            walker.goto("ctrl")

        action = chosen.action
        if isinstance(action, TreeMove):
            moved = {
                STAY: lambda: True,
                DOWN: walker.down,
                RIGHT: walker.right,
                LEFT: walker.left,
                UP: walker.up,
            }[action.direction]()
            if not moved:
                return PebbleSimResult(False, steps, walker.steps, "off tree")
            walker.place("ctrl")
        elif isinstance(action, LoadAttr):
            registers[action.index - 1] = walker.attr(action.attr)
        elif isinstance(action, SetConst):
            registers[action.index - 1] = action.value
        elif isinstance(action, CopyReg):
            registers[action.dst - 1] = registers[action.src - 1]
        state = chosen.new_state


# ---------------------------------------------------------------------------
# The ⊆ direction: tw runs fit in logspace configurations
# ---------------------------------------------------------------------------


def tw_configuration_bound(automaton: TWAutomaton, tree: Tree) -> int:
    """|Q| · |t| · (|adom|+1)^k — an upper bound on distinct
    configurations of a register automaton whose registers each hold at
    most one value; logarithmically many bits, hence LOGSPACE^X."""
    adom = len(tree.active_domain() | automaton.program_constants())
    k = automaton.schema.count
    return len(automaton.states) * tree.size * (adom + 1) ** k


@dataclass
class LogspaceContainment:
    configurations_used: int
    bound: int

    @property
    def within(self) -> bool:
        return self.configurations_used <= self.bound


def check_tw_in_logspace(automaton: TWAutomaton, tree: Tree) -> LogspaceContainment:
    """Run the tw automaton and compare configurations touched against
    the logspace bound."""
    result = run_tw(automaton, tree)
    # run() counts configurations internally as steps; distinct
    # configurations are at most steps + 1.
    return LogspaceContainment(
        configurations_used=result.steps + 1,
        bound=tw_configuration_bound(automaton, tree),
    )
