"""Alternating logspace on pebbles — the Theorem 7.1(2) converse leg.

"One can easily adapt the simulation in (1) to alternating tw's with
logspace worktape.  Indeed, when a universal state is entered the tw^l
uses a subcomputation for each branch.  Every branch returns a value
indicating whether that branch accepts or not."

This module is that adaptation, executable: the work tape stays a
pebble-encoded number (as in :mod:`repro.simulation.logspace`), and
branching is evaluated the way a tw^l's ``atp`` evaluates
subcomputations — one recursive evaluation per branch, a branch
re-entering a configuration on its own chain rejects (divergence), and
the mode (∃/∀) combines the branch verdicts.

Soundness note on memoisation: acceptance is a least fixpoint, so a
``True`` verdict is context-free and cached; a ``False`` obtained while
an ancestor configuration sat on the chain is *not* cached (it may be
an artifact of that chain), matching how repeated tw^l subcomputations
simply recompute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..machines.alternation import AltXTM, EXISTENTIAL
from ..machines.xtm import (
    AttrEqConst,
    ClearReg,
    CopyReg,
    LoadAttr,
    RegEqAttr,
    RegEqConst,
    RegEqReg,
    SetConst,
    TreeMove,
    XTMError,
    XTMRule,
)
from ..automata.rules import DOWN, LEFT, RIGHT, STAY, UP
from ..trees.node import NodeId
from ..trees.tree import Tree
from ..trees.values import BOTTOM, MaybeValue
from .logspace import SimulationOverflow, _canonical_rules
from .pebbles import PebbleArithmetic, PebbleMachine

#: A simulation configuration: tree node, state, registers, and the
#: pebble-tape numbers (content j and head h) — the key the branch
#: evaluation recurses on.
_Config = Tuple[NodeId, str, Tuple[MaybeValue, ...], int, int]


@dataclass
class AltSimResult:
    accepted: bool
    evaluations: int
    walker_steps: int


class _AltPebbleSim:
    def __init__(self, alt: AltXTM, tree: Tree,
                 identify_blank_with: Optional[str]) -> None:
        self.alt = alt
        self.tree = tree
        self.walker = PebbleMachine(tree)
        self.arithmetic = PebbleArithmetic(self.walker)
        rules, symbols = _canonical_rules(alt.machine, identify_blank_with)
        self.rules = rules
        self.symbols = symbols
        self.code = {s: i for i, s in enumerate(symbols)}
        self.base = max(len(symbols), 2)
        self.memo_true: Set[_Config] = set()
        self.evaluations = 0

    # -- pebble-tape helpers (content as a number, as in logspace.py) ---------

    def _set_tape(self, j: int, h: int) -> None:
        self.arithmetic.set_value("tape", j)
        self.arithmetic.set_value("head", h)

    def _read_digit(self, j: int, h: int) -> int:
        """Digit under the head via pebble division (the honest route);
        j and h only key the recursion."""
        self._set_tape(j, h)
        self.arithmetic.copy("tape", "§rd")
        self.arithmetic.copy("head", "§ct")
        while not self.arithmetic.is_zero("§ct"):
            self._divmod_base("§rd")
            self.arithmetic.pred("§ct")
        return self._divmod_base("§rd")

    def _divmod_base(self, pebble: str) -> int:
        self.arithmetic.copy(pebble, "§dm")
        self.arithmetic.zero("§q")
        remainder = 0
        while not self.arithmetic.is_zero("§dm"):
            self.arithmetic.pred("§dm")
            remainder += 1
            if remainder == self.base:
                remainder = 0
                if not self.arithmetic.succ("§q"):
                    raise SimulationOverflow("quotient overflow")
        self.arithmetic.copy("§q", pebble)
        return remainder

    def _write_digit(self, j: int, h: int, old: int, new: int) -> int:
        """The new tape number after writing ``new`` over ``old``."""
        if old == new:
            return j
        self._set_tape(j, h)
        self.arithmetic.zero("§p")
        if not self.arithmetic.succ("§p"):
            raise SimulationOverflow("tree too small for any tape")
        self.arithmetic.copy("head", "§pw")
        while not self.arithmetic.is_zero("§pw"):
            self.arithmetic.copy("§p", "§ml")
            for _ in range(self.base - 1):
                if not self.arithmetic.add("§p", "§ml"):
                    raise SimulationOverflow("tape value exceeded |t|-1")
            self.arithmetic.pred("§pw")
        for _ in range(abs(new - old)):
            ok = (
                self.arithmetic.add("tape", "§p")
                if new > old
                else self.arithmetic.subtract("tape", "§p")
            )
            if not ok:
                raise SimulationOverflow("tape value exceeded |t|-1")
        return self.arithmetic.value_of("tape")

    # -- branch evaluation ---------------------------------------------------------

    def evaluate(self, config: _Config, chain: Set[_Config]) -> bool:
        if config in self.memo_true:
            return True
        if config in chain:
            return False  # the branch diverges: non-accepting
        self.evaluations += 1
        node, state, registers, j, h = config
        if state in self.alt.machine.accepting:
            self.memo_true.add(config)
            return True
        successors = self._successors(config)
        chain = chain | {config}
        if self.alt.mode(state) == EXISTENTIAL:
            verdict = any(self.evaluate(s, chain) for s in successors)
        else:
            verdict = all(self.evaluate(s, chain) for s in successors)
        if verdict:
            self.memo_true.add(config)
        return verdict

    def _successors(self, config: _Config) -> List[_Config]:
        node, state, registers, j, h = config
        digit = self._read_digit(j, h)
        symbol = self.symbols[digit]
        label = self.tree.label(node)
        out: List[_Config] = []
        for rule in self.rules:
            if rule.state != state:
                continue
            if rule.label is not None and rule.label != label:
                continue
            if rule.tape_symbol is not None and rule.tape_symbol != symbol:
                continue
            if rule.head_at_zero is not None and rule.head_at_zero != (h == 0):
                continue
            if not rule.position.matches(self.tree, node):
                continue
            if not self._tests_hold(rule, node, registers):
                continue
            successor = self._apply(rule, node, registers, j, h, digit)
            if successor is not None:
                out.append(successor)
        return out

    def _tests_hold(self, rule: XTMRule, node: NodeId,
                    registers: Tuple[MaybeValue, ...]) -> bool:
        for test in rule.tests:
            if isinstance(test, RegEqAttr):
                outcome = registers[test.index - 1] == self.tree.val(test.attr, node)
            elif isinstance(test, RegEqReg):
                outcome = registers[test.left - 1] == registers[test.right - 1]
            elif isinstance(test, AttrEqConst):
                outcome = self.tree.val(test.attr, node) == test.value
            else:
                outcome = registers[test.index - 1] == test.value
            if outcome == test.negate:
                return False
        return True

    def _apply(self, rule: XTMRule, node: NodeId,
               registers: Tuple[MaybeValue, ...], j: int, h: int,
               digit: int) -> Optional[_Config]:
        new_j = j
        if rule.tape_write is not None:
            new_j = self._write_digit(j, h, digit, self.code[rule.tape_write])
        new_h = h + rule.head_move
        if new_h < 0:
            return None
        if new_h >= self.tree.size:
            raise SimulationOverflow("head position exceeded |t|-1")
        new_node = node
        new_regs = list(registers)
        action = rule.action
        if isinstance(action, TreeMove):
            moved = {
                STAY: node,
                DOWN: self.tree.first_child(node),
                UP: self.tree.parent(node),
                LEFT: self.tree.left_sibling(node),
                RIGHT: self.tree.right_sibling(node),
            }[action.direction]
            if moved is None:
                return None
            new_node = moved
        elif isinstance(action, LoadAttr):
            new_regs[action.index - 1] = self.tree.val(action.attr, node)
        elif isinstance(action, SetConst):
            new_regs[action.index - 1] = action.value
        elif isinstance(action, CopyReg):
            new_regs[action.dst - 1] = registers[action.src - 1]
        elif isinstance(action, ClearReg):
            new_regs[action.index - 1] = BOTTOM
        return (new_node, rule.new_state, tuple(new_regs), new_j, new_h)


def simulate_alternating_logspace(
    alt: AltXTM,
    tree: Tree,
    identify_blank_with: Optional[str] = "0",
) -> AltSimResult:
    """Evaluate an alternating logspace xTM with the tape on pebbles.

    Verdicts must match :func:`repro.machines.alternation.run_alternating`
    on machines whose tape stays within the pebble range (tested)."""
    from .logspace import tape_alphabet

    if identify_blank_with is not None and identify_blank_with not in tape_alphabet(
        alt.machine
    ):
        identify_blank_with = None
    sim = _AltPebbleSim(alt, tree, identify_blank_with)
    initial: _Config = (
        (),
        alt.machine.initial,
        (BOTTOM,) * alt.machine.registers,
        0,
        0,
    )
    accepted = sim.evaluate(initial, set())
    return AltSimResult(accepted, sim.evaluations, sim.walker.steps)
