"""Proposition 7.2: with A = ∅, relational storage adds no power.

"Clearly, when A = ∅ there are only a finite number of register
contents.  These contents can therefore be kept in the state.  Hence
tw^{r,l} = tw^l and tw^r = tw."

:func:`eliminate_registers` is that argument as a compiler for the
atp-free case (tw^r → tw): with no attributes, every guard and update
evaluates *statically* from the store alone, so the reachable
(state, store) pairs form a finite product automaton whose rules need
no guards and no registers at all.  (With look-ahead the register
contents after an ``atp`` depend on which subcomputations accept, so
the tw^{r,l} = tw^l direction needs the heavier machinery of [4]; see
DESIGN.md.)

The compiled automaton must accept exactly the same label-only trees —
checked exhaustively over small trees in the E10 experiment.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..automata.builder import AutomatonBuilder
from ..automata.machine import AutomatonError, TWAutomaton
from ..automata.rules import Atp, Move, STAY, Update
from ..store.database import RegisterStore
from ..store.fo import (
    StoreContext,
    attributes_used,
    evaluate as evaluate_guard,
    evaluate_update,
)


class EliminationError(AutomatonError):
    """Raised when the automaton is outside the A = ∅, atp-free case."""


def _check_attribute_free(automaton: TWAutomaton) -> None:
    for rule in automaton.rules:
        if isinstance(rule.rhs, Atp):
            raise EliminationError(
                f"register elimination handles tw^r (no atp): {rule!r}"
            )
        if attributes_used(rule.lhs.guard):
            raise EliminationError(
                f"guard mentions attributes; Proposition 7.2 needs A = ∅: {rule!r}"
            )
        if isinstance(rule.rhs, Update) and attributes_used(rule.rhs.formula):
            raise EliminationError(
                f"update mentions attributes; Proposition 7.2 needs A = ∅: {rule!r}"
            )


def eliminate_registers(automaton: TWAutomaton) -> TWAutomaton:
    """Fold the (finitely many) store contents into the states.

    Returns a register-free tw accepting the same trees.  States are
    ``q#i`` where i indexes a reachable store content.
    """
    _check_attribute_free(automaton)
    constants = automaton.program_constants()

    store_index: Dict[RegisterStore, int] = {}

    def index_of(store: RegisterStore) -> int:
        if store not in store_index:
            store_index[store] = len(store_index)
        return store_index[store]

    def name(state: str, store: RegisterStore) -> str:
        return f"{state}#{index_of(store)}"

    builder = AutomatonBuilder(
        f"tw[{automaton.name}]", register_arities=[1], initial_assignment=[None]
    )
    final = "F!"
    initial_store = automaton.initial_store()
    frontier: List[Tuple[str, RegisterStore]] = [
        (automaton.initial_state, initial_store)
    ]
    expanded = set()
    while frontier:
        state, store = frontier.pop()
        key = (state, store)
        if key in expanded:
            continue
        expanded.add(key)
        product_state = name(state, store)
        if state == automaton.final_state:
            builder.move(product_state, final, STAY)
            continue
        ctx = StoreContext(store, {}, constants)
        for rule in automaton.rules_for(state):
            if not evaluate_guard(rule.lhs.guard, ctx):
                continue
            rhs = rule.rhs
            if isinstance(rhs, Move):
                target_store = store
                builder.move(
                    product_state,
                    name(rhs.state, target_store),
                    rhs.direction,
                    label=rule.lhs.label,
                    position=rule.lhs.position,
                )
                frontier.append((rhs.state, target_store))
            elif isinstance(rhs, Update):
                relation = evaluate_update(rhs.formula, list(rhs.variables), ctx)
                target_store = store.set(rhs.register, relation)
                builder.move(
                    product_state,
                    name(rhs.state, target_store),
                    STAY,
                    label=rule.lhs.label,
                    position=rule.lhs.position,
                )
                frontier.append((rhs.state, target_store))
            else:  # pragma: no cover - excluded by _check_attribute_free
                raise EliminationError(f"unexpected RHS {rhs!r}")
    return builder.build(
        initial=name(automaton.initial_state, initial_store), final=final
    )


def store_content_count(automaton: TWAutomaton) -> int:
    """The a-priori bound on distinct store contents over the program
    constants: Π_i 2^(|C|^arity_i) — finite exactly because A = ∅."""
    base = len(automaton.program_constants())
    total = 1
    for arity in automaton.schema.arities:
        total *= 2 ** (base**arity)
    return total
