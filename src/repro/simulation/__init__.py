"""The constructive content of Section 7, executable.

* :mod:`repro.simulation.ids` — unique-ID attributes (the Section 7
  assumption);
* :mod:`repro.simulation.pebbles` — pebbles as ID registers and the
  in-order tape-as-number arithmetic;
* :mod:`repro.simulation.logspace` — Theorem 7.1(1): pebble simulation
  of logspace xTMs, and the tw ⊆ LOGSPACE^X configuration bound;
* :mod:`repro.simulation.configgraph` — Theorems 7.1(2)/(4): memoised
  configuration-graph evaluation with polynomial/exponential bounds;
* :mod:`repro.simulation.pspace` — Theorem 7.1(3): O(1)-configuration
  chain evaluation (Brent) and the xTM → tw^r tape-as-relation
  compiler;
* :mod:`repro.simulation.noattr` — Proposition 7.2: register
  elimination when A = ∅.
"""

from .ids import (
    ID_ATTR,
    IdError,
    has_unique_ids,
    id_of,
    node_with_id,
    require_unique_ids,
    with_ids,
)
from .pebbles import PebbleArithmetic, PebbleError, PebbleMachine
from .logspace import (
    LogspaceContainment,
    PebbleSimResult,
    SimulationOverflow,
    check_tw_in_logspace,
    simulate_logspace_xtm,
    tape_alphabet,
    tw_configuration_bound,
)
from .configgraph import (
    MemoResult,
    MemoStats,
    active_domain_size,
    evaluate_memo,
    twl_configuration_bound,
    twrl_configuration_bound,
)
from .pspace import (
    ChainResult,
    compile_pspace_xtm_to_twr,
    evaluate_twr_chain,
)
from .alogspace import AltSimResult, simulate_alternating_logspace
from .tw_to_xtm import UnsupportedFeature, compile_tw_to_xtm
from .noattr import (
    EliminationError,
    eliminate_registers,
    store_content_count,
)

__all__ = [
    "ID_ATTR",
    "IdError",
    "has_unique_ids",
    "id_of",
    "node_with_id",
    "require_unique_ids",
    "with_ids",
    "PebbleArithmetic",
    "PebbleError",
    "PebbleMachine",
    "LogspaceContainment",
    "PebbleSimResult",
    "SimulationOverflow",
    "check_tw_in_logspace",
    "simulate_logspace_xtm",
    "tape_alphabet",
    "tw_configuration_bound",
    "MemoResult",
    "MemoStats",
    "active_domain_size",
    "evaluate_memo",
    "twl_configuration_bound",
    "twrl_configuration_bound",
    "ChainResult",
    "compile_pspace_xtm_to_twr",
    "evaluate_twr_chain",
    "UnsupportedFeature",
    "compile_tw_to_xtm",
    "AltSimResult",
    "simulate_alternating_logspace",
    "EliminationError",
    "eliminate_registers",
    "store_content_count",
]
