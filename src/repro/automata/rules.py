"""Transition rules of tw^{r,l} automata (Definition 3.1).

A rule is ``(σ, q, ξ) → α``: it applies when the current node carries
σ, the state is q, and the store satisfies ξ.  The right-hand side α is
one of

1. ``(q', d)``                 — move in direction d ∈ {·, ←, →, ↑, ↓};
2. ``(q', ψ, i)``              — replace register i with the relation
                                 defined by the FO formula ψ;
3. ``(q', atp(φ(x,y), p), i)`` — replace register i with the union of
                                 the first registers returned by
                                 subcomputations started in state p at
                                 every node selected by φ.

Following the paper's informal description ("based on the label …, its
state, and its position in the tree (first or last child, root, or
leaf)"), the left-hand side optionally also tests the node's position;
with delimited trees these tests are definable from the delimiter
labels, so this is a convenience, not extra power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..logic.exists_star import ExistsStarQuery
from ..store.fo import StoreFormula, TrueF, Var
from ..trees.node import NodeId
from ..trees.tree import Tree

# -- directions (the paper's {·, ←, →, ↑, ↓}) --------------------------------

STAY = "stay"
LEFT = "left"
RIGHT = "right"
UP = "up"
DOWN = "down"

DIRECTIONS = (STAY, LEFT, RIGHT, UP, DOWN)

_DIRECTION_GLYPHS = {STAY: "·", LEFT: "←", RIGHT: "→", UP: "↑", DOWN: "↓"}


def move(tree: Tree, node: NodeId, direction: str) -> Optional[NodeId]:
    """The partial move function m_d; ``None`` when the neighbour is
    missing (the automaton would fall off the tree)."""
    if direction == STAY:
        return node
    if direction == LEFT:
        return tree.left_sibling(node)
    if direction == RIGHT:
        return tree.right_sibling(node)
    if direction == UP:
        return tree.parent(node)
    if direction == DOWN:
        return tree.first_child(node)
    raise ValueError(f"unknown direction {direction!r}")


# -- position tests -----------------------------------------------------------


@dataclass(frozen=True)
class PositionTest:
    """An optional conjunction of positional constraints.

    Each field is ``None`` (don't care) or a required boolean.  The
    default tests nothing, matching Definition 3.1 verbatim.
    """

    root: Optional[bool] = None
    leaf: Optional[bool] = None
    first: Optional[bool] = None
    last: Optional[bool] = None

    def matches(self, tree: Tree, node: NodeId) -> bool:
        checks = (
            (self.root, tree.is_root),
            (self.leaf, tree.is_leaf),
            (self.first, tree.is_first_child),
            (self.last, tree.is_last_child),
        )
        return all(
            expected is None or predicate(node) == expected
            for expected, predicate in checks
        )

    def is_trivial(self) -> bool:
        return all(
            item is None for item in (self.root, self.leaf, self.first, self.last)
        )

    def __repr__(self) -> str:
        parts = []
        for name in ("root", "leaf", "first", "last"):
            value = getattr(self, name)
            if value is not None:
                parts.append(name if value else f"¬{name}")
        return "@{" + ",".join(parts) + "}" if parts else "@any"


ANYWHERE = PositionTest()


# -- left-hand sides -----------------------------------------------------------


@dataclass(frozen=True)
class LHS:
    """``(σ, q, ξ)`` plus the optional position test.

    ``label=None`` matches any label (a convenience; expansible to one
    rule per σ ∈ Σ without loss)."""

    state: str
    label: Optional[str] = None
    guard: StoreFormula = field(default_factory=TrueF)
    position: PositionTest = ANYWHERE

    def __repr__(self) -> str:
        lab = self.label if self.label is not None else "*"
        pos = "" if self.position.is_trivial() else f" {self.position!r}"
        return f"({lab}, {self.state}, {self.guard!r}{pos})"


# -- right-hand sides ----------------------------------------------------------


@dataclass(frozen=True)
class Move:
    """α-form 1: change state and move."""

    state: str
    direction: str

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )

    def __repr__(self) -> str:
        return f"({self.state}, {_DIRECTION_GLYPHS[self.direction]})"


@dataclass(frozen=True)
class Update:
    """α-form 2: change state and replace register ``register`` with
    ``{(z̄) : ψ(z̄)}``; ``variables`` fixes the column order of ψ."""

    state: str
    formula: StoreFormula
    variables: Tuple[Var, ...]
    register: int

    def __repr__(self) -> str:
        vars_ = ",".join(v.name for v in self.variables)
        return f"({self.state}, X{self.register} := {{({vars_}) : {self.formula!r}}})"


@dataclass(frozen=True)
class Atp:
    """α-form 3: change state and replace register ``register`` with the
    union of the first registers of subcomputations started in
    ``substate`` at the φ-selected nodes."""

    state: str
    selector: ExistsStarQuery
    substate: str
    register: int

    def __repr__(self) -> str:
        return (
            f"({self.state}, X{self.register} := "
            f"atp({self.selector.formula!r}, {self.substate}))"
        )


RHS = Union[Move, Update, Atp]


@dataclass(frozen=True)
class Rule:
    """One transition ``LHS → RHS``."""

    lhs: LHS
    rhs: RHS

    def __repr__(self) -> str:
        return f"{self.lhs!r} → {self.rhs!r}"
