"""The restriction lattice of Definition 5.1: tw ⊆ tw^l, tw ⊆ tw^r ⊆ tw^{r,l}.

* **tw^{r,l}** — the full model (relational storage + look-ahead);
* **tw^r**   — no look-ahead: no ``atp`` rules;
* **tw^l**   — registers are unary and hold at most one value during
  every execution.  The paper also gives the syntactic version: update
  formulas are quantifier-free and define at most one value, and every
  ``atp`` selector selects at most one node (e.g. parent or first
  child), so look-aheads compute one data value;
* **tw**     — tw^l without ``atp`` rules.

``classify`` places an automaton in the most restrictive class its
*syntax* guarantees; ``check_single_valued_on`` is the complementary
run-time check of the semantic tw^l condition on a concrete tree.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from ..logic.exists_star import ExistsStarQuery, functional_selectors
from ..store import fo as F
from ..trees.tree import Tree
from .machine import TWAutomaton
from .rules import Atp, Update


class TWClass(enum.Enum):
    """The four classes, ordered by inclusion."""

    TW = "tw"
    TW_L = "tw^l"
    TW_R = "tw^r"
    TW_RL = "tw^{r,l}"


class ClassViolation(ValueError):
    """Raised when an automaton is asserted into a class it violates."""


_FUNCTIONAL_FORMULAS = frozenset(q.formula for q in functional_selectors())


def is_functional_selector(selector: ExistsStarQuery) -> bool:
    """Syntactic whitelist of selectors guaranteed to pick ≤ 1 node on
    every tree (self, parent, first child)."""
    return selector.formula in _FUNCTIONAL_FORMULAS


def _is_single_value_update(update: Update) -> bool:
    """Accept the shapes the paper sketches: a quantifier-free formula
    "defining only one value" — ``z = c``, ``z = @a`` — or ``false``
    (clearing the register)."""
    if len(update.variables) != 1:
        return False
    formula = update.formula
    if isinstance(formula, F.FalseF):
        return True
    if isinstance(formula, F.Eq):
        z = update.variables[0]
        sides = (formula.left, formula.right)
        constant_sides = [t for t in sides if isinstance(t, (F.Const, F.Attr))]
        return z in sides and len(constant_sides) == 1
    return False


def violations(automaton: TWAutomaton, target: TWClass) -> List[str]:
    """All reasons why ``automaton`` is *not* syntactically in ``target``."""
    problems: List[str] = []
    if target is TWClass.TW_RL:
        return problems

    lookahead_banned = target in (TWClass.TW, TWClass.TW_R)
    single_valued = target in (TWClass.TW, TWClass.TW_L)

    if single_valued:
        for i, arity in enumerate(automaton.schema.arities, start=1):
            if arity != 1:
                problems.append(
                    f"register X{i} has arity {arity}; {target.value} "
                    f"registers are unary"
                )
    for rule in automaton.rules:
        rhs = rule.rhs
        if isinstance(rhs, Atp):
            if lookahead_banned:
                problems.append(f"{target.value} forbids atp rules: {rule!r}")
            elif single_valued and not is_functional_selector(rhs.selector):
                problems.append(
                    f"{target.value} atp selector must select at most one "
                    f"node (self/parent/first-child): {rule!r}"
                )
        elif isinstance(rhs, Update):
            if single_valued and not _is_single_value_update(rhs):
                problems.append(
                    f"{target.value} update must be quantifier-free and "
                    f"define one value (z = c, z = @a, or false): {rule!r}"
                )
    return problems


def is_in_class(automaton: TWAutomaton, target: TWClass) -> bool:
    """Syntactic membership test."""
    return not violations(automaton, target)


def require_class(automaton: TWAutomaton, target: TWClass) -> TWAutomaton:
    """Assert membership; raises :class:`ClassViolation` with reasons."""
    problems = violations(automaton, target)
    if problems:
        raise ClassViolation(
            f"{automaton!r} is not in {target.value}:\n  " + "\n  ".join(problems)
        )
    return automaton


def classify(automaton: TWAutomaton) -> TWClass:
    """The most restrictive class the automaton syntactically inhabits."""
    for target in (TWClass.TW, TWClass.TW_L, TWClass.TW_R):
        if is_in_class(automaton, target):
            return target
    return TWClass.TW_RL


def check_single_valued_on(automaton: TWAutomaton, tree: Tree) -> List[str]:
    """The *semantic* tw^l condition, checked against one tree: every
    selector picks ≤ 1 node from every start position."""
    problems = []
    for selector in automaton.selectors():
        for node in tree.nodes:
            picked = selector.select(tree, node)
            if len(picked) > 1:
                problems.append(
                    f"selector {selector!r} picks {len(picked)} nodes from "
                    f"{node!r}"
                )
                break
    return problems
