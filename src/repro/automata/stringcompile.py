"""Compiling two-way DFAs into tree-walking automata.

Section 3 introduces tree-walking as the tree generalisation of two-way
string automata.  This module makes the inclusion executable: a 2DFA
over ``▷ w ◁`` becomes a tw automaton over the monadic tree of ``w``
(no registers, guard-free rules) accepting exactly the same words.

The end markers have no tree counterpart, so marker *cells* are
simulated in the state: the tw state is ``(q, where)`` with ``where`` ∈
{``word``, ``at▷``, ``at◁``} — when the 2DFA sits on a marker, the tw
parks on the adjacent word position and remembers which marker it is
on.  Empty words have no tree at all (our trees are nonempty), so the
compiled automaton decides them at construction time and
:func:`accepts_word` short-circuits.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..trees.strings import STRING_ATTR, string_tree
from ..trees.tree import Tree
from .builder import AutomatonBuilder
from .machine import TWAutomaton
from .rules import DOWN, PositionTest, STAY, UP
from .runner import accepts as tw_accepts
from .strings import GO_LEFT, GO_RIGHT, GO_STAY, LEFT_MARK, RIGHT_MARK, TwoWayDFA, run_two_way

AT_ROOT = PositionTest(root=True)
AT_LEAF = PositionTest(leaf=True)
NOT_ROOT = PositionTest(root=False)
NOT_LEAF = PositionTest(leaf=False)

_ON_WORD = "w"
_ON_LEFT = "L"
_ON_RIGHT = "R"


def _state(q: str, where: str) -> str:
    return f"{q}@{where}"


def compile_two_way(dfa: TwoWayDFA) -> TWAutomaton:
    """Build the equivalent tw automaton (labels carry the letters).

    The compiled automaton runs on ``string_tree(word)`` with the
    letters as *labels* (σ-dispatch is the tw analogue of reading the
    tape symbol).
    """
    b = AutomatonBuilder(f"tw[{dfa.name if hasattr(dfa, 'name') else '2DFA'}]",
                         register_arities=[1])
    final = "TWACC"

    for (q, symbol), (target, direction) in dfa.transitions:
        if symbol == LEFT_MARK:
            # The 2DFA sits on ▷; the walker parks at position 0.
            if direction == GO_RIGHT:
                # onto position 0 (the first letter)
                b.move(_state(q, _ON_LEFT), _goal(dfa, target, _ON_WORD, b, final),
                       STAY, position=AT_ROOT)
            elif direction == GO_STAY:
                b.move(_state(q, _ON_LEFT), _goal(dfa, target, _ON_LEFT, b, final),
                       STAY, position=AT_ROOT)
            # GO_LEFT from ▷ falls off the tape: no rule ⇒ reject.
            continue
        if symbol == RIGHT_MARK:
            if direction == GO_LEFT:
                b.move(_state(q, _ON_RIGHT), _goal(dfa, target, _ON_WORD, b, final),
                       STAY, position=AT_LEAF)
            elif direction == GO_STAY:
                b.move(_state(q, _ON_RIGHT), _goal(dfa, target, _ON_RIGHT, b, final),
                       STAY, position=AT_LEAF)
            continue
        # A word symbol: dispatch on the node label.
        source = _state(q, _ON_WORD)
        if direction == GO_STAY:
            b.move(source, _goal(dfa, target, _ON_WORD, b, final), STAY,
                   label=symbol)
        elif direction == GO_RIGHT:
            # rightwards: down the chain; off the last letter = onto ◁
            b.move(source, _goal(dfa, target, _ON_WORD, b, final), DOWN,
                   label=symbol, position=NOT_LEAF)
            b.move(source, _goal(dfa, target, _ON_RIGHT, b, final), STAY,
                   label=symbol, position=AT_LEAF)
        else:  # GO_LEFT
            b.move(source, _goal(dfa, target, _ON_WORD, b, final), UP,
                   label=symbol, position=NOT_ROOT)
            b.move(source, _goal(dfa, target, _ON_LEFT, b, final), STAY,
                   label=symbol, position=AT_ROOT)

    # Final 2DFA states accept wherever they are reached.
    for q in dfa.finals:
        for where in (_ON_WORD, _ON_LEFT, _ON_RIGHT):
            b.move(_state(q, where), final, STAY)

    initial = _state(dfa.initial, _ON_LEFT)  # the 2DFA starts on ▷
    if dfa.initial in dfa.finals:
        initial = final
    return b.build(initial=initial, final=final)


def _goal(
    dfa: TwoWayDFA, state: str, where: str, b: AutomatonBuilder, final: str
) -> str:
    """Target tw state; final 2DFA states route straight to TWACC via
    their acceptance rules (added separately)."""
    return _state(state, where)


def accepts_word(
    compiled: TWAutomaton, dfa: TwoWayDFA, word: Sequence[str]
) -> bool:
    """Run the compiled automaton on ``word``; empty words are decided
    by the 2DFA directly (there is no empty tree)."""
    if not word:
        return run_two_way(dfa, []).accepted
    return tw_accepts(compiled, _word_tree(word))


def _word_tree(word: Sequence[str]) -> Tree:
    """Letters as labels (the compiled automaton dispatches on labels)."""
    labels = {}
    address: Tuple[int, ...] = ()
    for letter in word:
        labels[address] = letter
        address = address + (0,)
    return Tree(labels, {}, [])
