"""A file format for tw^{r,l} automata.

Lets automata live in version-controlled text instead of Python — the
CLI loads them with ``run FILE --automaton-file spec.tw``.  Format
(one directive per line, ``#`` comments)::

    automaton example-3.2
    registers 1            # arities of X1..Xk
    init _                 # optional τ₀: one value per register; _ = ⊥
    initial q0
    final qF

    rule q0 label=▽ : atp [x << y & O_δ(y)] start q2 into X1 -> q1
    rule q1 label=▽ : stay -> qF
    rule q3 label=δ if [forall z w (X1(z) & X1(w) -> z = w)] : stay -> qF
    rule q4 : set X1 { z | z = @a } -> q5
    rule q5 pos=leaf,!root : down -> q6

Rule grammar::

    rule <state> [label=<σ>] [pos=<flag>(,<flag>)*] [if [<ξ>]] : <action> -> <state>
    flag    := [!](root|leaf|first|last)
    action  := stay | up | down | left | right
             | set X<i> { <var>(, <var>)* | <ψ> }
             | atp [<φ(x,y)>] start <state> into X<i>

Guards ξ/updates ψ use the store-logic text syntax
(:mod:`repro.store.parser`); selectors φ the FO text syntax
(:mod:`repro.logic.parser`).  :func:`serialize_automaton` writes this
format back out; ``parse ∘ serialize`` is semantics-preserving (tested
by behavioural round-trips).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..logic.exists_star import ExistsStarQuery
from ..logic.parser import parse_formula
from ..store.fo import TrueF, Var
from ..store.parser import parse_guard, parse_store_formula
from ..trees.values import BOTTOM
from .builder import AutomatonBuilder
from .machine import TWAutomaton
from .rules import (
    ANYWHERE,
    Atp,
    DIRECTIONS,
    Move,
    PositionTest,
    Rule,
    Update,
)


class AutomatonFormatError(ValueError):
    """Raised on malformed automaton files."""

    def __init__(self, message: str, line_number: int = 0) -> None:
        prefix = f"line {line_number}: " if line_number else ""
        super().__init__(prefix + message)
        self.line_number = line_number


# -- parsing --------------------------------------------------------------------------


def _strip_comment(line: str) -> str:
    out = []
    in_string: Optional[str] = None
    for ch in line:
        if in_string:
            if ch == in_string:
                in_string = None
            out.append(ch)
        elif ch in ("'", '"'):
            in_string = ch
            out.append(ch)
        elif ch == "#":
            break
        else:
            out.append(ch)
    return "".join(out).strip()


def _take_bracketed(text: str, line_number: int) -> Tuple[str, str]:
    """Split ``[inner] rest`` (no nesting: formulas never use brackets)."""
    if not text.startswith("["):
        raise AutomatonFormatError("expected '[' to open a formula", line_number)
    end = text.find("]")
    if end < 0:
        raise AutomatonFormatError("unclosed '[' formula", line_number)
    return text[1:end].strip(), text[end + 1 :].strip()


def _parse_position(spec: str, line_number: int) -> PositionTest:
    flags: Dict[str, Optional[bool]] = {}
    for raw in spec.split(","):
        raw = raw.strip()
        value = True
        if raw.startswith("!"):
            value = False
            raw = raw[1:]
        if raw not in ("root", "leaf", "first", "last"):
            raise AutomatonFormatError(f"unknown position flag {raw!r}", line_number)
        flags[raw] = value
    return PositionTest(**flags)


def _parse_register(token: str, line_number: int) -> int:
    if not token.startswith("X") or not token[1:].isdigit():
        raise AutomatonFormatError(
            f"expected a register like X1, got {token!r}", line_number
        )
    return int(token[1:])


def _parse_rule(body: str, line_number: int, builder: AutomatonBuilder) -> None:
    head, sep, tail = body.partition(":")
    if not sep:
        raise AutomatonFormatError("rule needs ':' before the action", line_number)
    # -- the left-hand side -------------------------------------------------------
    head = head.strip()
    guard = None
    before, _if, after = head.partition(" if ")
    if _if:
        guard_text, rest = _take_bracketed(after.strip(), line_number)
        if rest:
            raise AutomatonFormatError(
                f"unexpected text after the guard: {rest!r}", line_number
            )
        guard = parse_guard(guard_text)
        head = before.strip()
    tokens = head.split()
    if not tokens:
        raise AutomatonFormatError("rule needs a source state", line_number)
    state = tokens[0]
    label: Optional[str] = None
    position = ANYWHERE
    for token in tokens[1:]:
        if token.startswith("label="):
            label = token[len("label="):]
        elif token.startswith("pos="):
            position = _parse_position(token[len("pos="):], line_number)
        else:
            raise AutomatonFormatError(f"unknown rule option {token!r}", line_number)

    # -- the action -----------------------------------------------------------------
    action = tail.strip()
    arrow = action.rfind("->")
    if arrow < 0:
        raise AutomatonFormatError("rule needs '-> <state>'", line_number)
    target = action[arrow + 2 :].strip()
    action = action[:arrow].strip()
    if not target:
        raise AutomatonFormatError("missing target state after '->'", line_number)

    if action in DIRECTIONS:
        builder.move(state, target, action, label=label, guard=guard,
                     position=position)
        return
    if action.startswith("set "):
        rest = action[4:].strip()
        register_token, _sp, rest = rest.partition(" ")
        register = _parse_register(register_token, line_number)
        rest = rest.strip()
        if not rest.startswith("{") or not rest.endswith("}"):
            raise AutomatonFormatError(
                "set needs '{ vars | formula }'", line_number
            )
        inner = rest[1:-1]
        vars_text, bar, formula_text = inner.partition("|")
        if not bar:
            raise AutomatonFormatError("set needs '|' in the braces", line_number)
        variables = [Var(v.strip().rstrip(","))
                     for v in vars_text.replace(",", " ").split()]
        if not variables:
            raise AutomatonFormatError("set needs at least one variable", line_number)
        formula = parse_store_formula(formula_text.strip())
        builder.update(state, target, register, formula, variables,
                       label=label, guard=guard, position=position)
        return
    if action.startswith("atp"):
        rest = action[3:].strip()
        selector_text, rest = _take_bracketed(rest, line_number)
        tokens = rest.split()
        if len(tokens) != 4 or tokens[0] != "start" or tokens[2] != "into":
            raise AutomatonFormatError(
                "atp needs '[φ] start <state> into X<i>'", line_number
            )
        substate = tokens[1]
        register = _parse_register(tokens[3], line_number)
        selector = ExistsStarQuery(parse_formula(selector_text))
        builder.atp(state, target, selector, substate, register,
                    label=label, guard=guard, position=position)
        return
    raise AutomatonFormatError(f"unknown action {action!r}", line_number)


def parse_automaton(text: str) -> TWAutomaton:
    """Parse the automaton file format."""
    name = "B"
    arities: Optional[List[int]] = None
    initial_values: Optional[List] = None
    initial_state: Optional[str] = None
    final_state: Optional[str] = None
    rule_lines: List[Tuple[int, str]] = []

    for number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        keyword, _sp, rest = line.partition(" ")
        rest = rest.strip()
        if keyword == "automaton":
            name = rest or name
        elif keyword == "registers":
            try:
                arities = [int(t) for t in rest.split()]
            except ValueError:
                raise AutomatonFormatError(
                    f"registers needs arities, got {rest!r}", number
                ) from None
        elif keyword == "init":
            initial_values = []
            for token in rest.split():
                if token in ("_", "⊥", "_|_"):
                    initial_values.append(BOTTOM)
                elif token.lstrip("-").isdigit():
                    initial_values.append(int(token))
                else:
                    initial_values.append(token.strip("'\""))
        elif keyword == "initial":
            initial_state = rest
        elif keyword == "final":
            final_state = rest
        elif keyword == "rule":
            rule_lines.append((number, rest))
        else:
            raise AutomatonFormatError(f"unknown directive {keyword!r}", number)

    if arities is None:
        arities = [1]
    if initial_state is None or final_state is None:
        raise AutomatonFormatError("need 'initial' and 'final' directives")
    builder = AutomatonBuilder(
        name, register_arities=arities, initial_assignment=initial_values
    )
    for number, body in rule_lines:
        _parse_rule(body, number, builder)
    return builder.build(initial=initial_state, final=final_state)


def load_automaton(path: str) -> TWAutomaton:
    """Read an automaton file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_automaton(handle.read())


# -- serialization ------------------------------------------------------------------------------


def _format_position(position: PositionTest) -> str:
    parts = []
    for flag in ("root", "leaf", "first", "last"):
        value = getattr(position, flag)
        if value is True:
            parts.append(flag)
        elif value is False:
            parts.append(f"!{flag}")
    return ",".join(parts)


def _format_rule(rule: Rule) -> str:
    pieces = [rule.lhs.state]
    if rule.lhs.label is not None:
        pieces.append(f"label={rule.lhs.label}")
    if not rule.lhs.position.is_trivial():
        pieces.append(f"pos={_format_position(rule.lhs.position)}")
    if not isinstance(rule.lhs.guard, TrueF):
        pieces.append(f"if [{rule.lhs.guard!r}]")
    rhs = rule.rhs
    if isinstance(rhs, Move):
        action = rhs.direction
    elif isinstance(rhs, Update):
        variables = ", ".join(v.name for v in rhs.variables)
        action = f"set X{rhs.register} {{ {variables} | {rhs.formula!r} }}"
    elif isinstance(rhs, Atp):
        action = (
            f"atp [{rhs.selector.formula!r}] start {rhs.substate} "
            f"into X{rhs.register}"
        )
    else:  # pragma: no cover
        raise AutomatonFormatError(f"unknown RHS {rhs!r}")
    return f"rule {' '.join(pieces)} : {action} -> {rhs.state}"


def serialize_automaton(automaton: TWAutomaton) -> str:
    """Render the automaton in the file format (re-parseable)."""
    lines = [f"automaton {automaton.name}"]
    lines.append(
        "registers " + " ".join(str(a) for a in automaton.schema.arities)
    )
    if automaton.initial_assignment:
        rendered = []
        for value in automaton.initial_assignment:
            if value is None or value is BOTTOM:
                rendered.append("_")
            else:
                rendered.append(str(value))
        lines.append("init " + " ".join(rendered))
    lines.append(f"initial {automaton.initial_state}")
    lines.append(f"final {automaton.final_state}")
    lines.append("")
    for rule in automaton.rules:
        lines.append(_format_rule(rule))
    return "\n".join(lines) + "\n"
