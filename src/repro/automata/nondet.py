"""Nondeterministic tree-walking automata (TWA).

The paper's open question — "whether tree-walking captures all regular
tree languages" [12, 13, 19] — lives in the register-free fragment: a
TWA walks on labels and positions alone, and the nondeterministic
variant guesses.  (Both questions were later resolved negatively:
Bojańczyk–Colcombet 2006/2008 — deterministic TWA ⊊ nondeterministic
TWA ⊊ regular; this module provides the machine those results are
about.)

Acceptance is reachability in the finite configuration graph
Dom(t) × Q, so :func:`ntwa_accepts` is a plain BFS — nondeterminism
costs nothing at evaluation time on this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..trees.node import NodeId
from ..trees.tree import Tree
from .rules import ANYWHERE, DIRECTIONS, PositionTest, move as tree_move


class NTWAError(ValueError):
    """Raised on ill-formed nondeterministic walkers."""


@dataclass(frozen=True)
class NTWRule:
    """(state, label?, position) → walk ``direction`` into ``new_state``;
    several rules may apply — each spawns a branch."""

    state: str
    new_state: str
    direction: str = "stay"
    label: Optional[str] = None
    position: PositionTest = ANYWHERE

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise NTWAError(f"bad direction {self.direction!r}")


@dataclass(frozen=True)
class NTWA:
    """(Q, q₀, F, rules) — register-free, nondeterministic."""

    states: frozenset
    initial: str
    finals: frozenset
    rules: Tuple[NTWRule, ...]
    name: str = "N"

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise NTWAError("initial state not in Q")
        if not self.finals <= self.states:
            raise NTWAError("final states not in Q")
        for rule in self.rules:
            if rule.state not in self.states or rule.new_state not in self.states:
                raise NTWAError(f"unknown state in {rule!r}")


def ntwa_accepts(automaton: NTWA, tree: Tree, start: NodeId = ()) -> bool:
    """Some run reaches a final state — BFS over Dom(t) × Q."""
    tree.require(start)
    initial = (start, automaton.initial)
    seen: Set[Tuple[NodeId, str]] = {initial}
    frontier: List[Tuple[NodeId, str]] = [initial]
    while frontier:
        node, state = frontier.pop()
        if state in automaton.finals:
            return True
        label = tree.label(node)
        for rule in automaton.rules:
            if rule.state != state:
                continue
            if rule.label is not None and rule.label != label:
                continue
            if not rule.position.matches(tree, node):
                continue
            target = tree_move(tree, node, rule.direction)
            if target is None:
                continue
            key = (target, rule.new_state)
            if key not in seen:
                seen.add(key)
                frontier.append(key)
    return False


def reachable_configurations(automaton: NTWA, tree: Tree) -> int:
    """Size of the explored configuration graph — at most |t|·|Q|."""
    initial = ((), automaton.initial)
    seen: Set[Tuple[NodeId, str]] = {initial}
    frontier = [initial]
    while frontier:
        node, state = frontier.pop()
        label = tree.label(node)
        for rule in automaton.rules:
            if rule.state != state:
                continue
            if rule.label is not None and rule.label != label:
                continue
            if not rule.position.matches(tree, node):
                continue
            target = tree_move(tree, node, rule.direction)
            if target is None:
                continue
            key = (target, rule.new_state)
            if key not in seen:
                seen.add(key)
                frontier.append(key)
    return len(seen)


# ---------------------------------------------------------------------------
# Stock nondeterministic walkers
# ---------------------------------------------------------------------------


def guess_leaf_with_label(label: str) -> NTWA:
    """Guess-and-verify: descend along guessed children to a ``label``
    leaf.  The deterministic equivalent needs a full DFS."""
    rules = (
        # guess any child: go down, then nondeterministically shuffle right
        NTWRule("walk", "walk", "down"),
        NTWRule("walk", "walk", "right"),
        NTWRule("walk", "hit", "stay", label=label,
                position=PositionTest(leaf=True)),
    )
    return NTWA(
        states=frozenset({"walk", "hit"}),
        initial="walk",
        finals=frozenset({"hit"}),
        rules=rules,
        name=f"guess-leaf-{label}",
    )


def at_least_two_leaves_with_label(label: str) -> NTWA:
    """Guess a ``label`` leaf, climb to a guessed ancestor, step to a
    *later* sibling subtree, and find a second ``label`` leaf there —
    accepting exactly the trees with ≥ 2 such leaves (every pair of
    distinct leaves is separated at their LCA)."""
    at_leaf = PositionTest(leaf=True)
    rules = (
        NTWRule("first", "first", "down"),
        NTWRule("first", "first", "right"),
        NTWRule("first", "climb", "stay", label=label, position=at_leaf),
        NTWRule("climb", "climb", "up"),
        NTWRule("climb", "across", "right"),
        NTWRule("across", "across", "right"),
        NTWRule("across", "second", "stay"),
        NTWRule("second", "second", "down"),
        NTWRule("second", "second", "right"),
        NTWRule("second", "hit", "stay", label=label, position=at_leaf),
    )
    return NTWA(
        states=frozenset(
            {"first", "climb", "across", "second", "hit"}
        ),
        initial="first",
        finals=frozenset({"hit"}),
        rules=rules,
        name=f"two-leaves-{label}",
    )


def at_least_two_leaves_spec(label: str):
    def spec(tree: Tree) -> bool:
        count = sum(
            1 for u in tree.nodes if tree.is_leaf(u) and tree.label(u) == label
        )
        return count >= 2

    return spec
