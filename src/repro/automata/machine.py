"""The tw^{r,l} automaton type (Definition 3.1).

A k-register tw^{r,l}-automaton is ``(Q, q₀, q_F, τ₀, P)``: states,
initial state, final state, initial register assignment, and rules.
This class stores the tuple, validates it statically, and computes the
paper's size measure |B|.  Execution lives in
:mod:`repro.automata.runner`; the Definition 5.1 class restrictions in
:mod:`repro.automata.classes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Sequence, Tuple, Union

from ..logic.tree_fo import subformulas as tree_subformulas
from ..store.database import StoreSchema, RegisterStore
from ..store.fo import (
    StoreFormula,
    Var,
    constants as store_constants,
    free_variables as store_free_variables,
    validate as validate_store_formula,
)
from ..trees.values import BOTTOM, DataValue
from .rules import Atp, LHS, Move, RHS, Rule, Update


class AutomatonError(ValueError):
    """Raised on statically ill-formed automata."""


def _formula_size(formula: StoreFormula) -> int:
    """Crude |ξ| measure: number of AST nodes."""
    from ..store import fo as F

    if isinstance(formula, (F.TrueF, F.FalseF, F.Rel, F.Eq)):
        return 1
    if isinstance(formula, F.Not):
        return 1 + _formula_size(formula.inner)
    if isinstance(formula, (F.And, F.Or)):
        return 1 + sum(_formula_size(p) for p in formula.parts)
    if isinstance(formula, F.Implies):
        return 1 + _formula_size(formula.premise) + _formula_size(formula.conclusion)
    if isinstance(formula, (F.Exists, F.Forall)):
        return 1 + _formula_size(formula.inner)
    raise AutomatonError(f"unknown store formula {formula!r}")


@dataclass(frozen=True)
class TWAutomaton:
    """``B = (Q, q₀, q_F, τ₀, P)`` with a declared register schema.

    ``initial_assignment`` entries are D-values (unary singleton), or
    ``BOTTOM``/``None`` (empty relation) — the paper's
    ``τ₀ : {1..k} → D ∪ {⊥}``.
    """

    states: FrozenSet[str]
    initial_state: str
    final_state: str
    schema: StoreSchema
    rules: Tuple[Rule, ...]
    initial_assignment: Tuple[Union[DataValue, None], ...] = ()
    name: str = "B"

    def __post_init__(self) -> None:
        if self.initial_state not in self.states:
            raise AutomatonError(f"initial state {self.initial_state!r} not in Q")
        if self.final_state not in self.states:
            raise AutomatonError(f"final state {self.final_state!r} not in Q")
        init = self.initial_assignment
        if init and len(init) != self.schema.count:
            raise AutomatonError(
                f"initial assignment covers {len(init)} of "
                f"{self.schema.count} registers"
            )
        for rule in self.rules:
            self._validate_rule(rule)

    def _validate_rule(self, rule: Rule) -> None:
        lhs, rhs = rule.lhs, rule.rhs
        if lhs.state not in self.states:
            raise AutomatonError(f"rule uses unknown state {lhs.state!r}: {rule!r}")
        if lhs.state == self.final_state:
            raise AutomatonError(
                f"no transition may leave the final state: {rule!r}"
            )
        if store_free_variables(lhs.guard):
            raise AutomatonError(f"guard must be a sentence: {rule!r}")
        validate_store_formula(lhs.guard, self.schema)
        if rhs.state not in self.states:
            raise AutomatonError(f"rule targets unknown state {rhs.state!r}: {rule!r}")
        if isinstance(rhs, Update):
            self.schema.check_register(rhs.register)
            expected = self.schema.arity(rhs.register)
            if len(rhs.variables) != expected:
                raise AutomatonError(
                    f"update writes {len(rhs.variables)} columns into register "
                    f"{rhs.register} of arity {expected}: {rule!r}"
                )
            validate_store_formula(rhs.formula, self.schema)
            extra = store_free_variables(rhs.formula) - set(rhs.variables)
            if extra:
                raise AutomatonError(
                    f"update formula has stray free variables "
                    f"{sorted(v.name for v in extra)}: {rule!r}"
                )
        elif isinstance(rhs, Atp):
            self.schema.check_register(rhs.register)
            if rhs.substate not in self.states:
                raise AutomatonError(
                    f"atp starts unknown state {rhs.substate!r}: {rule!r}"
                )
            if self.schema.arity(rhs.register) != self.schema.arity(1):
                raise AutomatonError(
                    f"atp returns register 1 (arity {self.schema.arity(1)}) "
                    f"into register {rhs.register} (arity "
                    f"{self.schema.arity(rhs.register)}): {rule!r}"
                )
        elif not isinstance(rhs, Move):
            raise AutomatonError(f"unknown RHS {rhs!r}")

    # -- derived data ---------------------------------------------------------

    def initial_store(self) -> RegisterStore:
        """τ₀ as a :class:`RegisterStore`."""
        if not self.initial_assignment:
            return self.schema.initial_store()
        return self.schema.initial_store(list(self.initial_assignment))

    def program_constants(self) -> FrozenSet[DataValue]:
        """All D-constants occurring in the program (guards, updates,
        initial assignment) — part of the active domain everywhere."""
        out = set()
        for value in self.initial_assignment:
            if value is not None and value is not BOTTOM:
                out.add(value)
        for rule in self.rules:
            out |= store_constants(rule.lhs.guard)
            if isinstance(rule.rhs, Update):
                out |= store_constants(rule.rhs.formula)
        return frozenset(out)

    def rules_for(self, state: str) -> Tuple[Rule, ...]:
        """All rules whose LHS state is ``state``."""
        return tuple(r for r in self.rules if r.lhs.state == state)

    def has_lookahead(self) -> bool:
        """True iff some rule is an ``atp`` rule."""
        return any(isinstance(r.rhs, Atp) for r in self.rules)

    def has_updates(self) -> bool:
        """True iff some rule is a register-update rule."""
        return any(isinstance(r.rhs, Update) for r in self.rules)

    def size(self) -> int:
        """The paper's |B| = |Q| + Σ|τ₀(i)| + Σ|ξ| (we also count the
        update formulas and selector sizes, a harmless refinement)."""
        total = len(self.states)
        for value in self.initial_assignment:
            if value is not None and value is not BOTTOM:
                total += 1
        for rule in self.rules:
            total += _formula_size(rule.lhs.guard)
            if isinstance(rule.rhs, Update):
                total += _formula_size(rule.rhs.formula)
            elif isinstance(rule.rhs, Atp):
                total += rule.rhs.selector.size()
        return total

    def selectors(self) -> Tuple:
        """All atp selectors (the φ's a protocol needs in its alphabet Δ)."""
        return tuple(
            r.rhs.selector for r in self.rules if isinstance(r.rhs, Atp)
        )

    def __repr__(self) -> str:
        return (
            f"TWAutomaton({self.name}: |Q|={len(self.states)}, "
            f"k={self.schema.count}, {len(self.rules)} rules)"
        )
