"""A library of tree-walking automata, one per Definition 5.1 class.

Each constructor returns an automaton together with (where useful) an
independent specification — an FO sentence or a plain Python predicate
— that the test suite checks the automaton against.  The centrepiece
is :func:`example_32`, the paper's worked Example 3.2.
"""

from __future__ import annotations

from typing import Callable, Tuple

from ..logic import tree_fo
from ..logic.exists_star import (
    ExistsStarQuery,
    X,
    Y,
    parent_selector,
    selector,
)
from ..logic.tree_fo import NVar
from ..store.fo import Attr, FalseF, Var, conj, eq, forall, implies, rel
from ..trees.delimited import LEAF_DELIM, ROOT_DELIM, delim
from ..trees.node import NodeId
from ..trees.tree import Tree
from .builder import AutomatonBuilder
from .machine import TWAutomaton
from .rules import DOWN, PositionTest, RIGHT, STAY, UP

z = Var("z")
w = Var("w")

AT_LEAF = PositionTest(leaf=True)
AT_INNER = PositionTest(leaf=False)
AT_ROOT = PositionTest(root=True)
BACK_CONTINUE = PositionTest(root=False, last=False)
BACK_ASCEND = PositionTest(root=False, last=True)


def _singleton_guard(register: int):
    """ξ ≡ ∀x∀y (X(x) ∧ X(y) → x = y) — "the register holds ≤ 1 value"."""
    return forall(
        [z, w], implies(conj(rel(register, z), rel(register, w)), eq(z, w))
    )


# ---------------------------------------------------------------------------
# Example 3.2 (tw^{r,l}): every δ-node's leaf-descendants share their a-value
# ---------------------------------------------------------------------------


def example_32() -> TWAutomaton:
    """The paper's Example 3.2, verbatim modulo delimiter conventions.

    Runs on ``delim(t)`` with Σ = {σ, δ}, A = {a}.  Accepts iff for
    every δ-labelled node, all its leaf-descendants (parents of
    △-nodes) carry the same a-attribute.
    """
    phi_1 = selector(
        tree_fo.conj(tree_fo.Desc(X, Y), tree_fo.Label("δ", Y))
    )
    y1 = NVar("y1")
    phi_2 = selector(
        tree_fo.exists(
            y1,
            tree_fo.conj(
                tree_fo.Desc(X, Y),
                tree_fo.Edge(Y, y1),
                tree_fo.Label(LEAF_DELIM, y1),
            ),
        )
    )
    b = AutomatonBuilder("example-3.2", register_arities=[1])
    # (1) select every δ-descendant of the ▽-root, run q2 there.
    b.atp("q0", "q1", phi_1, substate="q2", register=1, label=ROOT_DELIM)
    # (2) all subcomputations returned: accept.
    b.move("q1", "qF", STAY, label=ROOT_DELIM)
    # (3) at a δ-node: collect the a-values of all leaf-descendants.
    b.atp("q2", "q3", phi_2, substate="q4", register=1, label="δ")
    # (4) accept the subcomputation iff the collected set is a singleton;
    #     otherwise q3 is stuck and the *whole* computation rejects.
    b.move("q3", "qF", STAY, label="δ", guard=_singleton_guard(1))
    # (5)+(6) every selected leaf reports its a-attribute.
    b.update("q4", "q5", register=1, formula=eq(z, Attr("a")), variables=[z])
    b.move("q5", "qF", STAY)
    return b.build(initial="q0", final="qF")


def example_32_spec(tree: Tree) -> bool:
    """Independent Python specification of Example 3.2 on the
    *undelimited* tree."""
    for u in tree.nodes:
        if tree.label(u) != "δ":
            continue
        values = {
            tree.val("a", v)
            for v in tree.nodes
            if tree.descendant(u, v) and tree.is_leaf(v)
        }
        if len(values) > 1:
            return False
    return True


def example_32_fo_spec() -> tree_fo.TreeFormula:
    """The same property as an FO sentence over the undelimited tree."""
    x, y, v = NVar("x"), NVar("y"), NVar("v")
    leafdesc_y = tree_fo.conj(tree_fo.Desc(x, y), tree_fo.Leaf(y))
    leafdesc_v = tree_fo.conj(tree_fo.Desc(x, v), tree_fo.Leaf(v))
    return tree_fo.forall(
        x,
        tree_fo.implies(
            tree_fo.Label("δ", x),
            tree_fo.forall(
                [y, v],
                tree_fo.implies(
                    tree_fo.conj(leafdesc_y, leafdesc_v),
                    tree_fo.ValEq("a", y, "a", v),
                ),
            ),
        ),
    )


def run_example_32(tree: Tree) -> bool:
    """Delimit, run, return the verdict."""
    from .runner import accepts

    return accepts(example_32(), delim(tree))


# ---------------------------------------------------------------------------
# tw: pure finite-state walking (depth-first traversals)
# ---------------------------------------------------------------------------


def _add_dfs_backtrack(b: AutomatonBuilder, fwd: str, back: str) -> None:
    """The standard depth-first backtracking rules for a fwd/back pair."""
    b.move(back, fwd, RIGHT, position=BACK_CONTINUE)
    b.move(back, back, UP, position=BACK_ASCEND)


def even_leaves_automaton() -> TWAutomaton:
    """tw: accepts iff the number of leaves is even (not FO-definable —
    walking buys genuine counting power mod constants)."""
    b = AutomatonBuilder("even-leaves", register_arities=[1])
    for bit in (0, 1):
        flipped = 1 - bit
        b.move(f"fwd{bit}", f"back{flipped}", STAY, position=AT_LEAF)
        b.move(f"fwd{bit}", f"fwd{bit}", DOWN, position=AT_INNER)
        _add_dfs_backtrack(b, f"fwd{bit}", f"back{bit}")
    # A lone root that is a leaf flips parity before the back rules run,
    # so back{parity} at the root carries the final count.
    b.move("back0", "qF", STAY, position=AT_ROOT)
    return b.build(initial="fwd0", final="qF")


def even_leaves_spec(tree: Tree) -> bool:
    return sum(1 for u in tree.nodes if tree.is_leaf(u)) % 2 == 0


def exists_value_automaton(attr: str, value) -> TWAutomaton:
    """tw: accepts iff some node has ``val_attr = value`` (DFS search)."""
    found = eq(Attr(attr), value)
    not_found = _as_guard(found)
    b = AutomatonBuilder(f"exists-{attr}={value!r}", register_arities=[1])
    b.move("fwd", "qF", STAY, guard=found)
    b.move("fwd", "back", STAY, guard=not_found, position=AT_LEAF)
    b.move("fwd", "fwd", DOWN, guard=not_found, position=AT_INNER)
    _add_dfs_backtrack(b, "fwd", "back")
    return b.build(initial="fwd", final="qF")


def _as_guard(formula):
    from ..store.fo import Not

    return Not(formula)


def exists_value_spec(attr: str, value) -> Callable[[Tree], bool]:
    def spec(tree: Tree) -> bool:
        return any(tree.val(attr, u) == value for u in tree.nodes)

    return spec


# ---------------------------------------------------------------------------
# tw (with a register): root value occurs at some leaf
# ---------------------------------------------------------------------------


def root_value_at_some_leaf(attr: str = "a") -> TWAutomaton:
    """tw: store the root's attribute, DFS, accept at a matching leaf."""
    match = rel(1, Attr(attr))
    b = AutomatonBuilder(f"root-{attr}-at-leaf", register_arities=[1])
    b.update("q0", "fwd", register=1, formula=eq(z, Attr(attr)), variables=[z])
    b.move("fwd", "qF", STAY, guard=match, position=AT_LEAF)
    b.move("fwd", "back", STAY, guard=_as_guard(match), position=AT_LEAF)
    b.move("fwd", "fwd", DOWN, position=AT_INNER)
    _add_dfs_backtrack(b, "fwd", "back")
    return b.build(initial="q0", final="qF")


def root_value_at_some_leaf_spec(attr: str = "a") -> Callable[[Tree], bool]:
    def spec(tree: Tree) -> bool:
        root_value = tree.val(attr, ())
        return any(
            tree.val(attr, u) == root_value
            for u in tree.nodes
            if tree.is_leaf(u)
        )

    return spec


# ---------------------------------------------------------------------------
# tw^l: look-ahead fetching a single value (the spine check)
# ---------------------------------------------------------------------------


def spine_constant_automaton(attr: str = "a") -> TWAutomaton:
    """tw^l: accepts iff the leftmost spine is constant in ``attr``.

    At every non-root spine node, a look-ahead subcomputation fetches
    the *parent's* attribute (selector = parent, a functional selector)
    and the guard compares it with the current node's — look-ahead used
    exactly as the paper describes: computing one data value.
    """
    parent_matches = rel(1, Attr(attr))
    b = AutomatonBuilder(f"spine-constant-{attr}", register_arities=[1])
    b.move("q0", "qF", STAY, position=PositionTest(root=True, leaf=True))
    b.move("q0", "walk", DOWN, position=PositionTest(root=True, leaf=False))
    b.atp("walk", "check", parent_selector(), substate="report", register=1)
    b.move("check", "qF", STAY, guard=parent_matches, position=AT_LEAF)
    b.move("check", "walk", DOWN, guard=parent_matches, position=AT_INNER)
    b.update("report", "done", register=1, formula=eq(z, Attr(attr)), variables=[z])
    b.move("done", "qF", STAY)
    return b.build(initial="q0", final="qF")


def spine_constant_spec(attr: str = "a") -> Callable[[Tree], bool]:
    def spec(tree: Tree) -> bool:
        node: NodeId = ()
        root_value = tree.val(attr, ())
        while not tree.is_leaf(node):
            node = tree.first_child(node)
            if tree.val(attr, node) != root_value:
                return False
        return True

    return spec


# ---------------------------------------------------------------------------
# tw^r: relational storage without look-ahead
# ---------------------------------------------------------------------------


def all_values_same_twr(attr: str = "a") -> TWAutomaton:
    """tw^r: DFS accumulating ``X1 := X1 ∪ {@attr}``; accept iff at the
    end the set is a singleton.  Same property as the tw^{r,l} one-shot
    :func:`all_leaves_same_twrl` computes with a single atp — the pair
    is the E12 ablation of look-ahead vs. storage."""
    from ..store.fo import disj

    accumulate = disj(rel(1, z), eq(z, Attr(attr)))
    b = AutomatonBuilder(f"all-{attr}-same", register_arities=[1])
    b.update("fwd", "step", register=1, formula=accumulate, variables=[z])
    b.move("step", "back", STAY, position=AT_LEAF)
    b.move("step", "fwd", DOWN, position=AT_INNER)
    _add_dfs_backtrack(b, "fwd", "back")
    b.move("back", "final", STAY, position=AT_ROOT)
    b.move("final", "qF", STAY, guard=_singleton_guard(1))
    return b.build(initial="fwd", final="qF")


def all_values_same_spec(attr: str = "a") -> Callable[[Tree], bool]:
    def spec(tree: Tree) -> bool:
        return len({tree.val(attr, u) for u in tree.nodes}) <= 1

    return spec


# ---------------------------------------------------------------------------
# tw^{r,l}: the one-shot leaf-uniformity check
# ---------------------------------------------------------------------------


def all_leaves_same_twrl(attr: str = "a") -> TWAutomaton:
    """tw^{r,l}: one atp collects every leaf's value; guard asks for a
    singleton.  (Runs on raw trees, leaves detected positionally.)"""
    from ..logic.exists_star import leaves_selector

    b = AutomatonBuilder(f"leaves-{attr}-uniform", register_arities=[1])
    b.atp("q0", "q1", leaves_selector(), substate="report", register=1)
    b.move("q1", "qF", STAY, guard=_singleton_guard(1))
    b.update("report", "done", register=1, formula=eq(z, Attr(attr)), variables=[z])
    b.move("done", "qF", STAY)
    return b.build(initial="q0", final="qF")


def all_leaves_same_spec(attr: str = "a") -> Callable[[Tree], bool]:
    def spec(tree: Tree) -> bool:
        return (
            len({tree.val(attr, u) for u in tree.nodes if tree.is_leaf(u)}) <= 1
        )

    return spec


# ---------------------------------------------------------------------------
# tw^r over A = ∅: the Proposition 7.2 register-elimination exemplar
# ---------------------------------------------------------------------------


def delta_leaves_mod3_twr() -> TWAutomaton:
    """tw^r on label-only trees: counts δ-labelled leaves modulo 3 in a
    register holding one of the program constants {0, 1, 2}; accepts on
    count ≡ 0.  With A = ∅ its store contents are finite, so
    :func:`repro.simulation.noattr.eliminate_registers` folds them into
    the states (Proposition 7.2)."""
    from ..store.fo import conj, disj

    increment = disj(
        conj(rel(1, 0), eq(z, 1)),
        conj(rel(1, 1), eq(z, 2)),
        conj(rel(1, 2), eq(z, 0)),
    )
    b = AutomatonBuilder(
        "delta-leaves-mod3", register_arities=[1], initial_assignment=[0]
    )
    b.update("fwd", "step", 1, increment, [z], label="δ", position=AT_LEAF)
    b.move("fwd", "step", STAY, label="σ", position=AT_LEAF)
    b.move("step", "back", STAY, position=AT_LEAF)
    b.move("fwd", "fwd", DOWN, position=AT_INNER)
    _add_dfs_backtrack(b, "fwd", "back")
    b.move("back", "final", STAY, position=AT_ROOT)
    b.move("final", "qF", STAY, guard=rel(1, 0))
    return b.build(initial="fwd", final="qF")


def delta_leaves_mod3_spec(tree: Tree) -> bool:
    count = sum(
        1 for u in tree.nodes if tree.is_leaf(u) and tree.label(u) == "δ"
    )
    return count % 3 == 0
