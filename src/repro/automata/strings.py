"""Two-way deterministic finite automata on delimited strings.

The warm-up model of Section 3: a 2DFA walks ``▷ w ◁`` changing state
and direction from the current state and symbol; it accepts on reaching
a final state.  Included for pedagogy and as the string-level sanity
layer under the tree-walking executor (a 2DFA is a tree-walking
automaton on monadic trees, and the tests check exactly that)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

LEFT_MARK = "▷"
RIGHT_MARK = "◁"

#: Head movements.
GO_LEFT = -1
GO_STAY = 0
GO_RIGHT = 1


class TwoWayError(ValueError):
    """Raised on ill-formed 2DFAs or inputs."""


@dataclass(frozen=True)
class TwoWayDFA:
    """``(Q, Σ, δ, q₀, F)`` with δ : Q × (Σ ∪ {▷, ◁}) → Q × {-1, 0, +1}."""

    states: FrozenSet[str]
    alphabet: FrozenSet[str]
    transitions: Tuple[Tuple[Tuple[str, str], Tuple[str, int]], ...]
    initial: str
    finals: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise TwoWayError(f"initial state {self.initial!r} not in Q")
        if not self.finals <= self.states:
            raise TwoWayError("final states must be a subset of Q")
        seen: Set[Tuple[str, str]] = set()
        for (state, symbol), (target, direction) in self.transitions:
            if state not in self.states or target not in self.states:
                raise TwoWayError(f"unknown state in δ({state!r},{symbol!r})")
            if direction not in (GO_LEFT, GO_STAY, GO_RIGHT):
                raise TwoWayError(f"bad direction {direction!r}")
            if (state, symbol) in seen:
                raise TwoWayError(f"duplicate transition for ({state!r},{symbol!r})")
            seen.add((state, symbol))

    def transition_map(self) -> Dict[Tuple[str, str], Tuple[str, int]]:
        return dict(self.transitions)


@dataclass
class TwoWayResult:
    accepted: bool
    steps: int
    reason: str


def run_two_way(
    dfa: TwoWayDFA, word: Sequence[str], fuel: int = 1_000_000
) -> TwoWayResult:
    """Run on ``▷ word ◁``; rejects on stuck, off-tape, or repeated
    configuration (determinism makes repetition divergence)."""
    tape = [LEFT_MARK] + list(word) + [RIGHT_MARK]
    for symbol in word:
        if symbol in (LEFT_MARK, RIGHT_MARK):
            raise TwoWayError("input word may not contain the end markers")
        if symbol not in dfa.alphabet:
            raise TwoWayError(f"symbol {symbol!r} not in the alphabet")
    delta = dfa.transition_map()
    state, head = dfa.initial, 0
    seen: Set[Tuple[str, int]] = set()
    steps = 0
    while True:
        if state in dfa.finals:
            return TwoWayResult(True, steps, "reached a final state")
        key = (state, head)
        if key in seen:
            return TwoWayResult(False, steps, f"cycle at {key!r}")
        seen.add(key)
        steps += 1
        if steps > fuel:
            raise TwoWayError("fuel exhausted")
        move_ = delta.get((state, tape[head]))
        if move_ is None:
            return TwoWayResult(False, steps, f"stuck in {state!r} on {tape[head]!r}")
        state, direction = move_[0], move_[1]
        head += direction
        if not 0 <= head < len(tape):
            return TwoWayResult(False, steps, "moved off the tape")


def multiple_of_automaton(divisor: int, symbol: str = "a") -> TwoWayDFA:
    """A 2DFA accepting words whose length is a multiple of ``divisor`` —
    it sweeps right counting mod ``divisor``, then verifies at ◁."""
    if divisor < 1:
        raise TwoWayError("divisor must be >= 1")
    states = frozenset({f"c{i}" for i in range(divisor)} | {"acc"})
    transitions = [(("c0", LEFT_MARK), ("c0", GO_RIGHT))]
    for i in range(divisor):
        transitions.append(((f"c{i}", symbol), (f"c{(i + 1) % divisor}", GO_RIGHT)))
    transitions.append((("c0", RIGHT_MARK), ("acc", GO_STAY)))
    return TwoWayDFA(
        states=states,
        alphabet=frozenset({symbol}),
        transitions=tuple(transitions),
        initial="c0",
        finals=frozenset({"acc"}),
    )


def palindrome_automaton(alphabet: Sequence[str]) -> TwoWayDFA:
    """A genuinely two-way 2DFA: accepts palindromes by zig-zag marking.

    Without the ability to write, a 2DFA cannot decide palindromes in
    general — this automaton instead checks the FO-typical property
    "first symbol equals last symbol", the classical two-way warm-up:
    sweep to ◁ remembering nothing, step left, remember the last
    symbol, run back to ▷, step right, compare."""
    states = {"start", "sweep", "at-end", "acc"}
    transitions = [
        (("start", LEFT_MARK), ("sweep", GO_RIGHT)),
        (("sweep", RIGHT_MARK), ("at-end", GO_LEFT)),
    ]
    for sym in alphabet:
        transitions.append((("sweep", sym), ("sweep", GO_RIGHT)))
        # remember the last symbol in the state, rewind to ▷
        states.add(f"rewind-{sym}")
        states.add(f"check-{sym}")
        transitions.append((("at-end", sym), (f"rewind-{sym}", GO_LEFT)))
        for other in alphabet:
            transitions.append(
                ((f"rewind-{sym}", other), (f"rewind-{sym}", GO_LEFT))
            )
        transitions.append(
            ((f"rewind-{sym}", LEFT_MARK), (f"check-{sym}", GO_RIGHT))
        )
        transitions.append(((f"check-{sym}", sym), ("acc", GO_STAY)))
    return TwoWayDFA(
        states=frozenset(states),
        alphabet=frozenset(alphabet),
        transitions=tuple(transitions),
        initial="start",
        finals=frozenset({"acc"}),
    )
