"""Tree-walking automata: the paper's Definition 3.1 model and the
Definition 5.1 restriction lattice tw ⊆ tw^l, tw^r ⊆ tw^{r,l}.

* :mod:`repro.automata.rules` — rule syntax (moves, updates, atp);
* :mod:`repro.automata.machine` — the automaton tuple and static checks;
* :mod:`repro.automata.runner` — execution (configurations, cycles,
  subcomputations, verdicts);
* :mod:`repro.automata.classes` — class membership / validation;
* :mod:`repro.automata.builder` — fluent construction;
* :mod:`repro.automata.examples` — a worked automaton per class,
  including the paper's Example 3.2;
* :mod:`repro.automata.strings` — two-way DFAs, the string warm-up.
"""

from .rules import (
    ANYWHERE,
    Atp,
    DIRECTIONS,
    DOWN,
    LEFT,
    LHS,
    Move,
    PositionTest,
    RHS,
    RIGHT,
    Rule,
    STAY,
    UP,
    Update,
    move,
)
from .machine import AutomatonError, TWAutomaton
from .runner import (
    Configuration,
    ExecutionError,
    FuelExhausted,
    NondeterminismError,
    RunResult,
    accepts,
    fast_plan_for,
    run,
)
from .classes import (
    ClassViolation,
    TWClass,
    check_single_valued_on,
    classify,
    is_functional_selector,
    is_in_class,
    require_class,
    violations,
)
from .builder import AutomatonBuilder
from .nondet import (
    NTWA,
    NTWAError,
    NTWRule,
    ntwa_accepts,
    reachable_configurations,
)
from .textformat import (
    AutomatonFormatError,
    load_automaton,
    parse_automaton,
    serialize_automaton,
)
from . import examples, nondet, stringcompile, strings, textformat

__all__ = [
    "ANYWHERE",
    "Atp",
    "DIRECTIONS",
    "DOWN",
    "LEFT",
    "LHS",
    "Move",
    "PositionTest",
    "RHS",
    "RIGHT",
    "Rule",
    "STAY",
    "UP",
    "Update",
    "move",
    "AutomatonError",
    "TWAutomaton",
    "Configuration",
    "ExecutionError",
    "FuelExhausted",
    "NondeterminismError",
    "RunResult",
    "accepts",
    "fast_plan_for",
    "run",
    "ClassViolation",
    "TWClass",
    "check_single_valued_on",
    "classify",
    "is_functional_selector",
    "is_in_class",
    "require_class",
    "violations",
    "AutomatonBuilder",
    "NTWA",
    "NTWAError",
    "NTWRule",
    "ntwa_accepts",
    "reachable_configurations",
    "AutomatonFormatError",
    "load_automaton",
    "parse_automaton",
    "serialize_automaton",
    "examples",
    "nondet",
    "stringcompile",
    "strings",
    "textformat",
]
