"""A fluent construction API for tw^{r,l} automata.

Writing Definition 3.1 tuples by hand is error-prone; the builder
collects rules, infers the state set, and validates on ``build()``::

    b = AutomatonBuilder("even-leaves", register_arities=[1])
    b.move("q0", "q1", DOWN, label="σ")
    b.update("q1", "q2", register=1, formula=eq(z, Attr("a")), variables=[z])
    b.atp("q2", "q3", selector=leaves_selector(), substate="q4", register=1)
    automaton = b.build(initial="q0", final="q3")
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..logic.exists_star import ExistsStarQuery
from ..store.database import StoreSchema
from ..store.fo import StoreFormula, TrueF, Var
from ..trees.values import DataValue
from .machine import AutomatonError, TWAutomaton
from .rules import Atp, LHS, Move, PositionTest, Rule, Update, ANYWHERE


class AutomatonBuilder:
    """Accumulates rules; ``build`` produces a validated automaton."""

    def __init__(
        self,
        name: str = "B",
        register_arities: Sequence[int] = (1,),
        initial_assignment: Optional[Sequence[Union[DataValue, None]]] = None,
    ) -> None:
        self.name = name
        self.schema = StoreSchema(register_arities)
        self.initial_assignment = tuple(
            initial_assignment
            if initial_assignment is not None
            else [None] * self.schema.count
        )
        self._rules: List[Rule] = []
        self._states: set = set()

    # -- rule constructors ------------------------------------------------------

    def _lhs(
        self,
        state: str,
        label: Optional[str],
        guard: Optional[StoreFormula],
        position: PositionTest,
    ) -> LHS:
        self._states.add(state)
        return LHS(state, label, guard if guard is not None else TrueF(), position)

    def move(
        self,
        state: str,
        to: str,
        direction: str,
        label: Optional[str] = None,
        guard: Optional[StoreFormula] = None,
        position: PositionTest = ANYWHERE,
    ) -> "AutomatonBuilder":
        """Add ``(label, state, guard) → (to, direction)``."""
        self._states.add(to)
        self._rules.append(
            Rule(self._lhs(state, label, guard, position), Move(to, direction))
        )
        return self

    def update(
        self,
        state: str,
        to: str,
        register: int,
        formula: StoreFormula,
        variables: Sequence[Var],
        label: Optional[str] = None,
        guard: Optional[StoreFormula] = None,
        position: PositionTest = ANYWHERE,
    ) -> "AutomatonBuilder":
        """Add ``(label, state, guard) → (to, ψ, register)``."""
        self._states.add(to)
        self._rules.append(
            Rule(
                self._lhs(state, label, guard, position),
                Update(to, formula, tuple(variables), register),
            )
        )
        return self

    def atp(
        self,
        state: str,
        to: str,
        selector: ExistsStarQuery,
        substate: str,
        register: int,
        label: Optional[str] = None,
        guard: Optional[StoreFormula] = None,
        position: PositionTest = ANYWHERE,
    ) -> "AutomatonBuilder":
        """Add ``(label, state, guard) → (to, atp(φ, substate), register)``."""
        self._states.add(to)
        self._states.add(substate)
        self._rules.append(
            Rule(
                self._lhs(state, label, guard, position),
                Atp(to, selector, substate, register),
            )
        )
        return self

    # -- finishing ---------------------------------------------------------------

    def build(self, initial: str, final: str) -> TWAutomaton:
        """Validate and freeze the automaton."""
        states = frozenset(self._states | {initial, final})
        return TWAutomaton(
            states=states,
            initial_state=initial,
            final_state=final,
            schema=self.schema,
            rules=tuple(self._rules),
            initial_assignment=self.initial_assignment,
            name=self.name,
        )
