"""Execution semantics for tw^{r,l} automata (Definition 3.1).

A configuration is ``[u, q, τ]``.  The executor is exactly the paper's
transition graph, specialised to deterministic automata:

* a rule applies when label, state, position and guard match; two
  simultaneously applicable rules are a determinism violation (the
  paper *assumes* determinism; we enforce it at run time);
* ``Move`` off the tree, a stuck configuration, or a repeated
  configuration (the deterministic run has entered a cycle) all mean
  the computation does not accept;
* an ``atp`` starts one subcomputation per selected node, each with the
  current store; a rejecting subcomputation rejects the *whole*
  computation (paper, Section 3); the results (first registers) are
  unioned into the target register;
* a subcomputation whose start key ``(node, state, store)`` is already
  on the active atp chain would recurse forever — the run rejects, the
  same convention clause (ii) of the Lemma 4.5 protocol uses.

``run`` returns a :class:`RunResult` with the verdict, step count, a
human-readable reason and (optionally) a full trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..store.database import RegisterStore
from ..store.fo import StoreContext, evaluate as evaluate_guard, evaluate_update
from ..store.relation import Relation
from ..trees.node import NodeId
from ..trees.tree import Tree
from .machine import TWAutomaton
from .rules import Atp, Move, Rule, Update, move


class ExecutionError(RuntimeError):
    """A real error (non-determinism, fuel exhaustion) — *not* a reject."""


class NondeterminismError(ExecutionError):
    """Two rules applied to the same configuration."""


class FuelExhausted(ExecutionError):
    """The global step budget ran out before the run settled."""


class _RejectSignal(Exception):
    """Internal: some (sub)computation rejected; unwinds to ``run``."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class Configuration:
    """``[u, q, τ]`` — hashable, for cycle detection."""

    node: NodeId
    state: str
    store: RegisterStore

    def __repr__(self) -> str:
        from ..trees.node import format_node

        return f"[{format_node(self.node)}, {self.state}, {self.store!r}]"


@dataclass
class RunResult:
    """Outcome of a run: verdict plus bookkeeping."""

    accepted: bool
    steps: int
    reason: str
    final: Optional[Configuration] = None
    trace: Optional[List[str]] = None

    def __bool__(self) -> bool:
        return self.accepted


@dataclass
class _RunState:
    """Mutable bookkeeping shared across a run and its subcomputations."""

    fuel: int
    steps: int = 0
    trace: Optional[List[str]] = None
    active_subcomputations: Set[Tuple[NodeId, str, RegisterStore]] = field(
        default_factory=set
    )
    configurations_seen: int = 0

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.fuel:
            raise FuelExhausted(
                f"step budget {self.fuel} exhausted (likely divergence)"
            )

    def log(self, message: str) -> None:
        if self.trace is not None:
            self.trace.append(message)


def _applicable_rule(
    automaton: TWAutomaton,
    tree: Tree,
    config: Configuration,
    constants: frozenset,
) -> Optional[Rule]:
    label = tree.label(config.node)
    attrs = {a: tree.val(a, config.node) for a in tree.attributes}
    ctx = StoreContext(config.store, attrs, constants)
    found: Optional[Rule] = None
    for rule in automaton.rules_for(config.state):
        if rule.lhs.label is not None and rule.lhs.label != label:
            continue
        if not rule.lhs.position.matches(tree, config.node):
            continue
        if not evaluate_guard(rule.lhs.guard, ctx):
            continue
        if found is not None:
            raise NondeterminismError(
                f"rules {found!r} and {rule!r} both apply at {config!r}"
            )
        found = rule
    return found


def _run_computation(
    automaton: TWAutomaton,
    tree: Tree,
    config: Configuration,
    state: _RunState,
    constants: frozenset,
) -> Configuration:
    """Run one (sub)computation to acceptance; returns the accepting
    configuration.

    Raises :class:`_RejectSignal` when the computation does not accept.
    """
    seen: Set[Configuration] = set()
    while True:
        if config.state == automaton.final_state:
            state.log(f"accept at {config!r}")
            return config
        if config in seen:
            raise _RejectSignal(f"cycle at {config!r}")
        seen.add(config)
        state.configurations_seen += 1
        state.tick()

        rule = _applicable_rule(automaton, tree, config, constants)
        if rule is None:
            raise _RejectSignal(f"stuck at {config!r} (no rule applies)")
        state.log(f"{config!r} ⊢ {rule!r}")
        rhs = rule.rhs

        if isinstance(rhs, Move):
            target = move(tree, config.node, rhs.direction)
            if target is None:
                raise _RejectSignal(
                    f"move {rhs.direction} off the tree at {config!r}"
                )
            config = Configuration(target, rhs.state, config.store)
        elif isinstance(rhs, Update):
            attrs = {a: tree.val(a, config.node) for a in tree.attributes}
            ctx = StoreContext(config.store, attrs, constants)
            relation = evaluate_update(rhs.formula, list(rhs.variables), ctx)
            config = Configuration(
                config.node, rhs.state, config.store.set(rhs.register, relation)
            )
        elif isinstance(rhs, Atp):
            result = _run_atp(automaton, tree, config, rhs, state, constants)
            config = Configuration(
                config.node, rhs.state, config.store.set(rhs.register, result)
            )
        else:  # pragma: no cover - machine validation excludes this
            raise ExecutionError(f"unknown RHS {rhs!r}")


def _run_atp(
    automaton: TWAutomaton,
    tree: Tree,
    config: Configuration,
    rhs: Atp,
    state: _RunState,
    constants: frozenset,
) -> Relation:
    """The α-form-3 semantics: union of subcomputation results."""
    selected = rhs.selector.select(tree, config.node)
    state.log(
        f"atp from {config!r}: {len(selected)} start node(s) in state {rhs.substate}"
    )
    result = Relation.empty(automaton.schema.arity(1))
    for target in selected:
        key = (target, rhs.substate, config.store)
        if key in state.active_subcomputations:
            raise _RejectSignal(
                f"subcomputation cycle: atp re-enters {key[0]!r}/{key[1]} "
                f"with an unchanged store"
            )
        state.active_subcomputations.add(key)
        try:
            sub_config = Configuration(target, rhs.substate, config.store)
            accepting = _run_computation(
                automaton, tree, sub_config, state, constants
            )
        finally:
            state.active_subcomputations.discard(key)
        result = result.union(accepting.store.get(1))
    return result


def run(
    automaton: TWAutomaton,
    tree: Tree,
    start: NodeId = (),
    fuel: int = 1_000_000,
    collect_trace: bool = False,
) -> RunResult:
    """Run ``automaton`` on ``tree`` from the root (or ``start``).

    Returns the verdict; never raises on mere rejection.  Raises
    :class:`NondeterminismError` / :class:`FuelExhausted` on genuine
    errors.
    """
    tree.require(start)
    state = _RunState(fuel=fuel, trace=[] if collect_trace else None)
    constants = automaton.program_constants()
    config = Configuration(start, automaton.initial_state, automaton.initial_store())
    try:
        final = _run_computation(automaton, tree, config, state, constants)
    except _RejectSignal as signal:
        return RunResult(
            accepted=False,
            steps=state.steps,
            reason=signal.reason,
            trace=state.trace,
        )
    return RunResult(
        accepted=True,
        steps=state.steps,
        reason="reached the final state",
        final=final,
        trace=state.trace,
    )


def accepts(automaton: TWAutomaton, tree: Tree, **kwargs) -> bool:
    """Convenience wrapper: just the boolean verdict."""
    return run(automaton, tree, **kwargs).accepted
