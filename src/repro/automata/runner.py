"""Execution semantics for tw^{r,l} automata (Definition 3.1).

A configuration is ``[u, q, τ]``.  The executor is exactly the paper's
transition graph, specialised to deterministic automata:

* a rule applies when label, state, position and guard match; two
  simultaneously applicable rules are a determinism violation (the
  paper *assumes* determinism; we enforce it at run time);
* ``Move`` off the tree, a stuck configuration, or a repeated
  configuration (the deterministic run has entered a cycle) all mean
  the computation does not accept;
* an ``atp`` starts one subcomputation per selected node, each with the
  current store; a rejecting subcomputation rejects the *whole*
  computation (paper, Section 3); the results (first registers) are
  unioned into the target register;
* a subcomputation whose start key ``(node, state, store)`` is already
  on the active atp chain would recurse forever — the run rejects, the
  same convention clause (ii) of the Lemma 4.5 protocol uses.

``run`` returns a :class:`RunResult` with the verdict, step count, a
human-readable reason and (optionally) a full trace.

``run(engine="fast")`` takes a compiled fast path for the *guard-free
Move fragment* (every guard ``True``, every right-hand side a move):
there the store never changes, so a configuration is just (node,
state).  The fast path memoises the applicable-rule lookup per (state,
label, position) — the reference executor re-scans every rule at every
step — walks on the :class:`~repro.engine.index.TreeIndex` navigation
arrays, and detects cycles with dense config ids in a flat bytearray.
Verdicts, step counts and reason strings are identical to the
reference executor; automata outside the fragment (or traced runs)
fall back to it transparently.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..resilience.budget import current_context
from ..resilience.errors import ResourceExhausted
from ..store.database import RegisterStore
from ..store.fo import StoreContext, TrueF, evaluate as evaluate_guard, evaluate_update
from ..store.relation import Relation
from ..trees.node import NodeId
from ..trees.tree import Tree
from .machine import TWAutomaton
from .rules import DOWN, LEFT, STAY, UP, Atp, Move, Rule, Update, move


class ExecutionError(RuntimeError):
    """A real error (non-determinism, fuel exhaustion) — *not* a reject."""


class NondeterminismError(ExecutionError):
    """Two rules applied to the same configuration."""


class FuelExhausted(ExecutionError, ResourceExhausted):
    """The global step budget ran out before the run settled.

    Part of the :mod:`repro.resilience` taxonomy: also a
    :class:`~repro.resilience.errors.ResourceExhausted`, carrying the
    structured ``steps``/``limit`` fields, while ``str(exc)`` keeps the
    historical ``fuel`` message and ``except ExecutionError`` callers
    keep working."""


class _RejectSignal(Exception):
    """Internal: some (sub)computation rejected; unwinds to ``run``."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class Configuration:
    """``[u, q, τ]`` — hashable, for cycle detection."""

    node: NodeId
    state: str
    store: RegisterStore

    def __repr__(self) -> str:
        from ..trees.node import format_node

        return f"[{format_node(self.node)}, {self.state}, {self.store!r}]"


@dataclass
class RunResult:
    """Outcome of a run: verdict plus bookkeeping."""

    accepted: bool
    steps: int
    reason: str
    final: Optional[Configuration] = None
    trace: Optional[List[str]] = None

    def __bool__(self) -> bool:
        return self.accepted


@dataclass
class _RunState:
    """Mutable bookkeeping shared across a run and its subcomputations."""

    fuel: int
    steps: int = 0
    trace: Optional[List[str]] = None
    active_subcomputations: Set[Tuple[NodeId, str, RegisterStore]] = field(
        default_factory=set
    )
    configurations_seen: int = 0

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.fuel:
            raise FuelExhausted(
                f"step budget {self.fuel} exhausted (likely divergence)",
                steps=self.steps,
                limit=self.fuel,
            )
        context = current_context()
        if context is not None:
            context.checkpoint()

    def log(self, message: str) -> None:
        if self.trace is not None:
            self.trace.append(message)


def _applicable_rule(
    automaton: TWAutomaton,
    tree: Tree,
    config: Configuration,
    constants: frozenset,
) -> Optional[Rule]:
    label = tree.label(config.node)
    attrs = {a: tree.val(a, config.node) for a in tree.attributes}
    ctx = StoreContext(config.store, attrs, constants)
    found: Optional[Rule] = None
    for rule in automaton.rules_for(config.state):
        if rule.lhs.label is not None and rule.lhs.label != label:
            continue
        if not rule.lhs.position.matches(tree, config.node):
            continue
        if not evaluate_guard(rule.lhs.guard, ctx):
            continue
        if found is not None:
            raise NondeterminismError(
                f"rules {found!r} and {rule!r} both apply at {config!r}"
            )
        found = rule
    return found


class _FastPlan:
    """Compiled dispatch tables for the guard-free Move fragment.

    Built once per automaton (see :func:`fast_plan_for`).  States get
    dense indexes; ``resolve`` memoises the applicable-rule scan per
    (state, label, position) key — the complete left-hand-side
    information in this fragment, since guards are all ``True`` — so
    every later step at an equivalent configuration is one dict hit.
    Nondeterminism is still detected exactly where the reference
    executor finds it: the first time an ambiguous key is *reached*.
    """

    __slots__ = ("automaton", "states", "state_index", "final_index", "_rules", "_memo")

    def __init__(self, automaton: TWAutomaton) -> None:
        self.automaton = automaton
        self.states = tuple(sorted(automaton.states))
        self.state_index = {q: i for i, q in enumerate(self.states)}
        self.final_index = self.state_index[automaton.final_state]
        self._rules = {q: automaton.rules_for(q) for q in self.states}
        #: (state_idx, label, poskey) → None (stuck) |
        #: (rule, direction, target_idx) | (rule, rule) (nondeterminism)
        self._memo: Dict[tuple, Optional[tuple]] = {}

    def resolve(self, state_idx: int, label: str, poskey: tuple):
        key = (state_idx, label, poskey)
        try:
            return self._memo[key]
        except KeyError:
            pass
        root, leaf, first, last = poskey
        matches: List[Rule] = []
        for rule in self._rules[self.states[state_idx]]:
            lhs = rule.lhs
            if lhs.label is not None and lhs.label != label:
                continue
            position = lhs.position
            if (
                (position.root is not None and position.root != root)
                or (position.leaf is not None and position.leaf != leaf)
                or (position.first is not None and position.first != first)
                or (position.last is not None and position.last != last)
            ):
                continue
            matches.append(rule)
            if len(matches) == 2:
                break
        if not matches:
            entry = None
        elif len(matches) == 1:
            rule = matches[0]
            entry = (rule, rule.rhs.direction, self.state_index[rule.rhs.state])
        else:
            entry = (matches[0], matches[1])
        self._memo[key] = entry
        return entry


#: Bounded cache of fast plans keyed on automaton object identity;
#: entries pin their automaton so ids cannot be recycled while live.
_PLAN_CACHE: "OrderedDict[int, Tuple[TWAutomaton, Optional[_FastPlan]]]" = OrderedDict()
_PLAN_CACHE_SIZE = 64


def fast_plan_for(automaton: TWAutomaton) -> Optional[_FastPlan]:
    """The (cached) fast-path plan of ``automaton``, or ``None`` when it
    falls outside the guard-free Move fragment (guards, updates, atp)."""
    key = id(automaton)
    hit = _PLAN_CACHE.get(key)
    if hit is not None and hit[0] is automaton:
        _PLAN_CACHE.move_to_end(key)
        return hit[1]
    plan = None
    if all(
        isinstance(rule.rhs, Move) and isinstance(rule.lhs.guard, TrueF)
        for rule in automaton.rules
    ):
        plan = _FastPlan(automaton)
    while len(_PLAN_CACHE) >= _PLAN_CACHE_SIZE:
        _PLAN_CACHE.popitem(last=False)
    _PLAN_CACHE[key] = (automaton, plan)
    return plan


def _run_fast(
    automaton: TWAutomaton,
    tree: Tree,
    plan: _FastPlan,
    start: NodeId,
    fuel: int,
) -> RunResult:
    """The guard-free executor: dense (node, state) configurations over
    the tree index's navigation arrays, one memoised dict hit per step."""
    from ..engine.index import index_for

    index = index_for(tree)
    context = current_context()
    node_of = index.node_of
    parent = index.parent
    next_sibling = index.next_sibling
    prev_sibling = index.prev_sibling
    leaf_mask = index.leaf_mask
    first_mask = index.first_mask
    last_mask = index.last_mask
    label_of = [tree.label(u) for u in node_of]
    store = automaton.initial_store()
    states = plan.states
    n_states = len(states)
    final_index = plan.final_index
    resolve = plan.resolve
    seen = bytearray(index.n * n_states)
    i = index.id_of[start]
    q = plan.state_index[automaton.initial_state]
    steps = 0
    while True:
        if q == final_index:
            final = Configuration(node_of[i], states[q], store)
            return RunResult(True, steps, "reached the final state", final=final)
        config_id = i * n_states + q
        if seen[config_id]:
            config = Configuration(node_of[i], states[q], store)
            return RunResult(False, steps, f"cycle at {config!r}")
        seen[config_id] = 1
        steps += 1
        if steps > fuel:
            raise FuelExhausted(
                f"step budget {fuel} exhausted (likely divergence)",
                steps=steps,
                limit=fuel,
            )
        if context is not None:
            context.checkpoint()
        bit = 1 << i
        leaf = bool(leaf_mask & bit)
        poskey = (i == 0, leaf, bool(first_mask & bit), bool(last_mask & bit))
        entry = resolve(q, label_of[i], poskey)
        if entry is None:
            config = Configuration(node_of[i], states[q], store)
            return RunResult(
                False, steps, f"stuck at {config!r} (no rule applies)"
            )
        if len(entry) == 2:
            config = Configuration(node_of[i], states[q], store)
            raise NondeterminismError(
                f"rules {entry[0]!r} and {entry[1]!r} both apply at {config!r}"
            )
        _, direction, target = entry
        if direction == STAY:
            j = i
        elif direction == UP:
            j = parent[i]
        elif direction == DOWN:
            j = i + 1 if not leaf else -1
        elif direction == LEFT:
            j = prev_sibling[i]
        else:  # RIGHT
            j = next_sibling[i]
        if j < 0:
            config = Configuration(node_of[i], states[q], store)
            return RunResult(
                False, steps, f"move {direction} off the tree at {config!r}"
            )
        i, q = j, target


def _run_computation(
    automaton: TWAutomaton,
    tree: Tree,
    config: Configuration,
    state: _RunState,
    constants: frozenset,
) -> Configuration:
    """Run one (sub)computation to acceptance; returns the accepting
    configuration.

    Raises :class:`_RejectSignal` when the computation does not accept.
    """
    seen: Set[Configuration] = set()
    while True:
        if config.state == automaton.final_state:
            state.log(f"accept at {config!r}")
            return config
        if config in seen:
            raise _RejectSignal(f"cycle at {config!r}")
        seen.add(config)
        state.configurations_seen += 1
        state.tick()

        rule = _applicable_rule(automaton, tree, config, constants)
        if rule is None:
            raise _RejectSignal(f"stuck at {config!r} (no rule applies)")
        state.log(f"{config!r} ⊢ {rule!r}")
        rhs = rule.rhs

        if isinstance(rhs, Move):
            target = move(tree, config.node, rhs.direction)
            if target is None:
                raise _RejectSignal(
                    f"move {rhs.direction} off the tree at {config!r}"
                )
            config = Configuration(target, rhs.state, config.store)
        elif isinstance(rhs, Update):
            attrs = {a: tree.val(a, config.node) for a in tree.attributes}
            ctx = StoreContext(config.store, attrs, constants)
            relation = evaluate_update(rhs.formula, list(rhs.variables), ctx)
            config = Configuration(
                config.node, rhs.state, config.store.set(rhs.register, relation)
            )
        elif isinstance(rhs, Atp):
            result = _run_atp(automaton, tree, config, rhs, state, constants)
            config = Configuration(
                config.node, rhs.state, config.store.set(rhs.register, result)
            )
        else:  # pragma: no cover - machine validation excludes this
            raise ExecutionError(f"unknown RHS {rhs!r}")


def _run_atp(
    automaton: TWAutomaton,
    tree: Tree,
    config: Configuration,
    rhs: Atp,
    state: _RunState,
    constants: frozenset,
) -> Relation:
    """The α-form-3 semantics: union of subcomputation results."""
    selected = rhs.selector.select(tree, config.node)
    state.log(
        f"atp from {config!r}: {len(selected)} start node(s) in state {rhs.substate}"
    )
    result = Relation.empty(automaton.schema.arity(1))
    context = current_context()
    if context is not None and context.budget is not None:
        context.budget.check_depth(len(state.active_subcomputations) + 1)
    for target in selected:
        key = (target, rhs.substate, config.store)
        if key in state.active_subcomputations:
            raise _RejectSignal(
                f"subcomputation cycle: atp re-enters {key[0]!r}/{key[1]} "
                f"with an unchanged store"
            )
        state.active_subcomputations.add(key)
        try:
            sub_config = Configuration(target, rhs.substate, config.store)
            accepting = _run_computation(
                automaton, tree, sub_config, state, constants
            )
        finally:
            state.active_subcomputations.discard(key)
        result = result.union(accepting.store.get(1))
    return result


def run(
    automaton: TWAutomaton,
    tree: Tree,
    start: NodeId = (),
    fuel: int = 1_000_000,
    collect_trace: bool = False,
    engine: str = "reference",
) -> RunResult:
    """Run ``automaton`` on ``tree`` from the root (or ``start``).

    Returns the verdict; never raises on mere rejection.  Raises
    :class:`NondeterminismError` / :class:`FuelExhausted` on genuine
    errors.

    ``engine="fast"`` uses the compiled guard-free executor when the
    automaton is in the Move fragment and no trace is requested,
    falling back to the reference executor otherwise; results are
    identical either way.
    """
    if engine not in ("fast", "reference"):
        raise ValueError(
            f"unknown engine {engine!r}; expected 'fast' or 'reference'"
        )
    tree.require(start)
    if engine == "fast" and not collect_trace:
        plan = fast_plan_for(automaton)
        if plan is not None:
            return _run_fast(automaton, tree, plan, start, fuel)
    state = _RunState(fuel=fuel, trace=[] if collect_trace else None)
    constants = automaton.program_constants()
    config = Configuration(start, automaton.initial_state, automaton.initial_store())
    try:
        final = _run_computation(automaton, tree, config, state, constants)
    except _RejectSignal as signal:
        return RunResult(
            accepted=False,
            steps=state.steps,
            reason=signal.reason,
            trace=state.trace,
        )
    return RunResult(
        accepted=True,
        steps=state.steps,
        reason="reached the final state",
        final=final,
        trace=state.trace,
    )


def accepts(automaton: TWAutomaton, tree: Tree, **kwargs) -> bool:
    """Convenience wrapper: just the boolean verdict."""
    return run(automaton, tree, **kwargs).accepted
