"""Deterministic and nondeterministic finite automata over finite
alphabets — the horizontal-language substrate of hedge automata.

Hedge automata (the unranked-tree form of the regular/MSO-definable
tree languages referenced by Proposition 7.2) assign a state to each
node from its label and the *string* of its children's states; those
string languages are given by the DFAs here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Sequence, Set, Tuple

Symbol = Hashable
State = Hashable


class FAError(ValueError):
    """Raised on ill-formed automata."""


@dataclass(frozen=True)
class DFA:
    """A complete DFA: δ total on states × alphabet."""

    states: FrozenSet[State]
    alphabet: FrozenSet[Symbol]
    transitions: Tuple[Tuple[Tuple[State, Symbol], State], ...]
    start: State
    finals: FrozenSet[State]

    def __post_init__(self) -> None:
        if self.start not in self.states:
            raise FAError("start state not in Q")
        if not self.finals <= self.states:
            raise FAError("final states must be in Q")
        table = dict(self.transitions)
        for state in self.states:
            for symbol in self.alphabet:
                if (state, symbol) not in table:
                    raise FAError(f"δ({state!r},{symbol!r}) missing (DFA must be complete)")
        if len(table) != len(self.transitions):
            raise FAError("duplicate transitions")

    def delta(self) -> Dict[Tuple[State, Symbol], State]:
        return dict(self.transitions)

    def run(self, word: Sequence[Symbol]) -> State:
        """The state after reading ``word`` from the start state."""
        table = self.delta()
        state = self.start
        for symbol in word:
            try:
                state = table[(state, symbol)]
            except KeyError:
                raise FAError(f"symbol {symbol!r} not in the alphabet") from None
        return state

    def accepts(self, word: Sequence[Symbol]) -> bool:
        return self.run(word) in self.finals

    # -- boolean operations ------------------------------------------------------

    def product(self, other: "DFA", mode: str = "and") -> "DFA":
        """Product construction; ``mode`` ∈ {and, or, diff}."""
        if self.alphabet != other.alphabet:
            raise FAError("product needs equal alphabets")
        mine, theirs = self.delta(), other.delta()
        states = frozenset(
            (p, q) for p in self.states for q in other.states
        )
        transitions = tuple(
            (((p, q), a), (mine[(p, a)], theirs[(q, a)]))
            for (p, q) in states
            for a in self.alphabet
        )
        if mode == "and":
            finals = frozenset(
                (p, q) for (p, q) in states
                if p in self.finals and q in other.finals
            )
        elif mode == "or":
            finals = frozenset(
                (p, q) for (p, q) in states
                if p in self.finals or q in other.finals
            )
        elif mode == "diff":
            finals = frozenset(
                (p, q) for (p, q) in states
                if p in self.finals and q not in other.finals
            )
        else:
            raise FAError(f"unknown product mode {mode!r}")
        return DFA(states, self.alphabet, transitions, (self.start, other.start), finals)

    def complement(self) -> "DFA":
        return DFA(
            self.states,
            self.alphabet,
            self.transitions,
            self.start,
            frozenset(self.states - self.finals),
        )

    def is_empty(self) -> bool:
        """No reachable final state."""
        table = self.delta()
        seen = {self.start}
        frontier = [self.start]
        while frontier:
            state = frontier.pop()
            if state in self.finals:
                return False
            for symbol in self.alphabet:
                target = table[(state, symbol)]
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return True

    def restricted_reach(self, usable: Iterable[Symbol]) -> FrozenSet[State]:
        """States reachable using only ``usable`` symbols (hedge-automaton
        emptiness needs this)."""
        usable = set(usable) & set(self.alphabet)
        table = self.delta()
        seen = {self.start}
        frontier = [self.start]
        while frontier:
            state = frontier.pop()
            for symbol in usable:
                target = table[(state, symbol)]
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)


# -- convenient constructors -------------------------------------------------------


def dfa_from_map(
    alphabet: Iterable[Symbol],
    start: State,
    finals: Iterable[State],
    table: Mapping[Tuple[State, Symbol], State],
) -> DFA:
    """Build from a plain dict; states inferred."""
    states = {start} | set(finals)
    for (p, _a), q in table.items():
        states.add(p)
        states.add(q)
    return DFA(
        frozenset(states),
        frozenset(alphabet),
        tuple(table.items()),
        start,
        frozenset(finals),
    )


def count_mod_dfa(
    alphabet: Iterable[Symbol],
    counted: Iterable[Symbol],
    modulus: int,
    residues: Iterable[int],
) -> DFA:
    """Accepts words where #(counted symbols) mod ``modulus`` ∈ residues."""
    if modulus < 1:
        raise FAError("modulus must be >= 1")
    alphabet = frozenset(alphabet)
    counted = frozenset(counted)
    table = {}
    for i in range(modulus):
        for a in alphabet:
            table[(i, a)] = (i + 1) % modulus if a in counted else i
    return dfa_from_map(alphabet, 0, frozenset(residues), table)


def all_symbols_dfa(alphabet: Iterable[Symbol], allowed: Iterable[Symbol]) -> DFA:
    """Accepts words using only ``allowed`` symbols."""
    alphabet = frozenset(alphabet)
    allowed = frozenset(allowed)
    table = {}
    for a in alphabet:
        table[("ok", a)] = "ok" if a in allowed else "bad"
        table[("bad", a)] = "bad"
    return dfa_from_map(alphabet, "ok", frozenset({"ok"}), table)


def contains_symbol_dfa(alphabet: Iterable[Symbol], wanted: Symbol) -> DFA:
    """Accepts words containing ``wanted`` at least once."""
    alphabet = frozenset(alphabet)
    table = {}
    for a in alphabet:
        table[("no", a)] = "yes" if a == wanted else "no"
        table[("yes", a)] = "yes"
    return dfa_from_map(alphabet, "no", frozenset({"yes"}), table)
