"""Tree-walking with look-ahead *tests* evaluates every regular tree
language — the [4]-style direction behind Proposition 7.2's
"tw^l ⊇ MSO" remark, as an executable construction.

Definition 3.1's ``atp`` returns a relation and kills the whole run on
a rejecting subcomputation; the simulation of a bottom-up automaton
instead needs to *branch* on whether a subcomputation accepts.  That is
the look-ahead of [4] (Bex–Maneth–Neven); we model it as an explicitly
flagged extension — :class:`TestRule` — kept out of the strict
Definition 3.1 classes (see DESIGN.md).

:func:`walker_from_hedge` compiles any deterministic hedge automaton H
into an :class:`ExtendedTW` with finitely many states
(O(|Q_H|² · |Σ| · |DFA states|)) whose run from the root accepts
exactly L(H):

* ``check h`` at a node u verifies "the subtree at u evaluates to h" by
  running σ = lab(u)'s horizontal DFA over the children, discovering
  each child's state with one look-ahead test per candidate state
  (determinism of H means exactly one candidate test accepts);
* recursion depth equals tree depth, so the walker always terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple, Union

from ..trees.node import NodeId
from ..trees.tree import Tree
from .hedge import HedgeAutomaton, HedgeError


class LookaheadError(RuntimeError):
    """Raised on runaway or ill-formed extended walkers."""


@dataclass(frozen=True)
class MoveRule:
    """(state, label?) → move ``direction`` into ``target``; direction
    ∈ {stay, up, down, left, right}; ``accept=True`` marks targets that
    end the (sub)computation positively."""

    state: str
    target: str
    direction: str = "stay"
    label: Optional[str] = None


@dataclass(frozen=True)
class TestRule:
    """(state) → run a subcomputation from the *current node* in
    ``substate``; continue in ``then`` if it accepts, ``otherwise`` if
    not — the [4] look-ahead test."""

    state: str
    substate: str
    then: str
    otherwise: str


Rule = Union[MoveRule, TestRule]


@dataclass(frozen=True)
class ExtendedTW:
    """A tree-walking automaton with look-ahead tests."""

    rules: Tuple[Rule, ...]
    initial: str
    accept: str
    reject: str
    name: str = "W"

    def rules_for(self, state: str) -> Tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.state == state)


def run_extended(
    walker: ExtendedTW, tree: Tree, start: NodeId = (), state: Optional[str] = None,
    fuel: int = 1_000_000,
) -> bool:
    """Run to the accept/reject state; stuck ⇒ reject.

    Subcomputations recurse; the fuel is shared."""
    budget = [fuel]
    return _run(walker, tree, start, state or walker.initial, budget)


def _run(walker, tree, node, state, budget) -> bool:
    directions = {
        "stay": lambda u: u,
        "up": tree.parent,
        "down": tree.first_child,
        "left": tree.left_sibling,
        "right": tree.right_sibling,
    }
    while True:
        if state == walker.accept:
            return True
        if state == walker.reject:
            return False
        budget[0] -= 1
        if budget[0] < 0:
            raise LookaheadError("fuel exhausted (walker diverged)")
        applicable = [
            r
            for r in walker.rules_for(state)
            if not (isinstance(r, MoveRule) and r.label is not None
                    and r.label != tree.label(node))
        ]
        if not applicable:
            return False
        if len(applicable) > 1:
            raise LookaheadError(
                f"nondeterministic extended walker at {state!r}/{node!r}"
            )
        rule = applicable[0]
        if isinstance(rule, TestRule):
            outcome = _run(walker, tree, node, rule.substate, budget)
            state = rule.then if outcome else rule.otherwise
            continue
        target = directions[rule.direction](node)
        if target is None:
            return False
        node, state = target, rule.target


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


def walker_from_hedge(hedge: HedgeAutomaton) -> ExtendedTW:
    """Compile a DHA into an equivalent look-ahead walker."""
    hstates = sorted(hedge.states, key=repr)
    rules: List[Rule] = []

    def check(h) -> str:
        return f"chk[{h!r}]"

    def kids(h, label, dstate) -> str:
        return f"kid[{h!r}|{label}|{dstate!r}]"

    def try_(h, label, dstate, index) -> str:
        return f"try[{h!r}|{label}|{dstate!r}|{index}]"

    def wrap(h, label, dstate) -> str:
        return f"fin[{h!r}|{label}|{dstate!r}]"

    # Root dispatch: find the root's state by testing candidates in order.
    for i, h in enumerate(hstates):
        nxt = f"root[{i + 1}]" if i + 1 < len(hstates) else "REJ"
        rules.append(
            TestRule(
                state=f"root[{i}]",
                substate=check(h),
                then="ACC" if h in hedge.finals else "REJ",
                otherwise=nxt,
            )
        )

    # Entry states: chk[h] must behave per the *current* node's label.
    # We give one label-guarded rule per σ: move ``stay`` into a
    # σ-specialised state.
    for h in hstates:
        for label in sorted(hedge.alphabet):
            rule = hedge.rule_for(label)
            out = rule.output_map()
            delta = rule.dfa.delta()
            rules.append(
                MoveRule(
                    state=check(h),
                    target=f"ent[{h!r}|{label}]",
                    direction="stay",
                    label=label,
                )
            )
            rule = hedge.rule_for(label)
            out = rule.output_map()
            start = rule.dfa.start
            # Leaf: children word is ε; verdict from out(start).
            leaf_ok = out[start] == h
            # ``ent`` probes leafhood with a TestRule? A walker can
            # sense a leaf positionally; our MoveRule has no position
            # test, so probe by attempting ``down``: we add a trying
            # pair: try down; if it fails the run rejects — wrong.  We
            # therefore express leafhood via a dedicated probe using a
            # look-ahead test on a sub-walker that accepts iff it can
            # move down:
            rules.append(
                TestRule(
                    state=f"ent[{h!r}|{label}]",
                    substate="has-child?",
                    then=kids(h, label, start) + ":descend",
                    otherwise="ACC" if leaf_ok else "REJ",
                )
            )
            rules.append(
                MoveRule(
                    state=kids(h, label, start) + ":descend",
                    target=kids(h, label, start),
                    direction="down",
                )
            )
            # Child loop: at a child with pending DFA state d, discover
            # the child's hedge state by candidate tests.
            dstates = sorted(rule.dfa.states, key=repr)
            for d in dstates:
                rules.append(
                    MoveRule(
                        state=kids(h, label, d),
                        target=try_(h, label, d, 0),
                        direction="stay",
                    )
                )
                for i, candidate in enumerate(hstates):
                    advanced = delta[(d, candidate)]
                    rules.append(
                        TestRule(
                            state=try_(h, label, d, i),
                            substate=check(candidate),
                            then=f"adv[{h!r}|{label}|{advanced!r}]",
                            otherwise=(
                                try_(h, label, d, i + 1)
                                if i + 1 < len(hstates)
                                else "REJ"  # unreachable for a complete DHA
                            ),
                        )
                    )
            for d in dstates:
                # After advancing: move right if a sibling remains,
                # else climb back and give the verdict.
                rules.append(
                    TestRule(
                        state=f"adv[{h!r}|{label}|{d!r}]",
                        substate="has-right?",
                        then=f"adv[{h!r}|{label}|{d!r}]:step",
                        otherwise=wrap(h, label, d),
                    )
                )
                rules.append(
                    MoveRule(
                        state=f"adv[{h!r}|{label}|{d!r}]:step",
                        target=kids(h, label, d),
                        direction="right",
                    )
                )
                rules.append(
                    MoveRule(
                        state=wrap(h, label, d),
                        target="ACC" if out[d] == h else "REJ",
                        direction="up",
                    )
                )

    # The positional probes: tiny sub-walkers that accept iff a move is
    # possible.
    rules.append(MoveRule(state="has-child?", target="ACC", direction="down"))
    rules.append(MoveRule(state="has-right?", target="ACC", direction="right"))

    return ExtendedTW(
        rules=tuple(rules),
        initial="root[0]",
        accept="ACC",
        reject="REJ",
        name=f"walker[{hedge.name}]",
    )
