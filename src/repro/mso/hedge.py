"""Deterministic complete hedge automata — the regular unranked-tree
languages (equivalently, by Doner/Thatcher–Wright lifted to unranked
trees, the MSO-definable tree languages of Proposition 7.2).

A DHA assigns every node a state bottom-up: for a σ-labelled node whose
children received q₁ … qₙ, the node's state is
``out_σ(δ_σ*(q₁ … qₙ))`` where δ_σ is a complete DFA over the state set
and out_σ maps its states to hedge states.  The tree is accepted iff
the root's state is final.  Determinism + completeness make boolean
operations (product, complement) and emptiness straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Tuple

from ..trees.node import NodeId
from ..trees.tree import Tree
from .dfa import DFA, FAError

HState = Hashable


class HedgeError(ValueError):
    """Raised on ill-formed hedge automata."""


@dataclass(frozen=True)
class LabelRule:
    """The per-label machinery: a DFA over hedge states + output map."""

    dfa: DFA
    output: Tuple[Tuple[Hashable, HState], ...]

    def output_map(self) -> Dict[Hashable, HState]:
        return dict(self.output)


@dataclass(frozen=True)
class HedgeAutomaton:
    """``(Q_H, Σ, (δ_σ, out_σ)_σ, F)``."""

    states: FrozenSet[HState]
    alphabet: FrozenSet[str]
    rules: Tuple[Tuple[str, LabelRule], ...]
    finals: FrozenSet[HState]
    name: str = "H"

    def __post_init__(self) -> None:
        if not self.finals <= self.states:
            raise HedgeError("final states must be in Q_H")
        table = dict(self.rules)
        for label in self.alphabet:
            if label not in table:
                raise HedgeError(f"no rule for label {label!r} (DHA must be complete)")
        for label, rule in self.rules:
            if frozenset(rule.dfa.alphabet) != self.states:
                raise HedgeError(
                    f"label {label!r}: horizontal DFA alphabet must be Q_H"
                )
            out = rule.output_map()
            for dstate in rule.dfa.states:
                if dstate not in out:
                    raise HedgeError(
                        f"label {label!r}: output missing for DFA state {dstate!r}"
                    )
                if out[dstate] not in self.states:
                    raise HedgeError(
                        f"label {label!r}: output {out[dstate]!r} not in Q_H"
                    )

    def rule_for(self, label: str) -> LabelRule:
        try:
            return dict(self.rules)[label]
        except KeyError:
            raise HedgeError(f"label {label!r} not in the alphabet") from None

    # -- evaluation ---------------------------------------------------------------

    def state_of(self, tree: Tree, node: NodeId = ()) -> HState:
        """The bottom-up state of the subtree at ``node``."""
        assignment = self.annotate(tree)
        return assignment[node]

    def annotate(self, tree: Tree) -> Dict[NodeId, HState]:
        """State assignment for every node (one postorder pass)."""
        assignment: Dict[NodeId, HState] = {}
        for node in tree.nodes_postorder:
            rule = self.rule_for(tree.label(node))
            dstate = rule.dfa.run([assignment[c] for c in tree.children(node)])
            assignment[node] = rule.output_map()[dstate]
        return assignment

    def accepts(self, tree: Tree) -> bool:
        return self.state_of(tree) in self.finals

    # -- boolean operations ------------------------------------------------------------

    def complement(self) -> "HedgeAutomaton":
        return HedgeAutomaton(
            self.states,
            self.alphabet,
            self.rules,
            frozenset(self.states - self.finals),
            name=f"¬{self.name}",
        )

    def product(self, other: "HedgeAutomaton", mode: str = "and") -> "HedgeAutomaton":
        """Synchronous product; ``mode`` ∈ {and, or}."""
        if self.alphabet != other.alphabet:
            raise HedgeError("product needs equal alphabets")
        states = frozenset(
            (p, q) for p in self.states for q in other.states
        )
        rules = []
        for label in sorted(self.alphabet):
            mine = self.rule_for(label)
            theirs = other.rule_for(label)
            dm, dt = mine.dfa.delta(), theirs.dfa.delta()
            om, ot = mine.output_map(), theirs.output_map()
            dstates = frozenset(
                (a, b) for a in mine.dfa.states for b in theirs.dfa.states
            )
            transitions = tuple(
                (((a, b), (p, q)), (dm[(a, p)], dt[(b, q)]))
                for (a, b) in dstates
                for (p, q) in states
            )
            dfa = DFA(
                dstates,
                states,
                transitions,
                (mine.dfa.start, theirs.dfa.start),
                frozenset(),  # finals unused in horizontal DFAs
            )
            output = tuple(
                ((a, b), (om[a], ot[b])) for (a, b) in dstates
            )
            rules.append((label, LabelRule(dfa, output)))
        if mode == "and":
            finals = frozenset(
                (p, q) for p in self.finals for q in other.finals
            )
        elif mode == "or":
            finals = frozenset(
                (p, q)
                for (p, q) in states
                if p in self.finals or q in other.finals
            )
        else:
            raise HedgeError(f"unknown product mode {mode!r}")
        return HedgeAutomaton(
            states, self.alphabet, tuple(rules), finals,
            name=f"({self.name} {mode} {other.name})",
        )

    def producible_states(self) -> FrozenSet[HState]:
        """States realised by *some* tree — least fixpoint."""
        producible: set = set()
        changed = True
        while changed:
            changed = False
            for label, rule in self.rules:
                out = rule.output_map()
                for dstate in rule.dfa.restricted_reach(producible):
                    state = out[dstate]
                    if state not in producible:
                        producible.add(state)
                        changed = True
        return frozenset(producible)

    def is_empty(self) -> bool:
        """No accepted tree."""
        return not (self.producible_states() & self.finals)

    def equivalent(self, other: "HedgeAutomaton") -> bool:
        """Language equality, decided by emptiness of the symmetric
        difference (deterministic + complete makes this exact)."""
        left_only = self.product(other.complement(), "and")
        right_only = other.product(self.complement(), "and")
        return left_only.is_empty() and right_only.is_empty()


# ---------------------------------------------------------------------------
# Stock hedge automata
# ---------------------------------------------------------------------------


def _horizontal(states: Iterable[HState], table, start, finals=()) -> DFA:
    return DFA(
        frozenset({start} | {q for (_s, _a), q in table.items()}
                  | {s for (s, _a), _q in table.items()}),
        frozenset(states),
        tuple(table.items()),
        start,
        frozenset(finals),
    )


def leaf_count_mod_hedge(
    alphabet: Iterable[str], counted_label: str, modulus: int, residues: Iterable[int]
) -> HedgeAutomaton:
    """Accepts trees where #(leaves labelled ``counted_label``) mod
    ``modulus`` lies in ``residues`` — regular but not FO-definable for
    modulus ≥ 2 (the classic walking-vs-logic separator)."""
    alphabet = frozenset(alphabet)
    if counted_label not in alphabet:
        raise HedgeError(f"{counted_label!r} not in the alphabet")
    states = frozenset(range(modulus))  # residue of the subtree's count
    rules = []
    for label in sorted(alphabet):
        # Horizontal DFA sums children residues mod m; output adds the
        # node's own contribution when it is a *leaf* with the counted
        # label (children sum 0 at the DFA start distinguishes leaves
        # only if we track emptiness — add a "seen a child" bit).
        table = {}
        dstates = [("ε", 0)] + [("+", r) for r in range(modulus)]
        for r in range(modulus):
            table[(("ε", 0), r)] = ("+", r % modulus)
            for acc in range(modulus):
                table[(("+", acc), r)] = ("+", (acc + r) % modulus)
        dfa = _horizontal(states, table, ("ε", 0))
        output = {}
        for dstate in dfa.states:
            kind, total = dstate
            if kind == "ε":  # leaf
                output[dstate] = 1 % modulus if label == counted_label else 0
            else:
                output[dstate] = total
        rules.append((label, LabelRule(dfa, tuple(output.items()))))
    return HedgeAutomaton(
        states,
        alphabet,
        tuple(rules),
        frozenset(r % modulus for r in residues),
        name=f"#leaf[{counted_label}]≡{sorted(residues)} (mod {modulus})",
    )


def label_everywhere_hedge(alphabet: Iterable[str], wanted: str) -> HedgeAutomaton:
    """Accepts trees in which *every* node is labelled ``wanted``."""
    alphabet = frozenset(alphabet)
    states = frozenset({"ok", "bad"})
    rules = []
    for label in sorted(alphabet):
        table = {}
        for d in ("ok", "bad"):
            table[(d, "ok")] = d
            table[(d, "bad")] = "bad"
        dfa = _horizontal(states, table, "ok")
        good = "ok" if label == wanted else "bad"
        output = tuple((d, good if d == "ok" else "bad") for d in dfa.states)
        rules.append((label, LabelRule(dfa, output)))
    return HedgeAutomaton(
        states, alphabet, tuple(rules), frozenset({"ok"}),
        name=f"all-{wanted}",
    )


def exists_label_hedge(alphabet: Iterable[str], wanted: str) -> HedgeAutomaton:
    """Accepts trees containing at least one ``wanted``-labelled node."""
    alphabet = frozenset(alphabet)
    states = frozenset({"yes", "no"})
    rules = []
    for label in sorted(alphabet):
        table = {}
        for d in ("yes", "no"):
            table[(d, "yes")] = "yes"
            table[(d, "no")] = d
        dfa = _horizontal(states, table, "no")
        output = tuple(
            (d, "yes" if (d == "yes" or label == wanted) else "no")
            for d in dfa.states
        )
        rules.append((label, LabelRule(dfa, output)))
    return HedgeAutomaton(
        states, alphabet, tuple(rules), frozenset({"yes"}),
        name=f"exists-{wanted}",
    )
