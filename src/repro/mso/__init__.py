"""Regular unranked-tree languages (the MSO side of Proposition 7.2).

* :mod:`repro.mso.dfa` — complete DFAs with boolean ops (horizontal
  languages);
* :mod:`repro.mso.hedge` — deterministic hedge automata: evaluation,
  product, complement, emptiness, and stock languages (including the
  not-FO-definable mod-counting ones);
* :mod:`repro.mso.lookahead` — the look-ahead walker construction:
  tree-walking + [4]-style tests captures every regular tree language.
"""

from .dfa import (
    DFA,
    FAError,
    all_symbols_dfa,
    contains_symbol_dfa,
    count_mod_dfa,
    dfa_from_map,
)
from .hedge import (
    HedgeAutomaton,
    HedgeError,
    LabelRule,
    exists_label_hedge,
    label_everywhere_hedge,
    leaf_count_mod_hedge,
)
from .lookahead import (
    ExtendedTW,
    LookaheadError,
    MoveRule,
    TestRule,
    run_extended,
    walker_from_hedge,
)

__all__ = [
    "DFA",
    "FAError",
    "all_symbols_dfa",
    "contains_symbol_dfa",
    "count_mod_dfa",
    "dfa_from_map",
    "HedgeAutomaton",
    "HedgeError",
    "LabelRule",
    "exists_label_hedge",
    "label_everywhere_hedge",
    "leaf_count_mod_hedge",
    "ExtendedTW",
    "LookaheadError",
    "MoveRule",
    "TestRule",
    "run_extended",
    "walker_from_hedge",
]
