"""tw^{r,l} programs over data strings for exercising the protocol.

Each constructor returns a program meaningful on monadic trees (the
split strings of Section 4) together with a Python specification, and
collectively they cover every message kind of Δ: plain walking that
crosses # (configurations), one-shot ``atp`` (requests/replies), and
nested ``atp`` inside subcomputations (NeedAnswer traffic).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..automata.builder import AutomatonBuilder
from ..automata.machine import TWAutomaton
from ..automata.rules import DOWN, PositionTest, STAY
from ..logic import tree_fo as T
from ..logic.exists_star import X, Y, selector
from ..store.fo import Attr, Var, conj, disj, eq, forall, implies, rel
from ..trees.values import DataValue

z, w = Var("z"), Var("w")

AT_LEAF = PositionTest(leaf=True)
AT_INNER = PositionTest(leaf=False)

from ..trees.strings import HASH

#: y does not carry the # marker (programs on split strings skip it).
_NOT_HASH_Y = T.Not(T.ValConst("a", Y, HASH))

#: φ(x, y) ≡ (x ≺ y ∨ x = y) ∧ val(y) ≠ # — every data position from
#: the current one on.
SELF_OR_AFTER = selector(
    T.conj(T.disj(T.Desc(X, Y), T.NodeEq(X, Y)), _NOT_HASH_Y)
)
#: φ(x, y) ≡ x ≺ y ∧ val(y) ≠ # — strictly later data positions.
AFTER = selector(T.conj(T.Desc(X, Y), _NOT_HASH_Y))


def _singleton(register: int):
    return forall([z, w], implies(conj(rel(register, z), rel(register, w)), eq(z, w)))


def _subset_of_current(register: int, attr: str = "a"):
    """∀z X(z) → z = @attr."""
    return forall(z, implies(rel(register, z), eq(z, Attr(attr))))


def walking_all_same(attr: str = "a") -> TWAutomaton:
    """Pure walking + storage (no atp): march down the string
    accumulating values, accept at the leaf if the set is a singleton.
    The protocol run exchanges only configuration messages."""
    from ..store.fo import neq

    accumulate = disj(
        rel(1, z), conj(eq(z, Attr(attr)), neq(Attr(attr), HASH))
    )
    b = AutomatonBuilder("walking-all-same", register_arities=[1])
    b.update("go", "step", 1, accumulate, [z])
    b.move("step", "go", DOWN, position=AT_INNER)
    b.move("step", "final", STAY, position=AT_LEAF)
    b.move("final", "qF", STAY, guard=_singleton(1))
    return b.build(initial="go", final="qF")


def atp_all_same(attr: str = "a") -> TWAutomaton:
    """One ``atp`` collecting every position's value from the root; a
    singleton-guard accepts.  The protocol run needs one atp-request
    with subcomputations on both halves."""
    b = AutomatonBuilder("atp-all-same", register_arities=[1])
    b.atp("q0", "q1", SELF_OR_AFTER, substate="rep", register=1)
    b.move("q1", "qF", STAY, guard=_singleton(1))
    b.update("rep", "done", 1, eq(z, Attr(attr)), [z])
    b.move("done", "qF", STAY)
    return b.build(initial="q0", final="qF")


def all_same_spec(attr: str = "a") -> Callable[[Sequence[DataValue]], bool]:
    def spec(values: Sequence[DataValue]) -> bool:
        return len(set(values)) <= 1

    return spec


def nested_constant_suffixes(attr: str = "a") -> TWAutomaton:
    """Nested atp: from the root, start a subcomputation at *every*
    position; each checks (by its own atp) that all strictly later
    positions carry its value.  Accepts iff every suffix is constant —
    i.e. the whole string is constant — but through deeply nested
    subcomputations that force NeedAnswer traffic across #."""
    b = AutomatonBuilder("nested-constant", register_arities=[1])
    b.atp("q0", "q1", SELF_OR_AFTER, substate="chk", register=1)
    b.move("q1", "qF", STAY)
    b.atp("chk", "verdict", AFTER, substate="rep", register=1)
    b.move("verdict", "qF", STAY, guard=_subset_of_current(1, attr))
    b.update("rep", "done", 1, eq(z, Attr(attr)), [z])
    b.move("done", "qF", STAY)
    return b.build(initial="q0", final="qF")


def root_value_reappears(attr: str = "a") -> TWAutomaton:
    """Register + walking: remember the first value, walk to the end,
    accept iff the last value matches the first (config crossings with
    a loaded register)."""
    b = AutomatonBuilder("first-equals-last", register_arities=[1])
    b.update("q0", "walk", 1, eq(z, Attr(attr)), [z])
    b.move("walk", "walk", DOWN, position=AT_INNER)
    b.move("walk", "qF", STAY, position=AT_LEAF, guard=rel(1, Attr(attr)))
    return b.build(initial="q0", final="qF")


def first_equals_last_spec(attr: str = "a") -> Callable[[Sequence[DataValue]], bool]:
    def spec(values: Sequence[DataValue]) -> bool:
        return values[0] == values[-1]

    return spec


def value_occurs_after_hash(value: DataValue, attr: str = "a") -> TWAutomaton:
    """atp with a data constant: accepts iff some position strictly
    after the current (root) # ... strictly, some position anywhere
    carries ``value`` — the reporter rejects elsewhere, so the guard
    checks non-emptiness of the collected set."""
    from ..store.fo import exists as fo_exists

    b = AutomatonBuilder(f"occurs-{value!r}", register_arities=[1])
    b.atp("q0", "q1", SELF_OR_AFTER, substate="rep", register=1)
    b.move("q1", "qF", STAY, guard=fo_exists(z, conj(rel(1, z), eq(z, value))))
    b.update("rep", "done", 1, eq(z, Attr(attr)), [z])
    b.move("done", "qF", STAY)
    return b.build(initial="q0", final="qF")


def occurs_spec(value: DataValue) -> Callable[[Sequence[DataValue]], bool]:
    def spec(values: Sequence[DataValue]) -> bool:
        return value in values

    return spec


def constant_spec(attr: str = "a") -> Callable[[Sequence[DataValue]], bool]:
    return all_same_spec(attr)


def walking_reporters(attr: str = "a") -> TWAutomaton:
    """Subcomputations that *walk*: from the root, one subcomputation per
    data position; each marches down to the global leaf and reports the
    final value.  The union is always the singleton {last value}, so
    the program accepts every split string — its purpose is to force
    subcomputations across the # boundary (⟨q, τ̄, NeedAnswer⟩ traffic
    in the protocol)."""
    b = AutomatonBuilder("walking-reporters", register_arities=[1])
    b.atp("q0", "q1", SELF_OR_AFTER, substate="rep", register=1)
    b.move("q1", "qF", STAY, guard=_singleton(1))
    b.move("rep", "rep", DOWN, position=AT_INNER)
    b.update("rep", "done", 1, eq(z, Attr(attr)), [z], position=AT_LEAF)
    b.move("done", "qF", STAY)
    return b.build(initial="q0", final="qF")


def always_true_spec() -> Callable[[Sequence[DataValue]], bool]:
    def spec(values: Sequence[DataValue]) -> bool:
        return True

    return spec
