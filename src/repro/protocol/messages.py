"""The message alphabet Δ of the Lemma 4.5 protocol.

Exactly the paper's inventory:

* ``⟨θ⟩``                       — an N-type (:class:`TypeMessage`);
* ``⟨φ, q, θ, τ̄⟩``             — an atp-request (:class:`AtpRequest`);
* ``⟨R⟩``                       — a reply (:class:`Reply`);
* ``⟨q, τ̄⟩``                   — hand over the running computation
  (:class:`ConfigMessage` with ``need_answer=False``);
* ``⟨q, τ̄, NeedAnswer⟩``       — run this subcomputation and send back
  its first register (``need_answer=True``);
* ``⟨accept⟩`` / ``⟨reject⟩``   — verdicts.

Messages carry only information a party legitimately has: its half,
types of the other half it received, and program-level objects (states,
stores, selector indices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..logic.types import TypeSummary
from ..store.database import RegisterStore
from ..store.relation import Relation


@dataclass(frozen=True)
class TypeMessage:
    """⟨θ⟩ — the sender's half's N-type (initialisation)."""

    summary: TypeSummary


@dataclass(frozen=True)
class AtpRequest:
    """⟨φ, q, θ, τ̄⟩ — please run subcomputations at every node of your
    half selected by φ from the (abstract) current node θ distinguishes,
    starting in state q with store τ̄, and send me the union of the
    returned first registers."""

    selector_index: int
    substate: str
    theta: TypeSummary
    store: RegisterStore


@dataclass(frozen=True)
class Reply:
    """⟨R⟩ — the union of first registers you asked for (answers both
    atp-requests and NeedAnswer configurations)."""

    relation: Relation


@dataclass(frozen=True)
class ConfigMessage:
    """⟨q, τ̄⟩ or ⟨q, τ̄, NeedAnswer⟩ — the walking control crossed the
    # boundary; resume it at your entry position."""

    state: str
    store: RegisterStore
    need_answer: bool = False


@dataclass(frozen=True)
class AcceptMessage:
    """⟨accept⟩."""


@dataclass(frozen=True)
class RejectMessage:
    """⟨reject⟩ — with the (out-of-band) reason for diagnostics."""

    reason: str = ""


Message = Union[TypeMessage, AtpRequest, Reply, ConfigMessage, AcceptMessage, RejectMessage]
