"""Quantitative accounting of the protocol alphabet Δ (Definition 4.4).

Lemma 4.5 needs |Δ| ≤ exp₃(p(N + |D|)); this module computes, for a
*concrete* tw^{r,l} program and domain size, the per-component upper
bounds the proof adds up — and compares them against what a run
actually sends.  The gap (astronomical) is why the dedup argument, not
the alphabet size, is what keeps real dialogues short.

All counts are :class:`repro.hypersets.counting.Tower` values so they
survive the exp₃ regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..automata.machine import TWAutomaton
from ..hypersets.counting import Tower, tower_add_logs, tower_mul, tower_pow
from .runner import ProtocolResult, required_type_width


@dataclass
class DeltaEstimate:
    """Upper bounds on each Δ component (Definition 4.4's inventory)."""

    types: Tower           # ⟨θ⟩ messages: ≡_N classes
    stores: Tower          # distinct relational stores over D
    configurations: Tower  # ⟨q, τ̄⟩ / ⟨q, τ̄, NeedAnswer⟩
    atp_requests: Tower    # ⟨φ, q, θ, τ̄⟩
    replies: Tower         # ⟨R⟩: relations of register 1's arity
    total: Tower

    def rows(self) -> List[Tuple[str, str]]:
        return [
            ("N-types ⟨θ⟩", repr(self.types)),
            ("stores τ̄", repr(self.stores)),
            ("configurations ⟨q,τ̄⟩", repr(self.configurations)),
            ("atp-requests ⟨φ,q,θ,τ̄⟩", repr(self.atp_requests)),
            ("replies ⟨R⟩", repr(self.replies)),
            ("|Δ| ≤", repr(self.total)),
        ]


def _store_count(program: TWAutomaton, d_size: int) -> Tower:
    """Π_i 2^(|D|^arity_i) — every assignment of finite relations."""
    total = Tower.of(1.0)
    for arity in program.schema.arities:
        relations = Tower(1, float(d_size**arity))  # 2^(|D|^arity)
        total = tower_mul(total, relations)
    return total


def estimate_delta(
    program: TWAutomaton, d_size: int, type_k: int = 0
) -> DeltaEstimate:
    """Bound each Δ component for ``program`` over a |D|-element domain."""
    k = type_k or required_type_width(program)
    # Lemma 4.3(2): #(≡_k classes) ≤ exp₃(p(k + |D|)); p(v) = v² here.
    types = Tower(3, float((k + d_size) ** 2))
    stores = _store_count(program, d_size)
    states = Tower.of(float(len(program.states)))
    configurations = tower_mul(
        Tower.of(2.0), tower_mul(states, stores)  # plain + NeedAnswer
    )
    selectors = Tower.of(float(max(len(program.selectors()), 1)))
    atp_requests = tower_mul(
        tower_mul(selectors, states), tower_mul(types, stores)
    )
    replies = Tower(1, float(d_size ** program.schema.arity(1)))
    total = tower_add_logs(
        tower_add_logs(types, stores),
        tower_add_logs(
            configurations, tower_add_logs(atp_requests, replies)
        ),
    )
    return DeltaEstimate(
        types=types,
        stores=stores,
        configurations=configurations,
        atp_requests=atp_requests,
        replies=replies,
        total=total,
    )


def observed_message_counts(result: ProtocolResult) -> Dict[str, int]:
    """Distinct messages actually sent in a recorded dialogue, per kind."""
    distinct: Dict[str, set] = {}
    for _sender, message in result.dialogue:
        distinct.setdefault(type(message).__name__, set()).add(repr(message))
    return {kind: len(values) for kind, values in sorted(distinct.items())}


def dialogue_vs_bound(
    program: TWAutomaton, result: ProtocolResult, d_size: int
) -> Tuple[int, Tower]:
    """(observed rounds, the generic 2|Δ| round bound) — the measured
    side of the Lemma 4.5 dedup argument."""
    estimate = estimate_delta(program, d_size)
    return result.rounds, tower_mul(Tower.of(2.0), estimate.total)
