"""Driving the two-party protocol and checking Lemma 4.5.

``run_protocol`` plays the Lemma 4.5 protocol for a tw^{r,l} program on
a split string ``f#g``: party I gets f (and the shared #), party II
gets g; they exchange N-types, then messages per the proof, and the
driver records the full dialogue.  The E4 experiment checks, for a
family of programs × inputs, that

* the verdict equals the direct run of the program on the monadic tree
  of ``f#g`` (the simulation property), and
* the number of rounds stays within the dedup-argument bound
  (each request sent at most once, each configuration crossing at most
  once per direction, each N-type once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..automata.machine import TWAutomaton
from ..logic.exists_star import variable_count
from ..trees.strings import HASH
from ..trees.values import DataValue
from .messages import (
    AcceptMessage,
    AtpRequest,
    ConfigMessage,
    Message,
    RejectMessage,
    Reply,
    TypeMessage,
)
from .party import Party, ProtocolError
from .split_eval import LEFT, RIGHT


@dataclass
class ProtocolResult:
    """Outcome and the recorded dialogue."""

    accepted: bool
    rounds: int
    dialogue: List[Tuple[str, Message]] = field(default_factory=list)
    reason: str = ""

    def message_kinds(self) -> List[str]:
        return [type(m).__name__ for _s, m in self.dialogue]


def required_type_width(program: TWAutomaton) -> int:
    """The N of the N-types: enough variables to compose every selector
    of the program across the split (Lemma 4.3(1))."""
    widths = [variable_count(s.formula) for s in program.selectors()]
    return max(widths, default=2)


def run_protocol(
    program: TWAutomaton,
    f_values: Sequence[DataValue],
    g_values: Sequence[DataValue],
    type_k: Optional[int] = None,
    max_rounds: int = 10_000,
    fuel: int = 500_000,
) -> ProtocolResult:
    """Play the protocol on ``f#g``; f and g must be nonempty and
    #-free."""
    if not f_values or not g_values:
        raise ProtocolError("the protocol needs nonempty f and g")
    if HASH in f_values or HASH in g_values:
        raise ProtocolError("f and g must not contain #")
    k = type_k if type_k is not None else required_type_width(program)

    party_i = Party("I", LEFT, tuple(f_values) + (HASH,), program, k, fuel)
    party_ii = Party("II", RIGHT, (HASH,) + tuple(g_values), program, k, fuel)

    dialogue: List[Tuple[str, Message]] = []
    # Initialisation: I sends its N-type, II answers with hers.
    type_i = party_i.own_type()
    dialogue.append(("I", type_i))
    party_ii.receive_type(type_i)
    type_ii = party_ii.own_type()
    dialogue.append(("II", type_ii))
    party_i.receive_type(type_ii)

    sender, receiver = party_i, party_ii
    outbound = party_i.begin_main()
    rounds = 0
    while True:
        dialogue.append((sender.name, outbound))
        rounds += 1
        if isinstance(outbound, AcceptMessage):
            return ProtocolResult(True, rounds, dialogue, "accept")
        if isinstance(outbound, RejectMessage):
            return ProtocolResult(False, rounds, dialogue, outbound.reason)
        if rounds > max_rounds:
            raise ProtocolError(f"round budget {max_rounds} exhausted")
        sender, receiver = receiver, sender
        outbound = sender.handle(outbound)


def protocol_agrees_with_run(
    program: TWAutomaton,
    f_values: Sequence[DataValue],
    g_values: Sequence[DataValue],
    **kwargs,
) -> Tuple[bool, bool, ProtocolResult]:
    """(direct verdict, protocol verdict, full result) — the Lemma 4.5
    check for one instance."""
    from ..automata.runner import accepts
    from ..trees.strings import split_string_tree

    tree = split_string_tree(list(f_values), list(g_values))
    direct = accepts(program, tree)
    result = run_protocol(program, f_values, g_values, **kwargs)
    return direct, result.accepted, result
