"""Cross-half evaluation of FO(∃*) on split strings — Lemma 4.3(1) made
executable.

A party holds one half of ``f#g`` concretely (``f#`` for party I,
``#g`` for party II; the shared ``#`` sits in both) plus the *N-type*
of the other half (a :class:`repro.logic.types.TypeSummary`).  To run
the protocol it must decide, for concrete positions on its own half
and/or abstract positions known only through the other half's type,
whether ``f#g ⊨ φ(…)`` for the FO(∃*) selectors of the program.

The decision procedure enumerates, for each way of splitting the
existential prefix between the halves, concrete tuples on the own half
and *realized atomic types* on the other half; the matrix is then
evaluated atom by atom:

* own–own atoms: directly on the concrete half;
* other–other atoms: read off the chosen atomic type (which jointly
  constrains the other-half tuple *and* the distinguished positions);
* cross atoms: derived from the boundary flags — position order
  between the halves is fixed by the split, equality and successor
  can only happen at/around the shared ``#``, and data (in)equality is
  determined because atomic types record exact values over the finite
  D both parties know (Definition 4.4).

This is precisely the compositionality content of Lemma 4.3(1):
``tp(f#g; ū)`` is a function of ``tp(f#; ū∩f)`` and ``tp(#g; ū∩g)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..logic import tree_fo as T
from ..logic.exists_star import ExistsStarQuery, strip_prefix
from ..logic.types import AtomicType, StringStructure, TypeSummary
from ..trees.strings import HASH

LEFT = "L"   # the party holding f#
RIGHT = "R"  # the party holding #g


class SplitEvalError(ValueError):
    """Raised on malformed split-evaluation inputs."""


@dataclass(frozen=True)
class Concrete:
    """A position on the evaluating party's own (concrete) half."""

    index: int


@dataclass(frozen=True)
class Abstract:
    """A column of the chosen other-half atomic type."""

    column: int


PosRef = Union[Concrete, Abstract]


class _Context:
    """One candidate assignment: the own half, the chosen other-half
    atomic type, and which side is which."""

    def __init__(
        self,
        own: StringStructure,
        own_side: str,
        atype: AtomicType,
    ) -> None:
        self.own = own
        self.own_side = own_side
        self.other_side = RIGHT if own_side == LEFT else LEFT
        self.infos, self.pairs = atype
        # pair lookup: pairs are stored for i < j in tuple order
        self._pair_index: Dict[Tuple[int, int], Tuple[int, bool, bool]] = {}
        count = len(self.infos)
        k = 0
        for i in range(count):
            for j in range(i + 1, count):
                self._pair_index[(i, j)] = self.pairs[k]
                k += 1

    # -- per-position facts ------------------------------------------------------

    def value(self, ref: PosRef):
        if isinstance(ref, Concrete):
            return self.own.value(ref.index)
        return self.infos[ref.column][0]

    def label(self, ref: PosRef) -> str:
        if isinstance(ref, Concrete):
            return self.own.label(ref.index)
        return self.infos[ref.column][1]

    def _flags(self, ref: PosRef) -> Tuple[bool, bool, bool, bool]:
        """(first, second, last, second-to-last) within the ref's half."""
        if isinstance(ref, Concrete):
            n = len(self.own)
            i = ref.index
            return (i == 0, i == 1, i == n - 1, i == n - 2)
        info = self.infos[ref.column]
        return (info[2], info[3], info[4], info[5])

    def side(self, ref: PosRef) -> str:
        return self.own_side if isinstance(ref, Concrete) else self.other_side

    def is_hash(self, ref: PosRef) -> bool:
        first, _second, last, _stl = self._flags(ref)
        return last if self.side(ref) == LEFT else first

    # -- pairwise facts -------------------------------------------------------------

    def equal(self, a: PosRef, b: PosRef) -> bool:
        if isinstance(a, Concrete) and isinstance(b, Concrete):
            return a.index == b.index
        if isinstance(a, Abstract) and isinstance(b, Abstract):
            return self._sign(a, b) == 0
        return self.is_hash(a) and self.is_hash(b)

    def before(self, a: PosRef, b: PosRef) -> bool:
        """Strict global position order a < b."""
        if isinstance(a, Concrete) and isinstance(b, Concrete):
            return a.index < b.index
        if isinstance(a, Abstract) and isinstance(b, Abstract):
            return self._sign(a, b) < 0
        # cross: every L position globally precedes every R position,
        # except the shared # which is equal on both.
        left_ref = a if self.side(a) == LEFT else b
        right_ref = b if left_ref is a else a
        strictly = not (self.is_hash(a) and self.is_hash(b))
        if self.side(a) == LEFT:  # a on L, b on R: a <= b globally
            return strictly
        return False  # a on R, b on L: never before

    def succ(self, a: PosRef, b: PosRef) -> bool:
        """Global position successor: b = a + 1."""
        if isinstance(a, Concrete) and isinstance(b, Concrete):
            return b.index == a.index + 1
        if isinstance(a, Abstract) and isinstance(b, Abstract):
            _sign, ab, _ba = self._pair(a, b)
            return ab
        if self.side(a) == LEFT and self.side(b) == RIGHT:
            a_first, a_second, a_last, a_stl = self._flags(a)
            b_first, b_second, b_last, b_stl = self._flags(b)
            # a = #, b = first of g   or   a = last of f, b = #
            return (a_last and b_second) or (a_stl and b_first)
        return False  # R position never immediately precedes an L one

    def _pair(self, a: Abstract, b: Abstract):
        i, j = a.column, b.column
        if i == j:
            return (0, False, False)
        if i < j:
            return self._pair_index[(i, j)]
        sign, ab, ba = self._pair_index[(j, i)]
        return (-sign, ba, ab)

    def _sign(self, a: Abstract, b: Abstract) -> int:
        return self._pair(a, b)[0]

    # -- global positional predicates --------------------------------------------------

    def is_root(self, ref: PosRef) -> bool:
        """Global position 0 — the first position of the L half."""
        first, _s, _l, _stl = self._flags(ref)
        return self.side(ref) == LEFT and first

    def is_leaf(self, ref: PosRef) -> bool:
        """Global last position — the last of the R half."""
        _f, _s, last, _stl = self._flags(ref)
        return self.side(ref) == RIGHT and last


def _atom_holds(atom, env: Dict[T.NVar, PosRef], ctx: _Context) -> bool:
    def ref(var: T.NVar) -> PosRef:
        try:
            return env[var]
        except KeyError:
            raise SplitEvalError(f"unbound variable {var!r}") from None

    if isinstance(atom, T.TrueF):
        return True
    if isinstance(atom, T.FalseF):
        return False
    if isinstance(atom, T.Edge):
        return ctx.succ(ref(atom.parent), ref(atom.child))
    if isinstance(atom, T.SibLess):
        return False  # monadic trees have no siblings
    if isinstance(atom, T.Desc):
        return ctx.before(ref(atom.ancestor), ref(atom.descendant))
    if isinstance(atom, T.Label):
        return ctx.label(ref(atom.var)) == atom.symbol
    if isinstance(atom, T.NodeEq):
        return ctx.equal(ref(atom.left), ref(atom.right))
    if isinstance(atom, T.ValEq):
        return ctx.value(ref(atom.left)) == ctx.value(ref(atom.right))
    if isinstance(atom, T.ValConst):
        return ctx.value(ref(atom.var)) == atom.value
    if isinstance(atom, T.Root):
        return ctx.is_root(ref(atom.var))
    if isinstance(atom, T.Leaf):
        return ctx.is_leaf(ref(atom.var))
    if isinstance(atom, T.First):
        # In a monadic tree every non-root node is a first child.
        return not ctx.is_root(ref(atom.var))
    if isinstance(atom, T.Last):
        return not ctx.is_root(ref(atom.var))
    if isinstance(atom, T.Succ):
        return False  # sibling successor: no siblings on strings
    raise SplitEvalError(f"unknown atom {atom!r}")


def _matrix_holds(matrix, env: Dict[T.NVar, PosRef], ctx: _Context) -> bool:
    if T.is_atom(matrix):
        return _atom_holds(matrix, env, ctx)
    if isinstance(matrix, T.Not):
        return not _matrix_holds(matrix.inner, env, ctx)
    if isinstance(matrix, T.And):
        return all(_matrix_holds(p, env, ctx) for p in matrix.parts)
    if isinstance(matrix, T.Or):
        return any(_matrix_holds(p, env, ctx) for p in matrix.parts)
    if isinstance(matrix, T.Implies):
        return (not _matrix_holds(matrix.premise, env, ctx)) or _matrix_holds(
            matrix.conclusion, env, ctx
        )
    raise SplitEvalError(f"quantifier inside FO(∃*) matrix: {matrix!r}")


def holds_split(
    query: ExistsStarQuery,
    own: StringStructure,
    own_side: str,
    bindings: Dict[T.NVar, PosRef],
    other: TypeSummary,
) -> bool:
    """Decide ``f#g ⊨ φ(bindings)`` from one concrete half + the other
    half's type summary.

    ``bindings`` maps φ's free variables to :class:`Concrete` own-half
    positions or :class:`Abstract` columns of the *distinguished* tail
    of ``other`` (column numbering: the other-side existential tuple
    comes first, then the distinguished positions — callers use
    ``Abstract(-1)`` style via :func:`distinguished_ref`).
    """
    if own_side not in (LEFT, RIGHT):
        raise SplitEvalError(f"own_side must be L or R, got {own_side!r}")
    prefix, matrix = strip_prefix(query.formula)
    free = {v for v in (query.x, query.y) if v in bindings}
    abstract_bindings = {
        v: r for v, r in bindings.items() if isinstance(r, Abstract)
    }
    distinguished = other.distinguished

    for split in itertools.product((0, 1), repeat=len(prefix)):
        own_vars = [v for v, s in zip(prefix, split) if s == 0]
        other_vars = [v for v, s in zip(prefix, split) if s == 1]
        m = len(other_vars)
        if m > other.k:
            continue  # the summary cannot witness this split
        for own_combo in itertools.product(own.positions, repeat=len(own_vars)):
            base_env: Dict[T.NVar, PosRef] = dict(bindings)
            for var, pos in zip(own_vars, own_combo):
                base_env[var] = Concrete(pos)
            for atype in other.types_for(m):
                env = dict(base_env)
                for t, var in enumerate(other_vars):
                    env[var] = Abstract(t)
                # re-anchor distinguished refs after the m-tuple
                for var, ref in abstract_bindings.items():
                    env[var] = Abstract(m + ref.column)
                ctx = _Context(own, own_side, atype)
                if _matrix_holds(matrix, env, ctx):
                    return True
    return False


def distinguished_ref(index: int) -> Abstract:
    """Reference the ``index``-th distinguished position of the other
    half's summary (0-based); re-anchored internally per split."""
    return Abstract(index)


def select_in_zone(
    query: ExistsStarQuery,
    own: StringStructure,
    own_side: str,
    current: PosRef,
    other: TypeSummary,
    zone: Sequence[int],
) -> Tuple[int, ...]:
    """All own-half positions v ∈ zone with ``f#g ⊨ φ(current, v)``."""
    out = []
    for candidate in zone:
        bindings = {query.x: current, query.y: Concrete(candidate)}
        if holds_split(query, own, own_side, bindings, other):
            out.append(candidate)
    return tuple(out)
