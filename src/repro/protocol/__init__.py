"""The Lemma 4.5 communication protocol, executable.

* :mod:`repro.protocol.split_eval` — cross-half FO(∃*) evaluation
  (Lemma 4.3(1) compositionality);
* :mod:`repro.protocol.messages` — the alphabet Δ;
* :mod:`repro.protocol.party` — a protocol party with the paper's
  stack discipline and request deduplication;
* :mod:`repro.protocol.runner` — the synchronous driver and the
  agreement check against direct execution;
* :mod:`repro.protocol.programs` — string tw^{r,l} programs covering
  every message kind.
"""

from .messages import (
    AcceptMessage,
    AtpRequest,
    ConfigMessage,
    Message,
    RejectMessage,
    Reply,
    TypeMessage,
)
from .party import Party, ProtocolError
from .runner import (
    ProtocolResult,
    protocol_agrees_with_run,
    required_type_width,
    run_protocol,
)
from .analysis import (
    DeltaEstimate,
    dialogue_vs_bound,
    estimate_delta,
    observed_message_counts,
)
from .split_eval import (
    Abstract,
    Concrete,
    LEFT,
    RIGHT,
    SplitEvalError,
    distinguished_ref,
    holds_split,
    select_in_zone,
)
from . import programs

__all__ = [
    "AcceptMessage",
    "AtpRequest",
    "ConfigMessage",
    "Message",
    "RejectMessage",
    "Reply",
    "TypeMessage",
    "Party",
    "ProtocolError",
    "ProtocolResult",
    "protocol_agrees_with_run",
    "required_type_width",
    "run_protocol",
    "DeltaEstimate",
    "dialogue_vs_bound",
    "estimate_delta",
    "observed_message_counts",
    "Abstract",
    "Concrete",
    "LEFT",
    "RIGHT",
    "SplitEvalError",
    "distinguished_ref",
    "holds_split",
    "select_in_zone",
    "programs",
]
