"""One party of the Lemma 4.5 protocol.

Party I holds ``f#`` (it owns the shared # position), party II holds
``#g`` (owning everything strictly right of #).  A party simulates the
tw^{r,l} program inside its zone with unlimited local power; everything
it knows about the other half is the received N-type.  Its state is

* the current running computation (position, program state, store,
  and the visited-configuration set for cycle detection), or nothing
  while waiting;
* the paper's stack of ``ReturnAns`` / ``Compute`` /
  ``Compute&Return`` records;
* the request memo implementing the proof's deduplication argument:
  a request already answered is reused, a request re-issued while
  pending means the global run is cycling — ⟨reject⟩.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..automata.machine import TWAutomaton
from ..automata.rules import Atp, DOWN, LEFT as MOVE_LEFT, Move, RIGHT as MOVE_RIGHT, STAY, UP, Update
from ..logic.types import StringStructure, TypeSummary, type_summary
from ..store.database import RegisterStore
from ..store.fo import StoreContext, evaluate as evaluate_guard, evaluate_update
from ..store.relation import Relation
from ..trees.strings import STRING_ATTR
from .messages import (
    AcceptMessage,
    AtpRequest,
    ConfigMessage,
    Message,
    Reply,
    RejectMessage,
    TypeMessage,
)
from .split_eval import Abstract, Concrete, LEFT, RIGHT, holds_split, select_in_zone


class ProtocolError(RuntimeError):
    """A protocol invariant broke (a bug, not a reject)."""


@dataclass
class _Comp:
    """A computation this party is currently simulating."""

    position: int  # local index in the half
    state: str
    store: RegisterStore
    seen: Set[Tuple[int, str, RegisterStore]] = field(default_factory=set)
    start_key: Optional[Tuple[int, str, RegisterStore]] = None


@dataclass
class _ReturnAns:
    """On acceptance, send the first register to the other party."""


@dataclass
class _Compute:
    """An atp this party issued itself: remaining own-half start
    positions, the accumulated result, and the configuration to resume."""

    remaining: List[int]
    result: Relation
    resume_position: int
    resume_state: str
    store_at_atp: RegisterStore
    register: int
    substate: str
    saved_seen: Set[Tuple[int, str, RegisterStore]]


@dataclass
class _ComputeReturn:
    """The own-half share of the *other* party's atp-request."""

    remaining: List[int]
    result: Relation
    substate: str
    store_at_atp: RegisterStore


_StackEntry = Union[_ReturnAns, _Compute, _ComputeReturn]


class Party:
    """One endpoint of the protocol."""

    def __init__(
        self,
        name: str,
        side: str,
        half_values: Tuple,
        program: TWAutomaton,
        type_k: int,
        fuel: int = 200_000,
    ) -> None:
        self.name = name
        self.side = side
        self.half = StringStructure(tuple(half_values))
        self.program = program
        self.type_k = type_k
        self.fuel = fuel
        self.constants = program.program_constants()
        self.selectors = program.selectors()
        if side == LEFT:
            self.zone = tuple(range(len(self.half)))  # owns the # (last)
            self.entry_local = len(self.half) - 1     # resume at # itself? no: see below
        else:
            self.zone = tuple(range(1, len(self.half)))
            self.entry_local = 1
        # Party I's entry is the # position (global b): a computation
        # crossing right-to-left lands on b.
        if side == LEFT:
            self.entry_local = len(self.half) - 1
        self.other_summary: Optional[TypeSummary] = None
        self.comp: Optional[_Comp] = None
        self.stack: List[_StackEntry] = []
        self.memo: Dict[Tuple, object] = {}
        self.pending_keys: List[Tuple] = []
        self.sent_configs: Set[Tuple[str, RegisterStore, bool]] = set()
        self.active_starts: Set[Tuple[int, str, RegisterStore]] = set()
        self.steps = 0

    # -- initialisation -----------------------------------------------------------

    def own_type(self) -> TypeMessage:
        return TypeMessage(type_summary(self.half, (), self.type_k))

    def receive_type(self, message: TypeMessage) -> None:
        self.other_summary = message.summary

    def begin_main(self) -> Message:
        """Party I only: start the main computation at global position 0."""
        if self.side != LEFT:
            raise ProtocolError("the main computation starts on party I's half")
        self.comp = _Comp(0, self.program.initial_state, self.program.initial_store())
        return self._drive()

    # -- the reactive interface ------------------------------------------------------

    def handle(self, message: Message) -> Message:
        if isinstance(message, TypeMessage):
            raise ProtocolError("types are exchanged during initialisation only")
        if isinstance(message, ConfigMessage):
            if message.need_answer:
                self.stack.append(_ReturnAns())
            self.comp = _Comp(self.entry_local, message.state, message.store)
            return self._drive()
        if isinstance(message, AtpRequest):
            selector = self.selectors[message.selector_index]
            selected = select_in_zone(
                selector,
                self.half,
                self.side,
                Abstract(0),  # the requester's current node, distinguished in θ
                message.theta,
                self.zone,
            )
            self.stack.append(
                _ComputeReturn(
                    remaining=sorted(selected),
                    result=Relation.empty(self.program.schema.arity(1)),
                    substate=message.substate,
                    store_at_atp=message.store,
                )
            )
            return self._drive()
        if isinstance(message, Reply):
            if not self.pending_keys:
                raise ProtocolError("reply without a pending request")
            key, closed_start = self.pending_keys.pop()
            self.memo[key] = message.relation
            if closed_start is not None:
                self.active_starts.discard(closed_start)
            top = self._top("a reply needs a Compute/Compute&Return on top")
            top.result = top.result.union(message.relation)
            return self._drive()
        raise ProtocolError(f"unexpected message {message!r}")

    # -- the engine ---------------------------------------------------------------------

    def _drive(self) -> Message:
        while True:
            if self.comp is not None:
                outcome = self._step()
            else:
                outcome = self._continue_stack()
            if outcome is not None:
                return outcome

    def _top(self, why: str) -> Union[_Compute, _ComputeReturn]:
        if not self.stack or not isinstance(self.stack[-1], (_Compute, _ComputeReturn)):
            raise ProtocolError(why)
        return self.stack[-1]

    # .. running one configuration step ...................................................

    def _step(self) -> Optional[Message]:
        comp = self.comp
        assert comp is not None
        self.steps += 1
        if self.steps > self.fuel:
            raise ProtocolError(f"party fuel {self.fuel} exhausted")

        if comp.state == self.program.final_state:
            return self._finish_computation(comp.store)

        key = (comp.position, comp.state, comp.store)
        if key in comp.seen:
            return self._reject(f"{self.name}: local configuration cycle")
        comp.seen.add(key)

        rule = self._applicable_rule(comp)
        if rule is None:
            return self._reject(f"{self.name}: stuck (no rule applies)")
        rhs = rule.rhs

        if isinstance(rhs, Move):
            return self._apply_move(comp, rhs)
        if isinstance(rhs, Update):
            ctx = self._context(comp)
            relation = evaluate_update(rhs.formula, list(rhs.variables), ctx)
            comp.state = rhs.state
            comp.store = comp.store.set(rhs.register, relation)
            return None
        if isinstance(rhs, Atp):
            return self._apply_atp(comp, rhs)
        raise ProtocolError(f"unknown RHS {rhs!r}")

    def _apply_move(self, comp: _Comp, rhs: Move) -> Optional[Message]:
        if rhs.direction == STAY:
            comp.state = rhs.state
            return None
        if rhs.direction in (MOVE_LEFT, MOVE_RIGHT):
            return self._reject(f"{self.name}: sibling move on a string")
        delta = 1 if rhs.direction == DOWN else -1
        target = comp.position + delta
        if target in self.zone:
            comp.position = target
            comp.state = rhs.state
            return None
        crossing = (
            self.side == LEFT and target == len(self.half)
        ) or (self.side == RIGHT and target == 0)
        if crossing:
            return self._send_crossing(rhs.state, comp.store)
        return self._reject(f"{self.name}: walked off the string")

    def _send_crossing(self, state: str, store: RegisterStore) -> Optional[Message]:
        comp = self.comp
        assert comp is not None
        self.comp = None
        if not self.stack:
            need_answer = False
        elif isinstance(self.stack[-1], _ReturnAns):
            self.stack.pop()  # the other party takes the obligation back
            need_answer = False
        else:
            need_answer = True
        if need_answer:
            key = ("cross", state, store)
            memoised = self.memo.get(key)
            if memoised == "pending":
                return self._reject(f"{self.name}: crossing request cycle")
            if memoised is not None:
                if comp.start_key is not None:
                    self.active_starts.discard(comp.start_key)
                top = self._top("crossing result needs a frame")
                top.result = top.result.union(memoised)  # type: ignore[arg-type]
                return None
            self.memo[key] = "pending"
            self.pending_keys.append((key, comp.start_key))
            return ConfigMessage(state, store, need_answer=True)
        dedup = (state, store, False)
        if dedup in self.sent_configs:
            return self._reject(f"{self.name}: configuration crossed twice")
        self.sent_configs.add(dedup)
        return ConfigMessage(state, store, need_answer=False)

    def _apply_atp(self, comp: _Comp, rhs: Atp) -> Optional[Message]:
        if self.other_summary is None:
            raise ProtocolError("types were never exchanged")
        selector_index = self._selector_index(rhs)
        selector = self.selectors[selector_index]
        selected = select_in_zone(
            selector,
            self.half,
            self.side,
            Concrete(comp.position),
            self.other_summary,
            self.zone,
        )
        theta = type_summary(self.half, (comp.position,), self.type_k)
        frame = _Compute(
            remaining=sorted(selected),
            result=Relation.empty(self.program.schema.arity(1)),
            resume_position=comp.position,
            resume_state=rhs.state,
            store_at_atp=comp.store,
            register=rhs.register,
            substate=rhs.substate,
            saved_seen=comp.seen,
        )
        self.comp = None
        self.stack.append(frame)
        key = ("atp", selector_index, rhs.substate, theta, comp.store)
        memoised = self.memo.get(key)
        if memoised == "pending":
            return self._reject(f"{self.name}: atp request cycle")
        if memoised is not None:
            frame.result = frame.result.union(memoised)  # type: ignore[arg-type]
            return None  # the local shares still need computing
        self.memo[key] = "pending"
        self.pending_keys.append((key, None))
        return AtpRequest(selector_index, rhs.substate, theta, comp.store)

    def _selector_index(self, rhs: Atp) -> int:
        for index, selector in enumerate(self.selectors):
            if selector is rhs.selector or selector == rhs.selector:
                return index
        raise ProtocolError("selector not registered with the program")

    # .. completing computations and draining the stack ......................................

    def _finish_computation(self, store: RegisterStore) -> Optional[Message]:
        comp = self.comp
        assert comp is not None
        if comp.start_key is not None:
            self.active_starts.discard(comp.start_key)
        self.comp = None
        first = store.get(1)
        if not self.stack:
            return AcceptMessage()
        top = self.stack[-1]
        if isinstance(top, _ReturnAns):
            self.stack.pop()
            return Reply(first)
        assert isinstance(top, (_Compute, _ComputeReturn))
        top.result = top.result.union(first)
        return None

    def _continue_stack(self) -> Optional[Message]:
        if not self.stack:
            raise ProtocolError("idle party with an empty stack was driven")
        top = self.stack[-1]
        if isinstance(top, _ReturnAns):
            raise ProtocolError("ReturnAns on top while idle")
        if top.remaining:
            start = top.remaining.pop(0)
            key = (start, top.substate, top.store_at_atp)
            if key in self.active_starts:
                return self._reject(f"{self.name}: subcomputation restarted (cycle)")
            self.active_starts.add(key)
            self.comp = _Comp(start, top.substate, top.store_at_atp, start_key=key)
            return None
        self.stack.pop()
        if isinstance(top, _ComputeReturn):
            return Reply(top.result)
        # _Compute: resume the suspended computation with the register set.
        self.comp = _Comp(
            top.resume_position,
            top.resume_state,
            top.store_at_atp.set(top.register, top.result),
            seen=top.saved_seen,
        )
        return None

    # .. local semantics helpers ..............................................................

    def _global_flags(self, local: int) -> Tuple[bool, bool, bool, bool]:
        """(root, leaf, first-child, last-child) of the global string."""
        if self.side == LEFT:
            root = local == 0
            leaf = False  # g is nonempty
        else:
            root = False
            leaf = local == len(self.half) - 1
        return (root, leaf, not root, not leaf)

    def _applicable_rule(self, comp: _Comp):
        label = self.half.label(comp.position)
        ctx = self._context(comp)
        root, leaf, first, last = self._global_flags(comp.position)
        found = None
        for rule in self.program.rules_for(comp.state):
            lhs = rule.lhs
            if lhs.label is not None and lhs.label != label:
                continue
            position_ok = all(
                expected is None or expected == actual
                for expected, actual in (
                    (lhs.position.root, root),
                    (lhs.position.leaf, leaf),
                    (lhs.position.first, first),
                    (lhs.position.last, last),
                )
            )
            if not position_ok:
                continue
            if not evaluate_guard(lhs.guard, ctx):
                continue
            if found is not None:
                raise ProtocolError(f"nondeterministic program at {comp!r}")
            found = rule
        return found

    def _context(self, comp: _Comp) -> StoreContext:
        return StoreContext(
            comp.store,
            {STRING_ATTR: self.half.value(comp.position)},
            self.constants,
        )

    def _reject(self, reason: str) -> RejectMessage:
        self.comp = None
        return RejectMessage(reason)
