"""Random tw^{r,l} string programs for protocol fuzzing.

Lemma 4.5 claims the protocol simulates *every* program; the hand
written stock programs cover the message kinds, but confidence comes
from volume.  :func:`random_program` generates deterministic-by-
construction programs over data strings:

* determinism is structural — for each (state, position-class) pair at
  most one rule exists, where the four position classes
  (root?, leaf?) partition the positions of a monadic tree;
* actions are sampled from moves (valid for the class), single-value
  and accumulating updates, and ``atp`` over a pool of selectors;
* a configurable fraction of rules jumps to the final state, so runs
  terminate in all three ways (accept / stuck / cycle).

The generated programs are ordinary :class:`TWAutomaton` values — the
fuzz tests run them through the runner and the protocol and demand
identical verdicts.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..automata.builder import AutomatonBuilder
from ..automata.machine import TWAutomaton
from ..automata.rules import DOWN, PositionTest, STAY, UP
from ..logic import tree_fo as T
from ..logic.exists_star import X, Y, selector
from ..store.fo import Attr, Var, conj, disj, eq, exists, forall, implies, neq, rel
from ..trees.strings import HASH

z, w = Var("z"), Var("w")

#: The four position classes of a monadic tree (root?, leaf?).
POSITION_CLASSES = (
    PositionTest(root=True, leaf=True),
    PositionTest(root=True, leaf=False),
    PositionTest(root=False, leaf=True),
    PositionTest(root=False, leaf=False),
)

_NOT_HASH = T.Not(T.ValConst("a", Y, HASH))

#: Selector pool: a mix of single-target and fanning-out shapes.
SELECTOR_POOL = (
    selector(T.conj(T.Desc(X, Y), _NOT_HASH)),                     # after
    selector(T.conj(T.disj(T.Desc(X, Y), T.NodeEq(X, Y)), _NOT_HASH)),
    selector(T.conj(T.Edge(X, Y), _NOT_HASH)),                     # next
    selector(T.conj(T.Edge(Y, X), _NOT_HASH)),                     # previous
    selector(T.conj(T.Desc(Y, X), _NOT_HASH)),                     # before
    selector(T.conj(T.Leaf(Y), _NOT_HASH)),                        # the end
    selector(T.conj(T.Desc(X, Y), T.ValEq("a", X, "a", Y))),       # same value later
)

#: Guard pool (sentences over one unary register + @a).
GUARD_POOL = (
    None,
    rel(1, Attr("a")),
    exists(z, rel(1, z)),
    forall([z, w], implies(conj(rel(1, z), rel(1, w)), eq(z, w))),
    forall(z, implies(rel(1, z), eq(z, Attr("a")))),
)


def random_program(
    seed: int,
    states: int = 4,
    accept_bias: float = 0.25,
    atp_bias: float = 0.35,
) -> TWAutomaton:
    """A deterministic random tw^{r,l} program over data strings."""
    rng = random.Random(seed)
    names = [f"s{i}" for i in range(states)]
    b = AutomatonBuilder(f"fuzz-{seed}", register_arities=[1])

    def target() -> str:
        if rng.random() < accept_bias:
            return "qF"
        return rng.choice(names)

    for state in names:
        for position in POSITION_CLASSES:
            if rng.random() < 0.15:
                continue  # a stuck hole: rejection via no-rule
            guard = rng.choice(GUARD_POOL)
            roll = rng.random()
            if roll < atp_bias:
                b.atp(
                    state, target(),
                    rng.choice(SELECTOR_POOL),
                    substate=rng.choice(names),
                    register=1,
                    guard=guard,
                    position=position,
                )
            elif roll < atp_bias + 0.3:
                formula = rng.choice(
                    (
                        eq(z, Attr("a")),
                        disj(rel(1, z), eq(z, Attr("a"))),
                        conj(rel(1, z), neq(z, Attr("a"))),
                    )
                )
                b.update(state, target(), 1, formula, [z],
                         guard=guard, position=position)
            else:
                moves: List[str] = [STAY]
                if position.leaf is False:
                    moves.append(DOWN)
                if position.root is False:
                    moves.append(UP)
                b.move(state, target(), rng.choice(moves),
                       guard=guard, position=position)
    return b.build(initial=names[0], final="qF")
