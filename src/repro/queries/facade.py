"""``TreeDatabase`` — the one-stop user API.

Wraps an attributed tree (typically parsed from XML or term syntax)
and exposes the paper's query formalisms side by side:

>>> from repro.queries import TreeDatabase
>>> db = TreeDatabase.from_term('catalog(dept(item[cur="EUR"], item[cur="EUR"]))')
>>> db.xpath("catalog//item")
((0, 0), (0, 1))
>>> from repro.automata.examples import all_leaves_same_twrl
>>> db.run_automaton(all_leaves_same_twrl("cur"))
True
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from ..automata.classes import TWClass, classify
from ..automata.machine import TWAutomaton
from ..automata.runner import RunResult, accepts, run
from ..caching import CacheInfo, KeyedLRU
from ..engine import fo as fast_fo
from ..engine import xpath as fast_xpath
from ..engine.index import TreeIndex, index_for
from ..engine.planner import Plan, Planner, default_planner
from ..engine.plans import compile_caterpillar_plan, compile_xpath_plan
from ..logic import tree_fo
from ..logic.exists_star import ExistsStarQuery
from ..mso.hedge import HedgeAutomaton
from ..resilience.budget import Budget, ExecutionContext, activate
from ..resilience.executor import resilient_call
from ..resilience.log import ResilienceLog
from ..simulation.configgraph import evaluate_memo
from ..simulation.ids import ID_ATTR, has_unique_ids, with_ids
from ..trees.delimited import delim
from ..trees.node import NodeId
from ..trees.parser import format_term, parse_term
from ..trees.tree import Tree
from ..trees.xmlio import from_xml, to_xml
from ..xpath.compiler import compile_xpath
from ..xpath.evaluator import select as xpath_select
from ..xpath.parser import parse_xpath


#: Default bound on the number of parsed XPath expressions kept per database.
XPATH_CACHE_SIZE = 128

#: Default bound on the number of parsed caterpillar expressions kept
#: per database (same LRU discipline as the XPath cache).
CATERPILLAR_CACHE_SIZE = 128

#: Recognised evaluation engines: "fast" is the indexed, set-at-a-time
#: engine (:mod:`repro.engine`); "reference" the node-at-a-time
#: evaluators the engine is differentially tested against;
#: "resilient" runs the fast engine under a budget slice and falls back
#: to the reference evaluator on engine faults (:mod:`repro.resilience`);
#: "auto" lets the cost-based planner (:mod:`repro.engine.planner`)
#: choose per query from the document's statistics, guarding expensive
#: fast attempts with a re-plan budget.
ENGINES = ("fast", "reference", "resilient", "auto")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


class TreeDatabase:
    """An attributed tree with the paper's query engines attached."""

    def __init__(
        self,
        tree: Tree,
        ensure_ids: bool = False,
        xpath_cache_size: int = XPATH_CACHE_SIZE,
        caterpillar_cache_size: int = CATERPILLAR_CACHE_SIZE,
        planner: Optional[Planner] = None,
    ) -> None:
        if ensure_ids and not has_unique_ids(tree):
            tree = with_ids(tree)
        self.tree = tree
        if xpath_cache_size < 0:
            raise ValueError("xpath_cache_size must be >= 0")
        if caterpillar_cache_size < 0:
            raise ValueError("caterpillar_cache_size must be >= 0")
        # Per-database residency and statistics; the parse work itself
        # is delegated to the process-wide shared plan cache
        # (:mod:`repro.engine.plans`), so a plan compiles once per
        # query text regardless of how many databases run it.
        self._xpath_cache: KeyedLRU = KeyedLRU(xpath_cache_size, name="xpath")
        self._caterpillar_cache: KeyedLRU = KeyedLRU(
            caterpillar_cache_size, name="caterpillar"
        )
        self._resilience = ResilienceLog()
        #: Armed by the fault-injection harness
        #: (:mod:`repro.resilience.faults`); consulted by the
        #: ``"resilient"`` engine's fast attempt and by ``"auto"``'s
        #: guarded plans.
        self._fault_injector = None
        #: The cost-based planner behind ``engine="auto"``.  Databases
        #: share the process-wide default (and hence its plan cache
        #: statistics) unless the caller brings their own.
        self._planner = planner if planner is not None else default_planner()
        self._last_plan: Optional[Plan] = None

    # -- construction --------------------------------------------------------------

    @classmethod
    def from_term(cls, text: str, **kwargs) -> "TreeDatabase":
        """From term syntax ``a(b[x=1], c)``."""
        return cls(parse_term(text), **kwargs)

    @classmethod
    def from_xml(cls, text: str, **kwargs) -> "TreeDatabase":
        """From the XML subset."""
        return cls(from_xml(text), **kwargs)

    # -- inspection -----------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.tree.size

    def to_term(self) -> str:
        return format_term(self.tree)

    def to_xml(self) -> str:
        return to_xml(self.tree)

    @property
    def index(self) -> TreeIndex:
        """The compiled :class:`~repro.engine.index.TreeIndex` of the
        document — built lazily on first use, then cached per tree."""
        return index_for(self.tree)

    # -- resilient execution ---------------------------------------------------------

    def _dispatch(
        self,
        operation: str,
        fast: Callable[[], object],
        reference: Callable[[], object],
        engine: str,
        budget: Optional[Budget],
        plan_key=None,
    ):
        """Run one query through the selected engine.

        ``"fast"``/``"reference"`` run the corresponding thunk, under an
        active budget context when one is given; ``"resilient"`` runs
        the fast thunk under a budget slice and falls back to the
        reference evaluator on engine faults, recording incidents on the
        per-database :class:`~repro.resilience.log.ResilienceLog`;
        ``"auto"`` plans first — ``plan_key`` is the ``(kind, text,
        parsed)`` triple the planner caches the decision under."""
        if engine == "auto":
            kind, text, parsed = plan_key
            plan = self._planner.plan_for_tree(
                kind, text, self.tree, parsed=parsed
            )
            self._last_plan = plan
            return self._planner.execute(
                plan,
                operation,
                fast,
                reference,
                budget,
                self._resilience,
                faults=self._fault_injector,
            )
        if engine == "resilient":
            return resilient_call(
                operation,
                fast,
                reference,
                budget,
                self._resilience,
                faults=self._fault_injector,
            )
        thunk = fast if engine == "fast" else reference
        if budget is not None:
            with activate(ExecutionContext(budget)):
                return thunk()
        return thunk()

    def resilience_info(self) -> Dict[str, object]:
        """Counters and incident history of the ``"resilient"`` engine —
        calls, fast successes, fallbacks, failures, per-operation stats,
        and the last recorded error (see
        :meth:`repro.resilience.log.ResilienceLog.snapshot`)."""
        return self._resilience.snapshot()

    def resilience_clear(self) -> None:
        """Reset the resilience counters and incident history."""
        self._resilience.clear()

    # -- planning --------------------------------------------------------------

    @property
    def planner(self) -> Planner:
        """The planner serving this database's ``engine="auto"`` calls."""
        return self._planner

    @property
    def last_plan(self) -> Optional[Plan]:
        """The :class:`~repro.engine.planner.Plan` behind the most
        recent ``engine="auto"`` call on this database (None before
        the first one) — chosen engine, per-engine modeled costs,
        estimated cardinality, and whether execution was guarded."""
        return self._last_plan

    # -- XPath ------------------------------------------------------------------------

    def xpath(
        self,
        expression: str,
        context: NodeId = (),
        engine: str = "fast",
        budget: Optional[Budget] = None,
    ) -> Tuple[NodeId, ...]:
        """Evaluate an XPath expression of the paper's fragment.

        Parsed expressions are memoised in a bounded LRU cache (see
        :meth:`cache_info`); cache hits never change results, which the
        differential oracle asserts on every run.  ``engine`` picks the
        indexed bitset evaluator (``"fast"``, the default), the
        node-at-a-time ``"reference"`` one, or ``"resilient"`` execution
        with fallback; all return the same nodes.  A ``budget`` bounds
        the work (see :class:`repro.resilience.Budget`)."""
        _check_engine(engine)
        parsed = self._parsed(expression)
        return self._dispatch(
            "xpath",
            lambda: fast_xpath.select(parsed, self.tree, context),
            lambda: xpath_select(parsed, self.tree, context),
            engine,
            budget,
            plan_key=("xpath", expression, parsed),
        )

    def _parsed(self, expression: str):
        """The parsed AST for ``expression``, via the LRU cache.

        A syntax error propagates without touching statistics or slots
        (the :meth:`~repro.caching.KeyedLRU.get_or_compute` contract)."""
        return self._xpath_cache.get_or_compute(
            expression, lambda: compile_xpath_plan(expression)
        )

    def cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the parsed-XPath LRU cache."""
        return self._xpath_cache.cache_info()

    def cache_clear(self) -> None:
        """Empty the parsed-XPath cache and reset its statistics."""
        self._xpath_cache.cache_clear()

    def xpath_as_fo(self, expression: str) -> ExistsStarQuery:
        """The FO(∃*) abstraction of an XPath expression (§2.3)."""
        return compile_xpath(parse_xpath(expression))

    # -- logic -----------------------------------------------------------------------

    def holds(
        self,
        sentence: tree_fo.TreeFormula,
        engine: str = "fast",
        budget: Optional[Budget] = None,
        plan_text: Optional[str] = None,
    ) -> bool:
        """Model-check an FO sentence over τ_{Σ,A}.

        The default ``"fast"`` engine evaluates bottom-up over
        satisfying-assignment relations; ``"reference"`` is the
        assignment-at-a-time model checker; ``"resilient"`` runs fast
        with reference fallback under ``budget``.  ``plan_text`` names
        the sentence for the ``"auto"`` plan cache; callers that hold
        the source text (:meth:`ask`) pass it so planning never has to
        re-format the AST."""
        _check_engine(engine)
        if budget is not None and budget.max_formula_size is not None:
            budget.check_formula_size(len(tree_fo.subformulas(sentence)))
        plan_key = None
        if engine == "auto":
            if plan_text is None:
                from ..logic.parser import format_formula

                plan_text = format_formula(sentence)
            plan_key = ("ask", plan_text, sentence)
        return self._dispatch(
            "holds",
            lambda: fast_fo.evaluate(sentence, self.tree),
            lambda: tree_fo.evaluate(sentence, self.tree),
            engine,
            budget,
            plan_key=plan_key,
        )

    def ask(
        self,
        text: str,
        engine: str = "fast",
        budget: Optional[Budget] = None,
    ) -> bool:
        """Model-check an FO sentence given as text, e.g.
        ``db.ask('forall x (leaf(x) -> O_item(x))')``."""
        from ..logic.parser import parse_sentence

        return self.holds(
            parse_sentence(text), engine=engine, budget=budget, plan_text=text
        )

    def select_where(
        self,
        text: str,
        context: NodeId = (),
        engine: str = "fast",
        budget: Optional[Budget] = None,
    ) -> Tuple[NodeId, ...]:
        """Evaluate a textual binary FO(∃*) query φ(x, y), e.g.
        ``db.select_where('x << y & O_item(y)')``."""
        from ..logic.parser import parse_query

        return self.select(
            parse_query(text),
            context,
            engine=engine,
            budget=budget,
            plan_text=text,
        )

    def select(
        self,
        query: ExistsStarQuery,
        context: NodeId = (),
        engine: str = "fast",
        budget: Optional[Budget] = None,
        plan_text: Optional[str] = None,
    ) -> Tuple[NodeId, ...]:
        """Evaluate a binary FO(∃*) query from ``context``."""
        _check_engine(engine)
        if budget is not None and budget.max_formula_size is not None:
            budget.check_formula_size(len(tree_fo.subformulas(query.formula)))
        plan_key = None
        if engine == "auto":
            if plan_text is None:
                from ..logic.parser import format_formula

                plan_text = (
                    f"{format_formula(query.formula)}"
                    f" @ {query.x.name},{query.y.name}"
                )
            plan_key = ("select", plan_text, query.formula)
        return self._dispatch(
            "select",
            lambda: fast_fo.select(
                query.formula, self.tree, context, query.x, query.y
            ),
            lambda: query.select(self.tree, context),
            engine,
            budget,
            plan_key=plan_key,
        )

    # -- automata -----------------------------------------------------------------------

    def run_automaton(
        self,
        automaton: TWAutomaton,
        delimited: bool = False,
        memoised: bool = False,
        engine: str = "fast",
        budget: Optional[Budget] = None,
        **kwargs,
    ) -> bool:
        """Run a tree-walking automaton; ``delimited`` runs it on
        ``delim(t)`` (Example 3.2 style); ``memoised`` uses the
        configuration-graph evaluator (Theorem 7.1(2)/(4)).

        ``engine="fast"`` (the default) takes the runner's compiled
        guard-free executor when the automaton is in the Move fragment,
        falling back to the reference executor otherwise;
        ``"resilient"`` additionally falls back on engine faults.
        Verdicts are identical either way."""
        _check_engine(engine)
        if engine == "auto":
            # No textual plan key exists for an automaton object, and
            # the fast runner already self-selects (compiled executor
            # for the Move fragment, reference otherwise).
            engine = "fast"
        tree = delim(self.tree) if delimited else self.tree
        if memoised:
            if budget is not None:
                with activate(ExecutionContext(budget)):
                    return evaluate_memo(automaton, tree).accepted
            return evaluate_memo(automaton, tree).accepted
        return self._dispatch(
            "run_automaton",
            lambda: accepts(automaton, tree, engine="fast", **kwargs),
            lambda: accepts(automaton, tree, engine="reference", **kwargs),
            engine,
            budget,
        )

    def run_with_trace(
        self, automaton: TWAutomaton, delimited: bool = False, **kwargs
    ) -> RunResult:
        """Full run result with a step-by-step trace."""
        tree = delim(self.tree) if delimited else self.tree
        return run(automaton, tree, collect_trace=True, **kwargs)

    def automaton_class(self, automaton: TWAutomaton) -> TWClass:
        """Where the automaton sits in the Definition 5.1 lattice."""
        return classify(automaton)

    # -- regular languages ------------------------------------------------------------------

    def matches_hedge(self, hedge: HedgeAutomaton) -> bool:
        """Membership in a regular (MSO-definable) tree language."""
        return hedge.accepts(self.tree)

    # -- related models -------------------------------------------------------------------------

    def caterpillar(
        self,
        expression: str,
        context: NodeId = (),
        engine: str = "fast",
        budget: Optional[Budget] = None,
    ) -> Tuple[NodeId, ...]:
        """Walk a caterpillar expression ([7]) from ``context``, e.g.
        ``db.caterpillar('(down | right)* isLeaf')``.

        Parsed expressions are memoised in a bounded LRU cache (see
        :meth:`caterpillar_cache_info`).  ``engine="fast"`` (the
        default) evaluates on the compiled product-graph walking engine
        (:mod:`repro.engine.walk`); ``"reference"`` re-walks the
        Thompson NFA node-at-a-time; ``"resilient"`` runs fast with
        reference fallback.  All return the same nodes."""
        _check_engine(engine)
        parsed = self._parsed_caterpillar(expression)
        from ..caterpillar import walk
        from ..engine import walk_select

        return self._dispatch(
            "caterpillar",
            lambda: walk_select(parsed, self.tree, context),
            lambda: walk(parsed, self.tree, context),
            engine,
            budget,
            plan_key=("caterpillar", expression, None),
        )

    def caterpillar_relation(
        self,
        expression: str,
        engine: str = "fast",
        budget: Optional[Budget] = None,
    ):
        """The full denoted relation ⟦expression⟧ ⊆ Dom(t)² — the fast
        engine computes it as one stacked product BFS over all start
        nodes (:meth:`~repro.engine.walk.WalkEvaluator.all_pairs`)."""
        _check_engine(engine)
        parsed = self._parsed_caterpillar(expression)
        from ..caterpillar import relation
        from ..engine import walk_relation

        return self._dispatch(
            "caterpillar_relation",
            lambda: walk_relation(parsed, self.tree),
            lambda: relation(parsed, self.tree),
            engine,
            budget,
            plan_key=("caterpillar-relation", expression, None),
        )

    def _parsed_caterpillar(self, expression: str):
        """The parsed caterpillar AST, via the LRU cache.

        A failed parse propagates without touching stats or slots."""
        return self._caterpillar_cache.get_or_compute(
            expression, lambda: compile_caterpillar_plan(expression)
        )

    def caterpillar_cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the parsed-caterpillar LRU cache."""
        return self._caterpillar_cache.cache_info()

    def caterpillar_cache_clear(self) -> None:
        """Empty the parsed-caterpillar cache and reset its statistics."""
        self._caterpillar_cache.cache_clear()

    def transform(self, transducer, **kwargs) -> "TreeDatabase":
        """Apply a tree-walking transducer (§8 extension); returns the
        output document wrapped in a fresh TreeDatabase."""
        from ..transducer import run_transducer

        return TreeDatabase(run_transducer(transducer, self.tree, **kwargs))

    # -- IDs -------------------------------------------------------------------------------------

    def with_ids(self) -> "TreeDatabase":
        """A copy carrying the Section 7 unique-ID attribute."""
        return TreeDatabase(with_ids(self.tree))

    def __repr__(self) -> str:
        return f"TreeDatabase({self.size} nodes, A={list(self.tree.attributes)})"
