"""``TreeDatabase`` — the one-stop user API.

Wraps an attributed tree (typically parsed from XML or term syntax)
and exposes the paper's query formalisms side by side:

>>> from repro.queries import TreeDatabase
>>> db = TreeDatabase.from_term('catalog(dept(item[cur="EUR"], item[cur="EUR"]))')
>>> db.xpath("catalog//item")
((0, 0), (0, 1))
>>> from repro.automata.examples import all_leaves_same_twrl
>>> db.run_automaton(all_leaves_same_twrl("cur"))
True
"""

from __future__ import annotations

from collections import OrderedDict, namedtuple
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..automata.classes import TWClass, classify
from ..automata.machine import TWAutomaton
from ..automata.runner import RunResult, accepts, run
from ..engine import fo as fast_fo
from ..engine import xpath as fast_xpath
from ..engine.index import TreeIndex, index_for
from ..logic import tree_fo
from ..logic.exists_star import ExistsStarQuery
from ..mso.hedge import HedgeAutomaton
from ..simulation.configgraph import evaluate_memo
from ..simulation.ids import ID_ATTR, has_unique_ids, with_ids
from ..trees.delimited import delim
from ..trees.node import NodeId
from ..trees.parser import format_term, parse_term
from ..trees.tree import Tree
from ..trees.xmlio import from_xml, to_xml
from ..xpath.compiler import compile_xpath
from ..xpath.evaluator import select as xpath_select
from ..xpath.parser import parse_xpath


#: Statistics of the parsed-XPath LRU cache, mirroring functools.lru_cache.
CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize", "currsize"])

#: Default bound on the number of parsed XPath expressions kept per database.
XPATH_CACHE_SIZE = 128

#: Default bound on the number of parsed caterpillar expressions kept
#: per database (same LRU discipline as the XPath cache).
CATERPILLAR_CACHE_SIZE = 128

#: Recognised evaluation engines: "fast" is the indexed, set-at-a-time
#: engine (:mod:`repro.engine`); "reference" the node-at-a-time
#: evaluators the engine is differentially tested against.
ENGINES = ("fast", "reference")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


class TreeDatabase:
    """An attributed tree with the paper's query engines attached."""

    def __init__(
        self,
        tree: Tree,
        ensure_ids: bool = False,
        xpath_cache_size: int = XPATH_CACHE_SIZE,
        caterpillar_cache_size: int = CATERPILLAR_CACHE_SIZE,
    ) -> None:
        if ensure_ids and not has_unique_ids(tree):
            tree = with_ids(tree)
        self.tree = tree
        if xpath_cache_size < 0:
            raise ValueError("xpath_cache_size must be >= 0")
        if caterpillar_cache_size < 0:
            raise ValueError("caterpillar_cache_size must be >= 0")
        self._xpath_cache: "OrderedDict[str, object]" = OrderedDict()
        self._xpath_cache_maxsize = xpath_cache_size
        self._xpath_cache_hits = 0
        self._xpath_cache_misses = 0
        self._caterpillar_cache: "OrderedDict[str, object]" = OrderedDict()
        self._caterpillar_cache_maxsize = caterpillar_cache_size
        self._caterpillar_cache_hits = 0
        self._caterpillar_cache_misses = 0

    # -- construction --------------------------------------------------------------

    @classmethod
    def from_term(cls, text: str, **kwargs) -> "TreeDatabase":
        """From term syntax ``a(b[x=1], c)``."""
        return cls(parse_term(text), **kwargs)

    @classmethod
    def from_xml(cls, text: str, **kwargs) -> "TreeDatabase":
        """From the XML subset."""
        return cls(from_xml(text), **kwargs)

    # -- inspection -----------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.tree.size

    def to_term(self) -> str:
        return format_term(self.tree)

    def to_xml(self) -> str:
        return to_xml(self.tree)

    @property
    def index(self) -> TreeIndex:
        """The compiled :class:`~repro.engine.index.TreeIndex` of the
        document — built lazily on first use, then cached per tree."""
        return index_for(self.tree)

    # -- XPath ------------------------------------------------------------------------

    def xpath(
        self, expression: str, context: NodeId = (), engine: str = "fast"
    ) -> Tuple[NodeId, ...]:
        """Evaluate an XPath expression of the paper's fragment.

        Parsed expressions are memoised in a bounded LRU cache (see
        :meth:`cache_info`); cache hits never change results, which the
        differential oracle asserts on every run.  ``engine`` picks the
        indexed bitset evaluator (``"fast"``, the default) or the
        node-at-a-time ``"reference"`` one; both return the same nodes.
        """
        _check_engine(engine)
        parsed = self._parsed(expression)
        if engine == "fast":
            return fast_xpath.select(parsed, self.tree, context)
        return xpath_select(parsed, self.tree, context)

    def _parsed(self, expression: str):
        """The parsed AST for ``expression``, via the LRU cache."""
        cache = self._xpath_cache
        if expression in cache:
            self._xpath_cache_hits += 1
            cache.move_to_end(expression)
            return cache[expression]
        self._xpath_cache_misses += 1
        parsed = parse_xpath(expression)
        if self._xpath_cache_maxsize:
            while len(cache) >= self._xpath_cache_maxsize:
                cache.popitem(last=False)
            cache[expression] = parsed
        return parsed

    def cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the parsed-XPath LRU cache."""
        return CacheInfo(
            hits=self._xpath_cache_hits,
            misses=self._xpath_cache_misses,
            maxsize=self._xpath_cache_maxsize,
            currsize=len(self._xpath_cache),
        )

    def cache_clear(self) -> None:
        """Empty the parsed-XPath cache and reset its statistics."""
        self._xpath_cache.clear()
        self._xpath_cache_hits = 0
        self._xpath_cache_misses = 0

    def xpath_as_fo(self, expression: str) -> ExistsStarQuery:
        """The FO(∃*) abstraction of an XPath expression (§2.3)."""
        return compile_xpath(parse_xpath(expression))

    # -- logic -----------------------------------------------------------------------

    def holds(self, sentence: tree_fo.TreeFormula, engine: str = "fast") -> bool:
        """Model-check an FO sentence over τ_{Σ,A}.

        The default ``"fast"`` engine evaluates bottom-up over
        satisfying-assignment relations; ``"reference"`` is the
        assignment-at-a-time model checker."""
        _check_engine(engine)
        if engine == "fast":
            return fast_fo.evaluate(sentence, self.tree)
        return tree_fo.evaluate(sentence, self.tree)

    def ask(self, text: str, engine: str = "fast") -> bool:
        """Model-check an FO sentence given as text, e.g.
        ``db.ask('forall x (leaf(x) -> O_item(x))')``."""
        from ..logic.parser import parse_sentence

        return self.holds(parse_sentence(text), engine=engine)

    def select_where(
        self, text: str, context: NodeId = (), engine: str = "fast"
    ) -> Tuple[NodeId, ...]:
        """Evaluate a textual binary FO(∃*) query φ(x, y), e.g.
        ``db.select_where('x << y & O_item(y)')``."""
        from ..logic.parser import parse_query

        return self.select(parse_query(text), context, engine=engine)

    def select(
        self,
        query: ExistsStarQuery,
        context: NodeId = (),
        engine: str = "fast",
    ) -> Tuple[NodeId, ...]:
        """Evaluate a binary FO(∃*) query from ``context``."""
        _check_engine(engine)
        if engine == "fast":
            return fast_fo.select(
                query.formula, self.tree, context, query.x, query.y
            )
        return query.select(self.tree, context)

    # -- automata -----------------------------------------------------------------------

    def run_automaton(
        self,
        automaton: TWAutomaton,
        delimited: bool = False,
        memoised: bool = False,
        engine: str = "fast",
        **kwargs,
    ) -> bool:
        """Run a tree-walking automaton; ``delimited`` runs it on
        ``delim(t)`` (Example 3.2 style); ``memoised`` uses the
        configuration-graph evaluator (Theorem 7.1(2)/(4)).

        ``engine="fast"`` (the default) takes the runner's compiled
        guard-free executor when the automaton is in the Move fragment,
        falling back to the reference executor otherwise; verdicts are
        identical either way."""
        _check_engine(engine)
        tree = delim(self.tree) if delimited else self.tree
        if memoised:
            return evaluate_memo(automaton, tree).accepted
        return accepts(automaton, tree, engine=engine, **kwargs)

    def run_with_trace(
        self, automaton: TWAutomaton, delimited: bool = False, **kwargs
    ) -> RunResult:
        """Full run result with a step-by-step trace."""
        tree = delim(self.tree) if delimited else self.tree
        return run(automaton, tree, collect_trace=True, **kwargs)

    def automaton_class(self, automaton: TWAutomaton) -> TWClass:
        """Where the automaton sits in the Definition 5.1 lattice."""
        return classify(automaton)

    # -- regular languages ------------------------------------------------------------------

    def matches_hedge(self, hedge: HedgeAutomaton) -> bool:
        """Membership in a regular (MSO-definable) tree language."""
        return hedge.accepts(self.tree)

    # -- related models -------------------------------------------------------------------------

    def caterpillar(
        self, expression: str, context: NodeId = (), engine: str = "fast"
    ) -> Tuple[NodeId, ...]:
        """Walk a caterpillar expression ([7]) from ``context``, e.g.
        ``db.caterpillar('(down | right)* isLeaf')``.

        Parsed expressions are memoised in a bounded LRU cache (see
        :meth:`caterpillar_cache_info`).  ``engine="fast"`` (the
        default) evaluates on the compiled product-graph walking engine
        (:mod:`repro.engine.walk`); ``"reference"`` re-walks the
        Thompson NFA node-at-a-time.  Both return the same nodes."""
        _check_engine(engine)
        parsed = self._parsed_caterpillar(expression)
        if engine == "fast":
            from ..engine import walk_select

            return walk_select(parsed, self.tree, context)
        from ..caterpillar import walk

        return walk(parsed, self.tree, context)

    def caterpillar_relation(
        self, expression: str, engine: str = "fast"
    ):
        """The full denoted relation ⟦expression⟧ ⊆ Dom(t)² — the fast
        engine computes it as one stacked product BFS over all start
        nodes (:meth:`~repro.engine.walk.WalkEvaluator.all_pairs`)."""
        _check_engine(engine)
        parsed = self._parsed_caterpillar(expression)
        if engine == "fast":
            from ..engine import walk_relation

            return walk_relation(parsed, self.tree)
        from ..caterpillar import relation

        return relation(parsed, self.tree)

    def _parsed_caterpillar(self, expression: str):
        """The parsed caterpillar AST, via the LRU cache."""
        from ..caterpillar import parse_caterpillar

        cache = self._caterpillar_cache
        if expression in cache:
            self._caterpillar_cache_hits += 1
            cache.move_to_end(expression)
            return cache[expression]
        self._caterpillar_cache_misses += 1
        parsed = parse_caterpillar(expression)
        if self._caterpillar_cache_maxsize:
            while len(cache) >= self._caterpillar_cache_maxsize:
                cache.popitem(last=False)
            cache[expression] = parsed
        return parsed

    def caterpillar_cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the parsed-caterpillar LRU cache."""
        return CacheInfo(
            hits=self._caterpillar_cache_hits,
            misses=self._caterpillar_cache_misses,
            maxsize=self._caterpillar_cache_maxsize,
            currsize=len(self._caterpillar_cache),
        )

    def caterpillar_cache_clear(self) -> None:
        """Empty the parsed-caterpillar cache and reset its statistics."""
        self._caterpillar_cache.clear()
        self._caterpillar_cache_hits = 0
        self._caterpillar_cache_misses = 0

    def transform(self, transducer, **kwargs) -> "TreeDatabase":
        """Apply a tree-walking transducer (§8 extension); returns the
        output document wrapped in a fresh TreeDatabase."""
        from ..transducer import run_transducer

        return TreeDatabase(run_transducer(transducer, self.tree, **kwargs))

    # -- IDs -------------------------------------------------------------------------------------

    def with_ids(self) -> "TreeDatabase":
        """A copy carrying the Section 7 unique-ID attribute."""
        return TreeDatabase(with_ids(self.tree))

    def __repr__(self) -> str:
        return f"TreeDatabase({self.size} nodes, A={list(self.tree.attributes)})"
